// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Engine: a concurrent query-serving runtime over a Catalog of planar
// index sets. Requests enter through a bounded queue (admission control:
// a full queue sheds with kResourceExhausted, never blocks the caller)
// and are executed in batches by a worker pool. Each request can carry a
// deadline that is honored both before execution starts and cooperatively
// inside the II verification loops of the core query paths. Shutdown is a
// graceful drain: queued requests still execute, then workers exit.
//
// With num_workers == 0 the engine runs no threads and the caller drives
// execution explicitly via RunPending() — the deterministic mode the unit
// tests use to exercise admission and accounting without scheduler races.

#ifndef PLANAR_ENGINE_ENGINE_H_
#define PLANAR_ENGINE_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "engine/bounded_queue.h"
#include "engine/catalog.h"
#include "engine/ingest_hook.h"
#include "engine/metrics.h"
#include "engine/request.h"

namespace planar {

/// Engine sizing and scheduling knobs.
struct EngineOptions {
  /// Worker threads. 0 means no threads: the owner calls RunPending().
  size_t num_workers = 4;
  /// Admission-control bound: Submit() sheds once this many requests are
  /// queued.
  size_t queue_capacity = 1024;
  /// Upper bound on requests a worker claims per queue round-trip;
  /// batching amortizes the queue lock — and, for inequality requests
  /// against the same catalog entry with the same comparison direction,
  /// feeds the coalesced PlanarIndexSet::BatchInequality path, which
  /// streams overlapping candidate intervals once for the whole group.
  size_t max_batch = 16;
  /// How long (milliseconds) a worker lingers after claiming its first
  /// request, waiting for more to coalesce into the same batch. 0 (the
  /// default) never waits: batching then only happens when the queue is
  /// already backlogged. A small linger (say 0.2–1 ms) trades that much
  /// added latency under light load for larger batches — worth it when
  /// queries overlap heavily and the batch path's row sharing pays.
  double batch_linger_millis = 0.0;
  /// Default shard count for BuildAndInstallSharded when the caller's
  /// ShardedIndexSetOptions leave shards == 0. 0 = one shard per
  /// hardware core (the shard-per-core serving layout).
  size_t shards = 0;
  /// Pin each worker thread to a core (worker i -> core i mod cores) so
  /// shard fan-outs run on a stable core set. Linux only; silently a
  /// no-op elsewhere.
  bool pin_workers = false;
};

/// A serving runtime bound to one (not owned) catalog.
class Engine {
 public:
  /// `catalog` must outlive the engine.
  explicit Engine(Catalog* catalog,
                  const EngineOptions& options = EngineOptions());
  /// Drains (see Drain) before destruction.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Admits `request` and returns a future for its response. Fails fast —
  /// without blocking or enqueueing — with kResourceExhausted when the
  /// queue is at capacity and kUnavailable once draining has begun.
  Result<std::future<EngineResponse>> Submit(EngineRequest request);

  /// Pops and executes up to options().max_batch queued requests on the
  /// calling thread; returns how many ran. Never blocks. This is the
  /// execution path when num_workers == 0, and is also safe to call as a
  /// helping hand alongside a worker pool.
  size_t RunPending();

  /// Graceful shutdown: stops admission (subsequent Submit ->
  /// kUnavailable), lets queued requests finish, joins the workers, and
  /// executes any remainder inline (covers the 0-worker mode).
  /// Idempotent.
  void Drain();

  /// Point-in-time counters, gauges, and latency histograms. The
  /// counter conservation laws are exact after Drain() and best-effort
  /// (momentarily behind) while requests are moving.
  DebugSnapshot Snapshot() const;

  /// Builds a ShardedIndexSet and installs it in the bound catalog under
  /// `name` (requests naming it then scatter-gather across its shards).
  /// When `options.shards` is 0, EngineOptions::shards decides (0 there
  /// = one shard per core). The build runs on the calling thread,
  /// outside any lock.
  Result<Catalog::ShardedPtr> BuildAndInstallSharded(
      const std::string& name, PhiMatrix phi,
      const std::vector<ParameterDomain>& domains,
      ShardedIndexSetOptions options = ShardedIndexSetOptions());

  /// Attaches the write-path backend (see engine/ingest_hook.h): kAppend
  /// requests route to it, reads against targets it manages overlay the
  /// delta, and its counters flow into this engine's metrics. `backend`
  /// must outlive the engine (or be detached with nullptr after its own
  /// Stop()). Not thread-safe against in-flight requests — attach before
  /// serving, as part of engine setup.
  void AttachIngest(IngestBackend* backend);

  const EngineOptions& options() const { return options_; }

 private:
  struct Pending {
    EngineRequest request;
    std::promise<EngineResponse> promise;
    WallTimer queued;  // started on admission; read when execution begins
  };

  /// Runs one request to completion: catalog lookup (monolithic entry,
  /// else sharded scatter-gather), pre-execution deadline check,
  /// deadline-aware core query call. Non-const: sharded executions feed
  /// the shard-fanout metrics.
  EngineResponse Execute(const EngineRequest& request);

  /// Executes one popped batch, fulfilling promises and recording
  /// metrics. Inequality requests that share a catalog entry and
  /// comparison direction are grouped and executed through RunGroup;
  /// everything else runs serially through Execute.
  void RunBatch(std::vector<Pending>& batch);

  /// Executes `members` (indices into `batch`, all inequality requests
  /// with the same target and comparison) through one coalesced
  /// BatchInequality call, answering each future individually.
  void RunGroup(std::vector<Pending>& batch,
                const std::vector<size_t>& members);

  void WorkerLoop();

  Catalog* const catalog_;
  const EngineOptions options_;
  BoundedQueue<Pending> queue_;
  // Borrowed write-path backend; null until AttachIngest. Atomic so the
  // const query paths can load it without a lock (attachment happens
  // before serving; the atomic is belt-and-suspenders for snapshots).
  std::atomic<IngestBackend*> ingest_{nullptr};
  EngineMetrics metrics_;
  /// Worker threads live on a dedicated pool (optionally pinned); null
  /// in 0-worker mode. Each worker occupies one pool thread with
  /// WorkerLoop until the queue closes.
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<size_t> in_flight_{0};
};

}  // namespace planar

#endif  // PLANAR_ENGINE_ENGINE_H_
