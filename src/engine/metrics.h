// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Engine observability: monotone counters over the request lifecycle and
// fixed-bucket latency histograms, exposed as a point-in-time
// DebugSnapshot. The counters obey a conservation law the tests assert:
// submitted = admitted + rejected_queue_full + rejected_draining, and
// after a Drain() every admitted request is accounted for as
// completed_ok + deadline_exceeded + failed.

#ifndef PLANAR_ENGINE_METRICS_H_
#define PLANAR_ENGINE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/status.h"

namespace planar {

/// Monotone request-lifecycle counters.
struct EngineCounters {
  uint64_t submitted = 0;           ///< Submit() calls
  uint64_t admitted = 0;            ///< accepted into the queue
  uint64_t rejected_queue_full = 0; ///< shed with kResourceExhausted
  uint64_t rejected_draining = 0;   ///< refused with kUnavailable
  uint64_t completed_ok = 0;        ///< finished with an OK status
  uint64_t deadline_exceeded = 0;   ///< finished with kDeadlineExceeded
  uint64_t failed = 0;              ///< finished with any other error
  // Ingest lifecycle (bumped by the attached IngestBackend; all zero when
  // no backend is attached). appended_rows / wall time is the ingest qps.
  uint64_t appended_rows = 0;       ///< rows accepted into a delta
  uint64_t appends_shed = 0;        ///< appends shed (delta at capacity)
  uint64_t merges = 0;              ///< background merges installed
  // Sharded scatter-gather serving (zero when no sharded set is used).
  uint64_t sharded_queries = 0;     ///< queries fanned across shards
  uint64_t shard_rows_verified = 0; ///< II rows verified across all shards
  // Approximate aggregate fast path (kCount / kAggregate requests).
  // count_refined / count_queries is the refinement rate: the fraction of
  // count-family requests whose boundary bounds were not already within
  // tolerance and had to stream II rows.
  uint64_t count_queries = 0;       ///< kCount + kAggregate executed
  uint64_t count_refined = 0;       ///< of those, how many refined the II
};

/// Bucket layout for batch-occupancy samples: how many inequality
/// requests one coalesced BatchInequality call served (powers of two up
/// to the largest max_batch anyone sensibly configures).
FixedBucketHistogram BatchOccupancyHistogram();

/// Bucket layout for rows-shared-per-query samples: phi rows a query
/// obtained from another query's streaming instead of demanding its own
/// read (powers of four; 0 means no sharing happened).
FixedBucketHistogram RowsSharedHistogram();

/// Bucket layout for shard-fanout samples: how many shards one sharded
/// query (or batch) scattered across (powers of two up to the largest
/// shard count a sane deployment configures).
FixedBucketHistogram ShardFanoutHistogram();

/// Bucket layout for bound-gap samples: the upper - lower width a
/// count-family request returned with, before any caller-side rounding
/// (powers of four; 0 means the answer was exact).
FixedBucketHistogram BoundGapHistogram();

/// Point-in-time view of one engine, safe to inspect with no locks held.
struct DebugSnapshot {
  EngineCounters counters;
  /// End-to-end execution latency of finished requests (milliseconds).
  FixedBucketHistogram latency_millis = FixedBucketHistogram::LatencyMillis();
  /// Time requests spent queued before execution (milliseconds).
  FixedBucketHistogram queue_wait_millis =
      FixedBucketHistogram::LatencyMillis();
  /// Requests served per coalesced batch execution (one sample per
  /// BatchInequality call the engine issued; unitless counts).
  FixedBucketHistogram batch_occupancy = BatchOccupancyHistogram();
  /// Per-query average of phi rows obtained from a batch-mate's stream
  /// (one sample per batch execution; unitless row counts).
  FixedBucketHistogram rows_shared_per_query = RowsSharedHistogram();
  /// Wall time of each background delta merge, clone through install
  /// (one sample per merge; milliseconds).
  FixedBucketHistogram merge_latency_millis =
      FixedBucketHistogram::LatencyMillis();
  /// Shards each sharded query scattered across (one sample per sharded
  /// execution; unitless shard counts).
  FixedBucketHistogram shard_fanout = ShardFanoutHistogram();
  /// Bound gap each count-family request answered with (one sample per
  /// OK kCount/kAggregate execution; unitless row counts).
  FixedBucketHistogram bound_gap = BoundGapHistogram();
  size_t queue_depth = 0;      ///< requests waiting at snapshot time
  size_t in_flight = 0;        ///< requests executing at snapshot time
  size_t workers = 0;          ///< worker threads configured
  size_t catalog_entries = 0;  ///< entries in the attached catalog
  size_t ingest_targets = 0;   ///< catalog entries under ingest management
  size_t delta_rows = 0;       ///< unmerged delta rows at snapshot time
  bool draining = false;       ///< Drain() has begun

  /// Renders counters, gauges, and latency percentiles as an aligned
  /// table (TablePrinter layout).
  std::string ToString() const;
};

/// Thread-safe metrics sink shared by Submit() and the workers.
class EngineMetrics {
 public:
  EngineMetrics();

  void OnSubmitted() { Bump(&submitted_); }
  void OnAdmitted() { Bump(&admitted_); }
  void OnRejectedQueueFull() { Bump(&rejected_queue_full_); }
  void OnRejectedDraining() { Bump(&rejected_draining_); }

  /// Records one finished request: classifies `status` into the
  /// completion counters and feeds both histograms.
  void OnCompleted(const Status& status, double queue_millis,
                   double execute_millis) PLANAR_EXCLUDES(hist_mu_);

  /// Records one coalesced batch execution: how many requests it served
  /// and how many phi rows each of them got from a batch-mate's stream
  /// on average (BatchExecStats::RowsSharedPerQuery()).
  void OnBatchExecuted(size_t occupancy, double rows_shared_per_query)
      PLANAR_EXCLUDES(hist_mu_);

  /// Ingest lifecycle, bumped by the attached IngestBackend.
  void OnAppendedRows(size_t rows) {
    // relaxed-ok: independent monotone counter, same contract as Bump.
    appended_rows_.fetch_add(rows, std::memory_order_relaxed);
  }
  void OnAppendShed() { Bump(&appends_shed_); }
  /// Records one background merge: bumps the merge counter and feeds the
  /// merge-latency histogram.
  void OnMergeCompleted(double merge_millis) PLANAR_EXCLUDES(hist_mu_);

  /// Records one sharded scatter-gather execution: how many shards it
  /// fanned across and how many II rows the shards verified in total.
  void OnShardedExecuted(size_t fanout, uint64_t rows_verified)
      PLANAR_EXCLUDES(hist_mu_);

  /// Records one OK count-family (kCount / kAggregate) execution: whether
  /// it refined past the boundary bounds, and the bound gap it answered
  /// with (feeds the refinement-rate counters and the gap histogram).
  void OnCountExecuted(bool refined, uint64_t gap) PLANAR_EXCLUDES(hist_mu_);

  /// Consistent copy of the counters.
  EngineCounters counters() const;

  /// Copies of the histograms (bucket layouts included).
  FixedBucketHistogram latency_millis() const PLANAR_EXCLUDES(hist_mu_);
  FixedBucketHistogram queue_wait_millis() const PLANAR_EXCLUDES(hist_mu_);
  FixedBucketHistogram batch_occupancy() const PLANAR_EXCLUDES(hist_mu_);
  FixedBucketHistogram rows_shared_per_query() const
      PLANAR_EXCLUDES(hist_mu_);
  FixedBucketHistogram merge_latency_millis() const PLANAR_EXCLUDES(hist_mu_);
  FixedBucketHistogram shard_fanout() const PLANAR_EXCLUDES(hist_mu_);
  FixedBucketHistogram bound_gap() const PLANAR_EXCLUDES(hist_mu_);

 private:
  static void Bump(std::atomic<uint64_t>* c) {
    // relaxed-ok: independent monotone counters; no reader infers
    // cross-counter ordering from a single load (the conservation laws
    // are only exact after Drain(), whose joins provide the ordering).
    c->fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_draining_{0};
  std::atomic<uint64_t> completed_ok_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> appended_rows_{0};
  std::atomic<uint64_t> appends_shed_{0};
  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> sharded_queries_{0};
  std::atomic<uint64_t> shard_rows_verified_{0};
  std::atomic<uint64_t> count_queries_{0};
  std::atomic<uint64_t> count_refined_{0};

  mutable Mutex hist_mu_{kLockRankEngineMetrics};
  FixedBucketHistogram latency_millis_ PLANAR_GUARDED_BY(hist_mu_);
  FixedBucketHistogram queue_wait_millis_ PLANAR_GUARDED_BY(hist_mu_);
  FixedBucketHistogram batch_occupancy_ PLANAR_GUARDED_BY(hist_mu_);
  FixedBucketHistogram rows_shared_per_query_ PLANAR_GUARDED_BY(hist_mu_);
  FixedBucketHistogram merge_latency_millis_ PLANAR_GUARDED_BY(hist_mu_);
  FixedBucketHistogram shard_fanout_ PLANAR_GUARDED_BY(hist_mu_);
  FixedBucketHistogram bound_gap_ PLANAR_GUARDED_BY(hist_mu_);
};

}  // namespace planar

#endif  // PLANAR_ENGINE_METRICS_H_
