// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "engine/metrics.h"

#include <utility>
#include <vector>

#include "common/table_printer.h"

namespace planar {

FixedBucketHistogram BatchOccupancyHistogram() {
  return FixedBucketHistogram({1, 2, 4, 8, 16, 32, 64, 128, 256});
}

FixedBucketHistogram RowsSharedHistogram() {
  // Powers of four: sharing spans from "none" (0) through a handful of
  // overlapping II rows up to full-dataset scans shared by the batch.
  return FixedBucketHistogram({0, 1, 4, 16, 64, 256, 1024, 4096, 16384,
                               65536, 262144, 1048576});
}

FixedBucketHistogram ShardFanoutHistogram() {
  return FixedBucketHistogram({1, 2, 4, 8, 16, 32, 64});
}

FixedBucketHistogram BoundGapHistogram() {
  // Powers of four: gaps span from exact (0) through a handful of
  // unresolved II rows up to whole-II widths on million-row sets.
  return FixedBucketHistogram({0, 1, 4, 16, 64, 256, 1024, 4096, 16384,
                               65536, 262144, 1048576});
}

EngineMetrics::EngineMetrics()
    : latency_millis_(FixedBucketHistogram::LatencyMillis()),
      queue_wait_millis_(FixedBucketHistogram::LatencyMillis()),
      batch_occupancy_(BatchOccupancyHistogram()),
      rows_shared_per_query_(RowsSharedHistogram()),
      merge_latency_millis_(FixedBucketHistogram::LatencyMillis()),
      shard_fanout_(ShardFanoutHistogram()),
      bound_gap_(BoundGapHistogram()) {}

void EngineMetrics::OnCompleted(const Status& status, double queue_millis,
                                double execute_millis) {
  if (status.ok()) {
    Bump(&completed_ok_);
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    Bump(&deadline_exceeded_);
  } else {
    Bump(&failed_);
  }
  MutexLock lock(&hist_mu_);
  latency_millis_.Add(execute_millis);
  queue_wait_millis_.Add(queue_millis);
}

EngineCounters EngineMetrics::counters() const {
  EngineCounters c;
  // relaxed-ok: point-in-time copy of independent counters; the
  // conservation laws are only promised exact after Drain(), whose
  // thread joins order every prior Bump before this read.
  c.submitted = submitted_.load(std::memory_order_relaxed);
  c.admitted = admitted_.load(std::memory_order_relaxed);
  c.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  c.rejected_draining = rejected_draining_.load(std::memory_order_relaxed);
  c.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  c.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  c.appended_rows = appended_rows_.load(std::memory_order_relaxed);
  c.appends_shed = appends_shed_.load(std::memory_order_relaxed);
  c.merges = merges_.load(std::memory_order_relaxed);
  c.sharded_queries = sharded_queries_.load(std::memory_order_relaxed);
  c.shard_rows_verified = shard_rows_verified_.load(std::memory_order_relaxed);
  c.count_queries = count_queries_.load(std::memory_order_relaxed);
  c.count_refined = count_refined_.load(std::memory_order_relaxed);
  return c;
}

void EngineMetrics::OnCountExecuted(bool refined, uint64_t gap) {
  Bump(&count_queries_);
  if (refined) Bump(&count_refined_);
  MutexLock lock(&hist_mu_);
  bound_gap_.Add(static_cast<double>(gap));
}

FixedBucketHistogram EngineMetrics::bound_gap() const {
  MutexLock lock(&hist_mu_);
  return bound_gap_;
}

void EngineMetrics::OnShardedExecuted(size_t fanout, uint64_t rows_verified) {
  Bump(&sharded_queries_);
  // relaxed-ok: independent monotone counter, same contract as Bump.
  shard_rows_verified_.fetch_add(rows_verified, std::memory_order_relaxed);
  MutexLock lock(&hist_mu_);
  shard_fanout_.Add(static_cast<double>(fanout));
}

FixedBucketHistogram EngineMetrics::shard_fanout() const {
  MutexLock lock(&hist_mu_);
  return shard_fanout_;
}

void EngineMetrics::OnMergeCompleted(double merge_millis) {
  Bump(&merges_);
  MutexLock lock(&hist_mu_);
  merge_latency_millis_.Add(merge_millis);
}

FixedBucketHistogram EngineMetrics::merge_latency_millis() const {
  MutexLock lock(&hist_mu_);
  return merge_latency_millis_;
}

FixedBucketHistogram EngineMetrics::latency_millis() const {
  MutexLock lock(&hist_mu_);
  return latency_millis_;
}

void EngineMetrics::OnBatchExecuted(size_t occupancy,
                                    double rows_shared_per_query) {
  MutexLock lock(&hist_mu_);
  batch_occupancy_.Add(static_cast<double>(occupancy));
  rows_shared_per_query_.Add(rows_shared_per_query);
}

FixedBucketHistogram EngineMetrics::queue_wait_millis() const {
  MutexLock lock(&hist_mu_);
  return queue_wait_millis_;
}

FixedBucketHistogram EngineMetrics::batch_occupancy() const {
  MutexLock lock(&hist_mu_);
  return batch_occupancy_;
}

FixedBucketHistogram EngineMetrics::rows_shared_per_query() const {
  MutexLock lock(&hist_mu_);
  return rows_shared_per_query_;
}

std::string DebugSnapshot::ToString() const {
  TablePrinter table({"metric", "value"});
  const auto add = [&table](const std::string& name, uint64_t value) {
    table.AddRow({name, std::to_string(value)});
  };
  add("submitted", counters.submitted);
  add("admitted", counters.admitted);
  add("rejected_queue_full", counters.rejected_queue_full);
  add("rejected_draining", counters.rejected_draining);
  add("completed_ok", counters.completed_ok);
  add("deadline_exceeded", counters.deadline_exceeded);
  add("failed", counters.failed);
  add("appended_rows", counters.appended_rows);
  add("appends_shed", counters.appends_shed);
  add("merges", counters.merges);
  add("sharded_queries", counters.sharded_queries);
  add("shard_rows_verified", counters.shard_rows_verified);
  add("count_queries", counters.count_queries);
  add("count_refined", counters.count_refined);
  add("queue_depth", queue_depth);
  add("in_flight", in_flight);
  add("workers", workers);
  add("catalog_entries", catalog_entries);
  add("ingest_targets", ingest_targets);
  add("delta_rows", delta_rows);
  table.AddRow({"draining", draining ? "true" : "false"});

  const auto add_histogram = [&table](const std::string& prefix,
                                      const FixedBucketHistogram& h) {
    table.AddRow({prefix + "_count", std::to_string(h.count())});
    table.AddRow({prefix + "_mean_ms", FormatDouble(h.mean())});
    table.AddRow({prefix + "_p50_ms", FormatDouble(h.ApproxPercentile(50))});
    table.AddRow({prefix + "_p90_ms", FormatDouble(h.ApproxPercentile(90))});
    table.AddRow({prefix + "_p99_ms", FormatDouble(h.ApproxPercentile(99))});
  };
  add_histogram("latency", latency_millis);
  add_histogram("queue_wait", queue_wait_millis);
  add_histogram("merge_latency", merge_latency_millis);

  // Unitless histograms (counts, not milliseconds).
  const auto add_count_histogram = [&table](const std::string& prefix,
                                            const FixedBucketHistogram& h) {
    table.AddRow({prefix + "_count", std::to_string(h.count())});
    table.AddRow({prefix + "_mean", FormatDouble(h.mean())});
    table.AddRow({prefix + "_p50", FormatDouble(h.ApproxPercentile(50))});
    table.AddRow({prefix + "_p90", FormatDouble(h.ApproxPercentile(90))});
    table.AddRow({prefix + "_p99", FormatDouble(h.ApproxPercentile(99))});
  };
  add_count_histogram("batch_occupancy", batch_occupancy);
  add_count_histogram("rows_shared_per_query", rows_shared_per_query);
  add_count_histogram("shard_fanout", shard_fanout);
  add_count_histogram("bound_gap", bound_gap);
  return table.ToText();
}

}  // namespace planar
