// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "engine/metrics.h"

#include <utility>
#include <vector>

#include "common/table_printer.h"

namespace planar {

EngineMetrics::EngineMetrics()
    : latency_millis_(FixedBucketHistogram::LatencyMillis()),
      queue_wait_millis_(FixedBucketHistogram::LatencyMillis()) {}

void EngineMetrics::OnCompleted(const Status& status, double queue_millis,
                                double execute_millis) {
  if (status.ok()) {
    Bump(&completed_ok_);
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    Bump(&deadline_exceeded_);
  } else {
    Bump(&failed_);
  }
  std::lock_guard<std::mutex> lock(hist_mu_);
  latency_millis_.Add(execute_millis);
  queue_wait_millis_.Add(queue_millis);
}

EngineCounters EngineMetrics::counters() const {
  EngineCounters c;
  c.submitted = submitted_.load(std::memory_order_relaxed);
  c.admitted = admitted_.load(std::memory_order_relaxed);
  c.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  c.rejected_draining = rejected_draining_.load(std::memory_order_relaxed);
  c.completed_ok = completed_ok_.load(std::memory_order_relaxed);
  c.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  return c;
}

FixedBucketHistogram EngineMetrics::latency_millis() const {
  std::lock_guard<std::mutex> lock(hist_mu_);
  return latency_millis_;
}

FixedBucketHistogram EngineMetrics::queue_wait_millis() const {
  std::lock_guard<std::mutex> lock(hist_mu_);
  return queue_wait_millis_;
}

std::string DebugSnapshot::ToString() const {
  TablePrinter table({"metric", "value"});
  const auto add = [&table](const std::string& name, uint64_t value) {
    table.AddRow({name, std::to_string(value)});
  };
  add("submitted", counters.submitted);
  add("admitted", counters.admitted);
  add("rejected_queue_full", counters.rejected_queue_full);
  add("rejected_draining", counters.rejected_draining);
  add("completed_ok", counters.completed_ok);
  add("deadline_exceeded", counters.deadline_exceeded);
  add("failed", counters.failed);
  add("queue_depth", queue_depth);
  add("in_flight", in_flight);
  add("workers", workers);
  add("catalog_entries", catalog_entries);
  table.AddRow({"draining", draining ? "true" : "false"});

  const auto add_histogram = [&table](const std::string& prefix,
                                      const FixedBucketHistogram& h) {
    table.AddRow({prefix + "_count", std::to_string(h.count())});
    table.AddRow({prefix + "_mean_ms", FormatDouble(h.mean())});
    table.AddRow({prefix + "_p50_ms", FormatDouble(h.ApproxPercentile(50))});
    table.AddRow({prefix + "_p90_ms", FormatDouble(h.ApproxPercentile(90))});
    table.AddRow({prefix + "_p99_ms", FormatDouble(h.ApproxPercentile(99))});
  };
  add_histogram("latency", latency_millis);
  add_histogram("queue_wait", queue_wait_millis);
  return table.ToText();
}

}  // namespace planar
