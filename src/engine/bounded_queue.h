// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Bounded MPMC queue backing the engine's admission control. Producers
// never block: TryPush fails immediately when the queue is full or
// closed, which is what lets Engine::Submit shed load with
// kResourceExhausted instead of stalling the caller. Consumers pop in
// batches; a blocking PopBatch returns 0 only after Close() once the
// queue has drained, so workers exit cleanly without a poison pill.
//
// Synchronization goes through the annotated planar::Mutex layer
// (common/mutex.h): items_ and closed_ are GUARDED_BY(mu_), PopLocked
// REQUIRES(mu_), and the public API EXCLUDES(mu_) — Clang's
// thread-safety analysis proves the drain invariant's locking structure
// ("every admitted item is popped under the same mutex that admitted
// it") at compile time.

#ifndef PLANAR_ENGINE_BOUNDED_QUEUE_H_
#define PLANAR_ENGINE_BOUNDED_QUEUE_H_

#include <chrono>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace planar {

/// Mutex+condvar bounded queue of movable items.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item` unless the queue is full or closed; never blocks.
  /// Returns false (leaving `item` moved-from only on success) when the
  /// element was not admitted.
  bool TryPush(T&& item) PLANAR_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.Signal();
    return true;
  }

  /// Blocks until at least one item is available or the queue is closed,
  /// then moves up to `max_batch` items into `out` (appended). Returns
  /// the number of items popped; 0 means closed-and-drained.
  size_t PopBatch(std::vector<T>* out, size_t max_batch)
      PLANAR_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!closed_ && items_.empty()) ready_.Wait(&mu_);
    return PopLocked(out, max_batch);
  }

  /// PopBatch that lingers: blocks until the first item (or close) like
  /// PopBatch, then — if the batch is not yet full — keeps waiting up to
  /// `linger` past the first pop for more items to coalesce with, popping
  /// greedily as they arrive. This is what lets a worker gather a batch
  /// worth sharing work across instead of racing away with a single
  /// request under light load. A non-positive linger behaves exactly like
  /// PopBatch. Returns the number of items popped; 0 means
  /// closed-and-drained.
  size_t PopBatchLinger(std::vector<T>* out, size_t max_batch,
                        std::chrono::nanoseconds linger)
      PLANAR_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!closed_ && items_.empty()) ready_.Wait(&mu_);
    size_t popped = PopLocked(out, max_batch);
    if (popped == 0 || popped >= max_batch ||
        linger <= std::chrono::nanoseconds::zero()) {
      return popped;
    }
    const auto deadline = std::chrono::steady_clock::now() + linger;
    while (popped < max_batch) {
      bool timed_out = false;
      while (!closed_ && items_.empty() && !timed_out) {
        timed_out = !ready_.WaitUntil(&mu_, deadline);
      }
      if (items_.empty()) break;  // linger expired, or closed and drained
      popped += PopLocked(out, max_batch - popped);
    }
    return popped;
  }

  /// Non-blocking variant: pops whatever is immediately available, up to
  /// `max_batch`. Used by the manual (0-worker) execution mode.
  size_t TryPopBatch(std::vector<T>* out, size_t max_batch)
      PLANAR_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return PopLocked(out, max_batch);
  }

  /// Rejects all future pushes and wakes every blocked consumer. Items
  /// already queued remain poppable (close-then-drain).
  void Close() PLANAR_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    ready_.SignalAll();
  }

  /// Current number of queued items.
  size_t size() const PLANAR_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

  /// True once Close() has been called.
  bool closed() const PLANAR_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return closed_;
  }

  /// Maximum number of queued items.
  size_t capacity() const { return capacity_; }

 private:
  size_t PopLocked(std::vector<T>* out, size_t max_batch)
      PLANAR_REQUIRES(mu_) {
    size_t popped = 0;
    while (popped < max_batch && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++popped;
    }
    return popped;
  }

  const size_t capacity_;
  mutable Mutex mu_{kLockRankEngineQueue};
  CondVar ready_;
  std::deque<T> items_ PLANAR_GUARDED_BY(mu_);
  bool closed_ PLANAR_GUARDED_BY(mu_) = false;
};

}  // namespace planar

#endif  // PLANAR_ENGINE_BOUNDED_QUEUE_H_
