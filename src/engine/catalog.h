// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Catalog: named, refcounted PlanarIndexSet instances with atomic
// snapshot-swap semantics. Readers grab a shared_ptr<const ...> and keep
// querying their snapshot even while a writer Install()s a replacement —
// a rebuild never blocks or invalidates in-flight queries; the old set is
// destroyed when its last reader drops the pointer. The expensive part
// (building the set) happens entirely outside the catalog; Install/Drop
// only swap a pointer under a short mutex.

#ifndef PLANAR_ENGINE_CATALOG_H_
#define PLANAR_ENGINE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "core/index_set.h"
#include "core/sharded.h"

namespace planar {

/// Thread-safe name -> index-set mapping with copy-on-swap updates.
/// A name holds either a monolithic PlanarIndexSet or a sharded
/// scatter-gather ShardedIndexSet (core/sharded.h), never both:
/// installing one flavor replaces any entry of the other flavor under
/// the same name, so request routing is unambiguous.
class Catalog {
 public:
  using SetPtr = std::shared_ptr<const PlanarIndexSet>;
  using ShardedPtr = std::shared_ptr<const ShardedIndexSet>;

  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Installs (or replaces) the entry `name`. The set is frozen behind a
  /// const pointer; in-flight readers of a previous version are
  /// unaffected. Returns the installed snapshot.
  SetPtr Install(const std::string& name, PlanarIndexSet set)
      PLANAR_EXCLUDES(mu_);

  /// Builds a set with `options` (its build_threads overridden by
  /// `build_threads`, default 0 = all hardware threads: an explicit
  /// install is a foreground provisioning step, not a query-path
  /// operation) and installs it under `name`. The build runs outside any
  /// catalog lock, so concurrent readers and installs are unaffected.
  Result<SetPtr> BuildAndInstall(const std::string& name, PhiMatrix phi,
                                 const std::vector<ParameterDomain>& domains,
                                 IndexSetOptions options = IndexSetOptions(),
                                 size_t build_threads = 0)
      PLANAR_EXCLUDES(mu_);

  /// Installs (or replaces) `name` with a sharded set; same snapshot
  /// semantics as Install. A monolithic entry of the same name is
  /// replaced (and vice versa).
  ShardedPtr InstallSharded(const std::string& name, ShardedIndexSet set)
      PLANAR_EXCLUDES(mu_);

  /// Builds a ShardedIndexSet with `options` and installs it under
  /// `name`. The build (slice copies plus per-shard index builds) runs
  /// outside any catalog lock.
  Result<ShardedPtr> BuildAndInstallSharded(
      const std::string& name, PhiMatrix phi,
      const std::vector<ParameterDomain>& domains,
      ShardedIndexSetOptions options = ShardedIndexSetOptions())
      PLANAR_EXCLUDES(mu_);

  /// Removes `name` (either flavor). Returns false when no such entry
  /// exists. Readers holding the snapshot keep it alive until they
  /// finish.
  bool Drop(const std::string& name) PLANAR_EXCLUDES(mu_);

  /// The current monolithic snapshot for `name`, or nullptr when absent
  /// or sharded. O(log r). Takes the lock in shared mode: concurrent
  /// Find/Names/size calls never serialize behind each other, only
  /// behind the short exclusive pointer swap of Install/Drop.
  SetPtr Find(const std::string& name) const PLANAR_EXCLUDES(mu_);

  /// The current sharded snapshot for `name`, or nullptr when absent or
  /// monolithic.
  ShardedPtr FindSharded(const std::string& name) const PLANAR_EXCLUDES(mu_);

  /// All entry names, sorted.
  std::vector<std::string> Names() const PLANAR_EXCLUDES(mu_);

  /// Number of entries.
  size_t size() const PLANAR_EXCLUDES(mu_);

  /// Monotone counter bumped by every Install and successful Drop; lets
  /// callers detect churn between two observations.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

 private:
  mutable Mutex mu_{kLockRankCatalog};
  std::map<std::string, SetPtr> sets_ PLANAR_GUARDED_BY(mu_);
  /// Disjoint from sets_ by construction (install of one flavor erases
  /// the other).
  std::map<std::string, ShardedPtr> sharded_ PLANAR_GUARDED_BY(mu_);
  std::atomic<uint64_t> version_{0};
};

}  // namespace planar

#endif  // PLANAR_ENGINE_CATALOG_H_
