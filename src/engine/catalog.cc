// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "engine/catalog.h"

#include "common/macros.h"

namespace planar {

Catalog::SetPtr Catalog::Install(const std::string& name,
                                 PlanarIndexSet set) {
  SetPtr snapshot = std::make_shared<const PlanarIndexSet>(std::move(set));
  {
    MutexLock lock(&mu_);
    sets_[name] = snapshot;
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  return snapshot;
}

Result<Catalog::SetPtr> Catalog::BuildAndInstall(
    const std::string& name, PhiMatrix phi,
    const std::vector<ParameterDomain>& domains, IndexSetOptions options,
    size_t build_threads) {
  options.build_threads = build_threads;
  PLANAR_ASSIGN_OR_RETURN(
      PlanarIndexSet set,
      PlanarIndexSet::Build(std::move(phi), domains, options));
  return Install(name, std::move(set));
}

bool Catalog::Drop(const std::string& name) {
  SetPtr doomed;  // destroyed outside the lock
  {
    MutexLock lock(&mu_);
    auto it = sets_.find(name);
    if (it == sets_.end()) return false;
    doomed = std::move(it->second);
    sets_.erase(it);
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

Catalog::SetPtr Catalog::Find(const std::string& name) const {
  ReaderMutexLock lock(&mu_);
  auto it = sets_.find(name);
  return it == sets_.end() ? nullptr : it->second;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  ReaderMutexLock lock(&mu_);
  names.reserve(sets_.size());
  for (const auto& [name, set] : sets_) names.push_back(name);
  return names;
}

size_t Catalog::size() const {
  ReaderMutexLock lock(&mu_);
  return sets_.size();
}

}  // namespace planar
