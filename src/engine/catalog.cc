// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "engine/catalog.h"

#include <algorithm>

#include "common/macros.h"

namespace planar {

Catalog::SetPtr Catalog::Install(const std::string& name,
                                 PlanarIndexSet set) {
  SetPtr snapshot = std::make_shared<const PlanarIndexSet>(std::move(set));
  ShardedPtr displaced;  // destroyed outside the lock
  {
    MutexLock lock(&mu_);
    sets_[name] = snapshot;
    auto it = sharded_.find(name);
    if (it != sharded_.end()) {
      displaced = std::move(it->second);
      sharded_.erase(it);
    }
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  return snapshot;
}

Catalog::ShardedPtr Catalog::InstallSharded(const std::string& name,
                                            ShardedIndexSet set) {
  ShardedPtr snapshot = std::make_shared<const ShardedIndexSet>(std::move(set));
  SetPtr displaced;  // destroyed outside the lock
  {
    MutexLock lock(&mu_);
    sharded_[name] = snapshot;
    auto it = sets_.find(name);
    if (it != sets_.end()) {
      displaced = std::move(it->second);
      sets_.erase(it);
    }
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  return snapshot;
}

Result<Catalog::ShardedPtr> Catalog::BuildAndInstallSharded(
    const std::string& name, PhiMatrix phi,
    const std::vector<ParameterDomain>& domains,
    ShardedIndexSetOptions options) {
  PLANAR_ASSIGN_OR_RETURN(
      ShardedIndexSet set,
      ShardedIndexSet::Build(std::move(phi), domains, options));
  return InstallSharded(name, std::move(set));
}

Result<Catalog::SetPtr> Catalog::BuildAndInstall(
    const std::string& name, PhiMatrix phi,
    const std::vector<ParameterDomain>& domains, IndexSetOptions options,
    size_t build_threads) {
  options.build_threads = build_threads;
  PLANAR_ASSIGN_OR_RETURN(
      PlanarIndexSet set,
      PlanarIndexSet::Build(std::move(phi), domains, options));
  return Install(name, std::move(set));
}

bool Catalog::Drop(const std::string& name) {
  SetPtr doomed;          // destroyed outside the lock
  ShardedPtr doomed_sharded;  // likewise
  {
    MutexLock lock(&mu_);
    auto it = sets_.find(name);
    if (it != sets_.end()) {
      doomed = std::move(it->second);
      sets_.erase(it);
    } else {
      auto sit = sharded_.find(name);
      if (sit == sharded_.end()) return false;
      doomed_sharded = std::move(sit->second);
      sharded_.erase(sit);
    }
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

Catalog::SetPtr Catalog::Find(const std::string& name) const {
  ReaderMutexLock lock(&mu_);
  auto it = sets_.find(name);
  return it == sets_.end() ? nullptr : it->second;
}

Catalog::ShardedPtr Catalog::FindSharded(const std::string& name) const {
  ReaderMutexLock lock(&mu_);
  auto it = sharded_.find(name);
  return it == sharded_.end() ? nullptr : it->second;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  ReaderMutexLock lock(&mu_);
  names.reserve(sets_.size() + sharded_.size());
  for (const auto& [name, set] : sets_) names.push_back(name);
  for (const auto& [name, set] : sharded_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

size_t Catalog::size() const {
  ReaderMutexLock lock(&mu_);
  return sets_.size() + sharded_.size();
}

}  // namespace planar
