// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// The engine-side seam of the ingest subsystem (src/ingest). The engine
// cannot depend on src/ingest (ingest depends on the engine's Catalog for
// MVCC installs), so writes and delta-aware reads route through this
// abstract backend: the engine holds a borrowed IngestBackend* and asks it
// first; a `false` return means "target not managed — serve from the
// catalog snapshot as before". Query methods must answer with exactly the
// ids a quiesced merge would produce (CONTRIBUTING: every new read path
// scan-verifies the delta).

#ifndef PLANAR_ENGINE_INGEST_HOOK_H_
#define PLANAR_ENGINE_INGEST_HOOK_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "core/batch.h"
#include "core/planar_index.h"
#include "core/query.h"

namespace planar {

class EngineMetrics;

/// Write-path backend the engine consults before its catalog read path.
/// Implemented by ingest::IngestManager; the interface lives here so
/// planar_engine stays free of a planar_ingest dependency.
class IngestBackend {
 public:
  virtual ~IngestBackend() = default;

  /// Point-in-time gauges for DebugSnapshot.
  struct Gauges {
    size_t targets = 0;     ///< catalog entries under ingest management
    size_t delta_rows = 0;  ///< unmerged rows across all deltas
    uint64_t merges = 0;    ///< background merges installed so far
  };

  /// True when `target` takes writes through this backend, meaning its
  /// reads must overlay the delta.
  virtual bool Manages(const std::string& target) const = 0;

  /// Appends `rows.size() / dim` rows (row-major) to `target`'s delta.
  /// Returns the first global row id assigned, kResourceExhausted when
  /// the delta is at capacity (admission control: shed, never block),
  /// kNotFound for an unmanaged target.
  virtual Result<uint32_t> Append(const std::string& target,
                                  const std::vector<double>& rows) = 0;

  /// Delta-overlay reads. Each returns false when `target` is not
  /// managed (caller falls back to the plain catalog path) and true with
  /// `*out` filled otherwise.
  virtual bool Inequality(const std::string& target,
                          const ScalarProductQuery& q,
                          const Deadline& deadline,
                          Result<InequalityResult>* out) const = 0;
  virtual bool TopK(const std::string& target, const ScalarProductQuery& q,
                    size_t k, const Deadline& deadline,
                    Result<TopKResult>* out) const = 0;
  virtual bool BatchInequality(
      const std::string& target, std::span<const ScalarProductQuery> queries,
      std::span<const Deadline> deadlines, BatchExecStats* exec_stats,
      std::vector<Result<InequalityResult>>* out) const = 0;
  /// COUNT with the delta overlaid: base bounds/refinement plus an exact
  /// scan-count of the unmerged rows, so tolerance-0 counts stay
  /// bit-equal to a quiesced merge.
  virtual bool Count(const std::string& target, const ScalarProductQuery& q,
                     const CountTolerance& tolerance, const Deadline& deadline,
                     Result<CountResult>* out) const = 0;
  /// SUM/AVG with the delta overlaid (exact payload accumulation over
  /// the unmerged rows, same canonical blocked summation as the base).
  virtual bool Aggregate(const std::string& target,
                         const ScalarProductQuery& q,
                         const CountTolerance& tolerance,
                         const Deadline& deadline,
                         Result<AggregateResult>* out) const = 0;

  /// Routes the backend's counters (appends, sheds, merges, merge
  /// latency) into the engine's metrics sink. Called by
  /// Engine::AttachIngest; `metrics` outlives the backend's last write.
  virtual void BindMetrics(EngineMetrics* metrics) = 0;

  virtual Gauges gauges() const = 0;
};

}  // namespace planar

#endif  // PLANAR_ENGINE_INGEST_HOOK_H_
