// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "engine/engine.h"

#include <string>
#include <utility>
#include <vector>

namespace planar {

Engine::Engine(Catalog* catalog, const EngineOptions& options)
    : catalog_(catalog),
      options_(options),
      queue_(options.queue_capacity) {
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Engine::~Engine() { Drain(); }

Result<std::future<EngineResponse>> Engine::Submit(EngineRequest request) {
  metrics_.OnSubmitted();
  if (draining_.load(std::memory_order_acquire)) {
    metrics_.OnRejectedDraining();
    return Status::Unavailable("engine is draining; not accepting requests");
  }
  Pending pending;
  pending.request = std::move(request);
  std::future<EngineResponse> future = pending.promise.get_future();
  if (!queue_.TryPush(std::move(pending))) {
    metrics_.OnRejectedQueueFull();
    return Status::ResourceExhausted(
        "engine queue is full (" + std::to_string(queue_.capacity()) +
        " requests); retry later or raise queue_capacity");
  }
  metrics_.OnAdmitted();
  return future;
}

size_t Engine::RunPending() {
  std::vector<Pending> batch;
  batch.reserve(options_.max_batch);
  if (queue_.TryPopBatch(&batch, options_.max_batch) == 0) return 0;
  RunBatch(batch);
  return batch.size();
}

void Engine::Drain() {
  if (drained_.exchange(true, std::memory_order_acq_rel)) return;
  draining_.store(true, std::memory_order_release);
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Whatever the workers did not claim (all of it, in 0-worker mode)
  // runs inline so every admitted request is answered and accounted.
  while (RunPending() > 0) {
  }
}

DebugSnapshot Engine::Snapshot() const {
  DebugSnapshot snapshot;
  snapshot.counters = metrics_.counters();
  snapshot.latency_millis = metrics_.latency_millis();
  snapshot.queue_wait_millis = metrics_.queue_wait_millis();
  snapshot.queue_depth = queue_.size();
  snapshot.in_flight = in_flight_.load(std::memory_order_relaxed);
  snapshot.workers = workers_.size();
  snapshot.catalog_entries = catalog_->size();
  snapshot.draining = draining_.load(std::memory_order_acquire);
  return snapshot;
}

EngineResponse Engine::Execute(const EngineRequest& request) const {
  EngineResponse response;
  const Catalog::SetPtr set = catalog_->Find(request.target);
  if (set == nullptr) {
    response.status =
        Status::NotFound("no catalog entry named '" + request.target + "'");
    return response;
  }
  // A request that spent its whole budget in the queue is answered
  // without starting the query at all.
  if (request.deadline.Expired()) {
    response.status = Status::DeadlineExceeded(
        "deadline expired before execution started");
    return response;
  }
  switch (request.kind) {
    case QueryKind::kInequality: {
      Result<InequalityResult> result =
          set->Inequality(request.query, request.deadline);
      if (result.ok()) {
        response.inequality = std::move(result).value();
      } else {
        response.status = result.status();
      }
      break;
    }
    case QueryKind::kTopK: {
      Result<TopKResult> result =
          set->TopK(request.query, request.k, request.deadline);
      if (result.ok()) {
        response.topk = std::move(result).value();
      } else {
        response.status = result.status();
      }
      break;
    }
  }
  return response;
}

void Engine::RunBatch(std::vector<Pending>& batch) {
  for (Pending& pending : batch) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    const double queue_millis = pending.queued.ElapsedMillis();
    WallTimer execute_timer;
    EngineResponse response = Execute(pending.request);
    response.queue_millis = queue_millis;
    response.execute_millis = execute_timer.ElapsedMillis();
    metrics_.OnCompleted(response.status, response.queue_millis,
                         response.execute_millis);
    pending.promise.set_value(std::move(response));
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Engine::WorkerLoop() {
  std::vector<Pending> batch;
  batch.reserve(options_.max_batch);
  while (queue_.PopBatch(&batch, options_.max_batch) > 0) {
    RunBatch(batch);
    batch.clear();
  }
}

}  // namespace planar
