// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "engine/engine.h"

#include <chrono>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/batch.h"

namespace planar {

Engine::Engine(Catalog* catalog, const EngineOptions& options)
    : catalog_(catalog),
      options_(options),
      queue_(options.queue_capacity) {
  if (options_.num_workers > 0) {
    ThreadPoolOptions pool_options;
    pool_options.threads = options_.num_workers;
    pool_options.pin_threads = options_.pin_workers;
    pool_ = std::make_unique<ThreadPool>(pool_options);
    // Each worker occupies one pool thread with its serving loop until
    // the queue closes at Drain().
    for (size_t i = 0; i < options_.num_workers; ++i) {
      pool_->Run([this] { WorkerLoop(); });
    }
  }
}

Engine::~Engine() { Drain(); }

Result<std::future<EngineResponse>> Engine::Submit(EngineRequest request) {
  metrics_.OnSubmitted();
  if (draining_.load(std::memory_order_acquire)) {
    metrics_.OnRejectedDraining();
    return Status::Unavailable("engine is draining; not accepting requests");
  }
  Pending pending;
  pending.request = std::move(request);
  std::future<EngineResponse> future = pending.promise.get_future();
  if (!queue_.TryPush(std::move(pending))) {
    metrics_.OnRejectedQueueFull();
    return Status::ResourceExhausted(
        "engine queue is full (" + std::to_string(queue_.capacity()) +
        " requests); retry later or raise queue_capacity");
  }
  metrics_.OnAdmitted();
  return future;
}

size_t Engine::RunPending() {
  std::vector<Pending> batch;
  batch.reserve(options_.max_batch);
  if (queue_.TryPopBatch(&batch, options_.max_batch) == 0) return 0;
  RunBatch(batch);
  return batch.size();
}

void Engine::Drain() {
  if (drained_.exchange(true, std::memory_order_acq_rel)) return;
  draining_.store(true, std::memory_order_release);
  queue_.Close();
  if (pool_ != nullptr) pool_->Shutdown();
  // Whatever the workers did not claim (all of it, in 0-worker mode)
  // runs inline so every admitted request is answered and accounted.
  while (RunPending() > 0) {
  }
}

void Engine::AttachIngest(IngestBackend* backend) {
  if (backend != nullptr) backend->BindMetrics(&metrics_);
  ingest_.store(backend, std::memory_order_release);
}

DebugSnapshot Engine::Snapshot() const {
  DebugSnapshot snapshot;
  snapshot.counters = metrics_.counters();
  snapshot.latency_millis = metrics_.latency_millis();
  snapshot.queue_wait_millis = metrics_.queue_wait_millis();
  snapshot.batch_occupancy = metrics_.batch_occupancy();
  snapshot.rows_shared_per_query = metrics_.rows_shared_per_query();
  snapshot.merge_latency_millis = metrics_.merge_latency_millis();
  if (IngestBackend* ingest = ingest_.load(std::memory_order_acquire)) {
    const IngestBackend::Gauges gauges = ingest->gauges();
    snapshot.ingest_targets = gauges.targets;
    snapshot.delta_rows = gauges.delta_rows;
  }
  snapshot.shard_fanout = metrics_.shard_fanout();
  snapshot.bound_gap = metrics_.bound_gap();
  snapshot.queue_depth = queue_.size();
  // relaxed-ok: best-effort gauge; a snapshot is allowed to be
  // momentarily behind while requests are moving (see header contract).
  snapshot.in_flight = in_flight_.load(std::memory_order_relaxed);
  snapshot.workers = pool_ == nullptr ? 0 : pool_->threads();
  snapshot.catalog_entries = catalog_->size();
  snapshot.draining = draining_.load(std::memory_order_acquire);
  return snapshot;
}

Result<Catalog::ShardedPtr> Engine::BuildAndInstallSharded(
    const std::string& name, PhiMatrix phi,
    const std::vector<ParameterDomain>& domains,
    ShardedIndexSetOptions options) {
  if (options.shards == 0) options.shards = options_.shards;
  return catalog_->BuildAndInstallSharded(name, std::move(phi), domains,
                                          options);
}

EngineResponse Engine::Execute(const EngineRequest& request) {
  EngineResponse response;
  IngestBackend* const ingest = ingest_.load(std::memory_order_acquire);
  // Writes never touch the catalog read path: they go to the ingest
  // backend or nowhere.
  if (request.kind == QueryKind::kAppend) {
    if (ingest == nullptr) {
      response.status = Status::FailedPrecondition(
          "kAppend requires an ingest backend (Engine::AttachIngest)");
      return response;
    }
    if (request.deadline.Expired()) {
      response.status = Status::DeadlineExceeded(
          "deadline expired before execution started");
      return response;
    }
    Result<uint32_t> first = ingest->Append(request.target, request.rows);
    if (first.ok()) {
      response.first_appended_id = first.value();
    } else {
      response.status = first.status();
    }
    return response;
  }
  // Reads against an ingest-managed target overlay the delta inside the
  // backend; everything else serves from the catalog snapshot as before.
  // A name resolves to a monolithic entry or a sharded one, never both
  // (Catalog exclusivity); sharded targets are never ingest-managed.
  // NotFound keeps precedence over an expired deadline, as on the
  // pre-ingest path.
  const Catalog::SetPtr set = catalog_->Find(request.target);
  Catalog::ShardedPtr sharded;
  if (set == nullptr) {
    sharded = catalog_->FindSharded(request.target);
    if (sharded == nullptr) {
      response.status =
          Status::NotFound("no catalog entry named '" + request.target + "'");
      return response;
    }
  }
  if (request.deadline.Expired()) {
    response.status = Status::DeadlineExceeded(
        "deadline expired before execution started");
    return response;
  }
  switch (request.kind) {
    case QueryKind::kInequality: {
      Result<InequalityResult> result = Status::Internal("unset");
      if (sharded != nullptr) {
        result = sharded->Inequality(request.query, request.deadline);
        metrics_.OnShardedExecuted(
            sharded->num_shards(),
            result.ok() ? result.value().stats.verified : 0);
      } else if (ingest == nullptr ||
                 !ingest->Inequality(request.target, request.query,
                                     request.deadline, &result)) {
        result = set->Inequality(request.query, request.deadline);
      }
      if (result.ok()) {
        response.inequality = std::move(result).value();
      } else {
        response.status = result.status();
      }
      break;
    }
    case QueryKind::kTopK: {
      Result<TopKResult> result = Status::Internal("unset");
      if (sharded != nullptr) {
        result = sharded->TopK(request.query, request.k, request.deadline);
        metrics_.OnShardedExecuted(
            sharded->num_shards(),
            result.ok() ? result.value().stats.verified_intermediate : 0);
      } else if (ingest == nullptr ||
                 !ingest->TopK(request.target, request.query, request.k,
                               request.deadline, &result)) {
        result = set->TopK(request.query, request.k, request.deadline);
      }
      if (result.ok()) {
        response.topk = std::move(result).value();
      } else {
        response.status = result.status();
      }
      break;
    }
    case QueryKind::kCount: {
      Result<CountResult> result = Status::Internal("unset");
      if (sharded != nullptr) {
        result = sharded->CountInequality(request.query, request.tolerance,
                                          request.deadline);
        metrics_.OnShardedExecuted(
            sharded->num_shards(),
            result.ok() ? result.value().stats.verified : 0);
      } else if (ingest == nullptr ||
                 !ingest->Count(request.target, request.query,
                                request.tolerance, request.deadline,
                                &result)) {
        result = set->CountInequality(request.query, request.tolerance,
                                      request.deadline);
      }
      if (result.ok()) {
        metrics_.OnCountExecuted(result.value().refined,
                                 result.value().gap());
        response.count = std::move(result).value();
      } else {
        response.status = result.status();
      }
      break;
    }
    case QueryKind::kAggregate: {
      Result<AggregateResult> result = Status::Internal("unset");
      if (sharded != nullptr) {
        result = sharded->AggregateInequality(request.query, request.tolerance,
                                              request.deadline);
        metrics_.OnShardedExecuted(
            sharded->num_shards(),
            result.ok() ? result.value().count.stats.verified : 0);
      } else if (ingest == nullptr ||
                 !ingest->Aggregate(request.target, request.query,
                                    request.tolerance, request.deadline,
                                    &result)) {
        result = set->AggregateInequality(request.query, request.tolerance,
                                          request.deadline);
      }
      if (result.ok()) {
        metrics_.OnCountExecuted(result.value().count.refined,
                                 result.value().count.gap());
        response.aggregate = std::move(result).value();
      } else {
        response.status = result.status();
      }
      break;
    }
    case QueryKind::kAppend:
      break;  // handled above
  }
  return response;
}

void Engine::RunBatch(std::vector<Pending>& batch) {
  // Opportunistic micro-batching: inequality requests that name the same
  // catalog entry and share a comparison direction are compatible with
  // one coalesced BatchInequality call. Groups of two or more take that
  // path; singletons and every other request kind run serially, exactly
  // as before.
  std::vector<char> grouped(batch.size(), 0);
  std::vector<size_t> members;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (grouped[i] || batch[i].request.kind != QueryKind::kInequality) {
      continue;
    }
    members.clear();
    members.push_back(i);
    for (size_t j = i + 1; j < batch.size(); ++j) {
      if (grouped[j] || batch[j].request.kind != QueryKind::kInequality) {
        continue;
      }
      if (batch[j].request.target == batch[i].request.target &&
          batch[j].request.query.cmp == batch[i].request.query.cmp) {
        members.push_back(j);
      }
    }
    if (members.size() < 2) continue;
    for (size_t m : members) grouped[m] = 1;
    RunGroup(batch, members);
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (grouped[i]) continue;
    Pending& pending = batch[i];
    // relaxed-ok: in_flight_ is a monitoring gauge only — nothing
    // synchronizes on it, and Drain() correctness rests on the queue
    // mutex plus thread joins, not this counter.
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    const double queue_millis = pending.queued.ElapsedMillis();
    WallTimer execute_timer;
    EngineResponse response = Execute(pending.request);
    response.queue_millis = queue_millis;
    response.execute_millis = execute_timer.ElapsedMillis();
    metrics_.OnCompleted(response.status, response.queue_millis,
                         response.execute_millis);
    pending.promise.set_value(std::move(response));
    // relaxed-ok: monitoring gauge (see the fetch_add above).
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Engine::RunGroup(std::vector<Pending>& batch,
                      const std::vector<size_t>& members) {
  // relaxed-ok: monitoring gauge, same contract as RunBatch above.
  in_flight_.fetch_add(members.size(), std::memory_order_relaxed);
  std::vector<double> queue_millis(members.size());
  for (size_t m = 0; m < members.size(); ++m) {
    queue_millis[m] = batch[members[m]].queued.ElapsedMillis();
  }
  const Catalog::SetPtr set = catalog_->Find(batch[members[0]].request.target);
  const Catalog::ShardedPtr sharded =
      set == nullptr
          ? catalog_->FindSharded(batch[members[0]].request.target)
          : nullptr;
  // Requests that cannot execute — unknown target, or a deadline already
  // spent in the queue — are answered up front with the same statuses the
  // serial path produces; the rest form the live group.
  std::vector<size_t> live;  // indices into `members`
  live.reserve(members.size());
  for (size_t m = 0; m < members.size(); ++m) {
    Pending& pending = batch[members[m]];
    EngineResponse response;
    if (set == nullptr && sharded == nullptr) {
      response.status = Status::NotFound("no catalog entry named '" +
                                         pending.request.target + "'");
    } else if (pending.request.deadline.Expired()) {
      response.status = Status::DeadlineExceeded(
          "deadline expired before execution started");
    } else {
      live.push_back(m);
      continue;
    }
    response.queue_millis = queue_millis[m];
    metrics_.OnCompleted(response.status, response.queue_millis, 0.0);
    pending.promise.set_value(std::move(response));
  }
  if (!live.empty()) {
    std::vector<ScalarProductQuery> queries;
    std::vector<Deadline> deadlines;
    queries.reserve(live.size());
    deadlines.reserve(live.size());
    for (size_t m : live) {
      queries.push_back(batch[members[m]].request.query);
      deadlines.push_back(batch[members[m]].request.deadline);
    }
    BatchExecStats exec_stats;
    WallTimer execute_timer;
    // The coalesced path also overlays the delta for ingest-managed
    // targets; the backend produces per-query results bit-identical to
    // the serial overlay path.
    std::vector<Result<InequalityResult>> results;
    IngestBackend* const ingest = ingest_.load(std::memory_order_acquire);
    if (sharded != nullptr) {
      // The whole group fans to every shard, so each shard's cross-query
      // coalescing still applies within its slice.
      results = sharded->BatchInequality(
          std::span<const ScalarProductQuery>(queries),
          std::span<const Deadline>(deadlines), &exec_stats);
      uint64_t verified = 0;
      for (const Result<InequalityResult>& result : results) {
        if (result.ok()) verified += result.value().stats.verified;
      }
      metrics_.OnShardedExecuted(sharded->num_shards(), verified);
    } else if (ingest == nullptr ||
               !ingest->BatchInequality(
                   batch[members[0]].request.target,
                   std::span<const ScalarProductQuery>(queries),
                   std::span<const Deadline>(deadlines), &exec_stats,
                   &results)) {
      results = set->BatchInequality(
          std::span<const ScalarProductQuery>(queries),
          std::span<const Deadline>(deadlines), &exec_stats);
    }
    const double execute_millis = execute_timer.ElapsedMillis();
    metrics_.OnBatchExecuted(live.size(), exec_stats.RowsSharedPerQuery());
    for (size_t li = 0; li < live.size(); ++li) {
      const size_t m = live[li];
      Pending& pending = batch[members[m]];
      EngineResponse response;
      if (results[li].ok()) {
        response.inequality = std::move(results[li]).value();
      } else {
        response.status = results[li].status();
      }
      response.queue_millis = queue_millis[m];
      response.execute_millis = execute_millis;
      metrics_.OnCompleted(response.status, response.queue_millis,
                           response.execute_millis);
      pending.promise.set_value(std::move(response));
    }
  }
  // relaxed-ok: monitoring gauge (see the fetch_add above).
  in_flight_.fetch_sub(members.size(), std::memory_order_relaxed);
}

void Engine::WorkerLoop() {
  const auto linger = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(options_.batch_linger_millis));
  std::vector<Pending> batch;
  batch.reserve(options_.max_batch);
  while (queue_.PopBatchLinger(&batch, options_.max_batch, linger) > 0) {
    RunBatch(batch);
    batch.clear();
  }
}

}  // namespace planar
