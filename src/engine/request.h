// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Request/response types for the query-serving engine. A request names a
// catalog entry, carries one scalar product query (inequality or top-k),
// and optionally a deadline; the response carries the matching result
// plus per-request timing that feeds the engine's histograms.

#ifndef PLANAR_ENGINE_REQUEST_H_
#define PLANAR_ENGINE_REQUEST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/planar_index.h"
#include "core/query.h"

namespace planar {

/// Which of the paper's two problems a request asks for — or, with
/// kAppend, the write path the paper's static model lacks.
enum class QueryKind {
  kInequality,  ///< Problem 1: all rows with <a, phi(x)> cmp b
  kTopK,        ///< Problem 2: k satisfying rows nearest the hyperplane
  kAppend,      ///< ingest: append `rows` to the target's delta buffer
  kCount,       ///< COUNT of Problem 1 matches within `tolerance`
  kAggregate,   ///< SUM/AVG of the payload column over Problem 1 matches
};

/// One unit of work submitted to an Engine.
struct EngineRequest {
  /// Name of the catalog entry to query.
  std::string target;
  QueryKind kind = QueryKind::kInequality;
  ScalarProductQuery query;
  /// Result size for kTopK; ignored for kInequality.
  size_t k = 10;
  /// For kAppend: row-major phi rows to append (size() must be a multiple
  /// of the target's dimensionality). Requires an IngestBackend attached
  /// via Engine::AttachIngest that manages the target; appends shed with
  /// kResourceExhausted when the delta is at capacity. Ignored for the
  /// query kinds.
  std::vector<double> rows;
  /// For kCount / kAggregate: how loose a bound pair the caller accepts
  /// before the engine refines by verifying II rows. The default (both
  /// zero) demands an exact, bit-reproducible answer. Ignored for the
  /// other kinds.
  CountTolerance tolerance;
  /// Per-request deadline. Default: infinite. An expired deadline is
  /// detected both before execution starts and cooperatively inside the
  /// II verification loops (see common/deadline.h).
  Deadline deadline;
};

/// The engine's answer. Exactly one of `inequality` / `topk` / `count` /
/// `aggregate` / `first_appended_id` is meaningful, per
/// `EngineRequest::kind`, and only when status.ok().
struct EngineResponse {
  Status status;
  InequalityResult inequality;
  TopKResult topk;
  /// For kCount: certified [lower, upper] bounds plus an estimate.
  CountResult count;
  /// For kAggregate: certified sum bounds plus the piggybacked count.
  AggregateResult aggregate;
  /// For kAppend: the global row id assigned to the first appended row
  /// (ids are consecutive from there and stable across merges).
  uint32_t first_appended_id = 0;
  /// Time spent queued before a worker picked the request up.
  double queue_millis = 0.0;
  /// Time spent executing the query.
  double execute_millis = 0.0;
};

}  // namespace planar

#endif  // PLANAR_ENGINE_REQUEST_H_
