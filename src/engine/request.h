// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Request/response types for the query-serving engine. A request names a
// catalog entry, carries one scalar product query (inequality or top-k),
// and optionally a deadline; the response carries the matching result
// plus per-request timing that feeds the engine's histograms.

#ifndef PLANAR_ENGINE_REQUEST_H_
#define PLANAR_ENGINE_REQUEST_H_

#include <cstddef>
#include <string>

#include "common/deadline.h"
#include "common/status.h"
#include "core/planar_index.h"
#include "core/query.h"

namespace planar {

/// Which of the paper's two problems a request asks for.
enum class QueryKind {
  kInequality,  ///< Problem 1: all rows with <a, phi(x)> cmp b
  kTopK,        ///< Problem 2: k satisfying rows nearest the hyperplane
};

/// One unit of work submitted to an Engine.
struct EngineRequest {
  /// Name of the catalog entry to query.
  std::string target;
  QueryKind kind = QueryKind::kInequality;
  ScalarProductQuery query;
  /// Result size for kTopK; ignored for kInequality.
  size_t k = 10;
  /// Per-request deadline. Default: infinite. An expired deadline is
  /// detected both before execution starts and cooperatively inside the
  /// II verification loops (see common/deadline.h).
  Deadline deadline;
};

/// The engine's answer. Exactly one of `inequality` / `topk` is
/// meaningful, per `EngineRequest::kind`, and only when status.ok().
struct EngineResponse {
  Status status;
  InequalityResult inequality;
  TopKResult topk;
  /// Time spent queued before a worker picked the request up.
  double queue_millis = 0.0;
  /// Time spent executing the query.
  double execute_millis = 0.0;
};

}  // namespace planar

#endif  // PLANAR_ENGINE_REQUEST_H_
