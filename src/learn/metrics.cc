// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "learn/metrics.h"

#include <cstdio>

#include "common/macros.h"

namespace planar {

void ConfusionMatrix::Add(int predicted, int truth) {
  PLANAR_CHECK(predicted == 1 || predicted == -1);
  PLANAR_CHECK(truth == 1 || truth == -1);
  if (truth == 1) {
    if (predicted == 1) {
      ++true_positives;
    } else {
      ++false_negatives;
    }
  } else {
    if (predicted == 1) {
      ++false_positives;
    } else {
      ++true_negatives;
    }
  }
}

double ConfusionMatrix::Accuracy() const {
  const size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(true_positives + true_negatives) /
         static_cast<double>(n);
}

double ConfusionMatrix::Precision() const {
  const size_t predicted_positive = true_positives + false_positives;
  if (predicted_positive == 0) return 0.0;
  return static_cast<double>(true_positives) /
         static_cast<double>(predicted_positive);
}

double ConfusionMatrix::Recall() const {
  const size_t actual_positive = true_positives + false_negatives;
  if (actual_positive == 0) return 0.0;
  return static_cast<double>(true_positives) /
         static_cast<double>(actual_positive);
}

double ConfusionMatrix::F1() const {
  const double p = Precision();
  const double r = Recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

std::string ConfusionMatrix::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "acc=%.3f p=%.3f r=%.3f f1=%.3f (n=%zu)",
                Accuracy(), Precision(), Recall(), F1(), total());
  return buf;
}

ConfusionMatrix EvaluateClassifier(const LinearClassifier& model,
                                   const RowMatrix& rows,
                                   const std::vector<int>& labels) {
  PLANAR_CHECK_EQ(rows.size(), labels.size());
  ConfusionMatrix confusion;
  for (size_t i = 0; i < rows.size(); ++i) {
    confusion.Add(model.Predict(rows.row(i)), labels[i]);
  }
  return confusion;
}

}  // namespace planar
