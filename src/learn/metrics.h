// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Binary-classification metrics for the active-learning application:
// confusion counts and the derived rates, so experiments can report more
// than raw accuracy.

#ifndef PLANAR_LEARN_METRICS_H_
#define PLANAR_LEARN_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/row_matrix.h"
#include "learn/linear_model.h"

namespace planar {

/// Confusion counts of a binary classifier (+1 = positive, -1 = negative).
struct ConfusionMatrix {
  size_t true_positives = 0;
  size_t true_negatives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;

  /// Adds one (prediction, truth) observation.
  void Add(int predicted, int truth);

  size_t total() const {
    return true_positives + true_negatives + false_positives +
           false_negatives;
  }
  /// Fraction of correct predictions (0 when empty).
  double Accuracy() const;
  /// TP / (TP + FP); 0 when no positive predictions.
  double Precision() const;
  /// TP / (TP + FN); 0 when no positive truths.
  double Recall() const;
  /// Harmonic mean of precision and recall (0 when either is 0).
  double F1() const;

  /// "acc=0.91 p=0.88 r=0.93 f1=0.90 (n=1000)".
  std::string ToString() const;
};

/// Evaluates `model` on labeled rows (labels are +1/-1).
ConfusionMatrix EvaluateClassifier(const LinearClassifier& model,
                                   const RowMatrix& rows,
                                   const std::vector<int>& labels);

}  // namespace planar

#endif  // PLANAR_LEARN_METRICS_H_
