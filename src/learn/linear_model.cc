// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "learn/linear_model.h"

#include "common/macros.h"
#include "geometry/vec.h"

namespace planar {

LinearClassifier::LinearClassifier(std::vector<double> weights, double offset)
    : weights_(std::move(weights)), offset_(offset) {
  PLANAR_CHECK(!weights_.empty());
}

int LinearClassifier::Predict(const double* x) const {
  return Margin(x) >= 0.0 ? +1 : -1;
}

double LinearClassifier::Margin(const double* x) const {
  return Dot(weights_.data(), x, weights_.size()) - offset_;
}

bool LinearClassifier::PerceptronStep(const double* x, int label, double lr) {
  PLANAR_CHECK(label == 1 || label == -1);
  if (Predict(x) == label) return false;
  Axpy(lr * label, x, weights_.data(), weights_.size());
  offset_ -= lr * label;
  return true;
}

double LinearClassifier::Accuracy(const RowMatrix& rows,
                                  const std::vector<int>& labels) const {
  PLANAR_CHECK_EQ(rows.size(), labels.size());
  PLANAR_CHECK_GT(rows.size(), 0u);
  size_t correct = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (Predict(rows.row(i)) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

ScalarProductQuery LinearClassifier::SideQuery(bool positive_side) const {
  ScalarProductQuery q;
  q.a = weights_;
  q.b = offset_;
  q.cmp = positive_side ? Comparison::kGreaterEqual : Comparison::kLessEqual;
  return q;
}

}  // namespace planar
