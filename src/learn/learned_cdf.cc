// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "learn/learned_cdf.h"

#include <algorithm>
#include <cmath>

namespace planar {

void LearnedCdf::Clear() {
  boundaries_.clear();
  boundaries_.shrink_to_fit();
  segments_.clear();
  segments_.shrink_to_fit();
  n_ = 0;
  max_error_ = 0;
}

void LearnedCdf::Build(const double* keys, size_t n, const Options& options) {
  Clear();
  n_ = n;
  if (n < options.min_keys || n < 2) {
    n_ = 0;
    return;
  }
  const size_t want = std::max<size_t>(1, options.max_segments);

  // Interpolation nodes at equal rank spacing, deduplicated on key so
  // every segment spans a strictly positive key range (duplicate-heavy
  // regions collapse into their neighbors; the error pass below charges
  // the model for whatever resolution that loses).
  struct Node {
    double x;
    double rank;
  };
  std::vector<Node> nodes;
  nodes.reserve(want + 1);
  for (size_t s = 0; s <= want; ++s) {
    const size_t r = std::min(n - 1, (s * (n - 1)) / want);
    const double x = keys[r];
    if (!std::isfinite(x)) {
      n_ = 0;
      return;
    }
    if (nodes.empty() || x > nodes.back().x) {
      nodes.push_back({x, static_cast<double>(r)});
    } else {
      // Same key, later rank: steepen the node so duplicates predict
      // their last occurrence (the upper-bound side).
      nodes.back().rank = static_cast<double>(r);
    }
  }
  if (nodes.size() < 2) {
    // All sampled keys equal: no slope to fit.
    n_ = 0;
    return;
  }
  boundaries_.reserve(nodes.size() - 1);
  segments_.reserve(nodes.size() - 1);
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    const double dx = nodes[i + 1].x - nodes[i].x;
    const double slope = (nodes[i + 1].rank - nodes[i].rank) / dx;
    if (!std::isfinite(slope) || !(slope > 0.0)) {
      Clear();
      return;
    }
    boundaries_.push_back(nodes[i].x);
    segments_.push_back({nodes[i].x, slope, nodes[i].rank});
  }

  // Exact max-error pass: the window guarantee quoted in the header is
  // only as good as this measurement, so it runs over every key, not a
  // sample.
  double worst = 0.0;
  for (size_t r = 0; r < n; ++r) {
    const double diff = std::fabs(PredictRank(keys[r]) - static_cast<double>(r));
    if (!(diff < 1e15)) {  // NaN or absurd: fit unusable
      Clear();
      return;
    }
    worst = std::max(worst, diff);
  }
  max_error_ = static_cast<size_t>(std::ceil(worst));
  if (options.max_error_budget != 0 && max_error_ > options.max_error_budget) {
    Clear();
  }
}

double LearnedCdf::PredictRank(double x) const {
  // Segment lookup over at most max_segments boundaries — a few cache
  // lines total, much hotter than the O(log n) descent it replaces.
  size_t idx = static_cast<size_t>(
      std::upper_bound(boundaries_.begin(), boundaries_.end(), x) -
      boundaries_.begin());
  if (idx > 0) --idx;
  const Segment& seg = segments_[idx];
  const double val = seg.rank0 + seg.slope * (x - seg.x0);
  const double hi = static_cast<double>(n_);
  return std::min(hi, std::max(0.0, val));
}

}  // namespace planar
