// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "learn/active_learner.h"

#include <utility>
#include <vector>

#include "common/macros.h"

namespace planar {

ActiveLearner::ActiveLearner(const PlanarIndexSet* pool_index, Oracle oracle,
                             LinearClassifier model, Options options)
    : pool_index_(pool_index),
      oracle_(std::move(oracle)),
      model_(std::move(model)),
      options_(options) {
  PLANAR_CHECK(pool_index_ != nullptr);
  PLANAR_CHECK(oracle_ != nullptr);
  PLANAR_CHECK_GT(options_.batch_size, 0u);
  PLANAR_CHECK_EQ(model_.weights().size(), pool_index_->phi().dim());
}

Result<ActiveLearningRound> ActiveLearner::Step() {
  ActiveLearningRound round;
  // Over-fetch so that already-labeled points near the hyperplane do not
  // starve the batch.
  const size_t fetch = options_.batch_size + labeled_.size();
  std::vector<uint32_t> batch;

  for (bool positive_side : {false, true}) {
    const ScalarProductQuery q = model_.SideQuery(positive_side);
    Result<TopKResult> result = pool_index_->TopK(q, fetch);
    PLANAR_RETURN_IF_ERROR(result.status());
    round.points_checked += result->stats.checked() > 0
                                ? result->stats.checked()
                                : result->stats.num_points;
    size_t taken = 0;
    for (const Neighbor& n : result->neighbors) {
      if (taken >= options_.batch_size) break;
      if (labeled_.count(n.id) > 0) continue;
      batch.push_back(n.id);
      labeled_.insert(n.id);
      ++taken;
    }
  }

  const PhiMatrix& pool = pool_index_->phi();
  for (uint32_t row : batch) {
    const int label = oracle_(row);
    if (model_.PerceptronStep(pool.row(row), label,
                              options_.learning_rate)) {
      ++round.model_updates;
    }
  }
  round.newly_labeled = batch.size();
  return round;
}

}  // namespace planar
