// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// A linear classifier over phi-space, used by the pool-based active
// learning application (Section 7.5.2): the classifier hyperplane
// <w, phi(x)> = b separates positive from negative points, and the most
// informative points to label next are the ones nearest the hyperplane.

#ifndef PLANAR_LEARN_LINEAR_MODEL_H_
#define PLANAR_LEARN_LINEAR_MODEL_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "core/row_matrix.h"

namespace planar {

/// A linear classifier sign(<w, x> - b).
class LinearClassifier {
 public:
  /// Initializes with the given weights and offset.
  LinearClassifier(std::vector<double> weights, double offset);

  /// +1 / -1 prediction for a feature row.
  int Predict(const double* x) const;

  /// Signed margin <w, x> - b.
  double Margin(const double* x) const;

  /// One perceptron step with learning rate `lr`: if `label` (+1/-1)
  /// disagrees with the prediction, w += lr * label * x and
  /// b -= lr * label. Returns true when an update was applied.
  bool PerceptronStep(const double* x, int label, double lr = 1.0);

  /// Fraction of rows whose prediction matches `labels` (+1/-1).
  double Accuracy(const RowMatrix& rows, const std::vector<int>& labels) const;

  /// The query asking for points on the negative side
  /// (<w, phi(x)> <= b), or the positive side (>= b).
  ScalarProductQuery SideQuery(bool positive_side) const;

  const std::vector<double>& weights() const { return weights_; }
  double offset() const { return offset_; }

 private:
  std::vector<double> weights_;
  double offset_;
};

}  // namespace planar

#endif  // PLANAR_LEARN_LINEAR_MODEL_H_
