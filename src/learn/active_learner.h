// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Pool-based active learning with uncertainty sampling (Settles [26];
// the paper's Section 7.5.2 application): each round, the learner asks
// for the top-k unlabeled points nearest to the current classifier
// hyperplane — the paper's top-k nearest neighbor query (Problem 2) —
// labels them with the oracle, and updates the classifier.

#ifndef PLANAR_LEARN_ACTIVE_LEARNER_H_
#define PLANAR_LEARN_ACTIVE_LEARNER_H_

#include <cstdint>
#include <functional>
#include <unordered_set>

#include "common/result.h"
#include "core/index_set.h"
#include "learn/linear_model.h"

namespace planar {

/// Outcome of one uncertainty-sampling round.
struct ActiveLearningRound {
  size_t newly_labeled = 0;
  size_t model_updates = 0;       ///< perceptron corrections applied
  size_t points_checked = 0;      ///< scalar products evaluated by the queries
};

/// Drives uncertainty sampling over an indexed pool.
class ActiveLearner {
 public:
  /// Returns the ground-truth label (+1 / -1) of a pool row.
  using Oracle = std::function<int(uint32_t row)>;

  struct Options {
    /// Points labeled per round and side (the k of the top-k query).
    size_t batch_size = 10;
    double learning_rate = 0.1;
  };

  /// `pool_index` must outlive the learner. Queries whose sign pattern no
  /// index covers transparently fall back to a scan — results stay exact.
  ActiveLearner(const PlanarIndexSet* pool_index, Oracle oracle,
                LinearClassifier model, Options options);

  /// Runs one round: the nearest unlabeled points on both sides of the
  /// hyperplane are labeled and used for perceptron updates. Fails only
  /// when the classifier degenerates to a zero weight vector.
  Result<ActiveLearningRound> Step();

  /// The classifier in its current state.
  const LinearClassifier& model() const { return model_; }

  /// Rows labeled so far.
  size_t total_labeled() const { return labeled_.size(); }

  /// True iff the row was labeled in a previous round.
  bool IsLabeled(uint32_t row) const { return labeled_.count(row) > 0; }

 private:
  const PlanarIndexSet* pool_index_;
  Oracle oracle_;
  LinearClassifier model_;
  Options options_;
  std::unordered_set<uint32_t> labeled_;
};

}  // namespace planar

#endif  // PLANAR_LEARN_ACTIVE_LEARNER_H_
