// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// LearnedCdf: a piecewise-linear fit of the key -> rank CDF of a sorted
// key array (PolyFit-style, see PAPERS.md), used by the planar index two
// ways (DESIGN.md section 5k):
//
//   1. Predict-then-probe boundary search: predict the upper-bound rank
//      of a probe key, then run std::upper_bound on a window of
//      +/- (max_error() + 1) ranks around the prediction. The window
//      bound is sound by monotonicity: the model is continuous and
//      weakly increasing, so for a probe x with true upper-bound rank u,
//      PredictRank(keys[u-1]) <= PredictRank(x) <= PredictRank(keys[u])
//      and both ends are within max_error() of their true rank — hence
//      u lies in [PredictRank(x) - max_error() - 1,
//                 PredictRank(x) + max_error() + 1]. Callers still
//      validate the probed rank against the flat key array and fall back
//      to the Eytzinger descent when validation fails, so answers are
//      identical to std::upper_bound regardless of fit quality.
//
//   2. Model-based approximate counts: PredictRank, clamped to the sound
//      [SI, LI] bounds, is the count estimate reported before any
//      intermediate-interval scan.
//
// The model is a sidecar in the same sense as the Eytzinger layout:
// rebuilt from the sorted keys at every RefreshSearchLayout, never
// serialized (blobs stay byte-identical), and carrying no authority —
// every answer it influences is validated or bounded by exact
// structures.

#ifndef PLANAR_LEARN_LEARNED_CDF_H_
#define PLANAR_LEARN_LEARNED_CDF_H_

#include <cstddef>
#include <vector>

namespace planar {

/// Piecewise-linear monotone model of rank as a function of key.
class LearnedCdf {
 public:
  struct Options {
    /// Upper bound on linear segments (interpolation nodes - 1). More
    /// segments fit skewed key distributions tighter at ~24 bytes each.
    size_t max_segments = 256;
    /// Key arrays smaller than this build no model (binary search is
    /// already cache-resident there).
    size_t min_keys = 4096;
    /// When non-zero, a fit whose exact max_error exceeds this budget is
    /// discarded (Build leaves the model empty) — the fallback contract:
    /// a model too loose to probe a small window is not worth carrying.
    size_t max_error_budget = 0;
  };

  /// Fits `keys` (ascending, n entries). The fit interpolates
  /// equal-rank-spaced nodes and then measures its exact max error with
  /// one evaluation pass over all keys; degenerate inputs (too few keys,
  /// all-equal keys, non-finite slopes, over-budget error) leave the
  /// model empty.
  void Build(const double* keys, size_t n, const Options& options);
  void Build(const double* keys, size_t n) { Build(keys, n, Options()); }

  void Clear();

  /// True when no usable model is loaded (callers use exact search).
  bool empty() const { return segments_.empty(); }

  /// Number of keys the model was fit over.
  size_t size() const { return n_; }

  /// Predicted upper-bound rank of probe `x`, clamped to [0, size()].
  /// Weakly increasing in x; +/-infinity map to size()/0. Meaningless on
  /// an empty model.
  double PredictRank(double x) const;

  /// Exact max over all fitted keys of |PredictRank(key) - rank|,
  /// rounded up. The probe window half-width is max_error() + 1.
  size_t max_error() const { return max_error_; }

  size_t segments() const { return segments_.size(); }

  size_t MemoryUsage() const {
    return boundaries_.capacity() * sizeof(double) +
           segments_.capacity() * sizeof(Segment);
  }

 private:
  struct Segment {
    double x0 = 0.0;     // segment start key
    double slope = 0.0;  // d rank / d key, > 0
    double rank0 = 0.0;  // rank at x0
  };

  std::vector<double> boundaries_;  // segment start keys, ascending
  std::vector<Segment> segments_;
  size_t n_ = 0;
  size_t max_error_ = 0;
};

}  // namespace planar

#endif  // PLANAR_LEARN_LEARNED_CDF_H_
