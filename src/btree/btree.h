// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// An in-memory order-statistic B+-tree keyed by (double key, uint32 value)
// composites. This is the dynamic backend of the Planar index (Section 4.4
// of the paper): it stores index keys <c, phi(x)> together with row ids and
// supports
//
//   * Insert / Erase            in O(log n)
//   * CountLess / CountLessEqual (rank of a key)     in O(log n)
//   * Select (entry at rank)    in O(log n)
//   * in-order scans via linked leaves
//   * O(n) bulk build from sorted entries
//
// Rank queries are what turn the tree into an index backend: the smaller /
// intermediate / larger intervals of a Planar index are rank ranges.
//
// Entries are ordered lexicographically by (key, value); (key, value)
// pairs are expected to be unique (values are row ids in the index).

#ifndef PLANAR_BTREE_BTREE_H_
#define PLANAR_BTREE_BTREE_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace planar {

/// An order-statistic B+-tree of (double, uint32) entries.
class OrderStatisticBTree {
 public:
  /// One stored entry.
  struct Entry {
    double key;
    uint32_t value;

    friend auto operator<=>(const Entry&, const Entry&) = default;
  };

  OrderStatisticBTree();
  ~OrderStatisticBTree();

  OrderStatisticBTree(const OrderStatisticBTree&) = delete;
  OrderStatisticBTree& operator=(const OrderStatisticBTree&) = delete;
  OrderStatisticBTree(OrderStatisticBTree&& other) noexcept;
  OrderStatisticBTree& operator=(OrderStatisticBTree&& other) noexcept;

  /// Inserts an entry. Duplicate (key, value) pairs are stored verbatim
  /// (multiset semantics) but Erase removes only one occurrence.
  void Insert(double key, uint32_t value);

  /// Removes one entry equal to (key, value). Returns false when absent.
  bool Erase(double key, uint32_t value);

  /// Number of entries with key strictly less than `key`.
  size_t CountLess(double key) const;

  /// Number of entries with key less than or equal to `key`.
  size_t CountLessEqual(double key) const;

  /// The entry with the given 0-based rank (in (key, value) order).
  /// Requires rank < size().
  Entry Select(size_t rank) const;

  /// A bidirectional cursor over entries in (key, value) order. Invalidated
  /// by any mutation of the tree.
  class Iterator {
   public:
    /// True iff the iterator points at an entry.
    bool Valid() const { return leaf_ != nullptr; }
    /// The current entry; requires Valid().
    Entry entry() const;
    /// Advances to the next entry (invalid past the last one).
    void Next();
    /// Steps to the previous entry (invalid before the first one).
    void Prev();

   private:
    friend class OrderStatisticBTree;
    const void* leaf_ = nullptr;  // LeafNode*
    int pos_ = 0;
  };

  /// An iterator positioned at the entry with the given rank; invalid when
  /// rank == size(). Requires rank <= size().
  Iterator IteratorAt(size_t rank) const;

  /// Discards all entries and rebuilds the tree from `entries`, which must
  /// be sorted by (key, value). O(n).
  void BuildFromSorted(const std::vector<Entry>& entries);

  /// Appends all entries in order to `out` (testing / export).
  void ExportSorted(std::vector<Entry>* out) const;

  /// Number of entries.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Removes all entries.
  void Clear();

  /// Approximate heap footprint in bytes (nodes only).
  size_t MemoryUsage() const;

  /// Exhaustively checks structural invariants (separator ordering, node
  /// fill bounds, subtree sizes, leaf links, uniform depth). For tests;
  /// O(n). Returns false on the first violated invariant.
  bool Validate() const;

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  // Tuning: entries per leaf / children per internal node in
  // [kMinFill, kMaxFill] (root exempt).
  static constexpr int kMaxFill = 32;
  static constexpr int kMinFill = kMaxFill / 2;

  LeafNode* FindLeaf(const Entry& e, std::vector<InternalNode*>* path,
                     std::vector<int>* slots) const;
  void InsertIntoParent(std::vector<InternalNode*>& path,
                        std::vector<int>& slots, Node* left, Entry sep,
                        Node* right);
  void RebalanceAfterErase(std::vector<InternalNode*>& path,
                           std::vector<int>& slots, Node* node);
  static void DeleteSubtree(Node* node);
  static size_t SubtreeSize(const Node* node);
  static size_t SubtreeMemory(const Node* node);
  bool ValidateNode(const Node* node, const Entry* lo, const Entry* hi,
                    int depth, int leaf_depth) const;
  int LeafDepth() const;

  Node* root_;
  size_t size_ = 0;
};

}  // namespace planar

#endif  // PLANAR_BTREE_BTREE_H_
