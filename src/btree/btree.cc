// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "btree/btree.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace planar {

// Node layout. A leaf holds up to kMaxFill entries; an internal node holds
// up to kMaxFill children, with count-1 separators where seps[i] is the
// minimum entry of the subtree under children[i+1]. Entries in children[j]
// lie in the half-open composite range [seps[j-1], seps[j]). Arrays carry
// one slot of slack so inserts can overflow a node before it is split.
struct OrderStatisticBTree::Node {
  bool is_leaf;
  int count;  // Leaf: number of entries. Internal: number of children.
};

struct OrderStatisticBTree::LeafNode : Node {
  Entry entries[kMaxFill + 1];
  LeafNode* prev;
  LeafNode* next;
};

struct OrderStatisticBTree::InternalNode : Node {
  Entry seps[kMaxFill + 1];
  Node* children[kMaxFill + 2];
  uint64_t sizes[kMaxFill + 2];
};

namespace {

using Entry = OrderStatisticBTree::Entry;

// Index of the child an entry routes to: the first i with seps[i] > e.
int ChildIndex(const Entry* seps, int num_seps, const Entry& e) {
  return static_cast<int>(std::upper_bound(seps, seps + num_seps, e) - seps);
}

}  // namespace

OrderStatisticBTree::OrderStatisticBTree() {
  LeafNode* leaf = new LeafNode();
  leaf->is_leaf = true;
  leaf->count = 0;
  leaf->prev = nullptr;
  leaf->next = nullptr;
  root_ = leaf;
}

OrderStatisticBTree::~OrderStatisticBTree() { DeleteSubtree(root_); }

OrderStatisticBTree::OrderStatisticBTree(OrderStatisticBTree&& other) noexcept
    : root_(other.root_), size_(other.size_) {
  LeafNode* leaf = new LeafNode();
  leaf->is_leaf = true;
  leaf->count = 0;
  leaf->prev = nullptr;
  leaf->next = nullptr;
  other.root_ = leaf;
  other.size_ = 0;
}

OrderStatisticBTree& OrderStatisticBTree::operator=(
    OrderStatisticBTree&& other) noexcept {
  if (this != &other) {
    std::swap(root_, other.root_);
    std::swap(size_, other.size_);
  }
  return *this;
}

void OrderStatisticBTree::DeleteSubtree(Node* node) {
  if (!node->is_leaf) {
    InternalNode* internal = static_cast<InternalNode*>(node);
    for (int i = 0; i < internal->count; ++i) {
      DeleteSubtree(internal->children[i]);
    }
    delete internal;
  } else {
    delete static_cast<LeafNode*>(node);
  }
}

size_t OrderStatisticBTree::SubtreeSize(const Node* node) {
  if (node->is_leaf) return static_cast<size_t>(node->count);
  const InternalNode* internal = static_cast<const InternalNode*>(node);
  size_t total = 0;
  for (int i = 0; i < internal->count; ++i) total += internal->sizes[i];
  return total;
}

OrderStatisticBTree::LeafNode* OrderStatisticBTree::FindLeaf(
    const Entry& e, std::vector<InternalNode*>* path,
    std::vector<int>* slots) const {
  Node* node = root_;
  while (!node->is_leaf) {
    InternalNode* internal = static_cast<InternalNode*>(node);
    const int slot = ChildIndex(internal->seps, internal->count - 1, e);
    if (path != nullptr) {
      path->push_back(internal);
      slots->push_back(slot);
    }
    node = internal->children[slot];
  }
  return static_cast<LeafNode*>(node);
}

void OrderStatisticBTree::Insert(double key, uint32_t value) {
  const Entry e{key, value};
  std::vector<InternalNode*> path;
  std::vector<int> slots;
  LeafNode* leaf = FindLeaf(e, &path, &slots);
  // Optimistically account for the new entry along the descent path; if a
  // node later splits, the affected two slots are recomputed from scratch.
  for (size_t i = 0; i < path.size(); ++i) ++path[i]->sizes[slots[i]];

  const int pos = static_cast<int>(
      std::lower_bound(leaf->entries, leaf->entries + leaf->count, e) -
      leaf->entries);
  for (int i = leaf->count; i > pos; --i) {
    leaf->entries[i] = leaf->entries[i - 1];
  }
  leaf->entries[pos] = e;
  ++leaf->count;
  ++size_;

  if (leaf->count <= kMaxFill) return;

  // Split the overflowing leaf.
  const int total = leaf->count;
  const int left_n = (total + 1) / 2;
  const int right_n = total - left_n;
  LeafNode* right = new LeafNode();
  right->is_leaf = true;
  right->count = right_n;
  for (int i = 0; i < right_n; ++i) {
    right->entries[i] = leaf->entries[left_n + i];
  }
  leaf->count = left_n;
  right->next = leaf->next;
  right->prev = leaf;
  if (leaf->next != nullptr) leaf->next->prev = right;
  leaf->next = right;

  InsertIntoParent(path, slots, leaf, right->entries[0], right);
}

void OrderStatisticBTree::InsertIntoParent(std::vector<InternalNode*>& path,
                                           std::vector<int>& slots, Node* left,
                                           Entry sep, Node* right) {
  while (true) {
    if (path.empty()) {
      InternalNode* new_root = new InternalNode();
      new_root->is_leaf = false;
      new_root->count = 2;
      new_root->children[0] = left;
      new_root->children[1] = right;
      new_root->seps[0] = sep;
      new_root->sizes[0] = SubtreeSize(left);
      new_root->sizes[1] = SubtreeSize(right);
      root_ = new_root;
      return;
    }
    InternalNode* parent = path.back();
    path.pop_back();
    const int slot = slots.back();
    slots.pop_back();

    // Insert `sep` at seps[slot] and `right` at children[slot+1].
    for (int i = parent->count - 1; i > slot; --i) {
      parent->seps[i] = parent->seps[i - 1];
    }
    for (int i = parent->count; i > slot + 1; --i) {
      parent->children[i] = parent->children[i - 1];
      parent->sizes[i] = parent->sizes[i - 1];
    }
    parent->seps[slot] = sep;
    parent->children[slot + 1] = right;
    parent->sizes[slot] = SubtreeSize(left);
    parent->sizes[slot + 1] = SubtreeSize(right);
    ++parent->count;

    if (parent->count <= kMaxFill) return;

    // Split the overflowing internal node and keep propagating.
    const int total = parent->count;  // kMaxFill + 1 children
    const int left_n = (total + 1) / 2;
    const int right_n = total - left_n;
    InternalNode* rnode = new InternalNode();
    rnode->is_leaf = false;
    rnode->count = right_n;
    for (int j = 0; j < right_n; ++j) {
      rnode->children[j] = parent->children[left_n + j];
      rnode->sizes[j] = parent->sizes[left_n + j];
    }
    for (int j = 0; j + 1 < right_n; ++j) {
      rnode->seps[j] = parent->seps[left_n + j];
    }
    const Entry promoted = parent->seps[left_n - 1];
    parent->count = left_n;

    left = parent;
    sep = promoted;
    right = rnode;
  }
}

bool OrderStatisticBTree::Erase(double key, uint32_t value) {
  const Entry e{key, value};
  std::vector<InternalNode*> path;
  std::vector<int> slots;
  LeafNode* leaf = FindLeaf(e, &path, &slots);
  const int pos = static_cast<int>(
      std::lower_bound(leaf->entries, leaf->entries + leaf->count, e) -
      leaf->entries);
  if (pos == leaf->count || !(leaf->entries[pos] == e)) return false;

  for (size_t i = 0; i < path.size(); ++i) --path[i]->sizes[slots[i]];
  for (int i = pos; i + 1 < leaf->count; ++i) {
    leaf->entries[i] = leaf->entries[i + 1];
  }
  --leaf->count;
  --size_;

  RebalanceAfterErase(path, slots, leaf);
  return true;
}

void OrderStatisticBTree::RebalanceAfterErase(std::vector<InternalNode*>& path,
                                              std::vector<int>& slots,
                                              Node* node) {
  while (node != root_ && node->count < kMinFill) {
    InternalNode* parent = path.back();
    const int slot = slots.back();
    PLANAR_DCHECK(parent->children[slot] == node);

    Node* left_sib = slot > 0 ? parent->children[slot - 1] : nullptr;
    Node* right_sib =
        slot + 1 < parent->count ? parent->children[slot + 1] : nullptr;

    if (left_sib != nullptr && left_sib->count > kMinFill) {
      // Borrow the last entry/child of the left sibling.
      if (node->is_leaf) {
        LeafNode* dst = static_cast<LeafNode*>(node);
        LeafNode* src = static_cast<LeafNode*>(left_sib);
        for (int i = dst->count; i > 0; --i) {
          dst->entries[i] = dst->entries[i - 1];
        }
        dst->entries[0] = src->entries[src->count - 1];
        ++dst->count;
        --src->count;
        parent->seps[slot - 1] = dst->entries[0];
        --parent->sizes[slot - 1];
        ++parent->sizes[slot];
      } else {
        InternalNode* dst = static_cast<InternalNode*>(node);
        InternalNode* src = static_cast<InternalNode*>(left_sib);
        for (int i = dst->count; i > 0; --i) {
          dst->children[i] = dst->children[i - 1];
          dst->sizes[i] = dst->sizes[i - 1];
        }
        for (int i = dst->count - 1; i > 0; --i) {
          dst->seps[i] = dst->seps[i - 1];
        }
        dst->children[0] = src->children[src->count - 1];
        dst->sizes[0] = src->sizes[src->count - 1];
        dst->seps[0] = parent->seps[slot - 1];
        parent->seps[slot - 1] = src->seps[src->count - 2];
        ++dst->count;
        --src->count;
        parent->sizes[slot - 1] -= dst->sizes[0];
        parent->sizes[slot] += dst->sizes[0];
      }
      return;
    }

    if (right_sib != nullptr && right_sib->count > kMinFill) {
      // Borrow the first entry/child of the right sibling.
      if (node->is_leaf) {
        LeafNode* dst = static_cast<LeafNode*>(node);
        LeafNode* src = static_cast<LeafNode*>(right_sib);
        dst->entries[dst->count] = src->entries[0];
        ++dst->count;
        for (int i = 0; i + 1 < src->count; ++i) {
          src->entries[i] = src->entries[i + 1];
        }
        --src->count;
        parent->seps[slot] = src->entries[0];
        ++parent->sizes[slot];
        --parent->sizes[slot + 1];
      } else {
        InternalNode* dst = static_cast<InternalNode*>(node);
        InternalNode* src = static_cast<InternalNode*>(right_sib);
        const uint64_t moved = src->sizes[0];
        dst->seps[dst->count - 1] = parent->seps[slot];
        dst->children[dst->count] = src->children[0];
        dst->sizes[dst->count] = moved;
        ++dst->count;
        parent->seps[slot] = src->seps[0];
        for (int i = 0; i + 1 < src->count; ++i) {
          src->children[i] = src->children[i + 1];
          src->sizes[i] = src->sizes[i + 1];
        }
        for (int i = 0; i + 2 < src->count; ++i) {
          src->seps[i] = src->seps[i + 1];
        }
        --src->count;
        parent->sizes[slot] += moved;
        parent->sizes[slot + 1] -= moved;
      }
      return;
    }

    // Both siblings (when present) are at minimum fill: merge with one.
    const int left_slot = left_sib != nullptr ? slot - 1 : slot;
    Node* merge_left = parent->children[left_slot];
    Node* merge_right = parent->children[left_slot + 1];
    PLANAR_DCHECK(merge_left->count + merge_right->count <= kMaxFill);
    if (merge_left->is_leaf) {
      LeafNode* lhs = static_cast<LeafNode*>(merge_left);
      LeafNode* rhs = static_cast<LeafNode*>(merge_right);
      for (int i = 0; i < rhs->count; ++i) {
        lhs->entries[lhs->count + i] = rhs->entries[i];
      }
      lhs->count += rhs->count;
      lhs->next = rhs->next;
      if (rhs->next != nullptr) rhs->next->prev = lhs;
      delete rhs;
    } else {
      InternalNode* lhs = static_cast<InternalNode*>(merge_left);
      InternalNode* rhs = static_cast<InternalNode*>(merge_right);
      lhs->seps[lhs->count - 1] = parent->seps[left_slot];
      for (int i = 0; i < rhs->count; ++i) {
        lhs->children[lhs->count + i] = rhs->children[i];
        lhs->sizes[lhs->count + i] = rhs->sizes[i];
      }
      for (int i = 0; i + 1 < rhs->count; ++i) {
        lhs->seps[lhs->count + i] = rhs->seps[i];
      }
      lhs->count += rhs->count;
      delete rhs;
    }
    // Remove children[left_slot + 1] and seps[left_slot] from the parent.
    parent->sizes[left_slot] += parent->sizes[left_slot + 1];
    for (int i = left_slot + 1; i + 1 < parent->count; ++i) {
      parent->children[i] = parent->children[i + 1];
      parent->sizes[i] = parent->sizes[i + 1];
    }
    for (int i = left_slot; i + 2 < parent->count; ++i) {
      parent->seps[i] = parent->seps[i + 1];
    }
    --parent->count;

    path.pop_back();
    slots.pop_back();
    node = parent;
  }

  if (!root_->is_leaf && root_->count == 1) {
    InternalNode* old_root = static_cast<InternalNode*>(root_);
    root_ = old_root->children[0];
    delete old_root;
  }
}

size_t OrderStatisticBTree::CountLess(double key) const {
  // Rank of the smallest possible composite with this key.
  const Entry e{key, 0};
  const Node* node = root_;
  size_t rank = 0;
  while (!node->is_leaf) {
    const InternalNode* internal = static_cast<const InternalNode*>(node);
    const int slot = ChildIndex(internal->seps, internal->count - 1, e);
    for (int i = 0; i < slot; ++i) rank += internal->sizes[i];
    node = internal->children[slot];
  }
  const LeafNode* leaf = static_cast<const LeafNode*>(node);
  rank += static_cast<size_t>(
      std::lower_bound(leaf->entries, leaf->entries + leaf->count, e) -
      leaf->entries);
  return rank;
}

size_t OrderStatisticBTree::CountLessEqual(double key) const {
  // Rank past the largest possible composite with this key.
  const Entry e{key, UINT32_MAX};
  const Node* node = root_;
  size_t rank = 0;
  while (!node->is_leaf) {
    const InternalNode* internal = static_cast<const InternalNode*>(node);
    const int slot = ChildIndex(internal->seps, internal->count - 1, e);
    for (int i = 0; i < slot; ++i) rank += internal->sizes[i];
    node = internal->children[slot];
  }
  const LeafNode* leaf = static_cast<const LeafNode*>(node);
  rank += static_cast<size_t>(
      std::upper_bound(leaf->entries, leaf->entries + leaf->count, e) -
      leaf->entries);
  return rank;
}

OrderStatisticBTree::Entry OrderStatisticBTree::Select(size_t rank) const {
  PLANAR_CHECK_LT(rank, size_);
  const Node* node = root_;
  while (!node->is_leaf) {
    const InternalNode* internal = static_cast<const InternalNode*>(node);
    int i = 0;
    while (rank >= internal->sizes[i]) {
      rank -= internal->sizes[i];
      ++i;
      PLANAR_DCHECK(i < internal->count);
    }
    node = internal->children[i];
  }
  const LeafNode* leaf = static_cast<const LeafNode*>(node);
  PLANAR_DCHECK(rank < static_cast<size_t>(leaf->count));
  return leaf->entries[rank];
}

OrderStatisticBTree::Entry OrderStatisticBTree::Iterator::entry() const {
  PLANAR_CHECK(Valid());
  return static_cast<const LeafNode*>(leaf_)->entries[pos_];
}

void OrderStatisticBTree::Iterator::Next() {
  PLANAR_CHECK(Valid());
  const LeafNode* leaf = static_cast<const LeafNode*>(leaf_);
  if (pos_ + 1 < leaf->count) {
    ++pos_;
    return;
  }
  // Skip (possibly empty root) leaves until one with entries is found.
  const LeafNode* next = leaf->next;
  while (next != nullptr && next->count == 0) next = next->next;
  leaf_ = next;
  pos_ = 0;
}

void OrderStatisticBTree::Iterator::Prev() {
  PLANAR_CHECK(Valid());
  if (pos_ > 0) {
    --pos_;
    return;
  }
  const LeafNode* prev = static_cast<const LeafNode*>(leaf_)->prev;
  while (prev != nullptr && prev->count == 0) prev = prev->prev;
  leaf_ = prev;
  pos_ = prev != nullptr ? prev->count - 1 : 0;
}

OrderStatisticBTree::Iterator OrderStatisticBTree::IteratorAt(
    size_t rank) const {
  PLANAR_CHECK_LE(rank, size_);
  Iterator it;
  if (rank == size_) return it;
  const Node* node = root_;
  while (!node->is_leaf) {
    const InternalNode* internal = static_cast<const InternalNode*>(node);
    int i = 0;
    while (rank >= internal->sizes[i]) {
      rank -= internal->sizes[i];
      ++i;
      PLANAR_DCHECK(i < internal->count);
    }
    node = internal->children[i];
  }
  it.leaf_ = node;
  it.pos_ = static_cast<int>(rank);
  return it;
}

void OrderStatisticBTree::BuildFromSorted(const std::vector<Entry>& entries) {
  Clear();
  const size_t n = entries.size();
  if (n == 0) return;
  for (size_t i = 1; i < n; ++i) PLANAR_DCHECK(!(entries[i] < entries[i - 1]));

  // Target fill leaves room for subsequent point inserts without an
  // immediate cascade of splits.
  const size_t fill = static_cast<size_t>(kMaxFill) * 3 / 4;

  // Sizing rule shared by all levels: chunk `remaining` items so every
  // chunk is within [kMinFill, kMaxFill].
  auto chunk_size = [&](size_t remaining) -> size_t {
    if (remaining <= static_cast<size_t>(kMaxFill)) return remaining;
    if (remaining - fill >= static_cast<size_t>(kMinFill)) return fill;
    return remaining - static_cast<size_t>(kMinFill);
  };

  struct Built {
    Node* node;
    Entry min_entry;
  };

  // Level 0: leaves.
  std::vector<Built> level;
  level.reserve(n / fill + 2);
  LeafNode* prev = nullptr;
  size_t i = 0;
  while (i < n) {
    const size_t take = chunk_size(n - i);
    LeafNode* leaf = new LeafNode();
    leaf->is_leaf = true;
    leaf->count = static_cast<int>(take);
    for (size_t j = 0; j < take; ++j) leaf->entries[j] = entries[i + j];
    leaf->prev = prev;
    leaf->next = nullptr;
    if (prev != nullptr) prev->next = leaf;
    prev = leaf;
    level.push_back({leaf, leaf->entries[0]});
    i += take;
  }

  // Upper levels.
  while (level.size() > 1) {
    std::vector<Built> next_level;
    next_level.reserve(level.size() / fill + 2);
    size_t j = 0;
    while (j < level.size()) {
      const size_t take = chunk_size(level.size() - j);
      InternalNode* internal = new InternalNode();
      internal->is_leaf = false;
      internal->count = static_cast<int>(take);
      for (size_t k = 0; k < take; ++k) {
        internal->children[k] = level[j + k].node;
        internal->sizes[k] = SubtreeSize(level[j + k].node);
        if (k > 0) internal->seps[k - 1] = level[j + k].min_entry;
      }
      next_level.push_back({internal, level[j].min_entry});
      j += take;
    }
    level = std::move(next_level);
  }

  DeleteSubtree(root_);
  root_ = level[0].node;
  size_ = n;
}

void OrderStatisticBTree::ExportSorted(std::vector<Entry>* out) const {
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const InternalNode*>(node)->children[0];
  }
  for (const LeafNode* leaf = static_cast<const LeafNode*>(node);
       leaf != nullptr; leaf = leaf->next) {
    for (int i = 0; i < leaf->count; ++i) out->push_back(leaf->entries[i]);
  }
}

void OrderStatisticBTree::Clear() {
  DeleteSubtree(root_);
  LeafNode* leaf = new LeafNode();
  leaf->is_leaf = true;
  leaf->count = 0;
  leaf->prev = nullptr;
  leaf->next = nullptr;
  root_ = leaf;
  size_ = 0;
}

size_t OrderStatisticBTree::SubtreeMemory(const Node* node) {
  if (node->is_leaf) return sizeof(LeafNode);
  const InternalNode* internal = static_cast<const InternalNode*>(node);
  size_t total = sizeof(InternalNode);
  for (int i = 0; i < internal->count; ++i) {
    total += SubtreeMemory(internal->children[i]);
  }
  return total;
}

size_t OrderStatisticBTree::MemoryUsage() const {
  return sizeof(*this) + SubtreeMemory(root_);
}

int OrderStatisticBTree::LeafDepth() const {
  int depth = 0;
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const InternalNode*>(node)->children[0];
    ++depth;
  }
  return depth;
}

bool OrderStatisticBTree::ValidateNode(const Node* node, const Entry* lo,
                                       const Entry* hi, int depth,
                                       int leaf_depth) const {
  const bool is_root = node == root_;
  if (node->is_leaf) {
    if (depth != leaf_depth) return false;
    const LeafNode* leaf = static_cast<const LeafNode*>(node);
    if (!is_root && leaf->count < kMinFill) return false;
    if (leaf->count > kMaxFill) return false;
    for (int i = 0; i < leaf->count; ++i) {
      const Entry& e = leaf->entries[i];
      if (i > 0 && e < leaf->entries[i - 1]) return false;
      if (lo != nullptr && e < *lo) return false;
      if (hi != nullptr && !(e < *hi)) return false;
    }
    return true;
  }
  const InternalNode* internal = static_cast<const InternalNode*>(node);
  if (!is_root && internal->count < kMinFill) return false;
  if (is_root && internal->count < 2) return false;
  if (internal->count > kMaxFill) return false;
  for (int i = 0; i + 2 < internal->count; ++i) {
    if (!(internal->seps[i] < internal->seps[i + 1])) return false;
  }
  for (int i = 0; i < internal->count; ++i) {
    const Entry* child_lo = i == 0 ? lo : &internal->seps[i - 1];
    const Entry* child_hi = i + 1 == internal->count ? hi : &internal->seps[i];
    if (internal->sizes[i] != SubtreeSize(internal->children[i])) return false;
    if (!ValidateNode(internal->children[i], child_lo, child_hi, depth + 1,
                      leaf_depth)) {
      return false;
    }
  }
  return true;
}

bool OrderStatisticBTree::Validate() const {
  if (!ValidateNode(root_, nullptr, nullptr, 0, LeafDepth())) return false;
  if (SubtreeSize(root_) != size_) return false;
  // Leaf chain: sorted, consistent prev links, and covering every entry.
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const InternalNode*>(node)->children[0];
  }
  const LeafNode* leaf = static_cast<const LeafNode*>(node);
  if (leaf->prev != nullptr) return false;
  size_t chained = 0;
  const LeafNode* prev = nullptr;
  const Entry* last = nullptr;
  while (leaf != nullptr) {
    if (leaf->prev != prev) return false;
    for (int i = 0; i < leaf->count; ++i) {
      if (last != nullptr && leaf->entries[i] < *last) return false;
      last = &leaf->entries[i];
    }
    chained += static_cast<size_t>(leaf->count);
    prev = leaf;
    leaf = leaf->next;
  }
  return chained == size_;
}

}  // namespace planar
