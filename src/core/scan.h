// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// The naive sequential-scan baseline the paper compares against
// (Section 7.1, "Competing Method"): O(n d') for the inequality query and
// O(n d' + n log k) for the top-k query.

#ifndef PLANAR_CORE_SCAN_H_
#define PLANAR_CORE_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/status.h"
#include "core/planar_index.h"
#include "core/query.h"
#include "core/row_matrix.h"
#include "core/topk.h"

namespace planar {

/// Scan-verifies `count` row-major rows of width `dim` starting at `rows`,
/// appending the id `id_offset + i` of every row i that satisfies `q` to
/// `*out`. The block-at-a-time kernel loop is the one behind
/// ScanInequality, so the accept decision per row is bit-identical to the
/// full-matrix scan and the index verification paths. Exposed raw so the
/// ingest delta overlay (src/ingest) can verify not-yet-merged rows
/// against the same predicate; returns the number of ids appended, or
/// kDeadlineExceeded (polled per block).
Result<size_t> ScanRowsInequality(const double* rows, size_t dim, size_t count,
                                  uint32_t id_offset,
                                  const ScalarProductQuery& q,
                                  const Deadline& deadline,
                                  std::vector<uint32_t>* out);

/// Mixed-precision body of ScanRowsInequality for row stores that carry
/// an f32 mirror (`rows32`, same row-major layout as `rows64`): the
/// mirror classifies each block against `plan`'s widened band, band rows
/// re-verify in f64, and the accepted ids (and their order) are
/// bit-identical to the pure f64 scan. `plan` must have been built with
/// an envelope covering every row (MakeMixedPlanWithEnvelope); callers
/// check plan.usable and fall back to ScanRowsInequality otherwise.
/// Exposed raw for the ingest delta overlay's mirror.
// f32-ok: mirror rows input to the band classifier.
Result<size_t> ScanRowsInequalityMixed(const double* rows64,
                                       const float* rows32, size_t dim,
                                       size_t count, uint32_t id_offset,
                                       const ScalarProductQuery& q,
                                       const MixedQueryPlan& plan,
                                       const Deadline& deadline,
                                       std::vector<uint32_t>* out);

/// Counting twin of ScanRowsInequality: returns how many of the `count`
/// rows satisfy `q` without materializing ids — same block cadence, same
/// accept predicate (through the same CompressAccept kernel), so the
/// count is bit-equal to ScanRowsInequality(...)'s appended size. Used
/// by the COUNT fast path's scan fallback and the ingest delta overlay.
Result<size_t> ScanRowsCountInequality(const double* rows, size_t dim,
                                       size_t count,
                                       const ScalarProductQuery& q,
                                       const Deadline& deadline);

/// Raw exact aggregate: adds to `*matched` / `*sum` the match count and
/// the payload-column total of the matching rows among the `count` rows,
/// accumulating accepted payloads per block through the canonical
/// blocked summation (core/aggregate.h). Shared by the full-matrix
/// ScanAggregateInequality and the ingest delta overlay.
Status ScanRowsAggregateInequality(const double* rows, size_t dim,
                                   size_t count, int payload_column,
                                   const ScalarProductQuery& q,
                                   const Deadline& deadline, size_t* matched,
                                   double* sum);

/// Top-k analogue of ScanRowsInequality: offers every satisfying row in
/// [0, count) to `*buffer` as id `id_offset + i` with the usual
/// |residual| / ||a|| hyperplane distance. The caller owns buffer capacity
/// and must have validated `q` (finite, non-zero normal). Feeding a buffer
/// seeded with the base-index neighbors reproduces exactly the quiesced
/// full-data scan (ties break by id inside TopKBuffer::TakeSorted).
Status ScanRowsTopK(const double* rows, size_t dim, size_t count,
                    uint32_t id_offset, const ScalarProductQuery& q,
                    const Deadline& deadline, TopKBuffer* buffer);

/// Answers the inequality query by evaluating the scalar product for every
/// row of `phi`.
InequalityResult ScanInequality(const PhiMatrix& phi,
                                const ScalarProductQuery& q);

/// Deadline-aware variant: the scan polls `deadline` every
/// kDeadlineCheckInterval rows and fails with kDeadlineExceeded, so the
/// scan fallback honors the same per-request budget as the index paths.
Result<InequalityResult> ScanInequality(const PhiMatrix& phi,
                                        const ScalarProductQuery& q,
                                        const Deadline& deadline);

/// Exact COUNT by full scan: the baseline CountInequality is benched and
/// property-tested against. Always exact (lower == upper == estimate);
/// stats mirror the scan fallback of ScanInequality (verified = n,
/// index_used = -1).
Result<CountResult> ScanCountInequality(const PhiMatrix& phi,
                                        const ScalarProductQuery& q,
                                        const Deadline& deadline);

/// Exact SUM over `payload_column` of phi (plus the exact COUNT) by full
/// scan. Accepted payloads accumulate in canonical blocked summation
/// (core/aggregate.h), matching the refined index path's determinism
/// rule. Fails with InvalidArgument for an out-of-range column.
Result<AggregateResult> ScanAggregateInequality(const PhiMatrix& phi,
                                                int payload_column,
                                                const ScalarProductQuery& q,
                                                const Deadline& deadline);

/// Answers the top-k nearest neighbor query by evaluating every row and
/// keeping the k nearest satisfying points. Fails for an all-zero query
/// normal (hyperplane distance undefined) or k == 0.
Result<TopKResult> ScanTopK(const PhiMatrix& phi, const ScalarProductQuery& q,
                            size_t k);

/// Deadline-aware variant (see the inequality overload).
Result<TopKResult> ScanTopK(const PhiMatrix& phi, const ScalarProductQuery& q,
                            size_t k, const Deadline& deadline);

}  // namespace planar

#endif  // PLANAR_CORE_SCAN_H_
