// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// The naive sequential-scan baseline the paper compares against
// (Section 7.1, "Competing Method"): O(n d') for the inequality query and
// O(n d' + n log k) for the top-k query.

#ifndef PLANAR_CORE_SCAN_H_
#define PLANAR_CORE_SCAN_H_

#include <cstddef>

#include "common/deadline.h"
#include "common/result.h"
#include "core/planar_index.h"
#include "core/query.h"
#include "core/row_matrix.h"

namespace planar {

/// Answers the inequality query by evaluating the scalar product for every
/// row of `phi`.
InequalityResult ScanInequality(const PhiMatrix& phi,
                                const ScalarProductQuery& q);

/// Deadline-aware variant: the scan polls `deadline` every
/// kDeadlineCheckInterval rows and fails with kDeadlineExceeded, so the
/// scan fallback honors the same per-request budget as the index paths.
Result<InequalityResult> ScanInequality(const PhiMatrix& phi,
                                        const ScalarProductQuery& q,
                                        const Deadline& deadline);

/// Answers the top-k nearest neighbor query by evaluating every row and
/// keeping the k nearest satisfying points. Fails for an all-zero query
/// normal (hyperplane distance undefined) or k == 0.
Result<TopKResult> ScanTopK(const PhiMatrix& phi, const ScalarProductQuery& q,
                            size_t k);

/// Deadline-aware variant (see the inequality overload).
Result<TopKResult> ScanTopK(const PhiMatrix& phi, const ScalarProductQuery& q,
                            size_t k, const Deadline& deadline);

}  // namespace planar

#endif  // PLANAR_CORE_SCAN_H_
