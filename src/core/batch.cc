// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// PlanarIndexSet::BatchInequality: cross-query batched execution.
//
// Per call:
//   1. Plan. Each query is normalized, assigned its best index with the
//      existing Section-5.1 selectors, and its SI/LI/II rank boundaries
//      are computed with the existing (Eytzinger) boundary searches; the
//      serial path's scan-fallback rule routes too-wide intervals to the
//      scan group. Degenerate queries and single-query groups take the
//      serial code path directly — a batch of one costs exactly what
//      Inequality() costs.
//   2. Per index with >= 2 queries: each query's accept region is emitted
//      outright (identical order to serial), then the non-empty
//      intermediate intervals are sorted by begin rank and overlapping
//      ranges are merged. Every merged range is streamed exactly once in
//      kernels::kBlockRows blocks through dot_block_many — one residual
//      matrix per block covering every query whose interval overlaps it —
//      and CompressAcceptMany scatters the accepted ids into the
//      per-query result tails without per-row branches.
//   3. Queries with no usable index (or fallen back) run as one batched
//      scan over the full row range, sharing the row stream the same way.
//
// Determinism: a query's intermediate interval is one contiguous rank
// range, so it is wholly contained in exactly one merged range; blocks
// advance in ascending rank order and each block appends a query's
// accepted sub-slice in rank order, so the per-query id sequence equals
// the serial path's exactly. The residuals come from the same kernels
// with the same per-(query, row) summation order (kernels.h determinism
// contract), so every accept decision — and therefore every result — is
// bit-identical to the serial path on both dispatch backends.
//
// Deadlines cancel cooperatively at block granularity, matching the
// serial cadence of one poll per verification block: an expired query is
// answered kDeadlineExceeded and drops out of the active set; the rest of
// the batch is unaffected. As in the serial path, a query whose
// intermediate interval is empty never observes its deadline.

#include <algorithm>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "core/batch.h"
#include "core/index_set.h"
#include "core/kernels/kernels.h"
#include "core/mixed.h"

namespace planar {

namespace {

using kernels::kBlockRows;

// One non-degenerate index-served query: its position in the caller's
// span and its intermediate interval in rank space.
struct IntervalQuery {
  size_t slot = 0;
  size_t begin = 0;  // smaller_end
  size_t end = 0;    // larger_begin
};

// A coalesced rank range [begin, end) covering the sorted interval list
// entries [first, last).
struct MergedRange {
  size_t begin = 0;
  size_t end = 0;
  size_t first = 0;
  size_t last = 0;
};

// Per-block kernel argument arrays, sized once to the maximum possible
// active-query count of the group they serve.
struct BlockArgs {
  std::vector<const double*> q_ptrs;
  std::vector<double> biases;
  std::vector<size_t> slice_begin;
  std::vector<size_t> slice_end;
  std::vector<size_t> old_size;
  std::vector<size_t> kept;
  std::vector<uint32_t*> outs;
  std::unique_ptr<bool[]> less_equal;
  std::vector<double> residuals;
  // Mixed-precision routing scratch: the per-block active-set partition
  // and the f32 classify-pass arguments.
  std::vector<size_t> plain_active;
  std::vector<size_t> mixed_active;
  // f32-ok: query mirrors and residual matrix for the band classification.
  std::vector<const float*> q32_ptrs;
  std::vector<float> biases32;
  std::vector<float> res32;

  explicit BlockArgs(size_t max_queries)
      : q_ptrs(max_queries),
        biases(max_queries),
        slice_begin(max_queries),
        slice_end(max_queries),
        old_size(max_queries),
        kept(max_queries),
        outs(max_queries),
        less_equal(new bool[max_queries]),
        residuals(max_queries * kBlockRows),
        plain_active(max_queries),
        mixed_active(max_queries),
        q32_ptrs(max_queries),
        biases32(max_queries),
        res32(max_queries * kBlockRows) {}
};

// The serial path's degenerate-query answer (RunInequality's constant
// predicate branch), with the set-level index attribution.
InequalityResult DegenerateResult(const NormalizedQuery& q, size_t n,
                                  int index_used) {
  InequalityResult result;
  result.stats.num_points = n;
  result.stats.index_used = index_used;
  const bool all_match =
      q.cmp == Comparison::kLessEqual ? (0.0 <= q.b) : (0.0 >= q.b);
  if (all_match) {
    result.ids.resize(n);
    std::iota(result.ids.begin(), result.ids.end(), 0u);
    result.stats.accepted_directly = n;
  } else {
    result.stats.rejected_directly = n;
  }
  result.stats.result_size = result.ids.size();
  return result;
}

}  // namespace

std::vector<Result<InequalityResult>> PlanarIndexSet::BatchInequality(
    std::span<const ScalarProductQuery> queries,
    std::span<const Deadline> deadlines, BatchExecStats* exec_stats) const {
  const size_t m = queries.size();
  PLANAR_CHECK(deadlines.empty() || deadlines.size() == m);
  BatchExecStats stats;
  stats.queries = m;

  // Every slot is overwritten exactly once below; the placeholder only
  // exists because Result has no default state.
  std::vector<Result<InequalityResult>> results;
  results.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    results.emplace_back(Status::Internal("batch slot not executed"));
  }
  if (m == 0) {
    if (exec_stats != nullptr) *exec_stats = stats;
    return results;
  }

  const Deadline infinite = Deadline::Infinite();
  const auto deadline_of = [&](size_t slot) -> const Deadline& {
    return deadlines.empty() ? infinite : deadlines[slot];
  };

  const size_t n = phi_->size();
  const size_t dim = phi_->dim();
  const kernels::DotOps& ops = kernels::Ops();

  // ---- Plan: route every query to an index group or the scan group,
  // replicating the serial Inequality() decision sequence exactly.
  std::vector<NormalizedQuery> norms;
  norms.reserve(m);
  std::vector<std::vector<IntervalQuery>> groups(indices_.size());
  std::vector<size_t> scan_slots;
  for (size_t qi = 0; qi < m; ++qi) {
    norms.push_back(NormalizedQuery::From(queries[qi]));
    const NormalizedQuery& norm = norms.back();
    const int best = SelectBestIndex(norm);
    if (best < 0) {
      scan_slots.push_back(qi);
      continue;
    }
    const PlanarIndex& index = indices_[static_cast<size_t>(best)];
    const Result<PlanarIndex::Intervals> iv = index.ComputeIntervals(norm);
    PLANAR_CHECK(iv.ok());  // CanServe was verified by the selector
    if (options_.scan_fallback_fraction < 1.0 &&
        static_cast<double>(iv->larger_begin - iv->smaller_end) >
            options_.scan_fallback_fraction * static_cast<double>(n)) {
      scan_slots.push_back(qi);
      continue;
    }
    if (norm.IsDegenerate()) {
      results[qi] = DegenerateResult(norm, n, best);
      continue;
    }
    groups[static_cast<size_t>(best)].push_back(
        {qi, iv->smaller_end, iv->larger_begin});
  }

  // ---- Mixed-precision plans, one per slot the shared block walks below
  // will verify (multi-query index groups and the batched scan). A
  // single-query group or single-scan slot takes the serial path, which
  // plans for itself. Group slots plan against the normalized query and
  // scan slots against the caller's original query — matching exactly what
  // each walk hands the kernels, so the residuals (and the accept band)
  // line up with the serial execution of the same slot.
  std::vector<MixedQueryPlan> plans(m);
  if (phi_->f32_data() != nullptr) {
    for (const std::vector<IntervalQuery>& group : groups) {
      if (group.size() < 2) continue;
      for (const IntervalQuery& iq : group) {
        const NormalizedQuery& nq = norms[iq.slot];
        plans[iq.slot] = MakeMixedPlan(
            nq.a.data(), dim, nq.b, nq.cmp == Comparison::kLessEqual, *phi_);
      }
    }
    if (scan_slots.size() > 1) {
      for (const size_t slot : scan_slots) {
        const ScalarProductQuery& q = queries[slot];
        plans[slot] = MakeMixedPlan(q.a.data(), dim, q.b,
                                    q.cmp == Comparison::kLessEqual, *phi_);
      }
    }
  }

  // ---- Index groups.
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    const std::vector<IntervalQuery>& group = groups[gi];
    if (group.empty()) continue;
    const PlanarIndex& index = indices_[gi];
    ++stats.index_groups;

    if (group.size() == 1) {
      // Nothing to share: the serial path is exactly right, and keeps a
      // batch of one at serial latency.
      const size_t slot = group[0].slot;
      const size_t ii = group[0].end - group[0].begin;
      Result<InequalityResult> r =
          index.Inequality(norms[slot], deadline_of(slot));
      if (r.ok()) r->stats.index_used = static_cast<int>(gi);
      results[slot] = std::move(r);
      stats.rows_demanded += ii;
      stats.rows_streamed += ii;
      if (ii > 0) ++stats.merged_ranges;
      continue;
    }

    // Accept regions first (same emission order as serial), reserving the
    // worst case so the block appends below never reallocate.
    for (const IntervalQuery& iq : group) {
      InequalityResult r;
      r.stats.num_points = n;
      const bool le = norms[iq.slot].cmp == Comparison::kLessEqual;
      const size_t accept_begin = le ? 0 : iq.end;
      const size_t accept_end = le ? iq.begin : n;
      const size_t ii = iq.end - iq.begin;
      r.ids.reserve((accept_end - accept_begin) + ii);
      index.CollectRange(accept_begin, accept_end, &r.ids);
      r.stats.accepted_directly = accept_end - accept_begin;
      r.stats.rejected_directly = le ? n - iq.end : iq.begin;
      r.stats.verified = ii;
      r.stats.index_used = static_cast<int>(gi);
      results[iq.slot] = std::move(r);
      stats.rows_demanded += ii;
    }

    // Coalesce: sort the non-empty intervals by begin rank and merge
    // every overlapping (or touching) run into one streamed range.
    std::vector<IntervalQuery> intervals;
    intervals.reserve(group.size());
    for (const IntervalQuery& iq : group) {
      if (iq.end > iq.begin) intervals.push_back(iq);
    }
    std::sort(intervals.begin(), intervals.end(),
              [](const IntervalQuery& x, const IntervalQuery& y) {
                if (x.begin != y.begin) return x.begin < y.begin;
                if (x.end != y.end) return x.end < y.end;
                return x.slot < y.slot;
              });
    std::vector<MergedRange> ranges;
    for (size_t i = 0; i < intervals.size();) {
      MergedRange range{intervals[i].begin, intervals[i].end, i, i + 1};
      size_t j = i + 1;
      while (j < intervals.size() && intervals[j].begin <= range.end) {
        range.end = std::max(range.end, intervals[j].end);
        ++j;
      }
      range.last = j;
      ranges.push_back(range);
      i = j;
    }
    stats.merged_ranges += ranges.size();

    // Stream each merged range once. Because every query's interval is
    // contiguous in rank space, a block's active set is a window over the
    // begin-sorted interval list.
    BlockArgs args(intervals.size());
    const uint32_t* rank_ids = index.RankIds();
    std::vector<uint32_t> scratch_ids;  // B+-tree: materialized per range
    std::vector<size_t> active;
    active.reserve(intervals.size());
    for (const MergedRange& range : ranges) {
      const uint32_t* ids_base;
      if (rank_ids != nullptr) {
        ids_base = rank_ids + range.begin;
      } else {
        scratch_ids.clear();
        index.CollectRange(range.begin, range.end, &scratch_ids);
        ids_base = scratch_ids.data();
      }
      stats.rows_streamed += range.end - range.begin;
      active.clear();
      size_t next = range.first;
      for (size_t r0 = range.begin; r0 < range.end; r0 += kBlockRows) {
        const size_t r1 = std::min(range.end, r0 + kBlockRows);
        while (next < range.last && intervals[next].begin < r1) {
          active.push_back(next++);
        }
        // Retire finished intervals and poll deadlines — one poll per
        // (query, block), the serial VerifyBlocks cadence. Memory-order
        // audit: unlike the sharded verifier (planar_index.cc), the
        // batch walk is single-threaded, so the poll is a plain call on
        // an immutable Deadline — no atomic flag, and nothing to order.
        // If this loop is ever sharded, cancellation must adopt the
        // relaxed-atomic advisory-flag + authoritative-post-join-load
        // pattern documented in VerifyCandidatesParallel.
        size_t na = 0;
        for (const size_t idx : active) {
          const IntervalQuery& iq = intervals[idx];
          if (iq.end <= r0) continue;
          if (deadline_of(iq.slot).Expired()) {
            results[iq.slot] = Status::DeadlineExceeded(
                "inequality query exceeded its deadline during II "
                "verification");
            continue;
          }
          active[na++] = idx;
        }
        active.resize(na);
        if (na == 0) continue;

        const size_t blk = r1 - r0;
        const uint32_t* block_ids = ids_base + (r0 - range.begin);
        // Partition the survivors: slots with a usable mixed plan take
        // the f32 classify + f64 band re-verify route, the rest the plain
        // f64 kernel. Each slot only ever appends to its own result, so
        // the partition cannot perturb any per-query id order.
        size_t na_plain = 0;
        size_t na_mixed = 0;
        for (const size_t idx : active) {
          if (plans[intervals[idx].slot].usable) {
            args.mixed_active[na_mixed++] = idx;
          } else {
            args.plain_active[na_plain++] = idx;
          }
        }
        for (size_t ai = 0; ai < na_plain; ++ai) {
          const IntervalQuery& iq = intervals[args.plain_active[ai]];
          const NormalizedQuery& nq = norms[iq.slot];
          args.q_ptrs[ai] = nq.a.data();
          args.biases[ai] = -nq.b;
          args.less_equal[ai] = nq.cmp == Comparison::kLessEqual;
          args.slice_begin[ai] = std::max(iq.begin, r0) - r0;
          args.slice_end[ai] = std::min(iq.end, r1) - r0;
          std::vector<uint32_t>& out_ids = results[iq.slot]->ids;
          args.old_size[ai] = out_ids.size();
          out_ids.resize(args.old_size[ai] +
                         (args.slice_end[ai] - args.slice_begin[ai]));
          args.outs[ai] = out_ids.data() + args.old_size[ai];
        }
        if (na_plain != 0) {
          ops.dot_block_many(args.q_ptrs.data(), args.biases.data(), na_plain,
                             dim, phi_->data(), dim, block_ids, blk,
                             args.residuals.data(), kBlockRows);
          kernels::CompressAcceptMany(args.residuals.data(), kBlockRows,
                                      na_plain, block_ids,
                                      args.slice_begin.data(),
                                      args.slice_end.data(),
                                      args.less_equal.get(), args.outs.data(),
                                      args.kept.data());
          for (size_t ai = 0; ai < na_plain; ++ai) {
            const IntervalQuery& iq = intervals[args.plain_active[ai]];
            results[iq.slot]->ids.resize(args.old_size[ai] + args.kept[ai]);
          }
        }
        if (na_mixed != 0) {
          for (size_t mi = 0; mi < na_mixed; ++mi) {
            const MixedQueryPlan& plan =
                plans[intervals[args.mixed_active[mi]].slot];
            args.q32_ptrs[mi] = plan.a32.data();
            args.biases32[mi] = plan.bias32;
          }
          // One f32 pass over the whole block for every mixed query (the
          // per-(query, row) value is identical to the serial dot_gather
          // over the query's own slice), then the per-query band resolve
          // and compress-store on just its slice.
          kernels::OpsF32().dot_block_many(
              args.q32_ptrs.data(), args.biases32.data(), na_mixed, dim,
              phi_->f32_data(), dim, block_ids, blk, args.res32.data(),
              kBlockRows);
          for (size_t mi = 0; mi < na_mixed; ++mi) {
            const IntervalQuery& iq = intervals[args.mixed_active[mi]];
            const NormalizedQuery& nq = norms[iq.slot];
            const size_t sb = std::max(iq.begin, r0) - r0;
            const size_t se = std::min(iq.end, r1) - r0;
            std::vector<uint32_t>& out_ids = results[iq.slot]->ids;
            const size_t old = out_ids.size();
            out_ids.resize(old + (se - sb));
            double decision[kBlockRows];
            MixedResolveBlock(plans[iq.slot], nq.a.data(), dim, nq.b,
                              phi_->data(), dim, block_ids + sb,
                              args.res32.data() + mi * kBlockRows + sb,
                              se - sb, decision);
            const size_t kept = kernels::CompressAccept(
                decision, block_ids + sb, se - sb,
                plans[iq.slot].less_equal, out_ids.data() + old);
            out_ids.resize(old + kept);
          }
        }
      }
    }
    for (const IntervalQuery& iq : group) {
      if (results[iq.slot].ok()) {
        results[iq.slot]->stats.result_size = results[iq.slot]->ids.size();
      }
    }
  }

  // ---- Scan group: every query needs every row, so the whole matrix is
  // the one shared range.
  stats.scan_queries = scan_slots.size();
  if (scan_slots.size() == 1) {
    const size_t slot = scan_slots[0];
    results[slot] = ScanInequality(*phi_, queries[slot], deadline_of(slot));
    stats.rows_demanded += n;
    stats.rows_streamed += n;
    ++stats.merged_ranges;
  } else if (scan_slots.size() > 1) {
    for (const size_t slot : scan_slots) {
      PLANAR_CHECK_EQ(dim, queries[slot].a.size());
      InequalityResult r;
      r.stats.num_points = n;
      r.stats.verified = n;
      r.stats.index_used = -1;
      r.ids.reserve(n);
      results[slot] = std::move(r);
      stats.rows_demanded += n;
    }
    stats.rows_streamed += n;
    ++stats.merged_ranges;

    BlockArgs args(scan_slots.size());
    uint32_t block_ids[kBlockRows];
    std::vector<size_t> active = scan_slots;
    for (size_t row = 0; row < n; row += kBlockRows) {
      size_t na = 0;
      for (const size_t slot : active) {
        if (deadline_of(slot).Expired()) {
          results[slot] = Status::DeadlineExceeded(
              "sequential scan exceeded its deadline");
          continue;
        }
        active[na++] = slot;
      }
      active.resize(na);
      if (na == 0) break;

      const size_t blk = std::min(kBlockRows, n - row);
      for (size_t i = 0; i < blk; ++i) {
        block_ids[i] = static_cast<uint32_t>(row + i);
      }
      // Same mixed/plain partition as the index groups above; the scan
      // path verifies against the caller's original query, as
      // ScanInequality does (bit-identical residuals either way — the
      // normalization negates both sides).
      size_t na_plain = 0;
      size_t na_mixed = 0;
      for (const size_t slot : active) {
        if (plans[slot].usable) {
          args.mixed_active[na_mixed++] = slot;
        } else {
          args.plain_active[na_plain++] = slot;
        }
      }
      for (size_t ai = 0; ai < na_plain; ++ai) {
        const size_t slot = args.plain_active[ai];
        const ScalarProductQuery& q = queries[slot];
        args.q_ptrs[ai] = q.a.data();
        args.biases[ai] = -q.b;
        args.less_equal[ai] = q.cmp == Comparison::kLessEqual;
        args.slice_begin[ai] = 0;
        args.slice_end[ai] = blk;
        std::vector<uint32_t>& out_ids = results[slot]->ids;
        args.old_size[ai] = out_ids.size();
        out_ids.resize(args.old_size[ai] + blk);
        args.outs[ai] = out_ids.data() + args.old_size[ai];
      }
      if (na_plain != 0) {
        ops.dot_block_many(args.q_ptrs.data(), args.biases.data(), na_plain,
                           dim, phi_->data(), dim, block_ids, blk,
                           args.residuals.data(), kBlockRows);
        kernels::CompressAcceptMany(args.residuals.data(), kBlockRows,
                                    na_plain, block_ids,
                                    args.slice_begin.data(),
                                    args.slice_end.data(),
                                    args.less_equal.get(), args.outs.data(),
                                    args.kept.data());
        for (size_t ai = 0; ai < na_plain; ++ai) {
          const size_t slot = args.plain_active[ai];
          results[slot]->ids.resize(args.old_size[ai] + args.kept[ai]);
        }
      }
      if (na_mixed != 0) {
        for (size_t mi = 0; mi < na_mixed; ++mi) {
          const MixedQueryPlan& plan = plans[args.mixed_active[mi]];
          args.q32_ptrs[mi] = plan.a32.data();
          args.biases32[mi] = plan.bias32;
        }
        kernels::OpsF32().dot_block_many(
            args.q32_ptrs.data(), args.biases32.data(), na_mixed, dim,
            phi_->f32_data(), dim, block_ids, blk, args.res32.data(),
            kBlockRows);
        for (size_t mi = 0; mi < na_mixed; ++mi) {
          const size_t slot = args.mixed_active[mi];
          const ScalarProductQuery& q = queries[slot];
          std::vector<uint32_t>& out_ids = results[slot]->ids;
          const size_t old = out_ids.size();
          out_ids.resize(old + blk);
          double decision[kBlockRows];
          MixedResolveBlock(plans[slot], q.a.data(), dim, q.b, phi_->data(),
                            dim, block_ids,
                            args.res32.data() + mi * kBlockRows, blk,
                            decision);
          const size_t kept = kernels::CompressAccept(
              decision, block_ids, blk, plans[slot].less_equal,
              out_ids.data() + old);
          out_ids.resize(old + kept);
        }
      }
    }
    for (const size_t slot : scan_slots) {
      if (results[slot].ok()) {
        results[slot]->stats.result_size = results[slot]->ids.size();
      }
    }
  }

  if (exec_stats != nullptr) *exec_stats = stats;
  return results;
}

}  // namespace planar
