// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Band queries: b_lo <= <a, phi(x)> <= b_hi. A band is the conjunction of
// two half spaces with the SAME normal, so unlike the general
// ConjunctiveInequality both cuts land on one index's sorted keys: four
// binary searches give an accepted middle range and two verified fringe
// ranges. Useful for "between" predicates and hyperplane-slab retrieval.

#ifndef PLANAR_CORE_BAND_H_
#define PLANAR_CORE_BAND_H_

#include <vector>

#include "common/result.h"
#include "core/index_set.h"
#include "core/planar_index.h"

namespace planar {

/// The band predicate b_lo <= <a, phi(x)> <= b_hi.
struct BandQuery {
  std::vector<double> a;
  double lo = 0.0;
  double hi = 0.0;

  /// True iff `phi_row` lies in the band.
  bool Matches(const double* phi_row) const;
};

/// Answers a band query over `set`. Requires lo <= hi and a non-empty
/// normal matching the indexed dimensionality; falls back to a scan when
/// no index serves the normal's octant.
Result<InequalityResult> BandInequality(const PlanarIndexSet& set,
                                        const BandQuery& query);

/// The scan baseline.
InequalityResult ScanBand(const PhiMatrix& phi, const BandQuery& query);

}  // namespace planar

#endif  // PLANAR_CORE_BAND_H_
