// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/conjunction.h"

#include <limits>

#include "common/macros.h"
#include "core/scan.h"

namespace planar {

bool ConjunctiveQuery::Matches(const double* phi_row) const {
  for (const ScalarProductQuery& q : constraints) {
    if (!q.Matches(phi_row)) return false;
  }
  return true;
}

InequalityResult ScanConjunctive(const PhiMatrix& phi,
                                 const ConjunctiveQuery& query) {
  InequalityResult result;
  result.stats.num_points = phi.size();
  result.stats.verified = phi.size();
  result.stats.index_used = -1;
  for (size_t row = 0; row < phi.size(); ++row) {
    if (query.Matches(phi.row(row))) {
      result.ids.push_back(static_cast<uint32_t>(row));
    }
  }
  result.stats.result_size = result.ids.size();
  return result;
}

Result<InequalityResult> ConjunctiveInequality(const PlanarIndexSet& set,
                                               const ConjunctiveQuery& query) {
  if (query.constraints.empty()) {
    return Status::InvalidArgument("conjunction needs at least one constraint");
  }
  for (const ScalarProductQuery& q : query.constraints) {
    if (q.a.size() != set.phi().dim()) {
      return Status::InvalidArgument(
          "constraint dimensionality must match the indexed phi space");
    }
  }

  // Pick the driving constraint: smallest candidate bound |SI| + |II|,
  // computed from interval boundaries alone (no data access).
  const size_t n = set.size();
  int best_constraint = -1;
  int best_index = -1;
  size_t best_candidates = std::numeric_limits<size_t>::max();
  PlanarIndex::Intervals best_intervals;
  std::vector<NormalizedQuery> normalized;
  normalized.reserve(query.constraints.size());
  for (size_t ci = 0; ci < query.constraints.size(); ++ci) {
    normalized.push_back(NormalizedQuery::From(query.constraints[ci]));
    const NormalizedQuery& norm = normalized.back();
    const int idx = set.SelectBestIndex(norm);
    if (idx < 0) continue;
    const PlanarIndex& index = set.index(static_cast<size_t>(idx));
    const auto intervals = index.ComputeIntervals(norm);
    if (!intervals.ok()) continue;
    // Candidates: the outright-accepted range plus the verified middle.
    const bool le = norm.cmp == Comparison::kLessEqual;
    const size_t candidates =
        le ? intervals->larger_begin : n - intervals->smaller_end;
    if (candidates < best_candidates) {
      best_candidates = candidates;
      best_constraint = static_cast<int>(ci);
      best_index = idx;
      best_intervals = *intervals;
    }
  }

  if (best_constraint < 0) {
    return ScanConjunctive(set.phi(), query);
  }

  const PlanarIndex& index = set.index(static_cast<size_t>(best_index));
  const NormalizedQuery& driver =
      normalized[static_cast<size_t>(best_constraint)];
  const bool le = driver.cmp == Comparison::kLessEqual;
  const PhiMatrix& phi = set.phi();

  // The other constraints, checked per candidate.
  auto others_match = [&](uint32_t id) {
    const double* row = phi.row(id);
    for (size_t ci = 0; ci < query.constraints.size(); ++ci) {
      if (static_cast<int>(ci) == best_constraint) continue;
      if (!query.constraints[ci].Matches(row)) return false;
    }
    return true;
  };

  InequalityResult result;
  result.stats.num_points = n;
  result.stats.index_used = best_index;
  std::vector<uint32_t> candidates;

  // Outright-accepted range of the driver: only the other constraints
  // need verification.
  const size_t accept_begin = le ? 0 : best_intervals.larger_begin;
  const size_t accept_end = le ? best_intervals.smaller_end : n;
  index.CollectRange(accept_begin, accept_end, &candidates);
  result.stats.accepted_directly = candidates.size();
  for (uint32_t id : candidates) {
    if (others_match(id)) result.ids.push_back(id);
  }
  // Middle range: the driver itself also needs verification.
  candidates.clear();
  index.CollectRange(best_intervals.smaller_end, best_intervals.larger_begin,
                     &candidates);
  result.stats.verified = candidates.size();
  for (uint32_t id : candidates) {
    if (query.constraints[static_cast<size_t>(best_constraint)].Matches(
            phi.row(id)) &&
        others_match(id)) {
      result.ids.push_back(id);
    }
  }
  result.stats.rejected_directly =
      n - result.stats.accepted_directly - result.stats.verified;
  result.stats.result_size = result.ids.size();
  return result;
}

}  // namespace planar
