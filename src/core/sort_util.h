// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Deterministic parallel sorting of (key, id) index entries — the single
// chokepoint every core build path sorts through (enforced by
// tools/planar_lint.py, rule core-sort-via-sort-util).
//
// The algorithm is shard-sort + multiway merge on top of the existing
// ParallelFor pool: the entry array is cut into contiguous shards, each
// shard is std::sort-ed on its own thread, and sorted runs are merged
// pairwise (also in parallel) until one run remains. Because entries are
// ordered by the total (key, id) lexicographic order and ids are unique
// in every index build, the sorted sequence is unique — the output is
// bit-identical for ANY thread count, including 1, and identical to a
// plain std::sort. That invariant is what makes parallel index
// construction safe to enable anywhere: serialized snapshots, query
// answers, and rank boundaries cannot depend on how many cores the build
// machine had (machine-checked by tests/sort_util_test.cc and the
// serialized-blob CRC test in tests/build_determinism_test.cc).
//
// Caveat: with duplicate (key, id) PAIRS whose doubles are equivalent but
// not bit-identical (-0.0 vs +0.0 under the same id) the order among the
// equivalent duplicates is unspecified, exactly as with std::sort. Index
// builds never produce such pairs (one entry per row id).

#ifndef PLANAR_CORE_SORT_UTIL_H_
#define PLANAR_CORE_SORT_UTIL_H_

#include <cstddef>
#include <vector>

#include "btree/btree.h"

namespace planar {

/// Entries below this count are sorted serially regardless of `threads`;
/// shard spawn/merge overhead exceeds the sort itself.
inline constexpr size_t kParallelSortMinEntries = 1u << 14;

/// Sorts `entries` ascending by (key, id). `threads` follows the
/// ParallelFor convention: 1 = serial (the default), 0 = hardware
/// concurrency, n = at most n threads. The result is identical to
/// std::sort for every thread count.
void SortEntries(std::vector<OrderStatisticBTree::Entry>* entries,
                 size_t threads = 1);

}  // namespace planar

#endif  // PLANAR_CORE_SORT_UTIL_H_
