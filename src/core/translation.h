// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Octant translation (Section 4.5, Claim 1 of the paper), plus the mirror
// trick that folds every hyper octant onto the first one.
//
// A Planar index is built for a fixed octant O (the sign pattern of the
// query-parameter domains). The translation
//     phi'_i(x) = phi_i(x) + sign(O,i) * delta_i
// moves every phi(x) into O; mirroring by sign(O,i) then maps O onto the
// first hyper octant:
//     psi_i(x)  = sign(O,i) * phi_i(x) + delta_i        (>= 0)
// and the query <a, phi(x)> cmp b (with sign(a_i) == sign(O,i) wherever
// a_i != 0 and b >= 0) becomes
//     <a~, psi(x)> cmp b',   a~_i = |a_i|,
//     b' = b + sum_i |a_i| * delta_i  >= 0,
// with the residual preserved exactly: <a~,psi> - b' == <a,phi> - b.
// All interval logic therefore runs in the all-non-negative first-octant
// setting of Section 4.3.

#ifndef PLANAR_CORE_TRANSLATION_H_
#define PLANAR_CORE_TRANSLATION_H_

#include <vector>

#include "core/query.h"
#include "core/row_matrix.h"
#include "geometry/octant.h"

namespace planar {

/// Per-octant translation state derived from grow-only column bounds of a
/// phi matrix.
class Translator {
 public:
  /// Options controlling the translation.
  struct Options {
    /// Relative slack added to each delta so that moderate dynamic updates
    /// do not immediately invalidate the translation.
    double delta_margin = 0.1;
  };

  /// Computes deltas for `octant` from the column bounds of `phi`.
  /// Requires a non-empty matrix.
  static Translator Create(const PhiMatrix& phi, const Octant& octant);
  static Translator Create(const PhiMatrix& phi, const Octant& octant,
                           Options options);

  /// The octant this translation targets.
  const Octant& octant() const { return octant_; }

  /// The translation magnitudes delta_i (all >= 0).
  const std::vector<double>& delta() const { return delta_; }

  /// Mirrored coordinate psi_i = sign(O,i) * phi_i + delta_i for one axis.
  double Mirror(size_t i, double phi_value) const {
    return octant_.sign(i) * phi_value + delta_[i];
  }

  /// True iff `phi_row` stays inside the octant after translation, i.e.
  /// psi_i >= 0 for every axis. A false return means the index using this
  /// translation must be rebuilt (a dynamic update escaped the bounds the
  /// deltas were computed from).
  bool Covers(const double* phi_row) const;

  /// Lower / upper bound of psi_i over all rows the source matrix has ever
  /// contained (used for the zero-parameter axis corrections).
  double PsiMin(size_t i) const { return psi_min_[i]; }
  double PsiMax(size_t i) const { return psi_max_[i]; }

  /// The mirrored offset b' for a normalized query (b >= 0, signs of a
  /// compatible with the octant).
  double MirroredOffset(const NormalizedQuery& q) const;

 private:
  Octant octant_;
  std::vector<double> delta_;
  std::vector<double> psi_min_;
  std::vector<double> psi_max_;
};

}  // namespace planar

#endif  // PLANAR_CORE_TRANSLATION_H_
