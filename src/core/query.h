// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Scalar product queries (Problems 1 and 2 of the paper) and their
// normalized internal form.

#ifndef PLANAR_CORE_QUERY_H_
#define PLANAR_CORE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/octant.h"

namespace planar {

/// Direction of the scalar product constraint.
enum class Comparison {
  kLessEqual,     // <a, phi(x)> <= b
  kGreaterEqual,  // <a, phi(x)> >= b
};

/// A scalar product query <a, phi(x)> cmp b. Both `a` and `b` are known
/// only at query time (the function phi was fixed at indexing time).
struct ScalarProductQuery {
  std::vector<double> a;
  double b = 0.0;
  Comparison cmp = Comparison::kLessEqual;

  /// Evaluates the predicate against a materialized phi row.
  bool Matches(const double* phi_row) const;

  /// Signed residual <a, phi_row> - b.
  double Residual(const double* phi_row) const;

  /// True iff every parameter (each a_i and b) is finite. Non-finite
  /// parameters defeat the key-interval pruning math (a NaN comparison is
  /// always false, an infinity collapses the envelope to b/0-style
  /// divisions), so index query paths reject them and set-level paths fall
  /// back to an exact sequential scan.
  bool IsFinite() const;

  /// Distance of phi_row to the query hyperplane: |<a,phi_row> - b| / |a|.
  double Distance(const double* phi_row) const;

  std::string ToString() const;
};

/// The internal form with a non-negative inequality parameter: when b < 0
/// the constraint is negated ( <a,phi> <= b  <=>  <-a,phi> >= -b ), so
/// downstream code may assume b >= 0 (paper, Section 4.5). The octant in
/// which the query hyperplane meets the axes is then determined by the
/// signs of `a` alone.
struct NormalizedQuery {
  std::vector<double> a;
  double b = 0.0;
  Comparison cmp = Comparison::kLessEqual;
  Octant octant;

  /// Normalizes `q`. The predicate is preserved exactly.
  static NormalizedQuery From(const ScalarProductQuery& q);

  /// True iff every parameter is zero (degenerate constant predicate).
  bool IsDegenerate() const;

  /// True iff every parameter is finite (see ScalarProductQuery::IsFinite).
  bool IsFinite() const;

  /// L2 norm of `a`.
  double NormA() const;
};

}  // namespace planar

#endif  // PLANAR_CORE_QUERY_H_
