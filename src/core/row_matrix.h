// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// RowMatrix: a dense row-major matrix of doubles with per-column bounds.
// It serves both as the raw dataset container (n points in R^d) and as
// the materialized phi matrix (n rows of phi(x) in R^d').
//
// Column bounds are maintained *grow-only*: they always contain every
// value ever stored, which keeps translation deltas (Section 4.5) sound
// under dynamic updates at the price of occasional looseness.

#ifndef PLANAR_CORE_ROW_MATRIX_H_
#define PLANAR_CORE_ROW_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "core/function.h"

namespace planar {

/// Dense row-major n x d matrix with grow-only per-column min/max.
class RowMatrix {
 public:
  /// An empty matrix with `dim` columns.
  explicit RowMatrix(size_t dim);

  /// Builds from row-major data; `values.size()` must be a multiple of
  /// `dim`.
  static RowMatrix FromRowMajor(size_t dim, std::vector<double> values);

  /// Appends one row of length dim().
  void AppendRow(const double* values);
  void AppendRow(const std::vector<double>& values);

  /// Overwrites row `i`. Column bounds are widened but never shrunk.
  void SetRow(size_t i, const double* values);

  /// Pointer to the `i`-th row (length dim()).
  const double* row(size_t i) const {
    PLANAR_DCHECK(i < rows_);
    return data_.data() + i * dim_;
  }

  /// Base pointer of the row-major storage (row i starts at
  /// data() + i * dim()). For the batched kernels in core/kernels, which
  /// take a base + stride instead of per-row pointers.
  const double* data() const { return data_.data(); }

  /// Element access.
  double at(size_t i, size_t j) const {
    PLANAR_DCHECK(i < rows_ && j < dim_);
    return data_[i * dim_ + j];
  }

  /// Number of rows / columns.
  size_t size() const { return rows_; }
  size_t dim() const { return dim_; }
  bool empty() const { return rows_ == 0; }

  /// Grow-only bound on the smallest / largest value ever stored in column
  /// `j`. Requires at least one row.
  double ColumnMin(size_t j) const;
  double ColumnMax(size_t j) const;

  /// Materializes (or refreshes) the f32 mirror: a single-precision copy
  /// of the row storage kept in sync by AppendRow/SetRow from then on.
  /// The mixed-precision verify path (core/mixed.h) streams the mirror
  /// instead of the doubles — half the bytes per candidate row — and
  /// re-verifies only band rows against the f64 storage. The mirror is
  /// side storage: never serialized, rebuilt on load, and carried along
  /// by the copy constructor (Clone / ingest-merge paths).
  void EnableF32Mirror();

  /// Base pointer of the f32 mirror in row-major layout (stride dim()),
  /// or nullptr when the mirror was never enabled.
  // f32-ok: the mirror is the one sanctioned float surface in core.
  const float* f32_data() const {
    return f32_mirror_ ? f32_.data() : nullptr;
  }

  /// True iff EnableF32Mirror() was called.
  bool has_f32_mirror() const { return f32_mirror_; }

  /// Reserves storage for `n` rows.
  void Reserve(size_t n) {
    data_.reserve(n * dim_);
    if (f32_mirror_) f32_.reserve(n * dim_);
  }

  /// Heap footprint in bytes.
  size_t MemoryUsage() const {
    // f32-ok: mirror footprint accounting.
    return data_.capacity() * sizeof(double) + f32_.capacity() * sizeof(float) +
           (col_min_.capacity() + col_max_.capacity()) * sizeof(double);
  }

 private:
  size_t dim_;
  size_t rows_ = 0;
  std::vector<double> data_;
  // f32-ok: optional single-precision mirror of data_ (see EnableF32Mirror).
  bool f32_mirror_ = false;
  std::vector<float> f32_;
  std::vector<double> col_min_;
  std::vector<double> col_max_;
};

/// Converts a double to the f32 mirror representation: round-to-nearest
/// for in-range values, clamped to +/-infinity beyond the float range
/// (the raw cast would be undefined behavior there). Monotone, so mirror
/// values never cross: x <= y implies FloatMirrorValue(x) <=
/// FloatMirrorValue(y); NaN stays NaN. The mixed-precision band math
/// (core/mixed.cc) accounts for the conversion error this introduces.
// f32-ok: the sanctioned double->float conversion for mirror storage.
float FloatMirrorValue(double v);

/// The raw dataset: n points in R^d.
using Dataset = RowMatrix;
/// The materialized index space: n rows of phi(x) in R^d'.
using PhiMatrix = RowMatrix;

/// Evaluates `fn` on every row of `points` (which must have
/// fn.input_dim() columns) and returns the n x output_dim phi matrix.
PhiMatrix MaterializePhi(const Dataset& points, const PhiFunction& fn);

}  // namespace planar

#endif  // PLANAR_CORE_ROW_MATRIX_H_
