// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// RowMatrix: a dense row-major matrix of doubles with per-column bounds.
// It serves both as the raw dataset container (n points in R^d) and as
// the materialized phi matrix (n rows of phi(x) in R^d').
//
// Column bounds are maintained *grow-only*: they always contain every
// value ever stored, which keeps translation deltas (Section 4.5) sound
// under dynamic updates at the price of occasional looseness.

#ifndef PLANAR_CORE_ROW_MATRIX_H_
#define PLANAR_CORE_ROW_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "core/function.h"

namespace planar {

/// Dense row-major n x d matrix with grow-only per-column min/max.
class RowMatrix {
 public:
  /// An empty matrix with `dim` columns.
  explicit RowMatrix(size_t dim);

  /// Builds from row-major data; `values.size()` must be a multiple of
  /// `dim`.
  static RowMatrix FromRowMajor(size_t dim, std::vector<double> values);

  /// Appends one row of length dim().
  void AppendRow(const double* values);
  void AppendRow(const std::vector<double>& values);

  /// Overwrites row `i`. Column bounds are widened but never shrunk.
  void SetRow(size_t i, const double* values);

  /// Pointer to the `i`-th row (length dim()).
  const double* row(size_t i) const {
    PLANAR_DCHECK(i < rows_);
    return data_.data() + i * dim_;
  }

  /// Base pointer of the row-major storage (row i starts at
  /// data() + i * dim()). For the batched kernels in core/kernels, which
  /// take a base + stride instead of per-row pointers.
  const double* data() const { return data_.data(); }

  /// Element access.
  double at(size_t i, size_t j) const {
    PLANAR_DCHECK(i < rows_ && j < dim_);
    return data_[i * dim_ + j];
  }

  /// Number of rows / columns.
  size_t size() const { return rows_; }
  size_t dim() const { return dim_; }
  bool empty() const { return rows_ == 0; }

  /// Grow-only bound on the smallest / largest value ever stored in column
  /// `j`. Requires at least one row.
  double ColumnMin(size_t j) const;
  double ColumnMax(size_t j) const;

  /// Reserves storage for `n` rows.
  void Reserve(size_t n) { data_.reserve(n * dim_); }

  /// Heap footprint in bytes.
  size_t MemoryUsage() const {
    return data_.capacity() * sizeof(double) +
           (col_min_.capacity() + col_max_.capacity()) * sizeof(double);
  }

 private:
  size_t dim_;
  size_t rows_ = 0;
  std::vector<double> data_;
  std::vector<double> col_min_;
  std::vector<double> col_max_;
};

/// The raw dataset: n points in R^d.
using Dataset = RowMatrix;
/// The materialized index space: n rows of phi(x) in R^d'.
using PhiMatrix = RowMatrix;

/// Evaluates `fn` on every row of `points` (which must have
/// fn.input_dim() columns) and returns the n x output_dim phi matrix.
PhiMatrix MaterializePhi(const Dataset& points, const PhiFunction& fn);

}  // namespace planar

#endif  // PLANAR_CORE_ROW_MATRIX_H_
