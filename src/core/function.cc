// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/function.h"

#include "common/macros.h"

namespace planar {

std::vector<double> PhiFunction::operator()(
    const std::vector<double>& x) const {
  PLANAR_CHECK_EQ(x.size(), input_dim());
  std::vector<double> out(output_dim());
  Apply(x.data(), out.data());
  return out;
}

void IdentityFunction::Apply(const double* x, double* out) const {
  for (size_t i = 0; i < dim_; ++i) out[i] = x[i];
}

void PowerFactorFunction::Apply(const double* x, double* out) const {
  out[0] = x[0];          // active power
  out[1] = x[2] * x[3];   // voltage * current
}

QuadraticFeatureFunction::QuadraticFeatureFunction(size_t input_dim)
    : QuadraticFeatureFunction(input_dim, Options()) {}

QuadraticFeatureFunction::QuadraticFeatureFunction(size_t input_dim,
                                                   Options options)
    : input_dim_(input_dim), options_(options) {
  size_t d = 0;
  if (options_.include_bias) d += 1;
  if (options_.include_linear) d += input_dim;
  if (options_.include_squares) d += input_dim;
  if (options_.include_cross_terms) d += input_dim * (input_dim - 1) / 2;
  output_dim_ = d;
  PLANAR_CHECK_GT(output_dim_, 0u);
}

void QuadraticFeatureFunction::Apply(const double* x, double* out) const {
  size_t pos = 0;
  if (options_.include_bias) out[pos++] = 1.0;
  if (options_.include_linear) {
    for (size_t i = 0; i < input_dim_; ++i) out[pos++] = x[i];
  }
  if (options_.include_squares) {
    for (size_t i = 0; i < input_dim_; ++i) out[pos++] = x[i] * x[i];
  }
  if (options_.include_cross_terms) {
    for (size_t i = 0; i < input_dim_; ++i) {
      for (size_t j = i + 1; j < input_dim_; ++j) out[pos++] = x[i] * x[j];
    }
  }
  PLANAR_DCHECK(pos == output_dim_);
}

}  // namespace planar
