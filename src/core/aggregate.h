// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Canonical blocked summation and rank-ordered prefix aggregates — the
// deterministic arithmetic behind the aggregate fast path (DESIGN.md
// section 5k). COUNT bounds come straight from the SI/LI boundary ranks;
// SUM bounds need, per rank range, the exact payload total of the
// accepted region plus a [negative-part, positive-part] envelope of the
// intermediate region. Both are O(1) prefix differences over the arrays
// built here.
//
// Determinism rule (enforced by the planar_lint agg-prefix-construction
// rule): prefix-aggregate arrays are only ever built by
// BuildPrefixAggregates, and every streaming accumulation of payload
// values goes through CanonicalBlockedSum — one fixed summation order,
// so a SUM answered today and a SUM answered after a reload of the same
// index state are bit-identical. No cross-path bit-identity is claimed
// for sums (prefix differences and streamed refinement round
// differently); COUNTs are integers and bit-exact everywhere.

#ifndef PLANAR_CORE_AGGREGATE_H_
#define PLANAR_CORE_AGGREGATE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace planar {

/// Rows per summation block. Matches the verification kernels'
/// kernels::kBlockRows so refinement accumulation shares the block
/// cadence of the verify loop it rides on.
inline constexpr size_t kAggregateBlockRows = 256;

/// Deterministic sum of v[0, n): each kAggregateBlockRows-sized block is
/// summed sequentially, then the block totals are summed sequentially —
/// one fixed association for every caller, independent of SIMD dispatch,
/// thread count, or call site.
double CanonicalBlockedSum(const double* v, size_t n);

/// Rank-ordered prefix aggregates over one index's payload column.
/// Arrays have n + 1 entries; entry r covers ranks [0, r), so the payload
/// total of a rank range [b, e) is sum[e] - sum[b], and its
/// positive/negative parts bound any subset's contribution:
///   neg[e] - neg[b]  <=  sum over any subset of [b, e)  <=  pos[e] - pos[b].
struct PrefixAggregates {
  std::vector<double> sum;  ///< prefix totals of the payload
  std::vector<double> pos;  ///< prefix totals of max(payload, 0)
  std::vector<double> neg;  ///< prefix totals of min(payload, 0)

  bool empty() const { return sum.empty(); }
  void Clear();
  size_t MemoryUsage() const;
};

/// Builds the three prefix arrays for payload values read in rank order:
/// the payload of rank r is payload[ids[r] * stride]. Pass the phi base
/// pointer offset to the payload column (phi->data() + column) with
/// stride = phi->dim(). Accumulation is sequential in rank order — the
/// one canonical construction (see the determinism rule above). NaN
/// payload values poison every prefix from their rank on; callers that
/// need NaN-free aggregates must not select such a column.
void BuildPrefixAggregates(const double* payload, size_t stride,
                           const uint32_t* ids, size_t n,
                           PrefixAggregates* out);

}  // namespace planar

#endif  // PLANAR_CORE_AGGREGATE_H_
