// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/row_matrix.h"

#include <algorithm>
#include <limits>

namespace planar {

RowMatrix::RowMatrix(size_t dim)
    : dim_(dim),
      col_min_(dim, std::numeric_limits<double>::infinity()),
      col_max_(dim, -std::numeric_limits<double>::infinity()) {
  PLANAR_CHECK_GT(dim, 0u);
}

RowMatrix RowMatrix::FromRowMajor(size_t dim, std::vector<double> values) {
  PLANAR_CHECK_GT(dim, 0u);
  PLANAR_CHECK_EQ(values.size() % dim, 0u);
  RowMatrix m(dim);
  m.rows_ = values.size() / dim;
  m.data_ = std::move(values);
  for (size_t i = 0; i < m.rows_; ++i) {
    const double* r = m.row(i);
    for (size_t j = 0; j < dim; ++j) {
      m.col_min_[j] = std::min(m.col_min_[j], r[j]);
      m.col_max_[j] = std::max(m.col_max_[j], r[j]);
    }
  }
  return m;
}

void RowMatrix::AppendRow(const double* values) {
  data_.insert(data_.end(), values, values + dim_);
  ++rows_;
  if (f32_mirror_) {
    for (size_t j = 0; j < dim_; ++j) f32_.push_back(FloatMirrorValue(values[j]));
  }
  for (size_t j = 0; j < dim_; ++j) {
    col_min_[j] = std::min(col_min_[j], values[j]);
    col_max_[j] = std::max(col_max_[j], values[j]);
  }
}

void RowMatrix::AppendRow(const std::vector<double>& values) {
  PLANAR_CHECK_EQ(values.size(), dim_);
  AppendRow(values.data());
}

void RowMatrix::SetRow(size_t i, const double* values) {
  PLANAR_CHECK_LT(i, rows_);
  double* dst = data_.data() + i * dim_;
  // f32-ok: keep the mirror row in sync with the overwrite.
  float* mirror = f32_mirror_ ? f32_.data() + i * dim_ : nullptr;
  for (size_t j = 0; j < dim_; ++j) {
    dst[j] = values[j];
    if (mirror != nullptr) mirror[j] = FloatMirrorValue(values[j]);
    col_min_[j] = std::min(col_min_[j], values[j]);
    col_max_[j] = std::max(col_max_[j], values[j]);
  }
}

void RowMatrix::EnableF32Mirror() {
  f32_mirror_ = true;
  f32_.resize(data_.size());
  for (size_t i = 0; i < data_.size(); ++i) {
    f32_[i] = FloatMirrorValue(data_[i]);
  }
}

// f32-ok: the sanctioned double->float conversion for mirror storage.
float FloatMirrorValue(double v) {
  if (v > static_cast<double>(std::numeric_limits<float>::max())) {
    return std::numeric_limits<float>::infinity();
  }
  if (v < -static_cast<double>(std::numeric_limits<float>::max())) {
    return -std::numeric_limits<float>::infinity();
  }
  return static_cast<float>(v);
}

double RowMatrix::ColumnMin(size_t j) const {
  PLANAR_CHECK_LT(j, dim_);
  PLANAR_CHECK_GT(rows_, 0u);
  return col_min_[j];
}

double RowMatrix::ColumnMax(size_t j) const {
  PLANAR_CHECK_LT(j, dim_);
  PLANAR_CHECK_GT(rows_, 0u);
  return col_max_[j];
}

PhiMatrix MaterializePhi(const Dataset& points, const PhiFunction& fn) {
  PLANAR_CHECK_EQ(points.dim(), fn.input_dim());
  PhiMatrix phi(fn.output_dim());
  phi.Reserve(points.size());
  std::vector<double> out(fn.output_dim());
  for (size_t i = 0; i < points.size(); ++i) {
    fn.Apply(points.row(i), out.data());
    phi.AppendRow(out.data());
  }
  return phi;
}

}  // namespace planar
