// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// AVX2 f32 kernels for the mixed-precision mirror path. Compiled with
// -mavx2 -mfma -ffp-contract=off like the f64 AVX2 TU; nothing here runs
// unless Avx2OpsF32() verified cpuid support at dispatch time.
//
// Bit-identical contract (DotOpsF32 in kernels.h): one __m256 accumulator
// holds eight per-lane partial sums (indices j % 8), reduced as
// t_l = s_l + s_{l+4} (adding the low and high 128-bit halves) and then
// ((t0 + t2) + (t1 + t3)) — exactly the scalar f32 reference's order.

#include "core/kernels/kernels.h"

#if PLANAR_HAVE_AVX2

#include <immintrin.h>

namespace planar {
namespace kernels {

namespace {

// Reduces an 8-lane f32 accumulator in the canonical order: low/high
// 128-bit halves added first (t_l = s_l + s_{l+4}), then the 4-lane
// ((t0 + t2) + (t1 + t3)) reduction, matching the scalar reference.
inline float ReduceBlockedF32(__m256 acc) {
  const __m128 lo = _mm256_castps256_ps128(acc);      // [s0, s1, s2, s3]
  const __m128 hi = _mm256_extractf128_ps(acc, 1);    // [s4, s5, s6, s7]
  const __m128 t = _mm_add_ps(lo, hi);                // [t0, t1, t2, t3]
  const __m128 pair = _mm_add_ps(t, _mm_movehl_ps(t, t));  // [t0+t2, t1+t3]
  const __m128 swapped = _mm_shuffle_ps(pair, pair, 0x55);
  return _mm_cvtss_f32(_mm_add_ss(pair, swapped));
}

// Sequential tail for dim % 8 trailing entries, same order as the scalar
// reference's tail loop.
inline float TailDotF32(const float* a, const float* row, size_t from,
                        size_t dim) {
  float tail = 0.0f;
  for (size_t j = from; j < dim; ++j) tail += a[j] * row[j];
  return tail;
}

float DotOneF32Avx2(const float* a, const float* row, size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 8 <= dim; j += 8) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(row + j)));
  }
  return ReduceBlockedF32(acc) + TailDotF32(a, row, j, dim);
}

// Four rows per iteration, like the f64 gather: independent accumulation
// chains per row hide the add latency.
void DotGatherF32Avx2(const float* a, size_t dim, const float* rows,
                      size_t stride, const uint32_t* ids, size_t count,
                      float bias, float* out) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const float* r0 = rows + static_cast<size_t>(ids[i]) * stride;
    const float* r1 = rows + static_cast<size_t>(ids[i + 1]) * stride;
    const float* r2 = rows + static_cast<size_t>(ids[i + 2]) * stride;
    const float* r3 = rows + static_cast<size_t>(ids[i + 3]) * stride;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    size_t j = 0;
    for (; j + 8 <= dim; j += 8) {
      const __m256 av = _mm256_loadu_ps(a + j);
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(r0 + j)));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(r1 + j)));
      acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(av, _mm256_loadu_ps(r2 + j)));
      acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(av, _mm256_loadu_ps(r3 + j)));
    }
    out[i] = ReduceBlockedF32(acc0) + TailDotF32(a, r0, j, dim) + bias;
    out[i + 1] = ReduceBlockedF32(acc1) + TailDotF32(a, r1, j, dim) + bias;
    out[i + 2] = ReduceBlockedF32(acc2) + TailDotF32(a, r2, j, dim) + bias;
    out[i + 3] = ReduceBlockedF32(acc3) + TailDotF32(a, r3, j, dim) + bias;
  }
  for (; i < count; ++i) {
    out[i] =
        DotOneF32Avx2(a, rows + static_cast<size_t>(ids[i]) * stride, dim) +
        bias;
  }
}

void DotRangeF32Avx2(const float* a, size_t dim, const float* rows,
                     size_t stride, size_t first_row, size_t count, float bias,
                     float* out) {
  const float* row = rows + first_row * stride;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const float* r0 = row;
    const float* r1 = row + stride;
    const float* r2 = row + 2 * stride;
    const float* r3 = row + 3 * stride;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    size_t j = 0;
    for (; j + 8 <= dim; j += 8) {
      const __m256 av = _mm256_loadu_ps(a + j);
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(r0 + j)));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(r1 + j)));
      acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(av, _mm256_loadu_ps(r2 + j)));
      acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(av, _mm256_loadu_ps(r3 + j)));
    }
    out[i] = ReduceBlockedF32(acc0) + TailDotF32(a, r0, j, dim) + bias;
    out[i + 1] = ReduceBlockedF32(acc1) + TailDotF32(a, r1, j, dim) + bias;
    out[i + 2] = ReduceBlockedF32(acc2) + TailDotF32(a, r2, j, dim) + bias;
    out[i + 3] = ReduceBlockedF32(acc3) + TailDotF32(a, r3, j, dim) + bias;
    row += 4 * stride;
  }
  for (; i < count; ++i, row += stride) {
    out[i] = DotOneF32Avx2(a, row, dim) + bias;
  }
}

// Two queries x four rows register-blocked micro-GEMM, the f32 analogue of
// DotBlockManyAvx2: each row block's loads are shared across the query
// pair. Odd trailing query falls back to the single-query gather.
void DotBlockManyF32Avx2(const float* const* qs, const float* biases,
                         size_t num_q, size_t dim, const float* rows,
                         size_t stride, const uint32_t* ids, size_t count,
                         float* out, size_t out_stride) {
  size_t q = 0;
  for (; q + 2 <= num_q; q += 2) {
    const float* a0 = qs[q];
    const float* a1 = qs[q + 1];
    float* out0 = out + q * out_stride;
    float* out1 = out + (q + 1) * out_stride;
    const float bias0 = biases[q];
    const float bias1 = biases[q + 1];
    size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      const float* r0 = rows + static_cast<size_t>(ids[i]) * stride;
      const float* r1 = rows + static_cast<size_t>(ids[i + 1]) * stride;
      const float* r2 = rows + static_cast<size_t>(ids[i + 2]) * stride;
      const float* r3 = rows + static_cast<size_t>(ids[i + 3]) * stride;
      __m256 acc00 = _mm256_setzero_ps();
      __m256 acc01 = _mm256_setzero_ps();
      __m256 acc02 = _mm256_setzero_ps();
      __m256 acc03 = _mm256_setzero_ps();
      __m256 acc10 = _mm256_setzero_ps();
      __m256 acc11 = _mm256_setzero_ps();
      __m256 acc12 = _mm256_setzero_ps();
      __m256 acc13 = _mm256_setzero_ps();
      size_t j = 0;
      for (; j + 8 <= dim; j += 8) {
        const __m256 av0 = _mm256_loadu_ps(a0 + j);
        const __m256 av1 = _mm256_loadu_ps(a1 + j);
        const __m256 rv0 = _mm256_loadu_ps(r0 + j);
        const __m256 rv1 = _mm256_loadu_ps(r1 + j);
        const __m256 rv2 = _mm256_loadu_ps(r2 + j);
        const __m256 rv3 = _mm256_loadu_ps(r3 + j);
        acc00 = _mm256_add_ps(acc00, _mm256_mul_ps(av0, rv0));
        acc01 = _mm256_add_ps(acc01, _mm256_mul_ps(av0, rv1));
        acc02 = _mm256_add_ps(acc02, _mm256_mul_ps(av0, rv2));
        acc03 = _mm256_add_ps(acc03, _mm256_mul_ps(av0, rv3));
        acc10 = _mm256_add_ps(acc10, _mm256_mul_ps(av1, rv0));
        acc11 = _mm256_add_ps(acc11, _mm256_mul_ps(av1, rv1));
        acc12 = _mm256_add_ps(acc12, _mm256_mul_ps(av1, rv2));
        acc13 = _mm256_add_ps(acc13, _mm256_mul_ps(av1, rv3));
      }
      out0[i] = ReduceBlockedF32(acc00) + TailDotF32(a0, r0, j, dim) + bias0;
      out0[i + 1] =
          ReduceBlockedF32(acc01) + TailDotF32(a0, r1, j, dim) + bias0;
      out0[i + 2] =
          ReduceBlockedF32(acc02) + TailDotF32(a0, r2, j, dim) + bias0;
      out0[i + 3] =
          ReduceBlockedF32(acc03) + TailDotF32(a0, r3, j, dim) + bias0;
      out1[i] = ReduceBlockedF32(acc10) + TailDotF32(a1, r0, j, dim) + bias1;
      out1[i + 1] =
          ReduceBlockedF32(acc11) + TailDotF32(a1, r1, j, dim) + bias1;
      out1[i + 2] =
          ReduceBlockedF32(acc12) + TailDotF32(a1, r2, j, dim) + bias1;
      out1[i + 3] =
          ReduceBlockedF32(acc13) + TailDotF32(a1, r3, j, dim) + bias1;
    }
    for (; i < count; ++i) {
      const float* r = rows + static_cast<size_t>(ids[i]) * stride;
      out0[i] = DotOneF32Avx2(a0, r, dim) + bias0;
      out1[i] = DotOneF32Avx2(a1, r, dim) + bias1;
    }
  }
  for (; q < num_q; ++q) {
    DotGatherF32Avx2(qs[q], dim, rows, stride, ids, count, biases[q],
                     out + q * out_stride);
  }
}

constexpr DotOpsF32 kAvx2OpsF32 = {&DotOneF32Avx2, &DotGatherF32Avx2,
                                   &DotRangeF32Avx2, &DotBlockManyF32Avx2,
                                   "avx2-f32"};

}  // namespace

const DotOpsF32* Avx2OpsF32() {
  // Same once-checked cpuid latch as the f64 path.
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported ? &kAvx2OpsF32 : nullptr;
}

}  // namespace kernels
}  // namespace planar

#endif  // PLANAR_HAVE_AVX2
