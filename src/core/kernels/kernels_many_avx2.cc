// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// AVX2 multi-query kernel: a register-blocked micro-GEMM of 2 query
// vectors x 4 phi rows per iteration (8 independent accumulators plus the
// row and query loads stay within the 16 ymm registers). Each row block
// is loaded from memory once and dotted against both queries, so the row
// traffic — the bottleneck the batched execution layer exists to share —
// is amortized across the query pair.
//
// Compiled with -mavx2 -mfma -ffp-contract=off (src/core/CMakeLists.txt);
// see kernels_avx2.cc for the dispatch and portability rules. The
// bit-identical contract of kernels.h applies unchanged: per (query, row)
// the accumulator lanes, the ((s0 + s2) + (s1 + s3)) reduction, the
// sequential tail, and the final bias add happen in exactly the scalar
// reference's order, with vmulpd/vaddpd never contracted into FMAs.

#include "core/kernels/kernels.h"
#include "core/kernels/kernels_internal.h"

#if PLANAR_HAVE_AVX2

#include <immintrin.h>

namespace planar {
namespace kernels {
namespace detail {

namespace {

// Reduces a 4-lane accumulator as ((s0 + s2) + (s1 + s3)) — the same
// helper as kernels_avx2.cc, duplicated so each kernel TU stays
// self-contained.
inline double ReduceBlocked(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);       // [s0, s1]
  const __m128d hi = _mm256_extractf128_pd(acc, 1);     // [s2, s3]
  const __m128d pair = _mm_add_pd(lo, hi);              // [s0+s2, s1+s3]
  const __m128d swapped = _mm_unpackhi_pd(pair, pair);  // [s1+s3, s1+s3]
  return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
}

// Sequential tail for dim % 4 trailing entries.
inline double TailDot(const double* a, const double* row, size_t from,
                      size_t dim) {
  double tail = 0.0;
  for (size_t j = from; j < dim; ++j) tail += a[j] * row[j];
  return tail;
}

inline double DotOneAvx2(const double* a, const double* row, size_t dim) {
  __m256d acc = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= dim; j += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(row + j)));
  }
  return ReduceBlocked(acc) + TailDot(a, row, j, dim);
}

}  // namespace

void DotBlockManyAvx2(const double* const* qs, const double* biases,
                      size_t num_q, size_t dim, const double* rows,
                      size_t stride, const uint32_t* ids, size_t count,
                      double* out, size_t out_stride) {
  size_t qi = 0;
  for (; qi + 2 <= num_q; qi += 2) {
    const double* a0 = qs[qi];
    const double* a1 = qs[qi + 1];
    const double b0 = biases[qi];
    const double b1 = biases[qi + 1];
    double* out0 = out + qi * out_stride;
    double* out1 = out0 + out_stride;
    size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      const double* r0 = rows + static_cast<size_t>(ids[i]) * stride;
      const double* r1 = rows + static_cast<size_t>(ids[i + 1]) * stride;
      const double* r2 = rows + static_cast<size_t>(ids[i + 2]) * stride;
      const double* r3 = rows + static_cast<size_t>(ids[i + 3]) * stride;
      __m256d acc00 = _mm256_setzero_pd();
      __m256d acc01 = _mm256_setzero_pd();
      __m256d acc02 = _mm256_setzero_pd();
      __m256d acc03 = _mm256_setzero_pd();
      __m256d acc10 = _mm256_setzero_pd();
      __m256d acc11 = _mm256_setzero_pd();
      __m256d acc12 = _mm256_setzero_pd();
      __m256d acc13 = _mm256_setzero_pd();
      size_t j = 0;
      for (; j + 4 <= dim; j += 4) {
        const __m256d av0 = _mm256_loadu_pd(a0 + j);
        const __m256d av1 = _mm256_loadu_pd(a1 + j);
        const __m256d rv0 = _mm256_loadu_pd(r0 + j);
        acc00 = _mm256_add_pd(acc00, _mm256_mul_pd(av0, rv0));
        acc10 = _mm256_add_pd(acc10, _mm256_mul_pd(av1, rv0));
        const __m256d rv1 = _mm256_loadu_pd(r1 + j);
        acc01 = _mm256_add_pd(acc01, _mm256_mul_pd(av0, rv1));
        acc11 = _mm256_add_pd(acc11, _mm256_mul_pd(av1, rv1));
        const __m256d rv2 = _mm256_loadu_pd(r2 + j);
        acc02 = _mm256_add_pd(acc02, _mm256_mul_pd(av0, rv2));
        acc12 = _mm256_add_pd(acc12, _mm256_mul_pd(av1, rv2));
        const __m256d rv3 = _mm256_loadu_pd(r3 + j);
        acc03 = _mm256_add_pd(acc03, _mm256_mul_pd(av0, rv3));
        acc13 = _mm256_add_pd(acc13, _mm256_mul_pd(av1, rv3));
      }
      out0[i] = ReduceBlocked(acc00) + TailDot(a0, r0, j, dim) + b0;
      out0[i + 1] = ReduceBlocked(acc01) + TailDot(a0, r1, j, dim) + b0;
      out0[i + 2] = ReduceBlocked(acc02) + TailDot(a0, r2, j, dim) + b0;
      out0[i + 3] = ReduceBlocked(acc03) + TailDot(a0, r3, j, dim) + b0;
      out1[i] = ReduceBlocked(acc10) + TailDot(a1, r0, j, dim) + b1;
      out1[i + 1] = ReduceBlocked(acc11) + TailDot(a1, r1, j, dim) + b1;
      out1[i + 2] = ReduceBlocked(acc12) + TailDot(a1, r2, j, dim) + b1;
      out1[i + 3] = ReduceBlocked(acc13) + TailDot(a1, r3, j, dim) + b1;
    }
    for (; i < count; ++i) {
      const double* r = rows + static_cast<size_t>(ids[i]) * stride;
      out0[i] = DotOneAvx2(a0, r, dim) + b0;
      out1[i] = DotOneAvx2(a1, r, dim) + b1;
    }
  }
  if (qi < num_q) {
    // Odd query out: the plain 4-row gather kernel (same table this
    // function is dispatched from, so AVX2 is known-supported here).
    Avx2Ops()->dot_gather(qs[qi], dim, rows, stride, ids, count, biases[qi],
                          out + qi * out_stride);
  }
}

}  // namespace detail
}  // namespace kernels
}  // namespace planar

#endif  // PLANAR_HAVE_AVX2
