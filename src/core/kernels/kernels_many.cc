// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Portable multi-query kernels: dot_block_many (a block of phi rows
// against several query vectors at once — the inner loop of cross-query
// batched verification, core/batch.cc) and CompressAcceptMany (its
// per-query branch-light accept scatter). This translation unit compiles
// with -ffp-contract=off like every kernel TU, and the scalar
// dot_block_many is defined as one dot_gather per query, so each
// (query, row) product uses exactly the canonical blocked summation order
// of kernels.h — batched answers can never differ from serial ones.

#include "core/kernels/kernels.h"
#include "core/kernels/kernels_internal.h"

namespace planar {
namespace kernels {

namespace detail {

void DotBlockManyScalar(const double* const* qs, const double* biases,
                        size_t num_q, size_t dim, const double* rows,
                        size_t stride, const uint32_t* ids, size_t count,
                        double* out, size_t out_stride) {
  // One gather sweep per query. Re-reading the row block per query is the
  // scalar reference's cost model; the AVX2 path amortizes the row loads
  // across query pairs, which is where the batched speedup comes from.
  const DotOps& scalar = ScalarOps();
  for (size_t qi = 0; qi < num_q; ++qi) {
    scalar.dot_gather(qs[qi], dim, rows, stride, ids, count, biases[qi],
                      out + qi * out_stride);
  }
}

}  // namespace detail

void CompressAcceptMany(const double* residuals, size_t residual_stride,
                        size_t num_q, const uint32_t* ids, const size_t* begin,
                        const size_t* end, const bool* less_equal,
                        uint32_t* const* outs, size_t* kept) {
  // Per-query compress-store over that query's sub-slice of the block:
  // the per-row loop stays branch-free (CompressAccept), and disjoint
  // output buffers mean no cross-query dependence.
  for (size_t qi = 0; qi < num_q; ++qi) {
    kept[qi] = CompressAccept(residuals + qi * residual_stride + begin[qi],
                              ids + begin[qi], end[qi] - begin[qi],
                              less_equal[qi], outs[qi]);
  }
}

}  // namespace kernels
}  // namespace planar
