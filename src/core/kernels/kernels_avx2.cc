// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// AVX2 kernels. This translation unit alone compiles with -mavx2 -mfma
// -ffp-contract=off (set in src/core/CMakeLists.txt; committed build files
// must never use -march=native — see CONTRIBUTING.md); nothing here runs
// unless Avx2Ops() verified cpuid support at dispatch time, so the rest of
// the binary stays runnable on any x86-64.
//
// Bit-identical contract (kernels.h): the vector accumulator's lane l holds
// the partial sum over indices j % 4 == l using per-lane IEEE mul then add
// (no FMA contraction of these two ops), and the horizontal reduction
// computes ((s0 + s2) + (s1 + s3)) — exactly the scalar reference. The FMA
// unit still buys the throughput win: vmulpd/vaddpd dual-issue on the FMA
// ports, and processing four rows per iteration keeps all chains busy.

#include "core/kernels/kernels.h"

#if PLANAR_HAVE_AVX2

#include <immintrin.h>

#include "core/kernels/kernels_internal.h"

namespace planar {
namespace kernels {

namespace {

// Reduces a 4-lane accumulator as ((s0 + s2) + (s1 + s3)).
inline double ReduceBlocked(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);       // [s0, s1]
  const __m128d hi = _mm256_extractf128_pd(acc, 1);     // [s2, s3]
  const __m128d pair = _mm_add_pd(lo, hi);              // [s0+s2, s1+s3]
  const __m128d swapped = _mm_unpackhi_pd(pair, pair);  // [s1+s3, s1+s3]
  return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
}

// Sequential tail for dim % 4 trailing entries, same order as the scalar
// reference's tail loop.
inline double TailDot(const double* a, const double* row, size_t from,
                      size_t dim) {
  double tail = 0.0;
  for (size_t j = from; j < dim; ++j) tail += a[j] * row[j];
  return tail;
}

double DotOneAvx2(const double* a, const double* row, size_t dim) {
  __m256d acc = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 4 <= dim; j += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(row + j)));
  }
  return ReduceBlocked(acc) + TailDot(a, row, j, dim);
}

// Four rows per iteration: independent accumulation chains per row hide
// the add latency; the shared query vector loads are hoisted by the
// compiler across the row group.
void DotGatherAvx2(const double* a, size_t dim, const double* rows,
                   size_t stride, const uint32_t* ids, size_t count,
                   double bias, double* out) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const double* r0 = rows + static_cast<size_t>(ids[i]) * stride;
    const double* r1 = rows + static_cast<size_t>(ids[i + 1]) * stride;
    const double* r2 = rows + static_cast<size_t>(ids[i + 2]) * stride;
    const double* r3 = rows + static_cast<size_t>(ids[i + 3]) * stride;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd();
    __m256d acc3 = _mm256_setzero_pd();
    size_t j = 0;
    for (; j + 4 <= dim; j += 4) {
      const __m256d av = _mm256_loadu_pd(a + j);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(av, _mm256_loadu_pd(r0 + j)));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(av, _mm256_loadu_pd(r1 + j)));
      acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(av, _mm256_loadu_pd(r2 + j)));
      acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(av, _mm256_loadu_pd(r3 + j)));
    }
    out[i] = ReduceBlocked(acc0) + TailDot(a, r0, j, dim) + bias;
    out[i + 1] = ReduceBlocked(acc1) + TailDot(a, r1, j, dim) + bias;
    out[i + 2] = ReduceBlocked(acc2) + TailDot(a, r2, j, dim) + bias;
    out[i + 3] = ReduceBlocked(acc3) + TailDot(a, r3, j, dim) + bias;
  }
  for (; i < count; ++i) {
    out[i] =
        DotOneAvx2(a, rows + static_cast<size_t>(ids[i]) * stride, dim) +
        bias;
  }
}

void DotRangeAvx2(const double* a, size_t dim, const double* rows,
                  size_t stride, size_t first_row, size_t count, double bias,
                  double* out) {
  const double* row = rows + first_row * stride;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const double* r0 = row;
    const double* r1 = row + stride;
    const double* r2 = row + 2 * stride;
    const double* r3 = row + 3 * stride;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd();
    __m256d acc3 = _mm256_setzero_pd();
    size_t j = 0;
    for (; j + 4 <= dim; j += 4) {
      const __m256d av = _mm256_loadu_pd(a + j);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(av, _mm256_loadu_pd(r0 + j)));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(av, _mm256_loadu_pd(r1 + j)));
      acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(av, _mm256_loadu_pd(r2 + j)));
      acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(av, _mm256_loadu_pd(r3 + j)));
    }
    out[i] = ReduceBlocked(acc0) + TailDot(a, r0, j, dim) + bias;
    out[i + 1] = ReduceBlocked(acc1) + TailDot(a, r1, j, dim) + bias;
    out[i + 2] = ReduceBlocked(acc2) + TailDot(a, r2, j, dim) + bias;
    out[i + 3] = ReduceBlocked(acc3) + TailDot(a, r3, j, dim) + bias;
    row += 4 * stride;
  }
  for (; i < count; ++i, row += stride) {
    out[i] = DotOneAvx2(a, row, dim) + bias;
  }
}

constexpr DotOps kAvx2Ops = {&DotOneAvx2, &DotGatherAvx2, &DotRangeAvx2,
                             &detail::DotBlockManyAvx2, "avx2"};

}  // namespace

const DotOps* Avx2Ops() {
  // cpuid checked once; the TU being compiled does not imply the CPU runs
  // AVX2 (the binary must start on any x86-64).
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported ? &kAvx2Ops : nullptr;
}

}  // namespace kernels
}  // namespace planar

#endif  // PLANAR_HAVE_AVX2
