// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Portable scalar f32 kernels (the canonical eight-lane blocked-summation
// reference) and their one-time runtime dispatch. Compiled with
// -ffp-contract=off like every kernel TU, so the per-lane multiply-adds
// are never fused and the AVX2 f32 path reproduces these results
// bit-for-bit (see the DotOpsF32 contract in kernels.h).

#include "core/kernels/kernels.h"

namespace planar {
namespace kernels {

namespace {

// The canonical f32 blocked dot product: eight partial sums over lanes
// j % 8, reduced as t_l = s_l + s_{l+4} then ((t0 + t2) + (t1 + t3)), and
// a sequential tail. Mirrors how one __m256 of eight floats is reduced
// (low/high 128-bit halves added first), so the AVX2 implementation can
// match it exactly.
float DotOneF32Scalar(const float* a, const float* row, size_t dim) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  float s4 = 0.0f, s5 = 0.0f, s6 = 0.0f, s7 = 0.0f;
  size_t j = 0;
  for (; j + 8 <= dim; j += 8) {
    s0 += a[j] * row[j];
    s1 += a[j + 1] * row[j + 1];
    s2 += a[j + 2] * row[j + 2];
    s3 += a[j + 3] * row[j + 3];
    s4 += a[j + 4] * row[j + 4];
    s5 += a[j + 5] * row[j + 5];
    s6 += a[j + 6] * row[j + 6];
    s7 += a[j + 7] * row[j + 7];
  }
  const float t0 = s0 + s4;
  const float t1 = s1 + s5;
  const float t2 = s2 + s6;
  const float t3 = s3 + s7;
  float tail = 0.0f;
  for (; j < dim; ++j) tail += a[j] * row[j];
  return ((t0 + t2) + (t1 + t3)) + tail;
}

void DotGatherF32Scalar(const float* a, size_t dim, const float* rows,
                        size_t stride, const uint32_t* ids, size_t count,
                        float bias, float* out) {
  // Two-way row unroll, like the f64 gather: independent accumulation
  // chains for adjacent candidates hide load latency.
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const float* r0 = rows + static_cast<size_t>(ids[i]) * stride;
    const float* r1 = rows + static_cast<size_t>(ids[i + 1]) * stride;
    out[i] = DotOneF32Scalar(a, r0, dim) + bias;
    out[i + 1] = DotOneF32Scalar(a, r1, dim) + bias;
  }
  for (; i < count; ++i) {
    out[i] =
        DotOneF32Scalar(a, rows + static_cast<size_t>(ids[i]) * stride, dim) +
        bias;
  }
}

void DotRangeF32Scalar(const float* a, size_t dim, const float* rows,
                       size_t stride, size_t first_row, size_t count,
                       float bias, float* out) {
  const float* row = rows + first_row * stride;
  for (size_t i = 0; i < count; ++i, row += stride) {
    out[i] = DotOneF32Scalar(a, row, dim) + bias;
  }
}

void DotBlockManyF32Scalar(const float* const* qs, const float* biases,
                           size_t num_q, size_t dim, const float* rows,
                           size_t stride, const uint32_t* ids, size_t count,
                           float* out, size_t out_stride) {
  for (size_t q = 0; q < num_q; ++q) {
    DotGatherF32Scalar(qs[q], dim, rows, stride, ids, count, biases[q],
                       out + q * out_stride);
  }
}

constexpr DotOpsF32 kScalarOpsF32 = {&DotOneF32Scalar, &DotGatherF32Scalar,
                                     &DotRangeF32Scalar,
                                     &DotBlockManyF32Scalar, "scalar-f32"};

const DotOpsF32& DispatchF32() {
  // Piggybacks on the f64 dispatch decision: SimdEnabled() is false when
  // PLANAR_DISABLE_SIMD is set or the CPU lacks avx2+fma, and the f32
  // backend must always match the f64 one (a mixed scalar/AVX2 pairing
  // would be harmless for correctness but confusing to benchmark).
  if (!SimdEnabled()) return kScalarOpsF32;
  const DotOpsF32* avx2 = Avx2OpsF32();
  if (avx2 != nullptr) return *avx2;
  return kScalarOpsF32;
}

}  // namespace

#if !PLANAR_HAVE_AVX2
const DotOpsF32* Avx2OpsF32() { return nullptr; }
#endif

const DotOpsF32& ScalarOpsF32() { return kScalarOpsF32; }

const DotOpsF32& OpsF32() {
  static const DotOpsF32& ops = DispatchF32();
  return ops;
}

}  // namespace kernels
}  // namespace planar
