// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Cross-TU entry points of the multi-query kernels (kernels_many.cc and
// kernels_many_avx2.cc), referenced by the dispatch tables in kernels.cc
// and kernels_avx2.cc. Internal to src/core/kernels — everything callers
// need is in kernels.h.

#ifndef PLANAR_CORE_KERNELS_KERNELS_INTERNAL_H_
#define PLANAR_CORE_KERNELS_KERNELS_INTERNAL_H_

#include <cstddef>
#include <cstdint>

namespace planar {
namespace kernels {
namespace detail {

// The portable dot_block_many reference (see DotOps::dot_block_many).
void DotBlockManyScalar(const double* const* qs, const double* biases,
                        size_t num_q, size_t dim, const double* rows,
                        size_t stride, const uint32_t* ids, size_t count,
                        double* out, size_t out_stride);

#if PLANAR_HAVE_AVX2
// The AVX2 register-blocked micro-GEMM (2 queries x 4 rows), bit-identical
// to DotBlockManyScalar.
void DotBlockManyAvx2(const double* const* qs, const double* biases,
                      size_t num_q, size_t dim, const double* rows,
                      size_t stride, const uint32_t* ids, size_t count,
                      double* out, size_t out_stride);
#endif

}  // namespace detail
}  // namespace kernels
}  // namespace planar

#endif  // PLANAR_CORE_KERNELS_KERNELS_INTERNAL_H_
