// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Portable scalar kernels (the canonical blocked-summation reference) and
// the one-time runtime dispatch. This translation unit compiles with
// -ffp-contract=off so the per-lane multiply-adds are never fused into
// FMAs, keeping results bit-identical to the AVX2 path (see kernels.h).

#include "core/kernels/kernels.h"

#include <cstdlib>

#include "core/kernels/kernels_internal.h"

namespace planar {
namespace kernels {

namespace {

// The canonical blocked dot product: four partial sums over lanes j % 4,
// reduced as ((s0 + s2) + (s1 + s3)), then a sequential tail. Every SIMD
// implementation must reproduce this order exactly.
double DotOneScalar(const double* a, const double* row, size_t dim) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t j = 0;
  for (; j + 4 <= dim; j += 4) {
    s0 += a[j] * row[j];
    s1 += a[j + 1] * row[j + 1];
    s2 += a[j + 2] * row[j + 2];
    s3 += a[j + 3] * row[j + 3];
  }
  double tail = 0.0;
  for (; j < dim; ++j) tail += a[j] * row[j];
  return ((s0 + s2) + (s1 + s3)) + tail;
}

void DotGatherScalar(const double* a, size_t dim, const double* rows,
                     size_t stride, const uint32_t* ids, size_t count,
                     double bias, double* out) {
  // Two-way row unroll: independent accumulation chains for adjacent
  // candidates hide load latency even without vector registers.
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const double* r0 = rows + static_cast<size_t>(ids[i]) * stride;
    const double* r1 = rows + static_cast<size_t>(ids[i + 1]) * stride;
    out[i] = DotOneScalar(a, r0, dim) + bias;
    out[i + 1] = DotOneScalar(a, r1, dim) + bias;
  }
  for (; i < count; ++i) {
    out[i] =
        DotOneScalar(a, rows + static_cast<size_t>(ids[i]) * stride, dim) +
        bias;
  }
}

void DotRangeScalar(const double* a, size_t dim, const double* rows,
                    size_t stride, size_t first_row, size_t count,
                    double bias, double* out) {
  const double* row = rows + first_row * stride;
  for (size_t i = 0; i < count; ++i, row += stride) {
    out[i] = DotOneScalar(a, row, dim) + bias;
  }
}

constexpr DotOps kScalarOps = {&DotOneScalar, &DotGatherScalar,
                               &DotRangeScalar, &detail::DotBlockManyScalar,
                               "scalar"};

bool SimdDisabledByEnv() {
  // Read exactly once, from the dispatch latch below, before any worker
  // threads exist; nothing in the library calls setenv, so the
  // concurrent-getenv hazard clang-tidy guards against cannot arise.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("PLANAR_DISABLE_SIMD");
  if (env == nullptr || env[0] == '\0') return false;
  return !(env[0] == '0' && env[1] == '\0');
}

const DotOps& Dispatch() {
  if (SimdDisabledByEnv()) return kScalarOps;
  const DotOps* avx2 = Avx2Ops();
  if (avx2 != nullptr) return *avx2;
  return kScalarOps;
}

}  // namespace

#if !PLANAR_HAVE_AVX2
const DotOps* Avx2Ops() { return nullptr; }
#endif

const DotOps& ScalarOps() { return kScalarOps; }

const DotOps& Ops() {
  // Dispatch decided once, on first use; thread-safe by C++ static-init
  // rules. Every later call is a single indirection.
  static const DotOps& ops = Dispatch();
  return ops;
}

bool SimdEnabled() { return &Ops() != &kScalarOps; }

const char* BackendName() { return Ops().name; }

size_t CompressAccept(const double* residuals, const uint32_t* ids,
                      size_t count, bool less_equal, uint32_t* out) {
  size_t kept = 0;
  if (less_equal) {
    for (size_t i = 0; i < count; ++i) {
      out[kept] = ids[i];
      kept += static_cast<size_t>(residuals[i] <= 0.0);
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      out[kept] = ids[i];
      kept += static_cast<size_t>(residuals[i] >= 0.0);
    }
  }
  return kept;
}

size_t CompressAcceptRange(const double* residuals, uint32_t first_id,
                           size_t count, bool less_equal, uint32_t* out) {
  size_t kept = 0;
  if (less_equal) {
    for (size_t i = 0; i < count; ++i) {
      out[kept] = first_id + static_cast<uint32_t>(i);
      kept += static_cast<size_t>(residuals[i] <= 0.0);
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      out[kept] = first_id + static_cast<uint32_t>(i);
      kept += static_cast<size_t>(residuals[i] >= 0.0);
    }
  }
  return kept;
}

}  // namespace kernels
}  // namespace planar
