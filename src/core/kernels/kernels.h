// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Vectorized verification kernels: batched multi-row dot products over the
// row-major phi matrix plus a branch-light accept primitive. These are the
// inner loops of II verification (the dominant query cost, Figures 9-11 of
// the paper), the scan baseline, and key construction in Build/Rebuild.
//
// Dispatch: an AVX2/FMA-unit implementation is selected once at startup
// when (a) the binary was built with the AVX2 translation unit (x86-64 and
// the compiler accepts -mavx2 -mfma; never -march=native), (b) the CPU
// reports avx2+fma, and (c) the PLANAR_DISABLE_SIMD environment variable is
// unset/empty/"0". Otherwise the portable scalar implementation runs.
//
// Determinism contract: every implementation computes the dot product with
// the SAME fixed summation order — four independent partial sums over lanes
// j % 4, reduced as ((s0 + s2) + (s1 + s3)), plus a sequential tail for
// dim % 4 trailing entries — with no FMA contraction of the per-lane
// multiply-adds (the kernel TUs compile with -ffp-contract=off). The scalar
// and AVX2 paths therefore produce bit-identical results; switching
// backends can never change an accepted-id set. This blocked order differs
// from the sequential geometry/vec.h Dot by ordinary rounding
// (O(dim) * 0.5 ulp); key-boundary effects are absorbed by the index's
// epsilon_band guard, which routes near-boundary keys into the verified
// intermediate interval.

#ifndef PLANAR_CORE_KERNELS_KERNELS_H_
#define PLANAR_CORE_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace planar {
namespace kernels {

/// Rows processed per verification block. One deadline poll and one
/// residual buffer refill per block, so cancellation stays cooperative
/// without a clock read per row. Power of two, and kept equal to
/// kDeadlineCheckInterval so the polling cadence matches the pre-batched
/// scalar loops.
inline constexpr size_t kBlockRows = 256;

/// The dispatchable kernel set. All functions are pure and thread-safe.
struct DotOps {
  /// dot(a, row) over `dim` entries in the canonical blocked order.
  double (*dot_one)(const double* a, const double* row, size_t dim);

  /// out[i] = dot(a, rows + ids[i] * stride) + bias for i in [0, count).
  /// Gathered form: `ids` selects arbitrary rows of a row-major matrix
  /// based at `rows` with `stride` doubles per row. With bias = -b the
  /// outputs are signed residuals; with bias = a key shift they are keys.
  void (*dot_gather)(const double* a, size_t dim, const double* rows,
                     size_t stride, const uint32_t* ids, size_t count,
                     double bias, double* out);

  /// out[i] = dot(a, rows + (first_row + i) * stride) + bias.
  /// Contiguous form for sequential scans and bulk key construction.
  void (*dot_range)(const double* a, size_t dim, const double* rows,
                    size_t stride, size_t first_row, size_t count,
                    double bias, double* out);

  /// Multi-query form:
  ///
  ///   out[q * out_stride + i] = dot(qs[q], rows + ids[i] * stride)
  ///                             + biases[q]
  ///
  /// for q in [0, num_q), i in [0, count): one gathered block of rows
  /// dotted against `num_q` query vectors at once (cross-query batched
  /// verification, core/batch.cc). The SIMD implementation loads each row
  /// block once and amortizes it across queries (register-blocked
  /// micro-GEMM); per (query, row) the summation order is the canonical
  /// blocked order, so results are bit-identical to num_q separate
  /// dot_gather calls. Requires count <= out_stride.
  void (*dot_block_many)(const double* const* qs, const double* biases,
                         size_t num_q, size_t dim, const double* rows,
                         size_t stride, const uint32_t* ids, size_t count,
                         double* out, size_t out_stride);

  /// Human-readable backend name ("scalar", "avx2").
  const char* name;
};

/// The single-precision kernel set, operating on the optional f32 mirror
/// of the phi matrix (RowMatrix::f32_data). Same shapes as DotOps with
/// float storage, query, bias, and outputs.
///
/// Determinism contract (f32): every implementation computes the dot
/// product with the SAME fixed summation order — eight independent partial
/// sums over lanes j % 8, reduced as t_l = s_l + s_{l+4} for l in 0..3 and
/// then ((t0 + t2) + (t1 + t3)), plus a sequential tail for dim % 8
/// trailing entries — with no FMA contraction (same -ffp-contract=off TUs
/// as the f64 kernels). Eight lanes because one __m256 holds eight floats;
/// the scalar reference mirrors that reduction tree exactly, so scalar and
/// AVX2 f32 residuals are bit-identical and the mixed-precision band
/// classification (core/mixed.h) never depends on the dispatched backend.
struct DotOpsF32 {
  /// dot(a, row) over `dim` entries in the canonical f32 blocked order.
  float (*dot_one)(const float* a, const float* row, size_t dim);

  /// out[i] = dot(a, rows + ids[i] * stride) + bias for i in [0, count).
  void (*dot_gather)(const float* a, size_t dim, const float* rows,
                     size_t stride, const uint32_t* ids, size_t count,
                     float bias, float* out);

  /// out[i] = dot(a, rows + (first_row + i) * stride) + bias.
  void (*dot_range)(const float* a, size_t dim, const float* rows,
                    size_t stride, size_t first_row, size_t count, float bias,
                    float* out);

  /// Multi-query form, shape-identical to DotOps::dot_block_many: one
  /// gathered row block dotted against num_q query vectors, each
  /// (query, row) pair in the canonical f32 blocked order. Requires
  /// count <= out_stride.
  void (*dot_block_many)(const float* const* qs, const float* biases,
                         size_t num_q, size_t dim, const float* rows,
                         size_t stride, const uint32_t* ids, size_t count,
                         float* out, size_t out_stride);

  /// Human-readable backend name ("scalar-f32", "avx2-f32").
  const char* name;
};

/// The active kernel set. Dispatch is decided exactly once (first call),
/// honoring the PLANAR_DISABLE_SIMD environment variable.
const DotOps& Ops();

/// The portable scalar implementation (always available; the reference
/// the SIMD paths must match bit-for-bit).
const DotOps& ScalarOps();

/// The AVX2/FMA-unit implementation, or nullptr when the binary was built
/// without it. Exposed so equivalence tests can compare both paths in one
/// process regardless of which one dispatch selected.
const DotOps* Avx2Ops();

/// The active f32 kernel set. Follows the same one-time dispatch decision
/// as Ops(): PLANAR_DISABLE_SIMD (or a CPU without avx2+fma) selects the
/// scalar f32 reference. PLANAR_DISABLE_F32 is handled one layer up, in
/// core/mixed.h — it gates whether the mixed-precision path runs at all,
/// not which f32 backend it uses.
const DotOpsF32& OpsF32();

/// The portable scalar f32 implementation (always available; the reference
/// the f32 SIMD path must match bit-for-bit).
const DotOpsF32& ScalarOpsF32();

/// The AVX2/FMA f32 implementation, or nullptr when the binary was built
/// without it.
const DotOpsF32* Avx2OpsF32();

/// True iff Ops() is a SIMD implementation.
bool SimdEnabled();

/// Name of the active backend (Ops().name).
const char* BackendName();

/// Branch-light accept: appends ids[i] to out for every i whose residual
/// satisfies the predicate (residual <= 0 when less_equal, else
/// residual >= 0), preserving order, via compress-store (unconditional
/// write + conditional increment — no data-dependent branch). Returns the
/// number of ids stored. `out` must have room for `count` entries and must
/// not alias `ids`. NaN residuals never match, like the scalar comparison.
size_t CompressAccept(const double* residuals, const uint32_t* ids,
                      size_t count, bool less_equal, uint32_t* out);

/// CompressAccept for consecutive ids first_id, first_id + 1, ...
/// (the sequential-scan case, where materializing an id array is waste).
size_t CompressAcceptRange(const double* residuals, uint32_t first_id,
                           size_t count, bool less_equal, uint32_t* out);

/// Per-query CompressAccept over a dot_block_many residual matrix: for
/// each query q in [0, num_q), scans its residual row
/// (residuals + q * residual_stride) over the sub-slice [begin[q], end[q])
/// of the block and scatters the accepted ids — order preserved, no
/// per-row branch — into outs[q], recording the count in kept[q]. The
/// sub-slices let queries whose intermediate interval only partially
/// overlaps a coalesced block skip the foreign rows. outs[q] must have
/// room for end[q] - begin[q] entries and the buffers must be disjoint
/// from `ids` and from each other.
void CompressAcceptMany(const double* residuals, size_t residual_stride,
                        size_t num_q, const uint32_t* ids, const size_t* begin,
                        const size_t* end, const bool* less_equal,
                        uint32_t* const* outs, size_t* kept);

}  // namespace kernels
}  // namespace planar

#endif  // PLANAR_CORE_KERNELS_KERNELS_H_
