// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/topk.h"

#include <algorithm>

#include "common/macros.h"

namespace planar {

namespace {

bool HeapLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}

}  // namespace

TopKBuffer::TopKBuffer(size_t k, size_t candidate_bound) : k_(k) {
  PLANAR_CHECK_GT(k, 0u);
  // One up-front reservation sized to what can actually be held: Insert
  // on the hot walk never reallocates, and an absurd k cannot
  // over-allocate past the candidate count.
  heap_.reserve(std::min(k, candidate_bound));
}

void TopKBuffer::Insert(uint32_t id, double distance) {
  if (heap_.size() < k_) {
    heap_.push_back({id, distance});
    std::push_heap(heap_.begin(), heap_.end(), HeapLess);
    return;
  }
  if (!HeapLess({id, distance}, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), HeapLess);
  heap_.back() = {id, distance};
  std::push_heap(heap_.begin(), heap_.end(), HeapLess);
}

std::vector<Neighbor> TopKBuffer::TakeSorted() {
  std::sort(heap_.begin(), heap_.end(), HeapLess);
  return std::move(heap_);
}

}  // namespace planar
