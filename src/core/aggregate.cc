// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/aggregate.h"

#include <algorithm>

namespace planar {

double CanonicalBlockedSum(const double* v, size_t n) {
  double total = 0.0;
  for (size_t off = 0; off < n; off += kAggregateBlockRows) {
    const size_t blk = std::min(kAggregateBlockRows, n - off);
    double block_sum = 0.0;
    for (size_t i = 0; i < blk; ++i) block_sum += v[off + i];
    total += block_sum;
  }
  return total;
}

void PrefixAggregates::Clear() {
  // agg-ok: PrefixAggregates owns its storage; this is the canonical
  // construction/teardown site the lint rule points everyone else at.
  sum.clear();
  sum.shrink_to_fit();
  pos.clear();
  pos.shrink_to_fit();
  neg.clear();
  neg.shrink_to_fit();
}

size_t PrefixAggregates::MemoryUsage() const {
  return (sum.capacity() + pos.capacity() + neg.capacity()) * sizeof(double);
}

void BuildPrefixAggregates(const double* payload, size_t stride,
                           const uint32_t* ids, size_t n,
                           PrefixAggregates* out) {
  // agg-ok: the one sanctioned construction of prefix-aggregate arrays
  // (sequential rank-order accumulation; see the header's determinism
  // rule).
  out->sum.assign(n + 1, 0.0);
  out->pos.assign(n + 1, 0.0);
  out->neg.assign(n + 1, 0.0);
  double run_sum = 0.0;
  double run_pos = 0.0;
  double run_neg = 0.0;
  for (size_t r = 0; r < n; ++r) {
    const double v = payload[static_cast<size_t>(ids[r]) * stride];
    run_sum += v;
    run_pos += std::max(v, 0.0);
    run_neg += std::min(v, 0.0);
    out->sum[r + 1] = run_sum;
    out->pos[r + 1] = run_pos;
    out->neg[r + 1] = run_neg;
  }
}

}  // namespace planar
