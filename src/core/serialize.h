// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Persistence for PlanarIndexSet. The on-disk format stores the phi
// matrix, the options, and every index's normal and octant; the sorted
// key structures are rebuilt on load (index construction is loglinear
// and fast, so this keeps the format small, versionable, and immune to
// backend/layout changes).
//
// Format (little-endian):
//   magic "PLNRIDX1" | options | dim | n | row-major phi data |
//   #indices | per index: octant bits (u64) + normal doubles

#ifndef PLANAR_CORE_SERIALIZE_H_
#define PLANAR_CORE_SERIALIZE_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "core/index_set.h"

namespace planar {

/// Writes the set (matrix + index definitions) to `path`.
Status SaveIndexSet(const PlanarIndexSet& set, const std::string& path);

/// Reads a set written by SaveIndexSet and rebuilds its indices.
/// `options` overrides the stored backend/tuning knobs when non-null.
Result<PlanarIndexSet> LoadIndexSet(const std::string& path);

}  // namespace planar

#endif  // PLANAR_CORE_SERIALIZE_H_
