// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Persistence for PlanarIndexSet. The on-disk format stores the phi
// matrix, the options, and every index's normal and octant; the sorted
// key structures are rebuilt on load (index construction is loglinear
// and fast, so this keeps the format small, versionable, and immune to
// backend/layout changes).
//
// Format v2 (little-endian):
//   magic "PLNRIDX2" | crc32 (u32, over the payload) | payload size (u64) |
//   payload: options | dim | n | row-major phi data |
//            #indices | per index: octant bits (u64) + normal doubles
//
// The checksum covers every payload byte, so a truncated or bit-flipped
// snapshot fails with kDataLoss instead of rebuilding a garbage index.
// v1 files ("PLNRIDX1": the same payload with no checksum header) are
// still readable.

#ifndef PLANAR_CORE_SERIALIZE_H_
#define PLANAR_CORE_SERIALIZE_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "core/index_set.h"

namespace planar {

/// Writes the set (matrix + index definitions) to `path` in format v2.
Status SaveIndexSet(const PlanarIndexSet& set, const std::string& path);

/// Reads a set written by SaveIndexSet and rebuilds its indices with the
/// options stored in the file. Fails with kDataLoss when a v2 checksum
/// does not match (truncation, bit flips).
Result<PlanarIndexSet> LoadIndexSet(const std::string& path);

/// Same, but `options` overrides the stored backend/tuning knobs when
/// non-null: the indices are rebuilt with *options instead of the
/// persisted record (e.g. load a sorted-array snapshot onto the B+-tree
/// backend). Passing nullptr is identical to the single-argument form.
Result<PlanarIndexSet> LoadIndexSet(const std::string& path,
                                    const IndexSetOptions* options);

}  // namespace planar

#endif  // PLANAR_CORE_SERIALIZE_H_
