// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// The Planar index (Sections 4 and 6 of the paper): one set of parallel
// hyperplanes with normal `c`, indexing the points by key(x) = <c, psi(x)>
// where psi is phi translated-and-mirrored into the first hyper octant.
//
// Query processing partitions the sorted key list into three rank ranges
// by two binary searches:
//
//   prefix  [0, smaller_end)   keys <=  b'/rmax + C0min  (SI)
//   middle  [smaller_end, larger_begin)                  (II, verified)
//   suffix  [larger_begin, n)  keys  >  b'/rmin + C0max  (LI)
//
// with rmax/rmin = max/min over active axes of a~_i / c_i and C0min/C0max
// correcting for axes whose query parameter is zero. For a <=-query the
// prefix is accepted outright and the suffix rejected outright
// (Observations 1 and 2); for a >=-query the roles swap. Only the middle
// range ever evaluates the scalar product.

#ifndef PLANAR_CORE_PLANAR_INDEX_H_
#define PLANAR_CORE_PLANAR_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/deadline.h"
#include "common/result.h"
#include "common/status.h"
#include "core/aggregate.h"
#include "core/eytzinger.h"
#include "core/mixed.h"
#include "core/query.h"
#include "core/row_matrix.h"
#include "core/topk.h"
#include "core/translation.h"
#include "geometry/octant.h"
#include "learn/learned_cdf.h"

namespace planar {

/// Per-query bookkeeping: how many points were pruned without evaluating
/// the scalar product (the quantity behind Figures 9 and 10).
struct QueryStats {
  size_t num_points = 0;          ///< points considered (n)
  size_t accepted_directly = 0;   ///< accepted without evaluation
  size_t rejected_directly = 0;   ///< rejected without evaluation
  size_t verified = 0;            ///< scalar products evaluated (|II|)
  size_t result_size = 0;         ///< matching points reported
  int index_used = -1;            ///< set-level: which index served; -1 = scan

  /// Fraction of points accepted or rejected without evaluation.
  double PruningFraction() const {
    if (num_points == 0) return 1.0;
    return static_cast<double>(accepted_directly + rejected_directly) /
           static_cast<double>(num_points);
  }
};

/// Result of an inequality query: matching row ids (in no particular
/// order) plus statistics.
struct InequalityResult {
  std::vector<uint32_t> ids;
  QueryStats stats;
};

/// Acceptable bound gap for approximate COUNT/SUM queries. The allowed
/// gap is max(absolute, relative * scale), where scale is the point
/// count n for COUNT and the total absolute payload for SUM. Both zero
/// (the default) demands an exact answer.
struct CountTolerance {
  double absolute = 0.0;
  double relative = 0.0;

  /// The largest acceptable gap at the given scale (>= 0; non-finite or
  /// negative inputs clamp to 0, i.e. exact).
  double Allowed(double scale) const {
    const double abs_ok = absolute > 0.0 ? absolute : 0.0;
    const double rel_ok = relative > 0.0 ? relative * scale : 0.0;
    const double allowed = abs_ok > rel_ok ? abs_ok : rel_ok;
    return allowed > 0.0 ? allowed : 0.0;
  }
};

/// Result of a COUNT inequality query. The true count always lies in
/// [lower, upper]; `estimate` is a point estimate inside those bounds
/// (the exact count when `exact`). At tolerance 0 the result is exact
/// and bit-equal to ScanInequality(...).ids.size().
struct CountResult {
  size_t lower = 0;
  size_t upper = 0;
  size_t estimate = 0;
  bool exact = false;            ///< lower == upper (bounds met or refined)
  bool refined = false;          ///< the II was (partially) streamed
  bool model_estimated = false;  ///< estimate came from the learned CDF
  QueryStats stats;

  size_t gap() const { return upper - lower; }
};

/// Result of a SUM/AVG inequality query over the configured payload
/// column. The true sum always lies in [sum_lower, sum_upper]; `sum` is
/// a point estimate inside those bounds (the exact deterministic sum
/// when `exact` — canonical blocked summation, see core/aggregate.h).
/// The COUNT bounds for the same predicate ride along in `count`.
struct AggregateResult {
  double sum_lower = 0.0;
  double sum_upper = 0.0;
  double sum = 0.0;
  bool exact = false;
  bool refined = false;
  CountResult count;

  /// Estimated average (exact when both sum and count are exact); 0 over
  /// an empty match set.
  double Average() const {
    return count.estimate == 0 ? 0.0 : sum / static_cast<double>(count.estimate);
  }
};

/// Statistics of a top-k query (Table 3 reports checked/total).
struct TopKStats {
  size_t num_points = 0;
  size_t verified_intermediate = 0;  ///< II points evaluated
  size_t scanned_accept_region = 0;  ///< directly-satisfying points evaluated
  bool early_terminated = false;     ///< lower-bound pruning fired
  int index_used = -1;

  /// Points whose scalar product was evaluated.
  size_t checked() const {
    return verified_intermediate + scanned_accept_region;
  }
};

/// Result of a top-k nearest neighbor query: up to k satisfying points in
/// ascending hyperplane distance.
struct TopKResult {
  std::vector<Neighbor> neighbors;
  TopKStats stats;
};

/// Construction options for a Planar index.
struct PlanarIndexOptions {
  /// Key storage backend.
  enum class Backend {
    kSortedArray,  ///< immutable-friendly; O(n) point updates, fastest scans
    kBTree,        ///< order-statistic B+-tree; O(log n) point updates
  };
  Backend backend = Backend::kSortedArray;

  /// Translation slack (see Translator::Options).
  Translator::Options translation;

  /// Relative floating-point guard band. Points whose key lies within the
  /// band of an interval boundary are pushed into the intermediate
  /// interval and verified exactly, so rounding in the key computation can
  /// never mis-accept or mis-reject a point.
  double epsilon_band = 1e-9;

  /// Axis exclusion (an extension of the paper's zero-parameter-axis
  /// remark): axes whose ratio a~_i / c_i is an extreme outlier widen the
  /// intermediate interval enormously; bounding their contribution by the
  /// per-axis psi range instead (the same treatment zero axes get) often
  /// shrinks it. At query time the exclusion set minimizing the interval
  /// width is chosen greedily over ratio-order prefixes/suffixes in
  /// O(d'^2). Sound for any choice; disable to reproduce the paper's
  /// intervals verbatim.
  bool enable_axis_exclusion = true;

  /// Intra-query parallel verification: intermediate intervals of at
  /// least kParallelVerifyMinRows candidates are sharded across this many
  /// threads (1 = always serial, 0 = hardware concurrency, n = n
  /// threads). Shard outputs are concatenated in shard order, so the
  /// result id order is identical to the serial path. Default serial: a
  /// serving layer (src/engine) already parallelizes across requests, and
  /// nesting thread pools there would oversubscribe; turn this on for
  /// large single-query workloads.
  size_t parallel_verify_threads = 1;

  /// Mixed-precision verification (DESIGN.md section 5j): when true and
  /// the phi matrix carries an f32 mirror (RowMatrix::EnableF32Mirror —
  /// PlanarIndexSet::Build does this automatically), II verification,
  /// top-k candidate evaluation, and the batch streaming path classify
  /// candidates with f32 kernels against a conservatively widened accept
  /// band and re-verify only band rows in f64. Emitted ids, order, and
  /// stats are bit-identical to the f64 reference; the win is ~2x fewer
  /// bytes streamed per candidate row. The index also keeps an f32 copy
  /// of its sorted keys for the top-k lower-bound walk. Ignored at
  /// runtime when the PLANAR_DISABLE_F32 environment variable is set.
  /// Not serialized: load paths rebuild mirrors from the stored doubles.
  bool mixed_precision = false;

  /// Learned key->rank CDF sidecar (DESIGN.md section 5k): built at
  /// every RefreshSearchLayout over the sorted keys and used for
  /// predict-then-probe boundary search (probe a +/-(max_error + 2)
  /// window, validate against the flat key array, fall back to the
  /// Eytzinger descent on any mismatch — answers are identical either
  /// way) and for model-based COUNT estimates between the sound
  /// [SI, LI] bounds. A fit whose exact max error exceeds
  /// kLearnedCdfMaxErrorBudget is discarded. Never serialized; rebuilt
  /// on load like the Eytzinger layout.
  bool learned_cdf = true;

  /// Payload column for SUM/AVG aggregate queries: an index into the phi
  /// matrix columns, or -1 (the default) for no payload. When set, every
  /// RefreshSearchLayout rebuilds rank-ordered prefix-aggregate arrays
  /// (core/aggregate.h) over that column, and AggregateInequality
  /// answers O(log n) SUM bounds / exact refined sums. Sorted-array
  /// backend only; not serialized (a loaded set must be reconfigured).
  int payload_column = -1;

  /// Build/Rebuild parallelism (1 = serial, 0 = hardware concurrency,
  /// n = n threads): key construction shards the dot_range kernel over
  /// contiguous row ranges and the (key, id) sort runs through
  /// core/sort_util's deterministic parallel sort, both of which are
  /// bit-identical to the serial path for any thread count. Matrices
  /// below kParallelBuildMinRows always build serially. Leave at 1 when
  /// an enclosing layer already parallelizes across indices
  /// (IndexSetOptions::build_threads) — nesting the two oversubscribes.
  size_t build_threads = 1;
};

/// Smallest intermediate interval worth sharding across threads; below
/// this, thread spawn/join costs more than the verification itself.
inline constexpr size_t kParallelVerifyMinRows = 8192;

/// Smallest matrix worth building with threads; below this, spawn/join
/// costs more than the key computation and sort combined.
inline constexpr size_t kParallelBuildMinRows = 16384;

/// Largest learned-CDF fit error worth probing: the probe window is
/// 2 * (max_error + 2) keys, so past this budget the windowed
/// std::upper_bound stops beating the full Eytzinger descent and the fit
/// is discarded at build (the fallback contract of DESIGN.md 5k).
inline constexpr size_t kLearnedCdfMaxErrorBudget = 512;

/// One Planar index over an externally-owned phi matrix.
///
/// Lifetime: the index holds a pointer to the PhiMatrix; the matrix must
/// outlive the index and must only be mutated through the maintenance
/// calls (Update / NotifyAppend) or a Rebuild must follow.
class PlanarIndex {
 public:
  /// Rank-range boundaries computed for a query (see file comment).
  struct Intervals {
    size_t smaller_end = 0;
    size_t larger_begin = 0;
  };

  PlanarIndex(PlanarIndex&&) = default;
  PlanarIndex& operator=(PlanarIndex&&) = default;
  PlanarIndex(const PlanarIndex&) = delete;
  PlanarIndex& operator=(const PlanarIndex&) = delete;

  /// Builds an index for the given octant. `normal` is the mirrored-space
  /// normal vector: every entry strictly positive, entry i corresponding
  /// to |a_i| of the expected queries (equivalently, the original-space
  /// normal is sign(O, i) * normal[i]). Requires a non-empty matrix with
  /// phi->dim() == normal.size() == octant.dim().
  static Result<PlanarIndex> Build(
      const PhiMatrix* phi, std::vector<double> normal, const Octant& octant,
      const PlanarIndexOptions& options = PlanarIndexOptions());

  /// Convenience: Build with the first hyper octant (all-positive
  /// parameters, all data already non-negative or translated).
  static Result<PlanarIndex> BuildFirstOctant(
      const PhiMatrix* phi, std::vector<double> normal,
      const PlanarIndexOptions& options = PlanarIndexOptions());

  /// True iff this index can answer `q` exactly: dimensions match and
  /// sign(a_i) equals the index octant's sign on every axis with a_i != 0.
  bool CanServe(const NormalizedQuery& q) const;

  /// Problem 1: all points satisfying the query. Fails with
  /// FailedPrecondition when the query is octant-incompatible.
  Result<InequalityResult> Inequality(const ScalarProductQuery& q) const;
  Result<InequalityResult> Inequality(const NormalizedQuery& q) const;

  /// Deadline-aware variant: the verification loops poll `deadline` every
  /// kDeadlineCheckInterval rows and fail with kDeadlineExceeded instead
  /// of finishing, so a serving layer can bound per-request work. An
  /// infinite deadline adds no clock reads.
  Result<InequalityResult> Inequality(const NormalizedQuery& q,
                                      const Deadline& deadline) const;

  /// COUNT of the points satisfying the query, without materializing
  /// ids. The [lower, upper] bounds come from the two SI/LI boundary
  /// searches alone — O(log n), no phi access. When the gap exceeds
  /// `tolerance` (max of its absolute and relative-to-n readings), the
  /// intermediate interval is streamed through the same f64 /
  /// mixed-precision verify kernels as Inequality — counting accepts
  /// instead of storing ids, deadline-polled per block, stopping early
  /// once the unresolved remainder fits the tolerance. At tolerance 0
  /// the count is exact and bit-equal to Inequality(...).ids.size().
  Result<CountResult> CountInequality(
      const ScalarProductQuery& q,
      const CountTolerance& tolerance = CountTolerance()) const;
  Result<CountResult> CountInequality(const NormalizedQuery& q,
                                      const CountTolerance& tolerance,
                                      const Deadline& deadline) const;

  /// SUM over the configured payload column (PlanarIndexOptions::
  /// payload_column) of the points satisfying the query, plus the COUNT
  /// bounds for the same predicate. Bounds come from the rank-ordered
  /// prefix-aggregate arrays (exact accepted-region total, positive/
  /// negative-part envelope over the II) in O(log n); `tolerance` reads
  /// its absolute field in payload units and its relative field against
  /// the total absolute payload. Refinement streams the II exactly like
  /// CountInequality, accumulating accepted payloads in canonical
  /// blocked summation — deterministic for a fixed index state. Fails
  /// with FailedPrecondition when no payload column is configured or the
  /// backend is not the sorted array.
  Result<AggregateResult> AggregateInequality(
      const ScalarProductQuery& q,
      const CountTolerance& tolerance = CountTolerance()) const;
  Result<AggregateResult> AggregateInequality(const NormalizedQuery& q,
                                              const CountTolerance& tolerance,
                                              const Deadline& deadline) const;

  /// True when a payload column is configured and its prefix aggregates
  /// are live (sorted-array backend).
  bool has_payload() const { return !payload_prefix_.empty(); }

  /// The learned-CDF sidecar (empty when options_.learned_cdf is off,
  /// the backend is the B+-tree, the key array is too small, or the fit
  /// blew the error budget). Exposed for tests and benches.
  const LearnedCdf& learned_cdf() const { return cdf_; }

  /// Problem 2: the k satisfying points nearest to the query hyperplane.
  Result<TopKResult> TopK(const ScalarProductQuery& q, size_t k) const;
  Result<TopKResult> TopK(const NormalizedQuery& q, size_t k) const;

  /// Deadline-aware variant (see Inequality); both the intermediate
  /// verification and the accept-region walk poll the deadline.
  Result<TopKResult> TopK(const NormalizedQuery& q, size_t k,
                          const Deadline& deadline) const;

  /// The rank-range boundaries for `q` (exposed for tests, ablations, and
  /// callers that run their own candidate verification — see
  /// CollectRange).
  Result<Intervals> ComputeIntervals(const NormalizedQuery& q) const;

  /// Appends the row ids with ranks in [begin, end) to `out`, in rank
  /// order. Combined with ComputeIntervals this lets a caller verify the
  /// intermediate interval with a cheaper domain-specific predicate than
  /// the generic scalar product (e.g. a 2D distance check in the
  /// moving-object workloads). Requires begin <= end <= size().
  void CollectRange(size_t begin, size_t end,
                    std::vector<uint32_t>* out) const;

  /// Zero-copy view of the rank-ordered row ids (RankIds()[r] = row with
  /// rank r) on the sorted-array backend, or nullptr on the B+-tree
  /// backend (whose rank order lives behind node pointers — use
  /// CollectRange there). The batched execution layer (core/batch.cc)
  /// streams coalesced candidate ranges straight off this array.
  /// Invalidated by any maintenance call.
  const uint32_t* RankIds() const {
    return options_.backend == PlanarIndexOptions::Backend::kSortedArray
               ? ids_.data()
               : nullptr;
  }

  /// A human-inspectable account of how this index would process `q`:
  /// thresholds, interval boundaries, exclusion decisions, and the exact
  /// candidate counts. For debugging, optimizer integration, and the
  /// EXPLAIN-style output of the CLI.
  struct Explanation {
    bool can_serve = false;
    bool degenerate = false;       ///< all-zero query normal
    double b_prime = 0.0;          ///< mirrored offset b'
    double rmin = 0.0;             ///< min included ratio |a_i| / c_i
    double rmax = 0.0;             ///< max included ratio
    size_t excluded_axes = 0;      ///< axes bounded by their psi range
    double low_cut = 0.0;          ///< accept-below key threshold
    double high_cut = 0.0;         ///< reject-above key threshold
    size_t num_points = 0;
    size_t smaller_end = 0;        ///< |SI|
    size_t larger_begin = 0;       ///< n - |LI|
    Comparison cmp = Comparison::kLessEqual;

    /// Points needing scalar-product evaluation.
    size_t intermediate() const { return larger_begin - smaller_end; }
    /// One-paragraph rendering.
    std::string ToString() const;
  };

  /// Explains query processing without running it. O(d'^2 + log n).
  Explanation Explain(const NormalizedQuery& q) const;

  /// The max-stretch score of Problem 3 (volume heuristic, Section 5.1.1);
  /// smaller is better. Requires CanServe(q).
  double MaxStretch(const NormalizedQuery& q) const;

  /// Cosine of the angle between the query normal and the index normal in
  /// mirrored space (Section 5.1.2); larger is better. Requires
  /// CanServe(q).
  double CosAngle(const NormalizedQuery& q) const;

  /// Maintenance: row `row` of the phi matrix was overwritten. Returns
  /// false when the new value escapes the translation bounds, in which
  /// case the caller must Rebuild() before querying again.
  bool Update(uint32_t row);

  /// Maintenance: the given rows of the phi matrix were overwritten.
  /// O(k log n) on the B+-tree backend; on the sorted-array backend the
  /// k touched entries are recomputed, sorted, and merged back in one
  /// O(n + k log k) pass (identical result to a full Rebuild). Returns
  /// false when any new row escapes the translation bounds — the caller
  /// must Rebuild() before querying again.
  bool UpdateBatch(const std::vector<uint32_t>& rows);

  /// Maintenance: a new row was appended to the phi matrix; `row` must be
  /// phi->size() - 1. Same contract as Update.
  bool NotifyAppend(uint32_t row);

  /// Maintenance: `count` new rows were appended to the phi matrix
  /// starting at row `first_row`, which must equal the pre-append size.
  /// The appended analogue of UpdateBatch: the new keys are computed with
  /// one batched kernel call, sorted through SortEntries, and backward-
  /// merged into the sorted run in place — O(n + k log k) on the
  /// sorted-array backend (O(k log n) tree inserts on the B+-tree), with
  /// a result identical to a full Rebuild. This is the merge path of the
  /// ingest subsystem (src/ingest). Returns false when any new row
  /// escapes the translation bounds — the caller must Rebuild() before
  /// querying again.
  bool AppendBatch(uint32_t first_row, size_t count);

  /// Recomputes the translation and every key from the current matrix.
  void Rebuild();

  /// Deep copy of this index rebound to `phi`, which must hold exactly
  /// the rows this index was built over (same values, same order). The
  /// copy shares no storage with the original, so one side can keep
  /// serving queries while the other takes maintenance calls — the MVCC
  /// snapshot-clone step of the ingest merge path (clone the installed
  /// set, AppendBatch the delta, install the result). Sorted-array
  /// backend only: the B+-tree's node store is not copyable.
  Result<PlanarIndex> CloneFor(const PhiMatrix* phi) const;

  /// The mirrored-space normal (all entries > 0).
  const std::vector<double>& normal() const { return normal_; }
  /// The octant this index serves.
  const Octant& octant() const { return translator_.octant(); }
  /// The translation in effect.
  const Translator& translator() const { return translator_; }
  /// Number of indexed points.
  size_t size() const { return key_of_row_.size(); }
  /// The key <c, psi(x)> of a row.
  double KeyOf(uint32_t row) const { return key_of_row_[row]; }
  /// The backend in use.
  PlanarIndexOptions::Backend backend() const { return options_.backend; }

  /// Heap footprint of the index structure in bytes (excludes the shared
  /// phi matrix).
  size_t MemoryUsage() const;

 private:
  // Thresholds and per-query scalars shared by query paths. With the
  // included axis set A and excluded set E (zero axes always in E):
  //   <a~, psi>  <=  rmax * (key - c0min) + emax
  //   <a~, psi>  >=  rmin * (key - c0max) + emin
  struct Prepared {
    double b_prime = 0.0;
    double rmax = 0.0;   // max over included axes of a~_i / c_i
    double rmin = 0.0;   // min over included axes of a~_i / c_i
    double c0min = 0.0;  // sum over excluded axes of c_i * psi_min_i
    double c0max = 0.0;  // sum over excluded axes of c_i * psi_max_i
    double emin = 0.0;   // sum over excluded axes of a~_i * psi_min_i
    double emax = 0.0;   // sum over excluded axes of a~_i * psi_max_i
    double low_cut = 0.0;   // keys <= low_cut: scalar product surely <= b
    double high_cut = 0.0;  // keys >  high_cut: scalar product surely > b
    size_t excluded_axes = 0;  // axes bounded by psi range (incl. zeros)
    bool all_axes_zero = false;
  };

  PlanarIndex() = default;

  Prepared Prepare(const NormalizedQuery& q) const;
  void ComputeKey(uint32_t row, double* key) const;
  double RawKey(const double* phi_row) const;
  size_t RankLessEqual(double key) const;
  void EraseKey(double key, uint32_t row);
  void InsertKey(double key, uint32_t row);
  // Rebuilds the Eytzinger sidecar from keys_ after any mutation of the
  // sorted-array backend (no-op on the B+-tree backend).
  void RefreshSearchLayout();
  Result<InequalityResult> RunInequality(const NormalizedQuery& q,
                                         const Deadline& deadline) const;
  Result<CountResult> RunCount(const NormalizedQuery& q,
                               const CountTolerance& tolerance,
                               const Deadline& deadline) const;
  Result<AggregateResult> RunAggregate(const NormalizedQuery& q,
                                       const CountTolerance& tolerance,
                                       const Deadline& deadline) const;
  // Streams `count` candidate ids through the counting verify blocks
  // (f64 or mixed, one deadline poll per block) without materializing
  // accepted ids. `accepted`/`resolved` accumulate; when `payload` is
  // non-null, `accepted_sum` accumulates the accepted rows' payload in
  // canonical blocked summation. `stop` is polled at block boundaries
  // with the resolved-so-far count and may end the stream early (bounds
  // already within tolerance). Returns false iff the deadline expired.
  bool CountCandidates(const NormalizedQuery& q, const MixedQueryPlan& mixed,
                       const uint32_t* ids, size_t count,
                       const double* payload, size_t payload_stride,
                       const Deadline& deadline,
                       const std::function<bool(size_t)>& stop,
                       size_t* accepted, size_t* resolved,
                       double* accepted_sum) const;
  Result<TopKResult> RunTopK(const NormalizedQuery& q, size_t k,
                             const Deadline& deadline) const;
  // Verifies the candidate ids (block-batched kernels, one deadline poll
  // per block) and appends accepted ids to *out in candidate order.
  // `mixed` is the per-query mixed-precision plan (unusable = pure f64).
  // Returns false iff the deadline expired mid-verification.
  bool VerifyCandidatesSerial(const NormalizedQuery& q,
                              const MixedQueryPlan& mixed, const uint32_t* ids,
                              size_t count, const Deadline& deadline,
                              std::vector<uint32_t>* out) const;
  // Same contract, sharded across ParallelFor with per-shard buffers
  // merged in shard order (deterministic: identical output to serial).
  bool VerifyCandidatesParallel(const NormalizedQuery& q,
                                const MixedQueryPlan& mixed,
                                const uint32_t* ids, size_t count,
                                size_t threads, const Deadline& deadline,
                                std::vector<uint32_t>* out) const;
  // Dispatches between the two based on options_ and count; for the
  // B+-tree backend the caller materializes candidate ids first.
  bool VerifyCandidates(const NormalizedQuery& q, const MixedQueryPlan& mixed,
                        const uint32_t* ids, size_t count,
                        const Deadline& deadline,
                        std::vector<uint32_t>* out) const;
  // The mixed-precision plan for `q`, or an unusable plan when
  // options_.mixed_precision is off or MakeMixedPlan declines.
  MixedQueryPlan MixedPlanFor(const NormalizedQuery& q) const;

  const PhiMatrix* phi_ = nullptr;
  PlanarIndexOptions options_;
  Translator translator_;
  std::vector<double> normal_;         // mirrored-space, positive
  std::vector<double> signed_normal_;  // sign(O, i) * normal_[i]
  double key_shift_ = 0.0;             // sum_i normal_[i] * delta_i

  // Sorted-array backend. keys_/ids_ stay the source of truth for II
  // range scans, serialization, and maintenance; eytz_ is a read-only
  // search sidecar rebuilt whenever they change.
  std::vector<double> keys_;    // ascending
  std::vector<uint32_t> ids_;   // ids_[r] = row with rank r
  EytzingerKeys eytz_;          // branchless SI/LI boundary search
  // f32-ok: mixed-precision key mirror (keys_f32_[r] = FloatMirrorValue
  // of keys_[r]), refreshed with the search layout; empty unless
  // options_.mixed_precision is on. The top-k accept-region walk brackets
  // each exact key with it and touches keys_ only when the bracket is
  // inconclusive.
  std::vector<float> keys_f32_;
  // Learned key->rank CDF sidecar (see PlanarIndexOptions::learned_cdf):
  // predict-then-probe boundary search + model-based count estimates.
  // Rebuilt with the search layout, never serialized, carries no
  // authority (every probe is validated, every estimate bounded).
  LearnedCdf cdf_;
  // Rank-ordered prefix aggregates over the payload column (empty unless
  // options_.payload_column >= 0 on the sorted-array backend). Rebuilt
  // with the search layout by the canonical helper (core/aggregate.h).
  PrefixAggregates payload_prefix_;
  // B+-tree backend.
  OrderStatisticBTree tree_;

  std::vector<double> key_of_row_;  // by row id
};

}  // namespace planar

#endif  // PLANAR_CORE_PLANAR_INDEX_H_
