// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/sharded.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "core/parallel.h"
#include "core/topk.h"

namespace planar {

namespace {

constexpr char kInequalityDeadlineMsg[] =
    "sharded inequality query exceeded its deadline";
constexpr char kTopKDeadlineMsg[] =
    "sharded top-k query exceeded its deadline";
constexpr char kCountDeadlineMsg[] =
    "sharded count query exceeded its deadline";
constexpr char kAggregateDeadlineMsg[] =
    "sharded aggregate query exceeded its deadline";

/// Per-shard tolerance split: the absolute budget divides evenly across
/// shards (per-shard gaps sum, so the merged gap stays within the
/// original absolute budget) and the relative budget passes through
/// (each shard reads it against its own scale; shard scales sum to the
/// global scale, so the merged gap stays within relative * global
/// scale).
CountTolerance SplitTolerance(const CountTolerance& tolerance, size_t shards) {
  CountTolerance split = tolerance;
  split.absolute = tolerance.absolute / static_cast<double>(shards);
  return split;
}

/// Sums per-shard QueryStats into `*merged` and returns whether every
/// shard reported the same serving index as shard 0.
void MergeQueryStats(const QueryStats& part, const QueryStats& first,
                     QueryStats* merged, bool* common_index) {
  merged->num_points += part.num_points;
  merged->accepted_directly += part.accepted_directly;
  merged->rejected_directly += part.rejected_directly;
  merged->verified += part.verified;
  merged->result_size += part.result_size;
  if (part.index_used != first.index_used) *common_index = false;
}

/// Folds per-shard count results into one: bounds, estimates, and stats
/// sum (shards partition the rows).
CountResult MergeCount(
    size_t shards,
    const std::function<const CountResult&(size_t)>& result_at) {
  CountResult merged;
  merged.exact = true;
  bool common_index = true;
  for (size_t s = 0; s < shards; ++s) {
    const CountResult& part = result_at(s);
    merged.lower += part.lower;
    merged.upper += part.upper;
    merged.estimate += part.estimate;
    merged.exact &= part.exact;
    merged.refined |= part.refined;
    merged.model_estimated |= part.model_estimated;
    MergeQueryStats(part.stats, result_at(0).stats, &merged.stats,
                    &common_index);
  }
  merged.stats.index_used = common_index ? result_at(0).stats.index_used : -1;
  return merged;
}

/// Folds per-shard aggregate results into one (sum bounds and the count
/// piggyback both sum across the row partition).
AggregateResult MergeAggregate(
    size_t shards,
    const std::function<const AggregateResult&(size_t)>& result_at) {
  AggregateResult merged;
  merged.exact = true;
  merged.count.exact = true;
  bool common_index = true;
  for (size_t s = 0; s < shards; ++s) {
    const AggregateResult& part = result_at(s);
    merged.sum_lower += part.sum_lower;
    merged.sum_upper += part.sum_upper;
    merged.sum += part.sum;
    merged.exact &= part.exact;
    merged.refined |= part.refined;
    merged.count.lower += part.count.lower;
    merged.count.upper += part.count.upper;
    merged.count.estimate += part.count.estimate;
    merged.count.exact &= part.count.exact;
    merged.count.refined |= part.count.refined;
    merged.count.model_estimated |= part.count.model_estimated;
    MergeQueryStats(part.count.stats, result_at(0).count.stats,
                    &merged.count.stats, &common_index);
  }
  merged.count.stats.index_used =
      common_index ? result_at(0).count.stats.index_used : -1;
  return merged;
}

/// Merges per-shard statuses deterministically: the first (lowest-shard)
/// non-deadline error wins — validation errors are shard-independent, so
/// every shard reports the same one — and any deadline expiry collapses
/// to one canonical message, independent of which shard(s) happened to
/// observe the expiry or were cancelled before starting.
template <typename ResultAt>
Status MergeStatuses(size_t shards, const ResultAt& result_at,
                     const char* deadline_msg) {
  bool any_deadline = false;
  for (size_t s = 0; s < shards; ++s) {
    const Status& status = result_at(s).status();
    if (status.ok()) continue;
    if (status.code() != StatusCode::kDeadlineExceeded) return status;
    any_deadline = true;
  }
  if (any_deadline) return Status::DeadlineExceeded(deadline_msg);
  return Status::OK();
}

/// Folds per-shard inequality results (already rebased and sorted) into
/// one: shard-order id concatenation (globally ascending, the shards
/// cover disjoint ascending ranges) and per-shard stat sums.
InequalityResult MergeInequality(
    size_t shards,
    const std::function<const InequalityResult&(size_t)>& result_at) {
  InequalityResult merged;
  size_t total = 0;
  for (size_t s = 0; s < shards; ++s) total += result_at(s).ids.size();
  merged.ids.reserve(total);
  bool common_index = true;
  for (size_t s = 0; s < shards; ++s) {
    const InequalityResult& part = result_at(s);
    merged.ids.insert(merged.ids.end(), part.ids.begin(), part.ids.end());
    merged.stats.num_points += part.stats.num_points;
    merged.stats.accepted_directly += part.stats.accepted_directly;
    merged.stats.rejected_directly += part.stats.rejected_directly;
    merged.stats.verified += part.stats.verified;
    merged.stats.result_size += part.stats.result_size;
    if (part.stats.index_used != result_at(0).stats.index_used) {
      common_index = false;
    }
  }
  merged.stats.index_used =
      common_index ? result_at(0).stats.index_used : -1;
  return merged;
}

}  // namespace

ShardedIndexSet::ShardedIndexSet(std::vector<PlanarIndexSet> shards,
                                 std::vector<uint32_t> offsets,
                                 const ShardedIndexSetOptions& options)
    : shards_(std::move(shards)),
      offsets_(std::move(offsets)),
      options_(options),
      rows_verified_(
          std::make_unique<std::atomic<uint64_t>[]>(shards_.size())) {
  options_.shards = shards_.size();
}

Result<ShardedIndexSet> ShardedIndexSet::Build(
    PhiMatrix phi, const std::vector<ParameterDomain>& domains,
    const ShardedIndexSetOptions& options) {
  const size_t n = phi.size();
  size_t shards = options.shards;
  if (shards == 0) {
    shards = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  const size_t min_rows = std::max<size_t>(1, options.min_rows_per_shard);
  shards = std::min(shards, std::max<size_t>(1, n / min_rows));
  if (n > 0) shards = std::min(shards, n);

  // Contiguous near-equal partition: the first n % shards slices get one
  // extra row, so global row order is preserved and offsets are dense.
  std::vector<PhiMatrix> slices;
  slices.reserve(shards);
  std::vector<uint32_t> offsets(shards + 1, 0);
  const size_t base = n / shards;
  const size_t extra = n % shards;
  size_t row = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t count = base + (s < extra ? 1 : 0);
    PhiMatrix slice(phi.dim());
    slice.Reserve(count);
    for (size_t r = 0; r < count; ++r) slice.AppendRow(phi.row(row++));
    offsets[s + 1] = static_cast<uint32_t>(row);
    slices.push_back(std::move(slice));
  }
  PLANAR_CHECK(row == n);

  // Every shard builds with the same options (in particular the same
  // sampling seed): normal sampling is data-independent, so each shard
  // holds the same index definitions and differs only in its rows.
  std::vector<Result<PlanarIndexSet>> built;
  built.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    built.emplace_back(Status::Internal("shard not built"));
  }
  ParallelFor(
      shards,
      [&](size_t s) {
        built[s] = PlanarIndexSet::Build(std::move(slices[s]), domains,
                                         options.set_options);
      },
      options.build_threads == 0 ? 0 : options.build_threads);
  for (size_t s = 0; s < shards; ++s) {
    if (!built[s].ok()) return built[s].status();
  }
  std::vector<PlanarIndexSet> sets;
  sets.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    sets.push_back(std::move(built[s]).value());
  }
  return ShardedIndexSet(std::move(sets), std::move(offsets), options);
}

size_t ShardedIndexSet::FanoutWidth() const { return options_.query_threads; }

Result<InequalityResult> ShardedIndexSet::Inequality(
    const ScalarProductQuery& q, const Deadline& deadline) const {
  const size_t shards = shards_.size();
  // Single shard: no fan-out to run or merge — execute inline, skipping
  // the partial-result scaffolding, so the 1-shard configuration costs
  // the same as the monolithic path it wraps (plus the canonical sort).
  if (shards == 1) {
    Result<InequalityResult> result = shards_[0].Inequality(q, deadline);
    if (result.ok()) {
      // relaxed-ok: monotone monitoring counter (see header); nothing
      // orders on it.
      rows_verified_[0].fetch_add(result.value().stats.verified,
                                  std::memory_order_relaxed);
      std::vector<uint32_t>& ids = result.value().ids;
      std::sort(ids.begin(), ids.end());
      return result;
    }
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      return Status::DeadlineExceeded(kInequalityDeadlineMsg);
    }
    return result;
  }
  std::vector<Result<InequalityResult>> partial(
      shards, Status::Internal("shard not executed"));
  // First-expiry cancellation: the first shard whose verification loop
  // observes the deadline raises the flag; sibling shards still queued
  // behind busy workers short-circuit before touching their index.
  // Running shards poll the same wall-clock deadline themselves.
  std::atomic<bool> expired(false);
  ParallelFor(
      shards,
      [&](size_t s) {
        // relaxed-ok: advisory fast-skip flag — a shard that misses a
        // racing store simply runs and expires on its own deadline
        // poll; the merge below reads `partial` after ParallelFor's
        // join, which is the authoritative synchronization.
        if (expired.load(std::memory_order_relaxed)) {
          partial[s] = Status::DeadlineExceeded(kInequalityDeadlineMsg);
          return;
        }
        Result<InequalityResult> result = shards_[s].Inequality(q, deadline);
        if (result.ok()) {
          // relaxed-ok: monotone monitoring counter (see header);
          // nothing orders on it.
          rows_verified_[s].fetch_add(result.value().stats.verified,
                                      std::memory_order_relaxed);
          std::vector<uint32_t>& ids = result.value().ids;
          // Shard 0's offset is 0: skip the no-op rebase pass.
          if (offsets_[s] != 0) {
            for (uint32_t& id : ids) id += offsets_[s];
          }
          // Canonical ascending-id order per shard (see header): the
          // monolithic rank order is index-dependent and shards select
          // independently, so ascending-id is the one merge order every
          // shard count agrees on.
          std::sort(ids.begin(), ids.end());
        } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
          // relaxed-ok: see the flag's declaration above.
          expired.store(true, std::memory_order_relaxed);
        }
        partial[s] = std::move(result);
      },
      FanoutWidth());
  const Status merged_status = MergeStatuses(
      shards, [&](size_t s) -> const Result<InequalityResult>& {
        return partial[s];
      },
      kInequalityDeadlineMsg);
  if (!merged_status.ok()) return merged_status;
  return MergeInequality(shards, [&](size_t s) -> const InequalityResult& {
    return partial[s].value();
  });
}

Result<CountResult> ShardedIndexSet::CountInequality(
    const ScalarProductQuery& q, const CountTolerance& tolerance,
    const Deadline& deadline) const {
  const size_t shards = shards_.size();
  // Single shard: no fan-out to run or merge — execute inline with the
  // caller's whole tolerance (see Inequality).
  if (shards == 1) {
    Result<CountResult> result =
        shards_[0].CountInequality(q, tolerance, deadline);
    if (result.ok()) {
      // relaxed-ok: monotone monitoring counter (see header); nothing
      // orders on it.
      rows_verified_[0].fetch_add(result.value().stats.verified,
                                  std::memory_order_relaxed);
      return result;
    }
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      return Status::DeadlineExceeded(kCountDeadlineMsg);
    }
    return result;
  }
  const CountTolerance shard_tolerance = SplitTolerance(tolerance, shards);
  std::vector<Result<CountResult>> partial(
      shards, Status::Internal("shard not executed"));
  // First-expiry cancellation, same protocol as Inequality above.
  std::atomic<bool> expired(false);
  ParallelFor(
      shards,
      [&](size_t s) {
        // relaxed-ok: advisory fast-skip flag — a shard that misses a
        // racing store simply runs and expires on its own deadline
        // poll; the merge below reads `partial` after ParallelFor's
        // join, which is the authoritative synchronization.
        if (expired.load(std::memory_order_relaxed)) {
          partial[s] = Status::DeadlineExceeded(kCountDeadlineMsg);
          return;
        }
        Result<CountResult> result =
            shards_[s].CountInequality(q, shard_tolerance, deadline);
        if (result.ok()) {
          // relaxed-ok: monotone monitoring counter (see header);
          // nothing orders on it.
          rows_verified_[s].fetch_add(result.value().stats.verified,
                                      std::memory_order_relaxed);
        } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
          // relaxed-ok: see the flag's declaration above.
          expired.store(true, std::memory_order_relaxed);
        }
        partial[s] = std::move(result);
      },
      FanoutWidth());
  const Status merged_status = MergeStatuses(
      shards,
      [&](size_t s) -> const Result<CountResult>& { return partial[s]; },
      kCountDeadlineMsg);
  if (!merged_status.ok()) return merged_status;
  return MergeCount(shards, [&](size_t s) -> const CountResult& {
    return partial[s].value();
  });
}

Result<AggregateResult> ShardedIndexSet::AggregateInequality(
    const ScalarProductQuery& q, const CountTolerance& tolerance,
    const Deadline& deadline) const {
  const size_t shards = shards_.size();
  // Single shard: inline, no fan-out scaffolding (see Inequality).
  if (shards == 1) {
    Result<AggregateResult> result =
        shards_[0].AggregateInequality(q, tolerance, deadline);
    if (result.ok()) {
      // relaxed-ok: monotone monitoring counter (see header); nothing
      // orders on it.
      rows_verified_[0].fetch_add(result.value().count.stats.verified,
                                  std::memory_order_relaxed);
      return result;
    }
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      return Status::DeadlineExceeded(kAggregateDeadlineMsg);
    }
    return result;
  }
  const CountTolerance shard_tolerance = SplitTolerance(tolerance, shards);
  std::vector<Result<AggregateResult>> partial(
      shards, Status::Internal("shard not executed"));
  std::atomic<bool> expired(false);
  ParallelFor(
      shards,
      [&](size_t s) {
        // relaxed-ok: advisory fast-skip flag, same protocol as
        // Inequality above; the post-join merge is authoritative.
        if (expired.load(std::memory_order_relaxed)) {
          partial[s] = Status::DeadlineExceeded(kAggregateDeadlineMsg);
          return;
        }
        Result<AggregateResult> result =
            shards_[s].AggregateInequality(q, shard_tolerance, deadline);
        if (result.ok()) {
          // relaxed-ok: monotone monitoring counter (see header);
          // nothing orders on it.
          rows_verified_[s].fetch_add(result.value().count.stats.verified,
                                      std::memory_order_relaxed);
        } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
          // relaxed-ok: see the flag's declaration above.
          expired.store(true, std::memory_order_relaxed);
        }
        partial[s] = std::move(result);
      },
      FanoutWidth());
  const Status merged_status = MergeStatuses(
      shards,
      [&](size_t s) -> const Result<AggregateResult>& { return partial[s]; },
      kAggregateDeadlineMsg);
  if (!merged_status.ok()) return merged_status;
  return MergeAggregate(shards, [&](size_t s) -> const AggregateResult& {
    return partial[s].value();
  });
}

std::vector<Result<InequalityResult>> ShardedIndexSet::BatchInequality(
    std::span<const ScalarProductQuery> queries,
    std::span<const Deadline> deadlines, BatchExecStats* exec_stats) const {
  const size_t shards = shards_.size();
  const size_t count = queries.size();
  if (exec_stats != nullptr) *exec_stats = BatchExecStats{};
  if (count == 0) return {};

  // Single shard: inline, no fan-out scaffolding (see Inequality).
  if (shards == 1) {
    BatchExecStats stats;
    std::vector<Result<InequalityResult>> results =
        shards_[0].BatchInequality(queries, deadlines, &stats);
    uint64_t verified = 0;
    for (Result<InequalityResult>& result : results) {
      if (result.ok()) {
        verified += result.value().stats.verified;
        std::vector<uint32_t>& ids = result.value().ids;
        std::sort(ids.begin(), ids.end());
      } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
        result = Status::DeadlineExceeded(kInequalityDeadlineMsg);
      }
    }
    // relaxed-ok: monotone monitoring counter (see header); nothing
    // orders on it.
    rows_verified_[0].fetch_add(verified, std::memory_order_relaxed);
    if (exec_stats != nullptr) *exec_stats = stats;
    return results;
  }

  struct ShardBatch {
    std::vector<Result<InequalityResult>> results;
    BatchExecStats stats;
  };
  std::vector<ShardBatch> partial(shards);
  ParallelFor(
      shards,
      [&](size_t s) {
        ShardBatch& batch = partial[s];
        batch.results =
            shards_[s].BatchInequality(queries, deadlines, &batch.stats);
        uint64_t verified = 0;
        for (Result<InequalityResult>& result : batch.results) {
          if (!result.ok()) continue;
          verified += result.value().stats.verified;
          std::vector<uint32_t>& ids = result.value().ids;
          // Shard 0's offset is 0: skip the no-op rebase pass.
          if (offsets_[s] != 0) {
            for (uint32_t& id : ids) id += offsets_[s];
          }
          std::sort(ids.begin(), ids.end());
        }
        // relaxed-ok: monotone monitoring counter (see header); nothing
        // orders on it.
        rows_verified_[s].fetch_add(verified, std::memory_order_relaxed);
      },
      FanoutWidth());

  std::vector<Result<InequalityResult>> merged(
      count, Status::Internal("query not executed"));
  for (size_t qi = 0; qi < count; ++qi) {
    const Status status = MergeStatuses(
        shards, [&](size_t s) -> const Result<InequalityResult>& {
          return partial[s].results[qi];
        },
        kInequalityDeadlineMsg);
    if (!status.ok()) {
      merged[qi] = status;
      continue;
    }
    merged[qi] =
        MergeInequality(shards, [&](size_t s) -> const InequalityResult& {
          return partial[s].results[qi].value();
        });
  }
  if (exec_stats != nullptr) {
    // Per-shard sums; `queries` counts each query once. A query that
    // scan-served in k shards contributes k to scan_queries — the
    // fan-out really did run k scans.
    exec_stats->queries = count;
    for (size_t s = 0; s < shards; ++s) {
      exec_stats->index_groups += partial[s].stats.index_groups;
      exec_stats->scan_queries += partial[s].stats.scan_queries;
      exec_stats->merged_ranges += partial[s].stats.merged_ranges;
      exec_stats->rows_streamed += partial[s].stats.rows_streamed;
      exec_stats->rows_demanded += partial[s].stats.rows_demanded;
    }
  }
  return merged;
}

Result<TopKResult> ShardedIndexSet::TopK(const ScalarProductQuery& q,
                                         size_t k,
                                         const Deadline& deadline) const {
  const size_t shards = shards_.size();
  // Single shard: inline, no fan-out scaffolding (see Inequality). The
  // shard's neighbors are already canonical ((distance, id)-sorted) with
  // offset 0, so its answer is the merged answer bit for bit.
  if (shards == 1) {
    Result<TopKResult> result = shards_[0].TopK(q, k, deadline);
    if (result.ok()) {
      // relaxed-ok: monotone monitoring counter (see header); nothing
      // orders on it.
      rows_verified_[0].fetch_add(
          result.value().stats.verified_intermediate,
          std::memory_order_relaxed);
      return result;
    }
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      return Status::DeadlineExceeded(kTopKDeadlineMsg);
    }
    return result;
  }
  std::vector<Result<TopKResult>> partial(
      shards, Status::Internal("shard not executed"));
  std::atomic<bool> expired(false);
  ParallelFor(
      shards,
      [&](size_t s) {
        // relaxed-ok: advisory fast-skip flag, same protocol as
        // Inequality above; the post-join merge is authoritative.
        if (expired.load(std::memory_order_relaxed)) {
          partial[s] = Status::DeadlineExceeded(kTopKDeadlineMsg);
          return;
        }
        Result<TopKResult> result = shards_[s].TopK(q, k, deadline);
        if (result.ok()) {
          // relaxed-ok: monotone monitoring counter (see header);
          // nothing orders on it.
          rows_verified_[s].fetch_add(
              result.value().stats.verified_intermediate,
              std::memory_order_relaxed);
        } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
          // relaxed-ok: see the flag's declaration above.
          expired.store(true, std::memory_order_relaxed);
        }
        partial[s] = std::move(result);
      },
      FanoutWidth());
  const Status merged_status = MergeStatuses(
      shards,
      [&](size_t s) -> const Result<TopKResult>& { return partial[s]; },
      kTopKDeadlineMsg);
  if (!merged_status.ok()) return merged_status;

  // The global top-k is contained in the union of per-shard top-ks, and
  // distances are computed from raw phi rows (index-independent), so
  // folding every shard's candidates through the canonical
  // (distance, id) buffer reproduces the monolithic result bit for bit.
  TopKResult merged;
  if (k > 0) {
    TopKBuffer buffer(k);
    for (size_t s = 0; s < shards; ++s) {
      for (const Neighbor& neighbor : partial[s].value().neighbors) {
        buffer.Insert(neighbor.id + offsets_[s], neighbor.distance);
      }
    }
    merged.neighbors = buffer.TakeSorted();
  }
  bool common_index = true;
  for (size_t s = 0; s < shards; ++s) {
    const TopKStats& stats = partial[s].value().stats;
    merged.stats.num_points += stats.num_points;
    merged.stats.verified_intermediate += stats.verified_intermediate;
    merged.stats.scanned_accept_region += stats.scanned_accept_region;
    merged.stats.early_terminated |= stats.early_terminated;
    if (stats.index_used != partial[0].value().stats.index_used) {
      common_index = false;
    }
  }
  merged.stats.index_used =
      common_index ? partial[0].value().stats.index_used : -1;
  return merged;
}

size_t ShardedIndexSet::MemoryUsage() const {
  size_t total = offsets_.capacity() * sizeof(uint32_t) +
                 shards_.size() * sizeof(std::atomic<uint64_t>);
  for (const PlanarIndexSet& shard : shards_) total += shard.MemoryUsage();
  return total;
}

}  // namespace planar
