// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/adaptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/macros.h"
#include "geometry/vec.h"

namespace planar {

AdaptiveIndexSet::AdaptiveIndexSet(PlanarIndexSet set,
                                   AdaptiveOptions options)
    : set_(std::move(set)), options_(options) {
  PLANAR_CHECK_GT(options_.history, 0u);
  PLANAR_CHECK(options_.replace_fraction >= 0.0 &&
               options_.replace_fraction <= 1.0);
  use_counts_.assign(set_.num_indices(), 0);
}

void AdaptiveIndexSet::Record(const NormalizedQuery& q, int index_used) {
  ++queries_seen_;
  if (index_used >= 0 &&
      static_cast<size_t>(index_used) < use_counts_.size()) {
    ++use_counts_[static_cast<size_t>(index_used)];
  }
  if (q.IsDegenerate()) return;
  std::vector<double> magnitudes(q.a.size());
  for (size_t i = 0; i < q.a.size(); ++i) {
    // Zero parameters get a tiny positive weight so the normal stays a
    // valid (strictly positive) index normal.
    magnitudes[i] = std::max(std::fabs(q.a[i]), 1e-9);
  }
  history_.emplace_back(std::move(magnitudes), q.octant);
  while (history_.size() > options_.history) history_.pop_front();
}

InequalityResult AdaptiveIndexSet::Inequality(const ScalarProductQuery& q) {
  const NormalizedQuery norm = NormalizedQuery::From(q);
  InequalityResult result = set_.Inequality(q);
  Record(norm, result.stats.index_used);
  return result;
}

Result<TopKResult> AdaptiveIndexSet::TopK(const ScalarProductQuery& q,
                                          size_t k) {
  const NormalizedQuery norm = NormalizedQuery::From(q);
  Result<TopKResult> result = set_.TopK(q, k);
  if (result.ok()) Record(norm, result->stats.index_used);
  return result;
}

Result<size_t> AdaptiveIndexSet::Readapt() {
  const size_t budget = set_.num_indices();
  size_t to_replace = static_cast<size_t>(
      options_.replace_fraction * static_cast<double>(budget));
  if (to_replace == 0 || history_.empty()) return size_t{0};

  // Normals from the history not already covered by a kept index,
  // most recent first.
  std::vector<std::pair<std::vector<double>, Octant>> wanted;
  for (auto it = history_.rbegin();
       it != history_.rend() && wanted.size() < to_replace; ++it) {
    bool covered = false;
    for (const auto& [normal, octant] : wanted) {
      if (octant == it->second &&
          AreParallel(normal, it->first, options_.dedup_tolerance)) {
        covered = true;
        break;
      }
    }
    if (covered) continue;
    for (size_t i = 0; i < set_.num_indices(); ++i) {
      if (set_.index(i).octant() == it->second &&
          AreParallel(set_.index(i).normal(), it->first,
                      options_.dedup_tolerance)) {
        covered = true;
        break;
      }
    }
    if (!covered) wanted.push_back(*it);
  }
  if (wanted.empty()) return size_t{0};

  // Drop the least-used indices, one per wanted normal (never below one
  // index).
  std::vector<size_t> order(set_.num_indices());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return use_counts_[a] < use_counts_[b];
  });
  size_t replaced = 0;
  std::vector<size_t> drop(order.begin(),
                           order.begin() + std::min(wanted.size(),
                                                    order.size() - 1));
  // Remove from the highest position down so indices stay valid.
  std::sort(drop.rbegin(), drop.rend());
  for (size_t position : drop) {
    PLANAR_RETURN_IF_ERROR(set_.RemoveIndex(position));
  }
  // Build all replacement indices in one batch so the set-level
  // build_threads knob applies to re-adaptation too.
  const size_t adding = drop.size();
  wanted.resize(adding);
  PLANAR_RETURN_IF_ERROR(set_.AddIndices(std::move(wanted)));
  replaced = adding;
  use_counts_.assign(set_.num_indices(), 0);
  return replaced;
}

}  // namespace planar
