// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/index_set.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/random.h"
#include "core/mixed.h"
#include "core/parallel.h"
#include "geometry/vec.h"

namespace planar {

namespace {

// Derives the octant from the domain signs; fails when a domain straddles
// zero (octant would be ambiguous).
Result<Octant> OctantFromDomains(const std::vector<ParameterDomain>& domains) {
  std::vector<double> representative(domains.size());
  for (size_t i = 0; i < domains.size(); ++i) {
    const ParameterDomain& d = domains[i];
    if (d.lo > d.hi) {
      return Status::InvalidArgument("parameter domain with lo > hi");
    }
    if (d.lo < 0.0 && d.hi > 0.0) {
      return Status::InvalidArgument(
          "parameter domain straddles zero; the query octant is ambiguous");
    }
    // A domain touching or equal to zero counts as positive (the axis is
    // then ignored during query processing when a_i == 0).
    representative[i] = d.hi > 0.0 ? d.hi : d.lo;
  }
  return Octant::FromNormal(representative);
}

// Samples one mirrored-space normal: each entry uniform over the magnitude
// range of its domain, clamped away from zero.
std::vector<double> SampleNormal(const std::vector<ParameterDomain>& domains,
                                 Rng& rng) {
  constexpr double kMinEntry = 1e-12;
  std::vector<double> c(domains.size());
  for (size_t i = 0; i < domains.size(); ++i) {
    const double m1 = std::fabs(domains[i].lo);
    const double m2 = std::fabs(domains[i].hi);
    const double lo = std::min(m1, m2);
    const double hi = std::max(m1, m2);
    double v = rng.Uniform(lo, hi);
    if (lo == hi) v = lo;  // degenerate (known-constant) parameter
    if (v < kMinEntry) v = hi > kMinEntry ? kMinEntry : 1.0;
    c[i] = v;
  }
  return c;
}

}  // namespace

Result<PlanarIndexSet> PlanarIndexSet::Build(
    PhiMatrix phi, const std::vector<ParameterDomain>& domains,
    const IndexSetOptions& options) {
  if (phi.empty()) {
    return Status::InvalidArgument("cannot index an empty phi matrix");
  }
  if (domains.size() != phi.dim()) {
    return Status::InvalidArgument(
        "one parameter domain per phi output axis is required");
  }
  if (options.budget == 0) {
    return Status::InvalidArgument("index budget must be positive");
  }
  PLANAR_ASSIGN_OR_RETURN(Octant octant, OctantFromDomains(domains));

  PlanarIndexSet set(std::move(phi), options);
  // Phase 1 (serial, RNG-sequential): sample and deduplicate the normals.
  // This is O(budget^2 d') with no data access, so parallelizing it would
  // buy nothing and cost determinism of the accepted sequence.
  Rng rng(options.seed);
  const size_t max_attempts = options.budget * options.max_attempts_per_index;
  std::vector<IndexDefinition> definitions;
  size_t attempts = 0;
  while (definitions.size() < options.budget && attempts < max_attempts) {
    ++attempts;
    std::vector<double> c = SampleNormal(domains, rng);
    bool redundant = false;
    for (const auto& existing : definitions) {
      if (AreParallel(existing.first, c, options.dedup_tolerance)) {
        redundant = true;
        break;
      }
    }
    if (redundant) continue;
    definitions.emplace_back(std::move(c), octant);
  }
  if (definitions.empty()) {
    return Status::Internal("failed to sample any index normal");
  }
  // Phase 2: build the accepted indices across build_threads threads.
  PLANAR_RETURN_IF_ERROR(set.BuildIndicesParallel(std::move(definitions)));
  return set;
}

Result<PlanarIndexSet> PlanarIndexSet::BuildWithNormals(
    PhiMatrix phi, const std::vector<std::vector<double>>& normals,
    const Octant& octant, const IndexSetOptions& options) {
  if (phi.empty()) {
    return Status::InvalidArgument("cannot index an empty phi matrix");
  }
  if (normals.empty()) {
    return Status::InvalidArgument("at least one normal is required");
  }
  PlanarIndexSet set(std::move(phi), options);
  std::vector<IndexDefinition> definitions;
  definitions.reserve(normals.size());
  for (const auto& normal : normals) {
    definitions.emplace_back(normal, octant);
  }
  PLANAR_RETURN_IF_ERROR(set.BuildIndicesParallel(std::move(definitions)));
  return set;
}

Status PlanarIndexSet::BuildIndicesParallel(
    std::vector<IndexDefinition> definitions) {
  const size_t count = definitions.size();
  if (count == 0) return Status::OK();
  // Each slot builds independently against the shared (read-only) phi
  // matrix; slots keep definition order, so the resulting indices_ layout
  // — and therefore SelectBestIndex tie-breaking, serialization order,
  // and every stretch/angle score — is identical to the serial build.
  std::vector<std::optional<PlanarIndex>> slots(count);
  std::vector<Status> statuses(count, Status::OK());
  ParallelFor(
      count,
      [&](size_t i) {
        Result<PlanarIndex> index =
            PlanarIndex::Build(phi_.get(), std::move(definitions[i].first),
                               definitions[i].second, options_.index_options);
        if (index.ok()) {
          slots[i].emplace(std::move(index).value());
        } else {
          statuses[i] = index.status();
        }
      },
      options_.build_threads);
  for (const Status& status : statuses) {
    PLANAR_RETURN_IF_ERROR(status);
  }
  indices_.reserve(indices_.size() + count);
  for (std::optional<PlanarIndex>& slot : slots) {
    indices_.push_back(std::move(*slot));
  }
  return Status::OK();
}

int PlanarIndexSet::SelectBestIndex(const NormalizedQuery& q) const {
  // Non-finite parameters defeat every selection heuristic and the index
  // pruning math itself; reporting "no index" routes such queries to the
  // exact sequential-scan fallback.
  if (!q.IsFinite()) return -1;
  int best = -1;
  double best_score = 0.0;
  for (size_t i = 0; i < indices_.size(); ++i) {
    const PlanarIndex& index = indices_[i];
    if (!index.CanServe(q)) continue;
    double score = 0.0;
    switch (options_.selector) {
      case IndexSetOptions::Selector::kStretch:
        score = index.MaxStretch(q);  // smaller is better
        break;
      case IndexSetOptions::Selector::kAngle:
        score = -index.CosAngle(q);  // larger cosine is better
        break;
      case IndexSetOptions::Selector::kIntervalCount: {
        const Result<PlanarIndex::Intervals> iv = index.ComputeIntervals(q);
        PLANAR_DCHECK(iv.ok());
        score = static_cast<double>(iv->larger_begin - iv->smaller_end);
        break;
      }
    }
    if (best == -1 || score < best_score) {
      best = static_cast<int>(i);
      best_score = score;
    }
  }
  return best;
}

PlanarIndexSet::Explanation PlanarIndexSet::Explain(
    const ScalarProductQuery& q) const {
  Explanation e;
  const NormalizedQuery norm = NormalizedQuery::From(q);
  const int best = SelectBestIndex(norm);
  if (best < 0) return e;
  e.index_used = best;
  e.index_explanation = indices_[static_cast<size_t>(best)].Explain(norm);
  if (options_.scan_fallback_fraction < 1.0 &&
      static_cast<double>(e.index_explanation.intermediate()) >
          options_.scan_fallback_fraction *
              static_cast<double>(phi_->size())) {
    e.scan_fallback = true;
  }
  return e;
}

std::string PlanarIndexSet::Explanation::ToString() const {
  if (index_used < 0) return "no compatible index: sequential scan";
  std::string out = "index " + std::to_string(index_used);
  if (scan_fallback) {
    out += " (hybrid fallback to sequential scan: interval too wide); would "
           "have run as: ";
  } else {
    out += ": ";
  }
  out += index_explanation.ToString();
  return out;
}

PlanarIndexSet::SelectivityBounds PlanarIndexSet::EstimateSelectivity(
    const ScalarProductQuery& q) const {
  const NormalizedQuery norm = NormalizedQuery::From(q);
  const int best = SelectBestIndex(norm);
  SelectivityBounds bounds;
  if (best < 0) return bounds;
  const PlanarIndex::Explanation e =
      indices_[static_cast<size_t>(best)].Explain(norm);
  const double n = static_cast<double>(phi_->size());
  if (n == 0.0) return bounds;
  if (e.degenerate) return bounds;
  const bool le = norm.cmp == Comparison::kLessEqual;
  const double accepted = static_cast<double>(
      le ? e.smaller_end : e.num_points - e.larger_begin);
  bounds.lo = accepted / n;
  bounds.hi = (accepted + static_cast<double>(e.intermediate())) / n;
  return bounds;
}

InequalityResult PlanarIndexSet::Inequality(const ScalarProductQuery& q) const {
  Result<InequalityResult> result = Inequality(q, Deadline::Infinite());
  PLANAR_CHECK(result.ok());  // an infinite deadline never expires
  return std::move(result).value();
}

Result<InequalityResult> PlanarIndexSet::Inequality(
    const ScalarProductQuery& q, const Deadline& deadline) const {
  const NormalizedQuery norm = NormalizedQuery::From(q);
  const int best = SelectBestIndex(norm);
  if (best < 0) {
    return ScanInequality(*phi_, q, deadline);
  }
  const PlanarIndex& index = indices_[static_cast<size_t>(best)];
  if (options_.scan_fallback_fraction < 1.0) {
    const Result<PlanarIndex::Intervals> iv = index.ComputeIntervals(norm);
    PLANAR_CHECK(iv.ok());  // CanServe was verified by the selector
    const double intermediate =
        static_cast<double>(iv->larger_begin - iv->smaller_end);
    if (intermediate > options_.scan_fallback_fraction *
                           static_cast<double>(phi_->size())) {
      return ScanInequality(*phi_, q, deadline);
    }
  }
  Result<InequalityResult> result = index.Inequality(norm, deadline);
  if (result.ok()) result->stats.index_used = best;
  return result;
}

Result<CountResult> PlanarIndexSet::CountInequality(
    const ScalarProductQuery& q, const CountTolerance& tolerance,
    const Deadline& deadline) const {
  const NormalizedQuery norm = NormalizedQuery::From(q);
  const int best = SelectBestIndex(norm);
  if (best < 0) {
    return ScanCountInequality(*phi_, q, deadline);
  }
  const PlanarIndex& index = indices_[static_cast<size_t>(best)];
  if (options_.scan_fallback_fraction < 1.0) {
    const Result<PlanarIndex::Intervals> iv = index.ComputeIntervals(norm);
    PLANAR_CHECK(iv.ok());  // CanServe was verified by the selector
    const double intermediate =
        static_cast<double>(iv->larger_begin - iv->smaller_end);
    // Divert to the flat scan only when the index would refine anyway
    // (gap over tolerance): a bounds-only answer is O(log n) and beats
    // the scan no matter how wide the intermediate interval is.
    if (intermediate >
            tolerance.Allowed(static_cast<double>(phi_->size())) &&
        intermediate > options_.scan_fallback_fraction *
                           static_cast<double>(phi_->size())) {
      return ScanCountInequality(*phi_, q, deadline);
    }
  }
  Result<CountResult> result = index.CountInequality(norm, tolerance, deadline);
  if (result.ok()) result->stats.index_used = best;
  return result;
}

Result<AggregateResult> PlanarIndexSet::AggregateInequality(
    const ScalarProductQuery& q, const CountTolerance& tolerance,
    const Deadline& deadline) const {
  const NormalizedQuery norm = NormalizedQuery::From(q);
  const int best = SelectBestIndex(norm);
  if (best < 0) {
    return ScanAggregateInequality(*phi_, options_.index_options.payload_column,
                                   q, deadline);
  }
  const PlanarIndex& index = indices_[static_cast<size_t>(best)];
  if (options_.scan_fallback_fraction < 1.0) {
    const Result<PlanarIndex::Intervals> iv = index.ComputeIntervals(norm);
    PLANAR_CHECK(iv.ok());  // CanServe was verified by the selector
    const double intermediate =
        static_cast<double>(iv->larger_begin - iv->smaller_end);
    if (intermediate > options_.scan_fallback_fraction *
                           static_cast<double>(phi_->size())) {
      return ScanAggregateInequality(
          *phi_, options_.index_options.payload_column, q, deadline);
    }
  }
  Result<AggregateResult> result =
      index.AggregateInequality(norm, tolerance, deadline);
  if (result.ok()) result->count.stats.index_used = best;
  return result;
}

Result<TopKResult> PlanarIndexSet::TopK(const ScalarProductQuery& q,
                                        size_t k) const {
  return TopK(q, k, Deadline::Infinite());
}

Result<TopKResult> PlanarIndexSet::TopK(const ScalarProductQuery& q, size_t k,
                                        const Deadline& deadline) const {
  const NormalizedQuery norm = NormalizedQuery::From(q);
  if (!norm.IsFinite()) {
    return Status::InvalidArgument("query parameters must be finite");
  }
  const int best = SelectBestIndex(norm);
  if (best < 0) {
    return ScanTopK(*phi_, q, k, deadline);
  }
  Result<TopKResult> result =
      indices_[static_cast<size_t>(best)].TopK(norm, k, deadline);
  if (result.ok()) result->stats.index_used = best;
  return result;
}

Status PlanarIndexSet::AddIndex(std::vector<double> normal,
                                const Octant& octant) {
  Result<PlanarIndex> index = PlanarIndex::Build(
      phi_.get(), std::move(normal), octant, options_.index_options);
  PLANAR_RETURN_IF_ERROR(index.status());
  indices_.push_back(std::move(index).value());
  return Status::OK();
}

Status PlanarIndexSet::AddIndices(
    std::vector<IndexDefinition> definitions) {
  return BuildIndicesParallel(std::move(definitions));
}

Status PlanarIndexSet::RemoveIndex(size_t i) {
  if (i >= indices_.size()) {
    return Status::OutOfRange("index position out of range");
  }
  indices_.erase(indices_.begin() + static_cast<ptrdiff_t>(i));
  return Status::OK();
}

Status PlanarIndexSet::UpdateRow(uint32_t row, const double* phi_values) {
  if (row >= phi_->size()) {
    return Status::OutOfRange("row id out of range");
  }
  phi_->SetRow(row, phi_values);
  for (PlanarIndex& index : indices_) {
    if (!index.Update(row)) {
      index.Rebuild();
      ++rebuild_count_;
    }
  }
  return Status::OK();
}

Status PlanarIndexSet::AppendRow(const double* phi_values) {
  phi_->AppendRow(phi_values);
  const uint32_t row = static_cast<uint32_t>(phi_->size() - 1);
  for (PlanarIndex& index : indices_) {
    if (!index.NotifyAppend(row)) {
      index.Rebuild();
      ++rebuild_count_;
    }
  }
  return Status::OK();
}

Status PlanarIndexSet::AppendRows(const double* rows, size_t count) {
  if (count == 0) return Status::OK();
  const uint32_t first = static_cast<uint32_t>(phi_->size());
  const size_t dim = phi_->dim();
  for (size_t i = 0; i < count; ++i) {
    phi_->AppendRow(rows + i * dim);
  }
  for (PlanarIndex& index : indices_) {
    if (!index.AppendBatch(first, count)) {
      index.Rebuild();
      ++rebuild_count_;
    }
  }
  return Status::OK();
}

Result<PlanarIndexSet> PlanarIndexSet::Clone() const {
  for (const PlanarIndex& index : indices_) {
    if (index.backend() == PlanarIndexOptions::Backend::kBTree) {
      return Status::FailedPrecondition(
          "Clone supports the sorted-array backend only; the B+-tree "
          "node store is not copyable");
    }
  }
  PlanarIndexSet copy(PhiMatrix(*phi_), options_);
  copy.rebuild_count_ = rebuild_count_;
  copy.indices_.reserve(indices_.size());
  for (const PlanarIndex& index : indices_) {
    Result<PlanarIndex> cloned = index.CloneFor(copy.phi_.get());
    if (!cloned.ok()) return cloned.status();
    copy.indices_.push_back(std::move(cloned).value());
  }
  return copy;
}

size_t PlanarIndexSet::MemoryUsage() const {
  size_t total = sizeof(*this) + phi_->MemoryUsage();
  for (const PlanarIndex& index : indices_) total += index.MemoryUsage();
  return total;
}

void PlanarIndexSet::MaybeEnableMixedPrecision() {
  if (MixedPrecisionForcedOn()) {
    options_.index_options.mixed_precision = true;
  }
  if (options_.index_options.mixed_precision &&
      MixedPrecisionRuntimeEnabled()) {
    phi_->EnableF32Mirror();
  }
}

size_t PlanarIndexSet::ResidentBytes() const {
  const size_t n = phi_->size();
  // f32-ok: the mirror halves the bytes the verification kernels stream.
  const bool mirror = phi_->f32_data() != nullptr;
  const size_t row_bytes = phi_->dim() * (mirror ? sizeof(float)
                                                 : sizeof(double));
  size_t total = n * row_bytes;
  // Per index: the phase-1/2 walk touches one sorted key (f32 when the
  // mixed bracket walk is live, f64 otherwise) and one row id per rank.
  const size_t key_bytes = mirror ? sizeof(float) : sizeof(double);
  total += indices_.size() * n * (key_bytes + sizeof(uint32_t));
  return total;
}

}  // namespace planar
