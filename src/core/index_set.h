// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Multiple Planar indices (Section 5 of the paper): a budget of normals is
// sampled from the known query-parameter domains at preprocessing time
// (Section 5.2), and at query time the best index is chosen in O(r d')
// without touching the data (Section 5.1) — either by minimizing the
// volume/stretch of the intermediate interval or by minimizing the angle
// to the query hyperplane. Queries no index can serve fall back to a
// sequential scan, so the set is always exact.

#ifndef PLANAR_CORE_INDEX_SET_H_
#define PLANAR_CORE_INDEX_SET_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/batch.h"
#include "core/planar_index.h"
#include "core/query.h"
#include "core/row_matrix.h"
#include "core/scan.h"

namespace planar {

/// The known domain of one query parameter a_i (paper, Section 4.1). The
/// interval is closed and must not straddle zero: the sign of the domain
/// fixes the hyper octant the indices are built for.
struct ParameterDomain {
  double lo = 0.0;
  double hi = 0.0;
};

/// Options for building a PlanarIndexSet.
struct IndexSetOptions {
  /// Best-index selection strategy (Section 5.1 of the paper, plus this
  /// library's exact variant).
  enum class Selector {
    kStretch,  ///< volume / max-stretch minimization (paper's default)
    kAngle,    ///< angle minimization
    /// Exact |II| per index via two binary searches on its sorted keys —
    /// O(r (d'^2 + log n)) total, still independent of the interval's
    /// cardinality. (The paper rules out "counting the points in the
    /// intermediate interval" as a chicken-and-egg problem, but with the
    /// sorted key list the count needs no enumeration.)
    kIntervalCount,
  };

  /// Number of indices to sample (the paper's budget b).
  size_t budget = 10;
  Selector selector = Selector::kIntervalCount;
  PlanarIndexOptions index_options;
  /// Two sampled normals closer than this (on |cos|) are redundant and
  /// the later one is discarded (Section 5.2).
  double dedup_tolerance = 1e-6;
  /// Sampling seed (index sets are deterministic given the seed).
  uint64_t seed = 42;
  /// Sampling stops after budget * this many attempts even when dedup
  /// kept the set below budget.
  size_t max_attempts_per_index = 16;
  /// Hybrid worst-case guard: when even the best index leaves more than
  /// this fraction of the points in the intermediate interval, answer by
  /// sequential scan instead — random access over a near-total interval
  /// costs more than a contiguous scan (the paper observes exactly this
  /// effect at high dimensionality and query randomness, Section 7.2.2).
  /// 1.0 disables the fallback.
  double scan_fallback_fraction = 0.85;

  /// Set-level build parallelism (1 = serial, 0 = hardware concurrency,
  /// n = at most n threads): Build / BuildWithNormals / AddIndices shard
  /// the construction of the r indices across this many threads. Normal
  /// sampling and dedup stay serial (they are RNG-sequential and cheap),
  /// so the accepted normals, their order, and every selection score are
  /// identical to the serial build; per-index key computation uses the
  /// same dot_range kernel either way, so the built indices — and their
  /// serialized v2 blobs — are bit-identical for any thread count
  /// (machine-checked by tests/build_determinism_test.cc). Not persisted
  /// by SaveIndexSet: it is a build-machine knob, not part of the index
  /// definition. Composes with PlanarIndexOptions::build_threads
  /// (intra-index sort parallelism); enable one or the other, not both,
  /// to avoid oversubscription.
  size_t build_threads = 1;
};

/// A budget of Planar indices over one owned phi matrix.
class PlanarIndexSet {
 public:
  PlanarIndexSet(PlanarIndexSet&&) = default;
  PlanarIndexSet& operator=(PlanarIndexSet&&) = default;
  PlanarIndexSet(const PlanarIndexSet&) = delete;
  PlanarIndexSet& operator=(const PlanarIndexSet&) = delete;

  /// Builds `options.budget` indices with normals sampled uniformly from
  /// `domains` (one domain per phi output axis), deduplicating parallel
  /// normals. Takes ownership of the matrix.
  static Result<PlanarIndexSet> Build(
      PhiMatrix phi, const std::vector<ParameterDomain>& domains,
      const IndexSetOptions& options = IndexSetOptions());

  /// Builds with explicitly chosen mirrored-space normals (all entries
  /// strictly positive) for the given octant. Useful when good normals are
  /// known, e.g. one per anticipated time instant in moving-object
  /// workloads.
  static Result<PlanarIndexSet> BuildWithNormals(
      PhiMatrix phi, const std::vector<std::vector<double>>& normals,
      const Octant& octant, const IndexSetOptions& options = IndexSetOptions());

  /// Problem 1 via the best index; falls back to a sequential scan when no
  /// index can serve the query (stats.index_used == -1 then).
  InequalityResult Inequality(const ScalarProductQuery& q) const;

  /// Deadline-aware variant for serving layers: both the II verification
  /// loop of the chosen index and the scan fallback poll `deadline` and
  /// fail with kDeadlineExceeded instead of finishing. An infinite
  /// deadline behaves exactly like the plain overload.
  Result<InequalityResult> Inequality(const ScalarProductQuery& q,
                                      const Deadline& deadline) const;

  /// COUNT of the matching points without materializing ids: the best
  /// index answers O(log n) [lower, upper] bounds and refines only past
  /// `tolerance` (see PlanarIndex::CountInequality). Falls back to an
  /// exact full-scan count when no index can serve or the hybrid scan
  /// guard fires (stats.index_used == -1 then). At tolerance 0 the count
  /// is exact and bit-equal to Inequality(...).ids.size().
  Result<CountResult> CountInequality(
      const ScalarProductQuery& q,
      const CountTolerance& tolerance = CountTolerance(),
      const Deadline& deadline = Deadline::Infinite()) const;

  /// SUM/AVG over the configured payload column
  /// (options().index_options.payload_column), with COUNT bounds riding
  /// along (see PlanarIndex::AggregateInequality). Falls back to the
  /// exact full-scan aggregate when no index can serve or the hybrid
  /// scan guard fires.
  Result<AggregateResult> AggregateInequality(
      const ScalarProductQuery& q,
      const CountTolerance& tolerance = CountTolerance(),
      const Deadline& deadline = Deadline::Infinite()) const;

  /// Problem 1 for a whole batch of queries with cross-query work
  /// sharing (implemented in core/batch.cc). Each query gets the usual
  /// best-index selection, SI/LI/II boundary searches, and scan-fallback
  /// decision; then, per serving index, the intermediate intervals are
  /// coalesced — overlapping rank ranges merged and streamed exactly once
  /// through the multi-query verification kernel — so phi rows demanded
  /// by several queries are read once instead of once per query. Queries
  /// served by scan batch the same way over the full row range.
  ///
  /// Results are bit-identical to calling Inequality(q, deadline) per
  /// query: same ids in the same order, same statistics, same error
  /// statuses. `deadlines` is empty (no query is bounded) or holds one
  /// deadline per query; each query cancels cooperatively at
  /// verification-block granularity with kDeadlineExceeded without
  /// failing the rest of the batch. Optional `exec_stats` receives the
  /// sharing accounting of this call.
  std::vector<Result<InequalityResult>> BatchInequality(
      std::span<const ScalarProductQuery> queries,
      std::span<const Deadline> deadlines = {},
      BatchExecStats* exec_stats = nullptr) const;

  /// Problem 2 via the best index, with the same scan fallback.
  Result<TopKResult> TopK(const ScalarProductQuery& q, size_t k) const;

  /// Deadline-aware variant (see Inequality).
  Result<TopKResult> TopK(const ScalarProductQuery& q, size_t k,
                          const Deadline& deadline) const;

  /// The index the selection heuristic picks for `q`, or -1 when no index
  /// is octant-compatible. O(r d').
  int SelectBestIndex(const NormalizedQuery& q) const;

  /// EXPLAIN output for `q`: which index would serve it, whether the
  /// hybrid scan fallback would fire, and the serving index's thresholds
  /// and candidate counts.
  struct Explanation {
    int index_used = -1;      ///< -1: sequential scan
    bool scan_fallback = false;  ///< fallback fired despite a usable index
    PlanarIndex::Explanation index_explanation;
    std::string ToString() const;
  };
  Explanation Explain(const ScalarProductQuery& q) const;

  /// Exact selectivity bounds for `q` without evaluating any scalar
  /// product: the true match count lies in
  /// [accepted_outright, accepted_outright + intermediate] (both as
  /// fractions of the dataset). Useful for optimizer integration. Returns
  /// {0, 1} when only a scan could answer.
  struct SelectivityBounds {
    double lo = 0.0;
    double hi = 1.0;
  };
  SelectivityBounds EstimateSelectivity(const ScalarProductQuery& q) const;

  /// One (mirrored-space normal, octant) index definition.
  using IndexDefinition = std::pair<std::vector<double>, Octant>;

  /// Adds one more index with the given mirrored-space normal for octant
  /// `octant` (e.g. MOVIES-style rotation of time-instant indices).
  Status AddIndex(std::vector<double> normal, const Octant& octant);

  /// Adds several indices at once, building them across
  /// options().build_threads threads (the batch analogue of AddIndex,
  /// used by snapshot loading and adaptive re-indexing). All-or-nothing:
  /// on failure no index is added. Definition order is preserved.
  Status AddIndices(std::vector<IndexDefinition> definitions);

  /// Drops the i-th index.
  Status RemoveIndex(size_t i);

  /// Overwrites one row of phi and maintains every index. Indices whose
  /// translation no longer covers the row are rebuilt transparently.
  Status UpdateRow(uint32_t row, const double* phi_values);

  /// Appends one row of phi and maintains every index.
  Status AppendRow(const double* phi_values);

  /// Appends `count` rows of phi (row-major, size() * dim doubles) and
  /// maintains every index with one batched backward merge apiece —
  /// O(r (n + k log k)) total instead of AppendRow's O(r k log n). The
  /// bulk half of the ingest merge path (src/ingest): the merger clones
  /// the installed set, appends the drained delta rows here, and installs
  /// the result. Indices whose translation cannot absorb a new row are
  /// rebuilt transparently (rebuild_count() advances), so the result is
  /// always exact.
  Status AppendRows(const double* rows, size_t count);

  /// Deep copy sharing no storage with this set, so the copy can take
  /// maintenance calls (AppendRows, UpdateRow) while the original keeps
  /// serving queries behind a Catalog snapshot — the clone step of the
  /// ingest merge. Sorted-array backend only: fails with
  /// kFailedPrecondition when any index uses the B+-tree backend, whose
  /// node store is not copyable.
  Result<PlanarIndexSet> Clone() const;

  /// The owned phi matrix.
  const PhiMatrix& phi() const { return *phi_; }
  /// Number of points.
  size_t size() const { return phi_->size(); }
  /// Number of indices held.
  size_t num_indices() const { return indices_.size(); }
  /// Access to an individual index.
  const PlanarIndex& index(size_t i) const { return indices_[i]; }

  /// The options this set was built with.
  const IndexSetOptions& options() const { return options_; }

  /// Cumulative number of transparent index rebuilds triggered by updates.
  size_t rebuild_count() const { return rebuild_count_; }

  /// Heap footprint of all indices plus the owned matrix, in bytes.
  size_t MemoryUsage() const;

  /// Bytes actually streamed by the hot verification paths: the matrix
  /// rows read by II verification / scan (f32 mirror when mixed precision
  /// is live, f64 otherwise) plus each index's search-layout keys and row
  /// ids. This is the bandwidth-bound footprint the mixed-precision mode
  /// shrinks; MemoryUsage() is total RAM and *grows* with the mirror.
  size_t ResidentBytes() const;

 private:
  explicit PlanarIndexSet(PhiMatrix phi, IndexSetOptions options)
      : phi_(std::make_unique<PhiMatrix>(std::move(phi))),
        options_(options) {
    MaybeEnableMixedPrecision();
  }

  // Applies the PLANAR_FORCE_F32 override to options_ and materializes the
  // matrix's f32 mirror when mixed precision is on (option set and not
  // disabled via PLANAR_DISABLE_F32). Called from the constructor so every
  // route into a live set — Build, BuildWithNormals, Clone, snapshot load —
  // regenerates the mirror; it is never serialized.
  void MaybeEnableMixedPrecision();

  // Builds every definition (sharded across options_.build_threads via
  // ParallelFor) and appends the indices in definition order; on any
  // failure appends nothing and returns the first failing status.
  Status BuildIndicesParallel(std::vector<IndexDefinition> definitions);

  std::unique_ptr<PhiMatrix> phi_;  // stable address for index back-pointers
  IndexSetOptions options_;
  std::vector<PlanarIndex> indices_;
  size_t rebuild_count_ = 0;
};

}  // namespace planar

#endif  // PLANAR_CORE_INDEX_SET_H_
