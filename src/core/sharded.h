// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Shard-per-core scatter-gather serving. A ShardedIndexSet partitions
// the phi matrix into S contiguous row-range shards, builds one
// PlanarIndexSet per shard over its slice (same options and sampling
// seed, so every shard holds the same index definitions — normal
// sampling is data-independent), and fans each query across the shards
// on the process-wide ThreadPool, merging per-shard results in shard
// order with row ids rebased by the shard's row offset.
//
// Result contract (machine-checked by tests/sharded_test.cc and the
// bench_shard --smoke CI gate):
//  * Inequality ids are the exact match set of the monolithic set, in
//    canonical ascending-id order. (Each shard's rebased ids are sorted
//    and shards cover disjoint ascending row ranges, so shard-order
//    concatenation is globally sorted. The monolithic path emits ids in
//    serving-index rank order, which depends on which index served —
//    per-shard selection is independent, so rank order is not
//    preservable across shard counts; ascending-id is the one order
//    every shard count agrees on.)
//  * TopK is bit-identical to the monolithic set — same neighbors, same
//    distances, same order. Distances are computed from raw phi rows
//    (independent of the serving index), and the merge folds every
//    shard's candidates through the same canonical (distance, id)
//    TopKBuffer the monolithic path uses.
//  * Merged QueryStats are per-shard sums: result_size and num_points
//    equal the monolithic values, and accepted_directly +
//    rejected_directly + verified == num_points still holds; the split
//    among the three reflects the pruning each shard's own serving
//    index achieved. index_used is the common serving index when every
//    shard chose the same one, else -1.
//  * For a fixed shard count, results are bit-identical across worker
//    counts (including serial) and across repeated runs.
//
// Deadlines fan out per shard: every shard polls the query's deadline at
// verification-block granularity, and the first shard to observe expiry
// raises a shared flag that cancels sibling shards still queued behind
// busy workers before they start. Any expiry fails the whole query with
// one canonical kDeadlineExceeded.

#ifndef PLANAR_CORE_SHARDED_H_
#define PLANAR_CORE_SHARDED_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "core/index_set.h"

namespace planar {

/// Options for building a ShardedIndexSet.
struct ShardedIndexSetOptions {
  /// Row-range shards to partition into (0 = one per hardware core).
  /// Always clamped so every shard holds at least min_rows_per_shard
  /// rows (and never below 1 shard).
  size_t shards = 0;
  /// Shard-count clamp: fanning out pays merge and scheduling overhead,
  /// so tiny sets stay monolithic. Set to 1 to take `shards` literally
  /// (tests do, to exercise many-shard merges on small fixtures).
  size_t min_rows_per_shard = 4096;
  /// Worker width per query fan-out (0 = hardware concurrency). The
  /// calling thread participates; results do not depend on this value.
  size_t query_threads = 0;
  /// Threads used to build the per-shard sets (1 = serial; the shard
  /// slices are disjoint, so shard builds are independent).
  size_t build_threads = 1;
  /// Options forwarded to every per-shard PlanarIndexSet::Build. The
  /// same seed in every shard yields identical index definitions.
  IndexSetOptions set_options;
};

/// S contiguous row-range shards, each a PlanarIndexSet over its slice
/// of phi, queried scatter-gather. Query methods are const and
/// thread-safe (per-shard rows-verified counters are atomic).
class ShardedIndexSet {
 public:
  ShardedIndexSet(ShardedIndexSet&&) = default;
  ShardedIndexSet& operator=(ShardedIndexSet&&) = default;
  ShardedIndexSet(const ShardedIndexSet&) = delete;
  ShardedIndexSet& operator=(const ShardedIndexSet&) = delete;

  /// Partitions `phi` into near-equal contiguous row ranges and builds
  /// one PlanarIndexSet per range. Takes ownership of the matrix (rows
  /// are moved into per-shard matrices; the set does not keep a
  /// monolithic copy).
  static Result<ShardedIndexSet> Build(
      PhiMatrix phi, const std::vector<ParameterDomain>& domains,
      const ShardedIndexSetOptions& options = ShardedIndexSetOptions());

  /// Problem 1 fanned across shards; ids in ascending order (see file
  /// header for the full result contract).
  Result<InequalityResult> Inequality(
      const ScalarProductQuery& q,
      const Deadline& deadline = Deadline::Infinite()) const;

  /// Batch Problem 1: the whole batch fans to every shard, so each
  /// shard's cross-query coalescing (core/batch.cc) still applies
  /// within its slice. result[i] corresponds to queries[i]; per-query
  /// deadlines propagate per shard. Optional `exec_stats` receives
  /// per-shard sums (queries counts each query once).
  std::vector<Result<InequalityResult>> BatchInequality(
      std::span<const ScalarProductQuery> queries,
      std::span<const Deadline> deadlines = {},
      BatchExecStats* exec_stats = nullptr) const;

  /// COUNT fanned across shards: per-shard [lower, upper] bounds sum to
  /// the global bounds (shards partition the rows, so the sums are
  /// bit-identical to the monolithic bounds for the same serving index
  /// definitions). Each shard refines independently against a tolerance
  /// split of {absolute / num_shards(), relative}, so the merged gap is
  /// at most absolute + relative * n; at tolerance 0 every shard counts
  /// exactly and the merged count equals the monolithic exact count.
  Result<CountResult> CountInequality(
      const ScalarProductQuery& q,
      const CountTolerance& tolerance = CountTolerance(),
      const Deadline& deadline = Deadline::Infinite()) const;

  /// SUM/AVG fanned across shards, same merge and tolerance-split rules
  /// as CountInequality (the absolute tolerance splits evenly; the
  /// relative tolerance reads each shard's own total absolute payload,
  /// which sums to the global one).
  Result<AggregateResult> AggregateInequality(
      const ScalarProductQuery& q,
      const CountTolerance& tolerance = CountTolerance(),
      const Deadline& deadline = Deadline::Infinite()) const;

  /// Problem 2: per-shard top-k merged through the canonical
  /// (distance, id) buffer — bit-identical to the monolithic set.
  Result<TopKResult> TopK(const ScalarProductQuery& q, size_t k,
                          const Deadline& deadline = Deadline::Infinite()) const;

  /// Number of shards.
  size_t num_shards() const { return shards_.size(); }
  /// Total rows across all shards.
  size_t size() const { return offsets_.back(); }
  /// The s-th shard's set.
  const PlanarIndexSet& shard(size_t s) const { return shards_[s]; }
  /// First global row id of shard s (offset(num_shards()) == size()).
  uint32_t shard_offset(size_t s) const { return offsets_[s]; }
  /// Cumulative rows verified (|II| evaluations) by shard s across every
  /// query served so far — the per-shard load-balance signal surfaced by
  /// engine metrics.
  uint64_t shard_rows_verified(size_t s) const {
    // relaxed-ok: monotone monitoring counter read for reporting;
    // nothing orders on it.
    return rows_verified_[s].load(std::memory_order_relaxed);
  }

  /// The options this set was built with (shards resolved to the actual
  /// count).
  const ShardedIndexSetOptions& options() const { return options_; }

  /// Heap footprint of every shard, in bytes.
  size_t MemoryUsage() const;

 private:
  ShardedIndexSet(std::vector<PlanarIndexSet> shards,
                  std::vector<uint32_t> offsets,
                  const ShardedIndexSetOptions& options);

  /// Resolved fan-out width for one query.
  size_t FanoutWidth() const;

  std::vector<PlanarIndexSet> shards_;
  /// Shard row offsets, size num_shards() + 1; shard s covers global
  /// rows [offsets_[s], offsets_[s + 1]).
  std::vector<uint32_t> offsets_;
  ShardedIndexSetOptions options_;
  /// One cumulative rows-verified counter per shard.
  std::unique_ptr<std::atomic<uint64_t>[]> rows_verified_;
};

}  // namespace planar

#endif  // PLANAR_CORE_SHARDED_H_
