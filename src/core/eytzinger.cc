// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/eytzinger.h"

#include "common/macros.h"

namespace planar {

namespace {

// In-order walk of the implicit tree assigns sorted ranks to BFS slots.
// Recursion depth is the tree height (~log2 n), not n.
size_t FillNode(const double* sorted, size_t rank, size_t node, size_t n,
                double* keys, uint32_t* ranks) {
  if (node > n) return rank;
  rank = FillNode(sorted, rank, 2 * node, n, keys, ranks);
  keys[node] = sorted[rank];
  ranks[node] = static_cast<uint32_t>(rank);
  ++rank;
  return FillNode(sorted, rank, 2 * node + 1, n, keys, ranks);
}

}  // namespace

void EytzingerKeys::Build(const double* sorted_keys, size_t n) {
  Clear();
  if (n < kEytzingerMinKeys) return;
  PLANAR_CHECK(sorted_keys != nullptr);
  n_ = n;
  keys_.resize(n + 1);
  rank_.resize(n + 1);
  keys_[0] = 0.0;
  rank_[0] = 0;
  const size_t filled =
      FillNode(sorted_keys, 0, 1, n, keys_.data(), rank_.data());
  PLANAR_DCHECK(filled == n);
  (void)filled;
}

void EytzingerKeys::Clear() {
  keys_.clear();
  keys_.shrink_to_fit();
  rank_.clear();
  rank_.shrink_to_fit();
  n_ = 0;
}

}  // namespace planar
