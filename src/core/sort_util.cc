// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/sort_util.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "core/parallel.h"

namespace planar {

namespace {

using Entry = OrderStatisticBTree::Entry;

}  // namespace

void SortEntries(std::vector<Entry>* entries, size_t threads) {
  PLANAR_CHECK(entries != nullptr);
  const size_t n = entries->size();
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (threads == 1 || n < kParallelSortMinEntries) {
    std::sort(entries->begin(), entries->end());
    return;
  }

  // Shard bounds: contiguous, near-equal, every shard large enough that
  // std::sort dominates the spawn cost. The bounds depend on `threads`,
  // but the merged output does not (see header).
  const size_t max_shards = std::max<size_t>(1, n / (kParallelSortMinEntries / 4));
  const size_t shards = std::min(threads, max_shards);
  const size_t chunk = (n + shards - 1) / shards;
  std::vector<size_t> bounds;
  bounds.reserve(shards + 1);
  for (size_t b = 0; b < n; b += chunk) bounds.push_back(b);
  bounds.push_back(n);

  ParallelFor(
      bounds.size() - 1,
      [&](size_t s) {
        std::sort(entries->begin() + static_cast<ptrdiff_t>(bounds[s]),
                  entries->begin() + static_cast<ptrdiff_t>(bounds[s + 1]));
      },
      threads);

  // Pairwise merge rounds, ping-ponging between the entry array and one
  // scratch buffer. Each round halves the run count; runs merge on
  // independent ranges, so rounds parallelize over run pairs. An odd
  // trailing run is copied through so the source of the next round is
  // always the destination buffer of this one.
  std::vector<Entry> scratch(n);
  Entry* src = entries->data();
  Entry* dst = scratch.data();
  while (bounds.size() > 2) {
    const size_t runs = bounds.size() - 1;
    const size_t pairs = runs / 2;
    ParallelFor(
        pairs + (runs % 2),
        [&](size_t p) {
          const size_t lo = bounds[2 * p];
          if (p == pairs) {  // odd trailing run: copy through
            std::copy(src + lo, src + bounds[2 * p + 1], dst + lo);
            return;
          }
          const size_t mid = bounds[2 * p + 1];
          const size_t hi = bounds[2 * p + 2];
          std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo);
        },
        threads);
    std::vector<size_t> next;
    next.reserve(pairs + 2);
    for (size_t i = 0; i < bounds.size(); i += 2) next.push_back(bounds[i]);
    if (next.back() != n) next.push_back(n);
    bounds = std::move(next);
    std::swap(src, dst);
  }
  if (src != entries->data()) {
    std::copy(src, src + n, entries->data());
  }
}

}  // namespace planar
