// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Query-driven index adaptation — the paper's closing future-work item
// ("one may also use machine learning techniques to dynamically update
// the indices based on past queries", Section 8), and the practice its
// Section 7.2.2 recommends for high query randomness ("it is more
// beneficial to dynamically update our indices based on the recent
// queries").
//
// AdaptiveIndexSet wraps a PlanarIndexSet, records the normals of the
// queries it serves, and on Readapt() replaces the worst-serving indices
// with normals taken from the recent query log (deduplicating parallel
// ones), so the index set tracks the observed query distribution.

#ifndef PLANAR_CORE_ADAPTIVE_H_
#define PLANAR_CORE_ADAPTIVE_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "common/result.h"
#include "core/index_set.h"

namespace planar {

/// Options for query-driven adaptation.
struct AdaptiveOptions {
  /// Number of recent queries remembered.
  size_t history = 256;
  /// Fraction of the index budget replaced per Readapt() call.
  double replace_fraction = 0.5;
  /// Two normals closer than this (|cos|) are considered already covered.
  double dedup_tolerance = 1e-3;
};

/// A PlanarIndexSet that learns its index normals from the query stream.
class AdaptiveIndexSet {
 public:
  /// Wraps an existing set (moved in).
  AdaptiveIndexSet(PlanarIndexSet set, AdaptiveOptions options);

  /// Problem 1, recording the query for adaptation.
  InequalityResult Inequality(const ScalarProductQuery& q);

  /// Problem 2, recording the query for adaptation.
  Result<TopKResult> TopK(const ScalarProductQuery& q, size_t k);

  /// Replaces up to replace_fraction * num_indices() of the indices with
  /// normals from the recorded history: the least-used indices are
  /// dropped and history normals not yet covered (no existing index
  /// parallel within the tolerance) are added, most recent first.
  /// Returns the number of indices replaced.
  Result<size_t> Readapt();

  /// The wrapped set.
  const PlanarIndexSet& set() const { return set_; }

  /// Recorded query count since construction.
  size_t queries_seen() const { return queries_seen_; }

 private:
  void Record(const NormalizedQuery& q, int index_used);

  PlanarIndexSet set_;
  AdaptiveOptions options_;
  // Most recent normalized query normals (mirrored-space magnitudes) and
  // their octants.
  std::deque<std::pair<std::vector<double>, Octant>> history_;
  std::vector<size_t> use_counts_;  // per index, since last Readapt
  size_t queries_seen_ = 0;
};

}  // namespace planar

#endif  // PLANAR_CORE_ADAPTIVE_H_
