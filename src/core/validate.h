// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Self-checks for index structures: recompute every key from the phi
// matrix, confirm order and translation coverage, and cross-check rank
// arithmetic. Used by tests, the CLI, and any deployment that wants a
// consistency audit after crash recovery or bulk maintenance.

#ifndef PLANAR_CORE_VALIDATE_H_
#define PLANAR_CORE_VALIDATE_H_

#include "common/status.h"
#include "core/index_set.h"
#include "core/planar_index.h"
#include "core/row_matrix.h"

namespace planar {

/// Exhaustively audits one index against its backing matrix: key-of-row
/// consistency, sorted order, rank/CollectRange agreement, and
/// translation coverage of every row. O(n log n). Returns the first
/// violation found.
Status ValidateIndex(const PlanarIndex& index, const PhiMatrix& phi);

/// Audits every index of a set against the owned matrix.
Status ValidateIndexSet(const PlanarIndexSet& set);

}  // namespace planar

#endif  // PLANAR_CORE_VALIDATE_H_
