// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Cross-query batched execution support types. The entry point is
// PlanarIndexSet::BatchInequality (core/index_set.h, implemented in
// batch.cc): queries are grouped by their selected index, their
// intermediate intervals are coalesced — overlapping rank ranges merged —
// and every merged range is streamed exactly once through the multi-query
// kernels (kernels::dot_block_many), so phi rows demanded by several
// queries are read from memory once instead of once per query. Answers
// are bit-identical to the serial Inequality path.

#ifndef PLANAR_CORE_BATCH_H_
#define PLANAR_CORE_BATCH_H_

#include <cstddef>

namespace planar {

/// Aggregate accounting of one BatchInequality call, feeding the engine's
/// batch-occupancy / rows-shared metrics and bench_batch.
struct BatchExecStats {
  size_t queries = 0;        ///< queries in the batch
  size_t index_groups = 0;   ///< distinct indices that served >= 1 query
  size_t scan_queries = 0;   ///< queries answered by sequential scan
  size_t merged_ranges = 0;  ///< coalesced candidate ranges streamed
  /// Candidate rows the batch streamed through the kernels (each merged
  /// range counted once).
  size_t rows_streamed = 0;
  /// Candidate rows the serial path would have streamed: the sum of the
  /// per-query intermediate-interval sizes (n per scan-served query).
  size_t rows_demanded = 0;

  /// rows_demanded / rows_streamed; 1.0 means no sharing happened.
  double SharingFactor() const {
    if (rows_streamed == 0) return 1.0;
    return static_cast<double>(rows_demanded) /
           static_cast<double>(rows_streamed);
  }

  /// Rows coalescing saved, averaged over the batch's queries.
  double RowsSharedPerQuery() const {
    if (queries == 0) return 0.0;
    return static_cast<double>(rows_demanded - rows_streamed) /
           static_cast<double>(queries);
  }
};

}  // namespace planar

#endif  // PLANAR_CORE_BATCH_H_
