// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Mixed-precision verification (DESIGN.md section 5j): classify candidate
// rows with the f32 mirror of the phi matrix against a conservatively
// widened accept band, and re-verify only the band rows in f64. The band
// is a per-query forward-error bound on |f32 residual - f64 residual|, so
// rows strictly outside it are decided by the f32 compare alone and the
// emitted ids, order, and stats stay bit-identical to the scalar f64
// reference — the same gate PR 3 applied to SIMD.
//
// Runtime control: PLANAR_DISABLE_F32 (read once, like
// PLANAR_DISABLE_SIMD) turns the whole path off even when
// PlanarIndexOptions::mixed_precision is set; PLANAR_FORCE_F32 turns it
// on for every PlanarIndexSet build, which CI uses to run the standard
// suites through the mixed path.

#ifndef PLANAR_CORE_MIXED_H_
#define PLANAR_CORE_MIXED_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/row_matrix.h"

namespace planar {

/// False iff the PLANAR_DISABLE_F32 environment variable is set to a
/// non-empty value other than "0". Read exactly once per process.
bool MixedPrecisionRuntimeEnabled();

/// True iff the PLANAR_FORCE_F32 environment variable is set to a
/// non-empty value other than "0". PlanarIndexSet builds then behave as
/// if options.index_options.mixed_precision were true.
bool MixedPrecisionForcedOn();

/// Per-query state for the mixed verify path. Built once per query by
/// MakeMixedPlan; read-only afterwards (shared across parallel-verify
/// shards without synchronization).
struct MixedQueryPlan {
  /// False when the mirror is absent, the runtime switch is off, or the
  /// query/data magnitude envelope makes f32 classification unsound
  /// (values near the float range limit); callers then run pure f64.
  bool usable = false;
  bool less_equal = true;
  // f32-ok: mixed-precision module owns the sanctioned float surface.
  /// The query vector rounded to f32 (clamped like the mirror).
  std::vector<float> a32;
  /// -b rounded to f32: the bias handed to the f32 kernels, so their
  /// output is the f32 residual dot32(a32, row32) - b.
  float bias32 = 0.0f;
  /// Widened accept band: |f32 residual - f64 reference residual| < band
  /// for every row within the matrix's column bounds, with margin. An
  /// f32 residual < -band (less_equal) is a sure accept, > band a sure
  /// reject; everything else — including NaN — re-verifies in f64.
  float band = 0.0f;
};

/// Builds the mixed plan for verifying rows of `phi` against
/// residual(x) = <a, phi(x)> - b with the given comparison direction.
/// Returns an unusable plan unless the mirror is present, the runtime
/// switch is on, and the magnitude envelope admits a sound band.
MixedQueryPlan MakeMixedPlan(const double* a, size_t dim, double b,
                             bool less_equal, const RowMatrix& phi);

/// The envelope-based core of MakeMixedPlan: `column_abs_max[i]` must
/// bound |row[i]| for every row the plan will classify (grow-only bounds
/// are fine — a looser envelope only widens the band). This is the entry
/// point for row stores that are not RowMatrix, notably the ingest
/// DeltaBuffer's f32 mirror; the caller is responsible for only using the
/// plan against rows the envelope covers. Returns an unusable plan when
/// the runtime switch is off or the envelope is too large for a sound
/// f32 band.
MixedQueryPlan MakeMixedPlanWithEnvelope(const double* a, size_t dim, double b,
                                         bool less_equal,
                                         const double* column_abs_max);

/// Resolves one block of `blk` (<= kernels::kBlockRows) candidates whose
/// f32 residuals are in `res32`: writes a decision-residual array where
/// sure accepts/rejects become sentinel values (+/-1, chosen to pass or
/// fail the predicate) and band rows carry their exact f64 residual,
/// computed with one f64 dot_gather over just those rows. Feeding
/// `decision` to kernels::CompressAccept then emits exactly the ids, in
/// exactly the order, of the pure-f64 path. Returns the number of band
/// rows (the f64 re-verified count). `rows64`/`stride` address the f64
/// storage; `ids[i]` is the row id of res32[i].
// f32-ok: f32 residual input to the band classifier.
size_t MixedResolveBlock(const MixedQueryPlan& plan, const double* a,
                         size_t dim, double b, const double* rows64,
                         size_t stride, const uint32_t* ids,
                         const float* res32, size_t blk, double* decision);

/// MixedResolveBlock for consecutive row ids first_row, first_row + 1, ...
/// (the sequential-scan case).
// f32-ok: f32 residual input to the band classifier.
size_t MixedResolveBlockRange(const MixedQueryPlan& plan, const double* a,
                              size_t dim, double b, const double* rows64,
                              size_t stride, size_t first_row,
                              const float* res32, size_t blk,
                              double* decision);

/// Top-k pre-filter: compress-stores into `possible` the ids of every row
/// that is NOT a sure reject (sure accepts and band rows alike — top-k
/// needs exact residuals for everything that might match, so only the
/// sure-reject side of the band is exploitable). NaN f32 residuals stay
/// possible. Returns the number of ids stored; order is preserved.
// f32-ok: f32 residual input to the band classifier.
size_t MixedFilterPossible(const MixedQueryPlan& plan, const float* res32,
                           const uint32_t* ids, size_t blk,
                           uint32_t* possible);

}  // namespace planar

#endif  // PLANAR_CORE_MIXED_H_
