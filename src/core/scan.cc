// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/scan.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "core/kernels/kernels.h"
#include "core/topk.h"
#include "geometry/vec.h"

namespace planar {

InequalityResult ScanInequality(const PhiMatrix& phi,
                                const ScalarProductQuery& q) {
  Result<InequalityResult> result =
      ScanInequality(phi, q, Deadline::Infinite());
  PLANAR_CHECK(result.ok());  // an infinite deadline never expires
  return std::move(result).value();
}

Result<InequalityResult> ScanInequality(const PhiMatrix& phi,
                                        const ScalarProductQuery& q,
                                        const Deadline& deadline) {
  PLANAR_CHECK_EQ(phi.dim(), q.a.size());
  InequalityResult result;
  const size_t n = phi.size();
  result.stats.num_points = n;
  result.stats.verified = n;
  result.stats.index_used = -1;
  // Worst case up front (every row matches), like the index II paths:
  // one allocation per query instead of log2(result) geometric regrowths,
  // each of which copies the whole accumulated id vector. On near-total
  // selectivity scans the regrowth copies cost more than a block's
  // residual kernel (see the micro-bench note in bench/bench_micro.cc).
  result.ids.reserve(n);
  // Batched over contiguous rows: per block, one deadline poll, one
  // kernel call for the residuals, one branch-light compress-store of the
  // matching row ids.
  const bool le = q.cmp == Comparison::kLessEqual;
  const kernels::DotOps& ops = kernels::Ops();
  double residuals[kernels::kBlockRows];
  uint32_t accepted[kernels::kBlockRows];
  for (size_t row = 0; row < n; row += kernels::kBlockRows) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("sequential scan exceeded its deadline");
    }
    const size_t blk = std::min(kernels::kBlockRows, n - row);
    ops.dot_range(q.a.data(), phi.dim(), phi.data(), phi.dim(), row, blk,
                  -q.b, residuals);
    const size_t kept = kernels::CompressAcceptRange(
        residuals, static_cast<uint32_t>(row), blk, le, accepted);
    result.ids.insert(result.ids.end(), accepted, accepted + kept);
  }
  result.stats.result_size = result.ids.size();
  return result;
}

Result<TopKResult> ScanTopK(const PhiMatrix& phi, const ScalarProductQuery& q,
                            size_t k) {
  return ScanTopK(phi, q, k, Deadline::Infinite());
}

Result<TopKResult> ScanTopK(const PhiMatrix& phi, const ScalarProductQuery& q,
                            size_t k, const Deadline& deadline) {
  PLANAR_CHECK_EQ(phi.dim(), q.a.size());
  if (!q.IsFinite()) {
    return Status::InvalidArgument("query parameters must be finite");
  }
  const double norm_a = Norm(q.a);
  if (norm_a == 0.0) {
    return Status::InvalidArgument(
        "top-k distance is undefined for an all-zero query normal");
  }
  if (k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  TopKResult result;
  const size_t n = phi.size();
  result.stats.num_points = n;
  result.stats.verified_intermediate = n;
  result.stats.index_used = -1;
  const bool le = q.cmp == Comparison::kLessEqual;
  const kernels::DotOps& ops = kernels::Ops();
  double residuals[kernels::kBlockRows];
  TopKBuffer buffer(k);
  for (size_t row = 0; row < n; row += kernels::kBlockRows) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded(
          "sequential top-k scan exceeded its deadline");
    }
    const size_t blk = std::min(kernels::kBlockRows, n - row);
    ops.dot_range(q.a.data(), phi.dim(), phi.data(), phi.dim(), row, blk,
                  -q.b, residuals);
    for (size_t i = 0; i < blk; ++i) {
      const double residual = residuals[i];
      const bool match = le ? residual <= 0.0 : residual >= 0.0;
      if (match) {
        buffer.Insert(static_cast<uint32_t>(row + i),
                      std::fabs(residual) / norm_a);
      }
    }
  }
  result.neighbors = buffer.TakeSorted();
  return result;
}

}  // namespace planar
