// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/scan.h"

#include <cmath>

#include "common/macros.h"
#include "core/topk.h"
#include "geometry/vec.h"

namespace planar {

InequalityResult ScanInequality(const PhiMatrix& phi,
                                const ScalarProductQuery& q) {
  Result<InequalityResult> result =
      ScanInequality(phi, q, Deadline::Infinite());
  PLANAR_CHECK(result.ok());  // an infinite deadline never expires
  return std::move(result).value();
}

Result<InequalityResult> ScanInequality(const PhiMatrix& phi,
                                        const ScalarProductQuery& q,
                                        const Deadline& deadline) {
  PLANAR_CHECK_EQ(phi.dim(), q.a.size());
  InequalityResult result;
  const size_t n = phi.size();
  result.stats.num_points = n;
  result.stats.verified = n;
  result.stats.index_used = -1;
  for (size_t row = 0; row < n; ++row) {
    if ((row & (kDeadlineCheckInterval - 1)) == 0 && deadline.Expired()) {
      return Status::DeadlineExceeded(
          "sequential scan exceeded its deadline");
    }
    if (q.Matches(phi.row(row))) {
      result.ids.push_back(static_cast<uint32_t>(row));
    }
  }
  result.stats.result_size = result.ids.size();
  return result;
}

Result<TopKResult> ScanTopK(const PhiMatrix& phi, const ScalarProductQuery& q,
                            size_t k) {
  return ScanTopK(phi, q, k, Deadline::Infinite());
}

Result<TopKResult> ScanTopK(const PhiMatrix& phi, const ScalarProductQuery& q,
                            size_t k, const Deadline& deadline) {
  PLANAR_CHECK_EQ(phi.dim(), q.a.size());
  if (!q.IsFinite()) {
    return Status::InvalidArgument("query parameters must be finite");
  }
  const double norm_a = Norm(q.a);
  if (norm_a == 0.0) {
    return Status::InvalidArgument(
        "top-k distance is undefined for an all-zero query normal");
  }
  if (k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  TopKResult result;
  const size_t n = phi.size();
  result.stats.num_points = n;
  result.stats.verified_intermediate = n;
  result.stats.index_used = -1;
  TopKBuffer buffer(k);
  for (size_t row = 0; row < n; ++row) {
    if ((row & (kDeadlineCheckInterval - 1)) == 0 && deadline.Expired()) {
      return Status::DeadlineExceeded(
          "sequential top-k scan exceeded its deadline");
    }
    const double residual = q.Residual(phi.row(row));
    const bool match =
        q.cmp == Comparison::kLessEqual ? residual <= 0.0 : residual >= 0.0;
    if (match) {
      buffer.Insert(static_cast<uint32_t>(row), std::fabs(residual) / norm_a);
    }
  }
  result.neighbors = buffer.TakeSorted();
  return result;
}

}  // namespace planar
