// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/scan.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "core/aggregate.h"
#include "core/kernels/kernels.h"
#include "core/mixed.h"
#include "core/topk.h"
#include "geometry/vec.h"

namespace planar {

namespace {

// Mixed-precision body of ScanTopK: rows the f32 residual proves strictly
// outside the band on the reject side can never match, so only the
// remaining "possible" rows get the exact f64 residual. Every offered
// (id, distance) pair is computed in f64, so the buffer contents are
// bit-identical to the pure f64 scan.
Status ScanRowsTopKMixed(const PhiMatrix& phi, const ScalarProductQuery& q,
                         const MixedQueryPlan& plan, const Deadline& deadline,
                         TopKBuffer* buffer) {
  const size_t n = phi.size();
  const size_t dim = phi.dim();
  const double norm_a = Norm(q.a);
  PLANAR_CHECK(norm_a > 0.0);  // caller validated the query normal
  const bool le = q.cmp == Comparison::kLessEqual;
  const kernels::DotOps& ops = kernels::Ops();
  const kernels::DotOpsF32& ops32 = kernels::OpsF32();
  // f32-ok: mirror rows and residuals for the band classification.
  const float* rows32 = phi.f32_data();
  float res32[kernels::kBlockRows];
  uint32_t ids[kernels::kBlockRows];
  uint32_t possible[kernels::kBlockRows];
  double residuals[kernels::kBlockRows];
  for (size_t row = 0; row < n; row += kernels::kBlockRows) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded(
          "sequential top-k scan exceeded its deadline");
    }
    const size_t blk = std::min(kernels::kBlockRows, n - row);
    ops32.dot_range(plan.a32.data(), dim, rows32, dim, row, blk, plan.bias32,
                    res32);
    for (size_t i = 0; i < blk; ++i) {
      ids[i] = static_cast<uint32_t>(row + i);
    }
    const size_t count = MixedFilterPossible(plan, res32, ids, blk, possible);
    ops.dot_gather(q.a.data(), dim, phi.data(), dim, possible, count, -q.b,
                   residuals);
    for (size_t i = 0; i < count; ++i) {
      const double residual = residuals[i];
      const bool match = le ? residual <= 0.0 : residual >= 0.0;
      if (match) {
        buffer->Insert(possible[i], std::fabs(residual) / norm_a);
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<size_t> ScanRowsInequality(const double* rows, size_t dim, size_t count,
                                  uint32_t id_offset,
                                  const ScalarProductQuery& q,
                                  const Deadline& deadline,
                                  std::vector<uint32_t>* out) {
  PLANAR_CHECK_EQ(dim, q.a.size());
  PLANAR_CHECK(out != nullptr);
  const size_t before = out->size();
  const bool le = q.cmp == Comparison::kLessEqual;
  const kernels::DotOps& ops = kernels::Ops();
  double residuals[kernels::kBlockRows];
  uint32_t accepted[kernels::kBlockRows];
  for (size_t row = 0; row < count; row += kernels::kBlockRows) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("sequential scan exceeded its deadline");
    }
    const size_t blk = std::min(kernels::kBlockRows, count - row);
    ops.dot_range(q.a.data(), dim, rows, dim, row, blk, -q.b, residuals);
    const size_t kept = kernels::CompressAcceptRange(
        residuals, id_offset + static_cast<uint32_t>(row), blk, le, accepted);
    out->insert(out->end(), accepted, accepted + kept);
  }
  return out->size() - before;
}

// f32-ok: the f32 rows are a screening mirror only — every row the f32
// pass cannot place outside the widened band is re-verified against the
// exact f64 rows below, so answers stay bit-equal to the f64-only scan.
Result<size_t> ScanRowsInequalityMixed(const double* rows64,
                                       const float* rows32, size_t dim,
                                       size_t count, uint32_t id_offset,
                                       const ScalarProductQuery& q,
                                       const MixedQueryPlan& plan,
                                       const Deadline& deadline,
                                       std::vector<uint32_t>* out) {
  PLANAR_CHECK_EQ(dim, q.a.size());
  PLANAR_CHECK(out != nullptr && plan.usable);
  // The f32 mirror classifies each block against the widened band, the
  // band rows are re-verified in f64 by MixedResolveBlockRange, and the
  // compress-store consumes the resulting sentinel/residual array — so
  // the accepted ids (and their order) are bit-identical to the pure f64
  // ScanRowsInequality.
  const size_t before = out->size();
  const bool le = q.cmp == Comparison::kLessEqual;
  const kernels::DotOpsF32& ops32 = kernels::OpsF32();
  // f32-ok: mirror residuals for the band classification.
  float res32[kernels::kBlockRows];
  double decision[kernels::kBlockRows];
  uint32_t accepted[kernels::kBlockRows];
  for (size_t row = 0; row < count; row += kernels::kBlockRows) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("sequential scan exceeded its deadline");
    }
    const size_t blk = std::min(kernels::kBlockRows, count - row);
    ops32.dot_range(plan.a32.data(), dim, rows32, dim, row, blk, plan.bias32,
                    res32);
    MixedResolveBlockRange(plan, q.a.data(), dim, q.b, rows64, dim, row,
                           res32, blk, decision);
    const size_t kept = kernels::CompressAcceptRange(
        decision, id_offset + static_cast<uint32_t>(row), blk, le, accepted);
    out->insert(out->end(), accepted, accepted + kept);
  }
  return out->size() - before;
}

Result<size_t> ScanRowsCountInequality(const double* rows, size_t dim,
                                       size_t count,
                                       const ScalarProductQuery& q,
                                       const Deadline& deadline) {
  PLANAR_CHECK_EQ(dim, q.a.size());
  const bool le = q.cmp == Comparison::kLessEqual;
  const kernels::DotOps& ops = kernels::Ops();
  double residuals[kernels::kBlockRows];
  uint32_t accepted[kernels::kBlockRows];
  size_t total = 0;
  for (size_t row = 0; row < count; row += kernels::kBlockRows) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("sequential scan exceeded its deadline");
    }
    const size_t blk = std::min(kernels::kBlockRows, count - row);
    ops.dot_range(q.a.data(), dim, rows, dim, row, blk, -q.b, residuals);
    total += kernels::CompressAcceptRange(
        residuals, static_cast<uint32_t>(row), blk, le, accepted);
  }
  return total;
}

Status ScanRowsAggregateInequality(const double* rows, size_t dim,
                                   size_t count, int payload_column,
                                   const ScalarProductQuery& q,
                                   const Deadline& deadline, size_t* matched,
                                   double* sum) {
  PLANAR_CHECK_EQ(dim, q.a.size());
  PLANAR_CHECK(matched != nullptr && sum != nullptr);
  PLANAR_CHECK(payload_column >= 0 && static_cast<size_t>(payload_column) <
                                          dim);
  const double* payload = rows + static_cast<size_t>(payload_column);
  const bool le = q.cmp == Comparison::kLessEqual;
  const kernels::DotOps& ops = kernels::Ops();
  double residuals[kernels::kBlockRows];
  uint32_t accepted[kernels::kBlockRows];
  double vals[kernels::kBlockRows];
  for (size_t row = 0; row < count; row += kernels::kBlockRows) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("sequential scan exceeded its deadline");
    }
    const size_t blk = std::min(kernels::kBlockRows, count - row);
    ops.dot_range(q.a.data(), dim, rows, dim, row, blk, -q.b, residuals);
    const size_t kept = kernels::CompressAcceptRange(
        residuals, static_cast<uint32_t>(row), blk, le, accepted);
    *matched += kept;
    if (kept != 0) {
      for (size_t i = 0; i < kept; ++i) {
        vals[i] = payload[static_cast<size_t>(accepted[i]) * dim];
      }
      // agg-ok: per-block payload totals go through the canonical helper
      // and accumulate in row order — the same determinism rule as the
      // index refinement path.
      *sum += CanonicalBlockedSum(vals, kept);
    }
  }
  return Status::OK();
}

Status ScanRowsTopK(const double* rows, size_t dim, size_t count,
                    uint32_t id_offset, const ScalarProductQuery& q,
                    const Deadline& deadline, TopKBuffer* buffer) {
  PLANAR_CHECK_EQ(dim, q.a.size());
  PLANAR_CHECK(buffer != nullptr);
  const double norm_a = Norm(q.a);
  PLANAR_CHECK(norm_a > 0.0);  // caller validated the query normal
  const bool le = q.cmp == Comparison::kLessEqual;
  const kernels::DotOps& ops = kernels::Ops();
  double residuals[kernels::kBlockRows];
  for (size_t row = 0; row < count; row += kernels::kBlockRows) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded(
          "sequential top-k scan exceeded its deadline");
    }
    const size_t blk = std::min(kernels::kBlockRows, count - row);
    ops.dot_range(q.a.data(), dim, rows, dim, row, blk, -q.b, residuals);
    for (size_t i = 0; i < blk; ++i) {
      const double residual = residuals[i];
      const bool match = le ? residual <= 0.0 : residual >= 0.0;
      if (match) {
        buffer->Insert(id_offset + static_cast<uint32_t>(row + i),
                       std::fabs(residual) / norm_a);
      }
    }
  }
  return Status::OK();
}

InequalityResult ScanInequality(const PhiMatrix& phi,
                                const ScalarProductQuery& q) {
  Result<InequalityResult> result =
      ScanInequality(phi, q, Deadline::Infinite());
  PLANAR_CHECK(result.ok());  // an infinite deadline never expires
  return std::move(result).value();
}

Result<InequalityResult> ScanInequality(const PhiMatrix& phi,
                                        const ScalarProductQuery& q,
                                        const Deadline& deadline) {
  PLANAR_CHECK_EQ(phi.dim(), q.a.size());
  InequalityResult result;
  const size_t n = phi.size();
  result.stats.num_points = n;
  result.stats.verified = n;
  result.stats.index_used = -1;
  // Worst case up front (every row matches), like the index II paths:
  // one allocation per query instead of log2(result) geometric regrowths,
  // each of which copies the whole accumulated id vector. On near-total
  // selectivity scans the regrowth copies cost more than a block's
  // residual kernel (see the micro-bench note in bench/bench_micro.cc).
  result.ids.reserve(n);
  // Batched over contiguous rows: per block, one deadline poll, one
  // kernel call for the residuals, one branch-light compress-store of the
  // matching row ids (shared with the ingest delta overlay via the raw
  // helper above). With a live f32 mirror the block residuals come from
  // the mixed band classification instead (same ids, same order).
  const MixedQueryPlan plan =
      phi.f32_data() != nullptr
          ? MakeMixedPlan(q.a.data(), phi.dim(), q.b,
                          q.cmp == Comparison::kLessEqual, phi)
          : MixedQueryPlan();
  Result<size_t> appended =
      plan.usable
          ? ScanRowsInequalityMixed(phi.data(), phi.f32_data(), phi.dim(), n,
                                    /*id_offset=*/0, q, plan, deadline,
                                    &result.ids)
          : ScanRowsInequality(phi.data(), phi.dim(), n, /*id_offset=*/0, q,
                               deadline, &result.ids);
  if (!appended.ok()) return appended.status();
  result.stats.result_size = result.ids.size();
  return result;
}

Result<CountResult> ScanCountInequality(const PhiMatrix& phi,
                                        const ScalarProductQuery& q,
                                        const Deadline& deadline) {
  PLANAR_CHECK_EQ(phi.dim(), q.a.size());
  CountResult result;
  const size_t n = phi.size();
  result.stats.num_points = n;
  result.stats.verified = n;
  result.stats.index_used = -1;
  Result<size_t> matched =
      ScanRowsCountInequality(phi.data(), phi.dim(), n, q, deadline);
  if (!matched.ok()) return matched.status();
  result.lower = result.upper = result.estimate = matched.value();
  result.exact = true;
  result.stats.result_size = result.estimate;
  return result;
}

Result<AggregateResult> ScanAggregateInequality(const PhiMatrix& phi,
                                                int payload_column,
                                                const ScalarProductQuery& q,
                                                const Deadline& deadline) {
  PLANAR_CHECK_EQ(phi.dim(), q.a.size());
  if (payload_column < 0 ||
      static_cast<size_t>(payload_column) >= phi.dim()) {
    return Status::InvalidArgument(
        "payload_column must name a phi matrix column");
  }
  AggregateResult result;
  const size_t n = phi.size();
  result.count.stats.num_points = n;
  result.count.stats.verified = n;
  result.count.stats.index_used = -1;
  size_t total = 0;
  double sum = 0.0;
  const Status scanned = ScanRowsAggregateInequality(
      phi.data(), phi.dim(), n, payload_column, q, deadline, &total, &sum);
  if (!scanned.ok()) return scanned;
  result.count.lower = result.count.upper = result.count.estimate = total;
  result.count.exact = true;
  result.count.stats.result_size = total;
  result.sum_lower = result.sum_upper = result.sum = sum;
  result.exact = true;
  return result;
}

Result<TopKResult> ScanTopK(const PhiMatrix& phi, const ScalarProductQuery& q,
                            size_t k) {
  return ScanTopK(phi, q, k, Deadline::Infinite());
}

Result<TopKResult> ScanTopK(const PhiMatrix& phi, const ScalarProductQuery& q,
                            size_t k, const Deadline& deadline) {
  PLANAR_CHECK_EQ(phi.dim(), q.a.size());
  if (!q.IsFinite()) {
    return Status::InvalidArgument("query parameters must be finite");
  }
  const double norm_a = Norm(q.a);
  if (norm_a == 0.0) {
    return Status::InvalidArgument(
        "top-k distance is undefined for an all-zero query normal");
  }
  if (k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  TopKResult result;
  const size_t n = phi.size();
  result.stats.num_points = n;
  result.stats.verified_intermediate = n;
  result.stats.index_used = -1;
  // Clamp the reservation by n: a huge k must not allocate past the
  // candidate count (see TopKBuffer).
  TopKBuffer buffer(k, n);
  const MixedQueryPlan plan =
      phi.f32_data() != nullptr
          ? MakeMixedPlan(q.a.data(), phi.dim(), q.b,
                          q.cmp == Comparison::kLessEqual, phi)
          : MixedQueryPlan();
  Status scan = plan.usable
                    ? ScanRowsTopKMixed(phi, q, plan, deadline, &buffer)
                    : ScanRowsTopK(phi.data(), phi.dim(), n, /*id_offset=*/0,
                                   q, deadline, &buffer);
  if (!scan.ok()) return scan;
  result.neighbors = buffer.TakeSorted();
  return result;
}

}  // namespace planar
