// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/band.h"

#include <algorithm>

#include "common/macros.h"
#include "geometry/vec.h"

namespace planar {

bool BandQuery::Matches(const double* phi_row) const {
  const double value = Dot(a.data(), phi_row, a.size());
  return lo <= value && value <= hi;
}

InequalityResult ScanBand(const PhiMatrix& phi, const BandQuery& query) {
  InequalityResult result;
  result.stats.num_points = phi.size();
  result.stats.verified = phi.size();
  result.stats.index_used = -1;
  for (size_t row = 0; row < phi.size(); ++row) {
    if (query.Matches(phi.row(row))) {
      result.ids.push_back(static_cast<uint32_t>(row));
    }
  }
  result.stats.result_size = result.ids.size();
  return result;
}

Result<InequalityResult> BandInequality(const PlanarIndexSet& set,
                                        const BandQuery& query) {
  if (query.a.size() != set.phi().dim()) {
    return Status::InvalidArgument(
        "band normal dimensionality must match the indexed phi space");
  }
  if (query.lo > query.hi) {
    return Status::InvalidArgument("band requires lo <= hi");
  }
  // The two half spaces share the normal, hence the octant, hence the
  // serving index; note the upper cut is a <=-query and the lower cut a
  // >=-query, whose *normalized* sign patterns can differ when one bound
  // is negative — so pick the index by the <=-cut and double-check it can
  // serve the >=-cut too.
  const ScalarProductQuery upper{query.a, query.hi, Comparison::kLessEqual};
  const ScalarProductQuery lower{query.a, query.lo,
                                 Comparison::kGreaterEqual};
  const NormalizedQuery upper_norm = NormalizedQuery::From(upper);
  const NormalizedQuery lower_norm = NormalizedQuery::From(lower);
  const int best = set.SelectBestIndex(upper_norm);
  if (best < 0 ||
      !set.index(static_cast<size_t>(best)).CanServe(lower_norm)) {
    return ScanBand(set.phi(), query);
  }
  const PlanarIndex& index = set.index(static_cast<size_t>(best));
  const auto upper_iv = index.ComputeIntervals(upper_norm);
  const auto lower_iv = index.ComputeIntervals(lower_norm);
  PLANAR_CHECK(upper_iv.ok() && lower_iv.ok());
  const size_t n = set.size();

  // Per cut: the rank range satisfied outright and the range not rejected
  // outright (candidates), oriented by the cut's normalized direction.
  struct Range {
    size_t begin;
    size_t end;
  };
  auto satisfied = [n](const NormalizedQuery& nq,
                       const PlanarIndex::Intervals& iv) -> Range {
    return nq.cmp == Comparison::kLessEqual ? Range{0, iv.smaller_end}
                                            : Range{iv.larger_begin, n};
  };
  auto candidates = [n](const NormalizedQuery& nq,
                        const PlanarIndex::Intervals& iv) -> Range {
    return nq.cmp == Comparison::kLessEqual ? Range{0, iv.larger_begin}
                                            : Range{iv.smaller_end, n};
  };
  auto intersect = [](Range a, Range b) -> Range {
    Range out{std::max(a.begin, b.begin), std::min(a.end, b.end)};
    if (out.begin > out.end) out.end = out.begin;
    return out;
  };
  const Range accept = intersect(satisfied(upper_norm, *upper_iv),
                                 satisfied(lower_norm, *lower_iv));
  const Range window = intersect(candidates(upper_norm, *upper_iv),
                                 candidates(lower_norm, *lower_iv));

  InequalityResult result;
  result.stats.num_points = n;
  result.stats.index_used = best;
  // Accepted middle: in both half spaces by the interval bounds alone.
  index.CollectRange(accept.begin, accept.end, &result.ids);
  result.stats.accepted_directly = result.ids.size();
  // Fringes of the candidate window around the accepted middle.
  std::vector<uint32_t> ids;
  if (accept.end > accept.begin) {
    index.CollectRange(window.begin, std::min(accept.begin, window.end),
                       &ids);
    index.CollectRange(std::max(accept.end, window.begin), window.end, &ids);
  } else {
    index.CollectRange(window.begin, window.end, &ids);
  }
  result.stats.verified = ids.size();
  const PhiMatrix& phi = set.phi();
  for (uint32_t id : ids) {
    if (query.Matches(phi.row(id))) result.ids.push_back(id);
  }
  result.stats.rejected_directly =
      n - result.stats.accepted_directly - result.stats.verified;
  result.stats.result_size = result.ids.size();
  return result;
}

}  // namespace planar
