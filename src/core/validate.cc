// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/validate.h"

#include <cmath>
#include <string>
#include <vector>

#include "geometry/vec.h"

namespace planar {

Status ValidateIndex(const PlanarIndex& index, const PhiMatrix& phi) {
  const size_t n = index.size();
  if (phi.size() != n) {
    return Status::FailedPrecondition(
        "index covers " + std::to_string(n) + " rows but the matrix has " +
        std::to_string(phi.size()));
  }
  if (phi.dim() != index.normal().size()) {
    return Status::FailedPrecondition("dimensionality mismatch");
  }
  const Translator& translator = index.translator();
  const std::vector<double>& normal = index.normal();
  const size_t d = normal.size();

  for (uint32_t row = 0; row < n; ++row) {
    const double* phi_row = phi.row(row);
    if (!translator.Covers(phi_row)) {
      return Status::Internal("row " + std::to_string(row) +
                              " escapes the translation; Rebuild() needed");
    }
    // Recompute the key independently: <c, psi(x)>.
    double key = 0.0;
    for (size_t i = 0; i < d; ++i) {
      key += normal[i] * translator.Mirror(i, phi_row[i]);
    }
    const double stored = index.KeyOf(row);
    const double tolerance =
        1e-9 * (std::fabs(key) + std::fabs(stored) + 1.0);
    if (std::fabs(key - stored) > tolerance) {
      return Status::Internal("row " + std::to_string(row) +
                              " has a stale key (stored " +
                              std::to_string(stored) + ", recomputed " +
                              std::to_string(key) + ")");
    }
  }

  // Rank order: CollectRange over the full range must be sorted by key
  // and cover each row exactly once.
  std::vector<uint32_t> order;
  index.CollectRange(0, n, &order);
  if (order.size() != n) {
    return Status::Internal("rank walk covers " +
                            std::to_string(order.size()) + " of " +
                            std::to_string(n) + " rows");
  }
  std::vector<bool> seen(n, false);
  for (size_t r = 0; r < n; ++r) {
    const uint32_t row = order[r];
    if (row >= n || seen[row]) {
      return Status::Internal("rank walk is not a permutation at rank " +
                              std::to_string(r));
    }
    seen[row] = true;
    if (r > 0 && index.KeyOf(order[r - 1]) > index.KeyOf(row)) {
      return Status::Internal("keys out of order at rank " +
                              std::to_string(r));
    }
  }
  return Status::OK();
}

Status ValidateIndexSet(const PlanarIndexSet& set) {
  for (size_t i = 0; i < set.num_indices(); ++i) {
    const Status status = ValidateIndex(set.index(i), set.phi());
    if (!status.ok()) {
      return Status(status.code(),
                    "index " + std::to_string(i) + ": " + status.message());
    }
  }
  return Status::OK();
}

}  // namespace planar
