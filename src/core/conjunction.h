// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Conjunctive (linear-constraint) queries: the AND of several scalar
// product constraints, i.e. the intersection of half spaces. The paper's
// related-work section notes that "one could apply multiple Planar
// indices in answering such linear constraint queries" — this module
// does exactly that: the most selective constraint (estimated from the
// index intervals, without touching data) drives candidate generation,
// and the remaining constraints are verified per candidate.

#ifndef PLANAR_CORE_CONJUNCTION_H_
#define PLANAR_CORE_CONJUNCTION_H_

#include <vector>

#include "common/result.h"
#include "core/index_set.h"
#include "core/planar_index.h"
#include "core/query.h"

namespace planar {

/// A conjunction of scalar product constraints over one phi space: a
/// point matches iff it satisfies every constraint.
struct ConjunctiveQuery {
  std::vector<ScalarProductQuery> constraints;

  /// True iff `phi_row` satisfies every constraint.
  bool Matches(const double* phi_row) const;
};

/// Answers a conjunctive query with the given index set. Strategy: for
/// each constraint, the best index's intervals give an upper bound
/// |SI| + |II| on its candidate count; the constraint with the smallest
/// bound generates candidates (directly-accepted points skip their own
/// constraint's verification) and every candidate is checked against the
/// remaining constraints. Falls back to a full scan when no constraint
/// has a compatible index. Fails on an empty constraint list or
/// dimension mismatch.
Result<InequalityResult> ConjunctiveInequality(const PlanarIndexSet& set,
                                               const ConjunctiveQuery& query);

/// The scan baseline for conjunctive queries.
InequalityResult ScanConjunctive(const PhiMatrix& phi,
                                 const ConjunctiveQuery& query);

}  // namespace planar

#endif  // PLANAR_CORE_CONJUNCTION_H_
