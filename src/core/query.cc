// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/query.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"
#include "geometry/vec.h"

namespace planar {

bool ScalarProductQuery::Matches(const double* phi_row) const {
  const double value = Dot(a.data(), phi_row, a.size());
  return cmp == Comparison::kLessEqual ? value <= b : value >= b;
}

double ScalarProductQuery::Residual(const double* phi_row) const {
  return Dot(a.data(), phi_row, a.size()) - b;
}

double ScalarProductQuery::Distance(const double* phi_row) const {
  const double norm = Norm(a);
  PLANAR_CHECK_GT(norm, 0.0);
  return std::fabs(Residual(phi_row)) / norm;
}

namespace {

bool AllFinite(const std::vector<double>& a, double b) {
  if (!std::isfinite(b)) return false;
  for (double ai : a) {
    if (!std::isfinite(ai)) return false;
  }
  return true;
}

}  // namespace

bool ScalarProductQuery::IsFinite() const { return AllFinite(a, b); }

std::string ScalarProductQuery::ToString() const {
  std::string out = "<a, phi(x)> ";
  out += cmp == Comparison::kLessEqual ? "<= " : ">= ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", b);
  out += buf;
  out += ", a=";
  out += VecToString(a);
  return out;
}

NormalizedQuery NormalizedQuery::From(const ScalarProductQuery& q) {
  NormalizedQuery n;
  n.a = q.a;
  n.b = q.b;
  n.cmp = q.cmp;
  if (n.b < 0.0) {
    for (double& ai : n.a) ai = -ai;
    n.b = -n.b;
    n.cmp = n.cmp == Comparison::kLessEqual ? Comparison::kGreaterEqual
                                            : Comparison::kLessEqual;
  }
  n.octant = Octant::FromNormal(n.a);
  return n;
}

bool NormalizedQuery::IsDegenerate() const {
  for (double ai : a) {
    if (ai != 0.0) return false;
  }
  return true;
}

bool NormalizedQuery::IsFinite() const { return AllFinite(a, b); }

double NormalizedQuery::NormA() const { return Norm(a); }

}  // namespace planar
