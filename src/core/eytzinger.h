// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Cache-optimized boundary search: an auxiliary copy of a sorted key
// array rearranged into Eytzinger (BFS / implicit-heap) order, searched
// by a branchless descent with explicit prefetch.
//
// Why: a query against a Planar index pays two binary searches over the
// sorted keys (the SI/LI rank boundaries) before any verification runs.
// std::lower_bound over a large flat array takes one unpredictable branch
// and one dependent cache miss per level; the Eytzinger layout packs the
// first levels of the comparison tree into a handful of cache lines and
// makes every level's children adjacent, so the descent can prefetch
// great-great-grandchildren one line at a time and replace the branch
// with an arithmetic step. This is the standard cache-conscious layout
// result (van Emde Boas / Eytzinger literature; see PAPERS.md) and it
// compounds with the vectorized verification kernels: once |II| is small,
// the boundary searches ARE the per-query fixed cost.
//
// The layout is a read-only sidecar: the flat sorted array stays the
// source of truth for II range scans, serialization, and maintenance;
// Build() is re-run after any mutation of the underlying keys. Searches
// agree with std::lower_bound / std::upper_bound on every input,
// including duplicates, ±infinity probes, denormals, and empty arrays
// (machine-checked by tests/eytzinger_test.cc).

#ifndef PLANAR_CORE_EYTZINGER_H_
#define PLANAR_CORE_EYTZINGER_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace planar {

/// Arrays below this size skip the Eytzinger sidecar: they fit in one or
/// two cache lines, where std::lower_bound is already branch-cheap and
/// the 12 bytes/key sidecar would be pure overhead. Callers fall back to
/// the flat search when empty() is true.
inline constexpr size_t kEytzingerMinKeys = 64;

/// An Eytzinger-ordered copy of a sorted double array answering rank
/// (lower/upper bound) queries branchlessly. Immutable after Build().
class EytzingerKeys {
 public:
  /// Rebuilds the layout from `n` keys sorted ascending. With
  /// n < kEytzingerMinKeys the layout is not materialized and empty()
  /// stays true — the caller keeps using the flat array.
  void Build(const double* sorted_keys, size_t n);

  /// Releases the layout (empty() becomes true).
  void Clear();

  /// True iff no layout is materialized.
  bool empty() const { return n_ == 0; }

  /// Number of keys in the layout (0 when not materialized).
  size_t size() const { return n_; }

  /// Rank of the first key not less than `x`; equals
  /// std::lower_bound(begin, end, x) - begin on the sorted array.
  /// Defined inline so the ~log2(n)-step descent fuses into the caller's
  /// loop instead of paying a call per lookup.
  size_t LowerBound(double x) const {
    const double* keys = keys_.data();
    const size_t n = n_;
    size_t k = 1;
    while (k <= n) {
      Prefetch(keys + k * kPrefetchAhead);
      // Descend right iff keys[k] < x: the left subtree then cannot hold
      // the first key >= x. The comparison writes into the index, not a
      // branch, so the loop is a fixed ~log2(n) arithmetic steps.
      k = 2 * k + static_cast<size_t>(keys[k] < x);
    }
    return Finish(k);
  }

  /// Rank of the first key greater than `x`; equals
  /// std::upper_bound(begin, end, x) - begin on the sorted array.
  size_t UpperBound(double x) const {
    const double* keys = keys_.data();
    const size_t n = n_;
    size_t k = 1;
    while (k <= n) {
      Prefetch(keys + k * kPrefetchAhead);
      // !(x < keys[k]) rather than keys[k] <= x: bitwise-identical to the
      // comparator std::upper_bound applies, including for NaN probes.
      k = 2 * k + static_cast<size_t>(!(x < keys[k]));
    }
    return Finish(k);
  }

  /// Heap footprint in bytes.
  size_t MemoryUsage() const {
    return keys_.capacity() * sizeof(double) +
           rank_.capacity() * sizeof(uint32_t);
  }

 private:
  // The descendants four levels down span keys [16k, 16k + 16) — 128
  // bytes, two cache lines. Prefetching both pulls the whole candidate
  // set for the descent's position four iterations from now while the
  // current comparisons run; the addresses may lie past the array, which
  // is fine — prefetch never faults, it is a hint.
  static constexpr size_t kPrefetchAhead = 16;

  static void Prefetch(const double* addr) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(addr);
    __builtin_prefetch(addr + 8);
#else
    (void)addr;
#endif
  }

  // The answer is the node where the descent last went left: cancel the
  // trailing right-moves (low 1-bits) plus that left-move. k == 0 means
  // every key compared "descend right" — rank n, like std::lower_bound
  // returning end.
  size_t Finish(size_t k) const {
    k >>= static_cast<unsigned>(std::countr_one(k)) + 1;
    return k == 0 ? n_ : rank_[k];
  }

  // 1-indexed BFS order: node i has children 2i and 2i+1; slot 0 unused.
  std::vector<double> keys_;
  // rank_[i] = position of keys_[i] in the sorted array.
  std::vector<uint32_t> rank_;
  size_t n_ = 0;
};

}  // namespace planar

#endif  // PLANAR_CORE_EYTZINGER_H_
