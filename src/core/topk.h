// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Bounded top-k buffer (Algorithm 2 of the paper keeps the k nearest
// points found so far in such a buffer).

#ifndef PLANAR_CORE_TOPK_H_
#define PLANAR_CORE_TOPK_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace planar {

/// One answer of a top-k nearest neighbor query.
struct Neighbor {
  uint32_t id;
  /// Distance of phi(x) to the query hyperplane.
  double distance;
};

/// Keeps the k smallest-distance neighbors seen so far (max-heap).
class TopKBuffer {
 public:
  /// A buffer for k > 0 neighbors. `candidate_bound`, when known, caps
  /// the up-front reservation at min(k, candidate_bound): the buffer can
  /// never hold more entries than candidates exist, so a huge k (say,
  /// "top billion" against a thousand rows) must not reserve gigabytes.
  explicit TopKBuffer(
      size_t k, size_t candidate_bound = std::numeric_limits<size_t>::max());

  /// Offers a candidate; kept iff the buffer is not full or the candidate
  /// beats the current worst.
  void Insert(uint32_t id, double distance);

  /// True iff k neighbors are held.
  bool full() const { return heap_.size() == k_; }

  /// Number of neighbors currently held.
  size_t size() const { return heap_.size(); }

  /// The largest distance held, or +infinity while not full (so any
  /// candidate is admitted).
  double WorstDistance() const {
    return full() ? heap_.front().distance
                  : std::numeric_limits<double>::infinity();
  }

  /// Extracts the neighbors sorted by ascending distance (ties by id).
  /// The buffer is left empty.
  std::vector<Neighbor> TakeSorted();

 private:
  size_t k_;
  std::vector<Neighbor> heap_;  // max-heap on (distance, id)
};

}  // namespace planar

#endif  // PLANAR_CORE_TOPK_H_
