// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/planar_index.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "core/kernels/kernels.h"
#include "core/parallel.h"
#include "core/sort_util.h"
#include "geometry/vec.h"

namespace planar {

namespace {

// Bracket half-width around an f32 mirror key guaranteed to contain the
// exact f64 key: float conversion error is at most u32 = 2^-24 relative
// (so <= u32 |k32| / (1 - u32) in terms of the mirror value) plus 2^-150
// absolute in the f32 subnormal range. 4 u32 |k32| + 2^-126 covers both
// with margin to spare for the double-arithmetic rounding of the bracket
// itself. Only valid for finite mirror keys; overflow-clamped infinities
// fall back to the exact key.
constexpr double kKeyBracketRel = 0x1p-22;
constexpr double kKeyBracketAbs = 0x1p-126;

// Exact signed residual <a, phi_row> - b, computed with the kernel dot so
// per-row evaluations (top-k walk) agree bit-for-bit with the batched
// verification blocks.
double ResidualNormalized(const NormalizedQuery& q, const double* phi_row) {
  return kernels::Ops().dot_one(q.a.data(), phi_row, q.a.size()) - q.b;
}

// The batched verification inner loop shared by the serial path and every
// parallel shard: per block of kernels::kBlockRows candidates, one
// cancellation check, one batched residual computation, and one
// branch-light compress-store append into *out (which must have capacity
// for `count` more entries — resize within reserved capacity never
// reallocates, so shards cannot invalidate each other's storage).
// Returns false iff cancelled before completing.
template <typename CancelFn>
bool VerifyBlocks(const NormalizedQuery& q, const double* rows, size_t stride,
                  const uint32_t* ids, size_t count, CancelFn&& cancelled,
                  std::vector<uint32_t>* out) {
  const kernels::DotOps& ops = kernels::Ops();
  const bool le = q.cmp == Comparison::kLessEqual;
  const double* a = q.a.data();
  const size_t dim = q.a.size();
  double residuals[kernels::kBlockRows];
  for (size_t off = 0; off < count; off += kernels::kBlockRows) {
    if (cancelled()) return false;
    const size_t blk = std::min(kernels::kBlockRows, count - off);
    ops.dot_gather(a, dim, rows, stride, ids + off, blk, -q.b, residuals);
    const size_t old_size = out->size();
    out->resize(old_size + blk);
    const size_t kept = kernels::CompressAccept(residuals, ids + off, blk, le,
                                                out->data() + old_size);
    out->resize(old_size + kept);
  }
  return true;
}

// VerifyBlocks through the mixed-precision path (DESIGN.md section 5j):
// per block, one f32 gather over the mirror classifies every candidate
// against the widened band, MixedResolveBlock re-verifies only band rows
// in f64 and leaves a decision-residual array whose CompressAccept output
// is bit-identical to the pure-f64 path — same ids, same order, same
// block/cancellation cadence.
// f32-ok: `rows32` is the read-only mirror; exactness comes from the
// band + f64 re-verify above.
template <typename CancelFn>
bool VerifyBlocksMixed(const NormalizedQuery& q, const MixedQueryPlan& mixed,
                       const double* rows, const float* rows32, size_t stride,
                       const uint32_t* ids, size_t count, CancelFn&& cancelled,
                       std::vector<uint32_t>* out) {
  const kernels::DotOpsF32& ops32 = kernels::OpsF32();
  const bool le = q.cmp == Comparison::kLessEqual;
  const double* a = q.a.data();
  const size_t dim = q.a.size();
  // f32-ok: mirror residual block for band classification.
  float res32[kernels::kBlockRows];
  double decision[kernels::kBlockRows];
  for (size_t off = 0; off < count; off += kernels::kBlockRows) {
    if (cancelled()) return false;
    const size_t blk = std::min(kernels::kBlockRows, count - off);
    ops32.dot_gather(mixed.a32.data(), dim, rows32, stride, ids + off, blk,
                     mixed.bias32, res32);
    MixedResolveBlock(mixed, a, dim, q.b, rows, stride, ids + off, res32, blk,
                      decision);
    const size_t old_size = out->size();
    out->resize(old_size + blk);
    const size_t kept = kernels::CompressAccept(decision, ids + off, blk, le,
                                                out->data() + old_size);
    out->resize(old_size + kept);
  }
  return true;
}

}  // namespace

Result<PlanarIndex> PlanarIndex::Build(const PhiMatrix* phi,
                                       std::vector<double> normal,
                                       const Octant& octant,
                                       const PlanarIndexOptions& options) {
  if (phi == nullptr) {
    return Status::InvalidArgument("phi matrix must not be null");
  }
  if (phi->empty()) {
    return Status::InvalidArgument("cannot index an empty phi matrix");
  }
  if (normal.size() != phi->dim() || octant.dim() != phi->dim()) {
    return Status::InvalidArgument(
        "normal / octant dimensionality must match the phi matrix");
  }
  for (double c : normal) {
    if (!(c > 0.0) || !std::isfinite(c)) {
      return Status::InvalidArgument(
          "index normal entries must be strictly positive and finite");
    }
  }
  if (options.epsilon_band < 0.0) {
    return Status::InvalidArgument("epsilon_band must be non-negative");
  }
  if (options.payload_column >= 0) {
    if (static_cast<size_t>(options.payload_column) >= phi->dim()) {
      return Status::InvalidArgument(
          "payload_column must name a phi matrix column");
    }
    if (options.backend == PlanarIndexOptions::Backend::kBTree) {
      return Status::InvalidArgument(
          "payload aggregates require the sorted-array backend (prefix "
          "aggregates are keyed by the flat rank order)");
    }
  }

  PlanarIndex index;
  index.phi_ = phi;
  index.options_ = options;
  index.normal_ = std::move(normal);
  index.translator_ = Translator::Create(*phi, octant, options.translation);
  index.Rebuild();
  return index;
}

Result<PlanarIndex> PlanarIndex::BuildFirstOctant(
    const PhiMatrix* phi, std::vector<double> normal,
    const PlanarIndexOptions& options) {
  const size_t d = normal.size();
  return Build(phi, std::move(normal), Octant::First(d), options);
}

void PlanarIndex::Rebuild() {
  translator_ =
      Translator::Create(*phi_, translator_.octant(), options_.translation);
  const size_t d = normal_.size();
  signed_normal_.resize(d);
  key_shift_ = 0.0;
  for (size_t i = 0; i < d; ++i) {
    signed_normal_[i] = translator_.octant().sign(i) * normal_[i];
    key_shift_ += normal_[i] * translator_.delta()[i];
  }

  const size_t n = phi_->size();
  key_of_row_.resize(n);
  // Batched kernel calls over contiguous phi row ranges; bit-identical to
  // per-row RawKey (same blocked dot, same shift), and — because every
  // row's key is independent — bit-identical for any shard count, so
  // build_threads never changes a key.
  size_t threads = options_.build_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (threads > 1 && n >= kParallelBuildMinRows) {
    const size_t chunk = (n + threads - 1) / threads;
    ParallelFor(
        threads,
        [&](size_t s) {
          const size_t begin = s * chunk;
          const size_t end = std::min(n, begin + chunk);
          if (begin >= end) return;
          kernels::Ops().dot_range(signed_normal_.data(), d, phi_->data(),
                                   phi_->dim(), begin, end - begin,
                                   key_shift_, key_of_row_.data() + begin);
        },
        threads);
  } else {
    kernels::Ops().dot_range(signed_normal_.data(), d, phi_->data(),
                             phi_->dim(), 0, n, key_shift_,
                             key_of_row_.data());
  }
  std::vector<OrderStatisticBTree::Entry> entries(n);
  for (size_t row = 0; row < n; ++row) {
    entries[row] = {key_of_row_[row], static_cast<uint32_t>(row)};
  }
  SortEntries(&entries, options_.build_threads);

  if (options_.backend == PlanarIndexOptions::Backend::kSortedArray) {
    keys_.resize(n);
    ids_.resize(n);
    for (size_t r = 0; r < n; ++r) {
      keys_[r] = entries[r].key;
      ids_[r] = entries[r].value;
    }
    tree_.Clear();
  } else {
    tree_.BuildFromSorted(entries);
    keys_.clear();
    keys_.shrink_to_fit();
    ids_.clear();
    ids_.shrink_to_fit();
  }
  RefreshSearchLayout();
}

void PlanarIndex::RefreshSearchLayout() {
  if (options_.backend == PlanarIndexOptions::Backend::kSortedArray) {
    eytz_.Build(keys_.data(), keys_.size());
    if (options_.mixed_precision && MixedPrecisionRuntimeEnabled()) {
      // Refresh the f32 key mirror alongside the Eytzinger sidecar so
      // every maintenance path (Rebuild, Update, UpdateBatch, append
      // merges) keeps it consistent by construction.
      keys_f32_.resize(keys_.size());
      for (size_t r = 0; r < keys_.size(); ++r) {
        keys_f32_[r] = FloatMirrorValue(keys_[r]);
      }
    } else {
      keys_f32_.clear();
      keys_f32_.shrink_to_fit();
    }
    if (options_.learned_cdf) {
      // The learned CDF rides the same refresh cadence as the Eytzinger
      // sidecar: any mutation of keys_ rebuilds it, so predictions are
      // never stale. A fit over the error budget is discarded and every
      // boundary search falls back to the exact descent.
      LearnedCdf::Options cdf_options;
      cdf_options.max_error_budget = kLearnedCdfMaxErrorBudget;
      // Scale segments with n (~1024 ranks each, >= the default 256):
      // a fixed segment count makes per-segment rank spans — and hence
      // fit error — grow linearly with n, which busts the error budget
      // exactly on the large arrays where the model pays off. ~24 bytes
      // per segment keeps the sidecar under 0.1% of the key array.
      cdf_options.max_segments =
          std::max<size_t>(cdf_options.max_segments, keys_.size() / 1024);
      cdf_.Build(keys_.data(), keys_.size(), cdf_options);
    } else {
      cdf_.Clear();
    }
    if (options_.payload_column >= 0) {
      BuildPrefixAggregates(
          phi_->data() + static_cast<size_t>(options_.payload_column),
          phi_->dim(), ids_.data(), ids_.size(), &payload_prefix_);
    } else {
      payload_prefix_.Clear();
    }
  } else {
    eytz_.Clear();
    keys_f32_.clear();
    keys_f32_.shrink_to_fit();
    cdf_.Clear();
    payload_prefix_.Clear();
  }
}

double PlanarIndex::RawKey(const double* phi_row) const {
  // Kernel dot (not geometry/vec.h Dot) so single-row key maintenance
  // matches the batched Rebuild computation bit-for-bit.
  return kernels::Ops().dot_one(signed_normal_.data(), phi_row,
                                signed_normal_.size()) +
         key_shift_;
}

size_t PlanarIndex::RankLessEqual(double key) const {
  if (options_.backend == PlanarIndexOptions::Backend::kSortedArray) {
    if (!cdf_.empty()) {
      // Predict-then-probe (DESIGN.md 5k): the model predicts the
      // upper-bound rank, a windowed std::upper_bound probes
      // +/- (max_error + 2) ranks around it, and the O(1) validation
      // below only accepts the globally-correct rank — keys_[r-1] <= key
      // < keys_[r] with the array-edge cases — so a probe that clamped
      // at its window edge (true rank outside the window), a NaN probe,
      // or any model bug falls through to the exact descent. Answers are
      // therefore identical to std::upper_bound by construction.
      const double pred = cdf_.PredictRank(key);
      const double w = static_cast<double>(cdf_.max_error() + 2);
      const size_t n = keys_.size();
      const size_t lo = pred > w ? static_cast<size_t>(pred - w) : 0;
      const double hi_d = pred + w + 1.0;
      const size_t hi =
          hi_d >= static_cast<double>(n) ? n : static_cast<size_t>(hi_d);
      if (lo < hi) {
        const double* base = keys_.data();
        const size_t r = static_cast<size_t>(
            std::upper_bound(base + lo, base + hi, key) - base);
        if ((r == 0 || base[r - 1] <= key) && (r == n || base[r] > key)) {
          return r;
        }
      }
    }
    // Branchless Eytzinger descent with prefetch; small arrays (below
    // kEytzingerMinKeys the sidecar is not materialized) keep the flat
    // std::upper_bound, which is already cache-resident there.
    if (!eytz_.empty()) return eytz_.UpperBound(key);
    return static_cast<size_t>(
        std::upper_bound(keys_.begin(), keys_.end(), key) - keys_.begin());
  }
  return tree_.CountLessEqual(key);
}

bool PlanarIndex::CanServe(const NormalizedQuery& q) const {
  if (q.a.size() != normal_.size()) return false;
  const Octant& oct = translator_.octant();
  for (size_t i = 0; i < q.a.size(); ++i) {
    if (q.a[i] > 0.0 && oct.sign(i) < 0.0) return false;
    if (q.a[i] < 0.0 && oct.sign(i) > 0.0) return false;
  }
  return true;
}

PlanarIndex::Prepared PlanarIndex::Prepare(const NormalizedQuery& q) const {
  Prepared p;
  p.b_prime = translator_.MirroredOffset(q);

  // Split axes into active (normal, finite ratio a~_i / c_i) and
  // always-excluded (a~_i == 0, or a ratio too degenerate to divide by).
  struct Axis {
    double ratio;     // a~_i / c_i
    double c_psi_min;  // c_i * psi_min_i
    double c_psi_max;
    double a_psi_min;  // a~_i * psi_min_i
    double a_psi_max;
  };
  std::vector<Axis> axes;
  axes.reserve(q.a.size());
  size_t m = 0;
  for (size_t i = 0; i < q.a.size(); ++i) {
    const double at = std::fabs(q.a[i]);
    const double psi_min = translator_.PsiMin(i);
    const double psi_max = translator_.PsiMax(i);
    const double ratio = at > 0.0 ? at / normal_[i] : 0.0;
    // Only axes whose ratio a~_i / c_i is a normal, finite double may
    // enter the rmin/rmax envelope: the ratio reappears as a divisor in
    // the key cuts ((b' - E) / r), so a ratio that underflowed to zero or
    // a denormal would evaluate b/0.0-style expressions, and an overflowed
    // infinity poisons the top-k lower bound. Degenerate-ratio axes get
    // the zero-axis treatment instead — bounded by their psi range and
    // resolved by exact verification — which is sound for any exclusion
    // choice.
    if (ratio >= std::numeric_limits<double>::min() &&
        std::isfinite(ratio)) {
      axes.push_back({ratio, normal_[i] * psi_min, normal_[i] * psi_max,
                      at * psi_min, at * psi_max});
      ++m;
    } else {
      p.c0min += normal_[i] * psi_min;
      p.c0max += normal_[i] * psi_max;
      p.emin += at * psi_min;
      p.emax += at * psi_max;
    }
  }
  p.excluded_axes = q.a.size() - m;  // zero or degenerate-ratio axes
  if (m == 0) {
    // Every axis is excluded: the key carries no information about the
    // scalar product, so the whole dataset is intermediate and verified
    // exactly.
    p.all_axes_zero = true;
    p.low_cut = -std::numeric_limits<double>::infinity();
    p.high_cut = std::numeric_limits<double>::infinity();
    return p;
  }

  size_t prefix = 0;  // smallest-ratio axes excluded
  size_t suffix = 0;  // largest-ratio axes excluded
  std::sort(axes.begin(), axes.end(),
            [](const Axis& x, const Axis& y) { return x.ratio < y.ratio; });

  if (options_.enable_axis_exclusion && m > 1) {
    // Prefix sums over ratio order for O(1) evaluation of any
    // prefix/suffix exclusion choice.
    std::vector<double> pc_min(m + 1), pc_max(m + 1), pa_min(m + 1),
        pa_max(m + 1);
    pc_min[0] = pc_max[0] = pa_min[0] = pa_max[0] = 0.0;
    for (size_t i = 0; i < m; ++i) {
      pc_min[i + 1] = pc_min[i] + axes[i].c_psi_min;
      pc_max[i + 1] = pc_max[i] + axes[i].c_psi_max;
      pa_min[i + 1] = pa_min[i] + axes[i].a_psi_min;
      pa_max[i + 1] = pa_max[i] + axes[i].a_psi_max;
    }
    // Choose the exclusion (prefix, suffix) minimizing the interval width
    //   W = (b' - Emin)/rmin - (b' - Emax)/rmax + (C0max - C0min),
    // a proxy for |II| under a uniform key density.
    double best_width = std::numeric_limits<double>::infinity();
    for (size_t pre = 0; pre < m; ++pre) {
      for (size_t suf = 0; pre + suf + 1 <= m; ++suf) {
        const double rmin = axes[pre].ratio;
        const double rmax = axes[m - suf - 1].ratio;
        const double e_min =
            p.emin + pa_min[pre] + (pa_min[m] - pa_min[m - suf]);
        const double e_max =
            p.emax + pa_max[pre] + (pa_max[m] - pa_max[m - suf]);
        const double c_min =
            p.c0min + pc_min[pre] + (pc_min[m] - pc_min[m - suf]);
        const double c_max =
            p.c0max + pc_max[pre] + (pc_max[m] - pc_max[m - suf]);
        const double width = (p.b_prime - e_min) / rmin -
                             (p.b_prime - e_max) / rmax + (c_max - c_min);
        if (width < best_width) {
          best_width = width;
          prefix = pre;
          suffix = suf;
        }
      }
    }
  }

  p.excluded_axes += prefix + suffix;
  p.rmin = axes[prefix].ratio;
  p.rmax = axes[m - suffix - 1].ratio;
  for (size_t i = 0; i < prefix; ++i) {
    p.c0min += axes[i].c_psi_min;
    p.c0max += axes[i].c_psi_max;
    p.emin += axes[i].a_psi_min;
    p.emax += axes[i].a_psi_max;
  }
  for (size_t i = m - suffix; i < m; ++i) {
    p.c0min += axes[i].c_psi_min;
    p.c0max += axes[i].c_psi_max;
    p.emin += axes[i].a_psi_min;
    p.emax += axes[i].a_psi_max;
  }

  const double low = (p.b_prime - p.emax) / p.rmax + p.c0min;
  const double high = (p.b_prime - p.emin) / p.rmin + p.c0max;
  const double band = options_.epsilon_band *
                      (std::fabs(p.b_prime) + std::fabs(p.emax) +
                       std::fabs(low) + std::fabs(high) + 1.0);
  p.low_cut = low - band;
  p.high_cut = high + band;
  return p;
}

Result<PlanarIndex::Intervals> PlanarIndex::ComputeIntervals(
    const NormalizedQuery& q) const {
  if (!q.IsFinite()) {
    return Status::InvalidArgument("query parameters must be finite");
  }
  if (!CanServe(q)) {
    return Status::FailedPrecondition(
        "query octant is incompatible with this index");
  }
  Intervals iv;
  if (q.IsDegenerate()) {
    // Constant predicate: everything is decided outright, nothing is
    // intermediate.
    iv.smaller_end = size();
    iv.larger_begin = size();
    return iv;
  }
  const Prepared p = Prepare(q);
  iv.smaller_end = RankLessEqual(p.low_cut);
  iv.larger_begin = RankLessEqual(p.high_cut);
  PLANAR_DCHECK(iv.smaller_end <= iv.larger_begin);
  return iv;
}

void PlanarIndex::CollectRange(size_t begin, size_t end,
                               std::vector<uint32_t>* out) const {
  PLANAR_CHECK(begin <= end && end <= size());
  out->reserve(out->size() + (end - begin));
  if (options_.backend == PlanarIndexOptions::Backend::kSortedArray) {
    for (size_t r = begin; r < end; ++r) out->push_back(ids_[r]);
  } else {
    OrderStatisticBTree::Iterator it = tree_.IteratorAt(begin);
    for (size_t r = begin; r < end; ++r, it.Next()) {
      out->push_back(it.entry().value);
    }
  }
}

Result<InequalityResult> PlanarIndex::Inequality(
    const ScalarProductQuery& q) const {
  return Inequality(NormalizedQuery::From(q));
}

Result<InequalityResult> PlanarIndex::Inequality(
    const NormalizedQuery& q) const {
  return Inequality(q, Deadline::Infinite());
}

Result<InequalityResult> PlanarIndex::Inequality(
    const NormalizedQuery& q, const Deadline& deadline) const {
  if (!q.IsFinite()) {
    return Status::InvalidArgument("query parameters must be finite");
  }
  if (!CanServe(q)) {
    return Status::FailedPrecondition(
        "query octant is incompatible with this index");
  }
  PLANAR_CHECK_EQ(phi_->size(), size());
  return RunInequality(q, deadline);
}

Result<InequalityResult> PlanarIndex::RunInequality(
    const NormalizedQuery& q, const Deadline& deadline) const {
  const size_t n = size();
  InequalityResult result;
  result.stats.num_points = n;

  if (q.IsDegenerate()) {
    // <0, phi(x)> cmp b with b >= 0: constant over all points.
    const bool all_match =
        q.cmp == Comparison::kLessEqual ? (0.0 <= q.b) : (0.0 >= q.b);
    if (all_match) {
      result.ids.resize(n);
      std::iota(result.ids.begin(), result.ids.end(), 0u);
      result.stats.accepted_directly = n;
    } else {
      result.stats.rejected_directly = n;
    }
    result.stats.result_size = result.ids.size();
    return result;
  }

  const Prepared p = Prepare(q);
  const size_t smaller_end = RankLessEqual(p.low_cut);
  const size_t larger_begin = RankLessEqual(p.high_cut);
  PLANAR_DCHECK(smaller_end <= larger_begin);

  // One mixed-precision plan per query, shared read-only by every
  // verification shard; unusable means the blocks run pure f64.
  const MixedQueryPlan mixed = MixedPlanFor(q);
  const bool le = q.cmp == Comparison::kLessEqual;
  // Which rank range is accepted outright.
  const size_t accept_begin = le ? 0 : larger_begin;
  const size_t accept_end = le ? smaller_end : n;
  const size_t ii_count = larger_begin - smaller_end;

  // Worst case up front (every II candidate accepted): one allocation for
  // the whole query, and the verification blocks may compress-store
  // straight into the vector's tail without capacity checks.
  result.ids.reserve((accept_end - accept_begin) + ii_count);

  // The II is verified by the batched kernels (core/kernels): per block of
  // kernels::kBlockRows candidates, one deadline poll, one batched
  // residual computation, one compress-store append — no per-row branch,
  // no per-row clock read. An already-expired request still verifies
  // nothing (the first block polls before any work).
  if (options_.backend == PlanarIndexOptions::Backend::kSortedArray) {
    result.ids.insert(result.ids.end(),
                      ids_.begin() + static_cast<ptrdiff_t>(accept_begin),
                      ids_.begin() + static_cast<ptrdiff_t>(accept_end));
    if (!VerifyCandidates(q, mixed, ids_.data() + smaller_end, ii_count,
                          deadline, &result.ids)) {
      return Status::DeadlineExceeded(
          "inequality query exceeded its deadline during II verification");
    }
  } else {
    OrderStatisticBTree::Iterator it = tree_.IteratorAt(accept_begin);
    for (size_t r = accept_begin; r < accept_end; ++r, it.Next()) {
      result.ids.push_back(it.entry().value);
    }
    // The B+-tree stores rank order behind node pointers: materialize the
    // candidate ids once (O(|II|) leaf walk), then verify the flat array
    // with the same batched kernels as the sorted-array backend.
    std::vector<uint32_t> candidates;
    CollectRange(smaller_end, larger_begin, &candidates);
    if (!VerifyCandidates(q, mixed, candidates.data(), ii_count, deadline,
                          &result.ids)) {
      return Status::DeadlineExceeded(
          "inequality query exceeded its deadline during II verification");
    }
  }

  result.stats.accepted_directly = accept_end - accept_begin;
  result.stats.rejected_directly =
      le ? n - larger_begin : smaller_end;
  result.stats.verified = larger_begin - smaller_end;
  result.stats.result_size = result.ids.size();
  return result;
}

MixedQueryPlan PlanarIndex::MixedPlanFor(const NormalizedQuery& q) const {
  if (!options_.mixed_precision) return MixedQueryPlan();
  return MakeMixedPlan(q.a.data(), q.a.size(), q.b,
                       q.cmp == Comparison::kLessEqual, *phi_);
}

bool PlanarIndex::VerifyCandidates(const NormalizedQuery& q,
                                   const MixedQueryPlan& mixed,
                                   const uint32_t* ids, size_t count,
                                   const Deadline& deadline,
                                   std::vector<uint32_t>* out) const {
  if (count == 0) return true;
  const size_t threads = options_.parallel_verify_threads;
  if (threads != 1 && count >= kParallelVerifyMinRows) {
    return VerifyCandidatesParallel(q, mixed, ids, count, threads, deadline,
                                    out);
  }
  return VerifyCandidatesSerial(q, mixed, ids, count, deadline, out);
}

bool PlanarIndex::VerifyCandidatesSerial(const NormalizedQuery& q,
                                         const MixedQueryPlan& mixed,
                                         const uint32_t* ids, size_t count,
                                         const Deadline& deadline,
                                         std::vector<uint32_t>* out) const {
  if (mixed.usable) {
    return VerifyBlocksMixed(q, mixed, phi_->data(), phi_->f32_data(),
                             phi_->dim(), ids, count,
                             [&deadline] { return deadline.Expired(); }, out);
  }
  return VerifyBlocks(q, phi_->data(), phi_->dim(), ids, count,
                      [&deadline] { return deadline.Expired(); }, out);
}

bool PlanarIndex::VerifyCandidatesParallel(const NormalizedQuery& q,
                                           const MixedQueryPlan& mixed,
                                           const uint32_t* ids, size_t count,
                                           size_t threads,
                                           const Deadline& deadline,
                                           std::vector<uint32_t>* out) const {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const size_t shards = std::min(threads, count);
  const size_t chunk = (count + shards - 1) / shards;
  std::vector<std::vector<uint32_t>> shard_out(shards);
  // Cooperative cancellation across shards: the first shard to observe an
  // expired deadline raises the flag; every other shard sees it at its
  // next block boundary and stops. Relaxed ordering suffices — the flag
  // only accelerates shutdown (a shard that misses a racing store merely
  // verifies one more block), and the authoritative answer is the
  // post-join load below, which ParallelFor's join synchronizes with.
  // Strengthening to acquire/release would buy nothing; weakening is
  // impossible (relaxed is the floor). Do not replace the flag with a
  // plain bool: concurrent shards store and load it without any lock.
  std::atomic<bool> expired(false);
  ParallelFor(
      shards,
      [&](size_t s) {
        const size_t begin = s * chunk;
        const size_t end = std::min(count, begin + chunk);
        if (begin >= end) return;
        std::vector<uint32_t>& local = shard_out[s];
        local.reserve(end - begin);
        auto cancelled = [&] {
          // relaxed-ok: advisory fast-exit flag; the post-join load
          // is the authoritative answer (see the comment at the
          // declaration above).
          if (expired.load(std::memory_order_relaxed)) return true;
          if (!deadline.Expired()) return false;
          expired.store(true, std::memory_order_relaxed);
          return true;
        };
        // The mixed plan is read-only; every shard classifies its own
        // candidate range with it, so shard-order concatenation still
        // reproduces the serial (mixed or pure-f64) output exactly.
        const bool done =
            mixed.usable
                ? VerifyBlocksMixed(q, mixed, phi_->data(), phi_->f32_data(),
                                    phi_->dim(), ids + begin, end - begin,
                                    cancelled, &local)
                : VerifyBlocks(q, phi_->data(), phi_->dim(), ids + begin,
                               end - begin, cancelled, &local);
        (void)done;
      },
      shards);
  // relaxed-ok: ParallelFor's join happens-before this load, so every
  // shard's store (any order) is already visible; no flag-based
  // synchronization is being relied on.
  if (expired.load(std::memory_order_relaxed)) return false;
  // Merge in shard order: shard s holds accepted ids of candidate range
  // [s*chunk, (s+1)*chunk) in candidate order, so concatenation
  // reproduces the serial output exactly.
  for (const std::vector<uint32_t>& local : shard_out) {
    out->insert(out->end(), local.begin(), local.end());
  }
  return true;
}

Result<CountResult> PlanarIndex::CountInequality(
    const ScalarProductQuery& q, const CountTolerance& tolerance) const {
  return CountInequality(NormalizedQuery::From(q), tolerance,
                         Deadline::Infinite());
}

Result<CountResult> PlanarIndex::CountInequality(
    const NormalizedQuery& q, const CountTolerance& tolerance,
    const Deadline& deadline) const {
  if (!q.IsFinite()) {
    return Status::InvalidArgument("query parameters must be finite");
  }
  if (!CanServe(q)) {
    return Status::FailedPrecondition(
        "query octant is incompatible with this index");
  }
  PLANAR_CHECK_EQ(phi_->size(), size());
  return RunCount(q, tolerance, deadline);
}

Result<AggregateResult> PlanarIndex::AggregateInequality(
    const ScalarProductQuery& q, const CountTolerance& tolerance) const {
  return AggregateInequality(NormalizedQuery::From(q), tolerance,
                             Deadline::Infinite());
}

Result<AggregateResult> PlanarIndex::AggregateInequality(
    const NormalizedQuery& q, const CountTolerance& tolerance,
    const Deadline& deadline) const {
  if (!q.IsFinite()) {
    return Status::InvalidArgument("query parameters must be finite");
  }
  if (!CanServe(q)) {
    return Status::FailedPrecondition(
        "query octant is incompatible with this index");
  }
  PLANAR_CHECK_EQ(phi_->size(), size());
  return RunAggregate(q, tolerance, deadline);
}

bool PlanarIndex::CountCandidates(const NormalizedQuery& q,
                                  const MixedQueryPlan& mixed,
                                  const uint32_t* ids, size_t count,
                                  const double* payload, size_t payload_stride,
                                  const Deadline& deadline,
                                  const std::function<bool(size_t)>& stop,
                                  size_t* accepted, size_t* resolved,
                                  double* accepted_sum) const {
  // The counting twin of VerifyBlocks / VerifyBlocksMixed: same block
  // size, same deadline cadence, same accept predicate (through the same
  // CompressAccept kernel), but accepts land in a scratch block instead
  // of a result vector. Refinement always runs serially: the early-stop
  // predicate is a running prefix over rank order, which sharding would
  // reorder.
  const kernels::DotOps& ops = kernels::Ops();
  const kernels::DotOpsF32& ops32 = kernels::OpsF32();
  const bool le = q.cmp == Comparison::kLessEqual;
  const double* a = q.a.data();
  const size_t dim = q.a.size();
  const double* rows = phi_->data();
  // f32-ok: read-only mirror for the mixed counting blocks.
  const float* rows32 = phi_->f32_data();
  const size_t stride = phi_->dim();
  double residuals[kernels::kBlockRows];
  // f32-ok: mirror residual block for band classification.
  float res32[kernels::kBlockRows];
  uint32_t kept_ids[kernels::kBlockRows];
  double vals[kernels::kBlockRows];
  for (size_t off = 0; off < count; off += kernels::kBlockRows) {
    if (stop && stop(*resolved)) return true;
    if (deadline.Expired()) return false;
    const size_t blk = std::min(kernels::kBlockRows, count - off);
    size_t kept;
    if (mixed.usable) {
      ops32.dot_gather(mixed.a32.data(), dim, rows32, stride, ids + off, blk,
                       mixed.bias32, res32);
      MixedResolveBlock(mixed, a, dim, q.b, rows, stride, ids + off, res32,
                        blk, residuals);
      kept = kernels::CompressAccept(residuals, ids + off, blk, le, kept_ids);
    } else {
      ops.dot_gather(a, dim, rows, stride, ids + off, blk, -q.b, residuals);
      kept = kernels::CompressAccept(residuals, ids + off, blk, le, kept_ids);
    }
    *accepted += kept;
    *resolved += blk;
    if (payload != nullptr && kept != 0) {
      for (size_t i = 0; i < kept; ++i) {
        vals[i] = payload[static_cast<size_t>(kept_ids[i]) * payload_stride];
      }
      // agg-ok: per-block payload totals go through the canonical helper
      // and accumulate in block order, so a refined sum is deterministic
      // for a fixed index state.
      *accepted_sum += CanonicalBlockedSum(vals, kept);
    }
  }
  return true;
}

Result<CountResult> PlanarIndex::RunCount(const NormalizedQuery& q,
                                          const CountTolerance& tolerance,
                                          const Deadline& deadline) const {
  const size_t n = size();
  CountResult result;
  result.stats.num_points = n;
  const bool le = q.cmp == Comparison::kLessEqual;

  if (q.IsDegenerate()) {
    // <0, phi(x)> cmp b with b >= 0: constant over all points.
    const bool all_match = le ? (0.0 <= q.b) : (0.0 >= q.b);
    result.lower = result.upper = result.estimate = all_match ? n : 0;
    result.exact = true;
    if (all_match) {
      result.stats.accepted_directly = n;
    } else {
      result.stats.rejected_directly = n;
    }
    result.stats.result_size = result.estimate;
    return result;
  }

  const Prepared p = Prepare(q);
  const size_t smaller_end = RankLessEqual(p.low_cut);
  const size_t larger_begin = RankLessEqual(p.high_cut);
  PLANAR_DCHECK(smaller_end <= larger_begin);
  const size_t outright = le ? smaller_end : n - larger_begin;
  const size_t ii_count = larger_begin - smaller_end;
  result.lower = outright;
  result.upper = outright + ii_count;
  result.stats.accepted_directly = outright;
  result.stats.rejected_directly = le ? n - larger_begin : smaller_end;

  // Point estimate inside the current bounds: the learned CDF evaluated
  // at the midpoint of the key cuts when available (clamped into the
  // sound bounds, so a bad model can bias but never lie), otherwise the
  // bound midpoint.
  auto fill_estimate = [&](CountResult* r) {
    r->estimate = r->lower + (r->upper - r->lower) / 2;
    if (r->lower == r->upper) return;
    if (cdf_.empty()) return;
    const double mid_cut = 0.5 * p.low_cut + 0.5 * p.high_cut;
    if (!std::isfinite(mid_cut)) return;
    const double pred = cdf_.PredictRank(mid_cut);
    double est = le ? pred : static_cast<double>(n) - pred;
    est = std::min(static_cast<double>(r->upper),
                   std::max(static_cast<double>(r->lower), est));
    r->estimate = std::min(
        r->upper, std::max(r->lower, static_cast<size_t>(est + 0.5)));
    r->model_estimated = true;
  };

  const double allowed_d = tolerance.Allowed(static_cast<double>(n));
  const size_t allowed = allowed_d >= static_cast<double>(n)
                             ? n
                             : static_cast<size_t>(allowed_d);
  if (result.gap() <= allowed) {
    result.exact = result.gap() == 0;
    fill_estimate(&result);
    result.stats.result_size = result.estimate;
    return result;
  }

  // Refine: stream the II through the counting blocks, stopping as soon
  // as the unresolved remainder fits the tolerance (never, at 0).
  const MixedQueryPlan mixed = MixedPlanFor(q);
  size_t accepted = 0;
  size_t resolved = 0;
  double unused_sum = 0.0;
  const std::function<bool(size_t)> stop = [&](size_t done) {
    return ii_count - done <= allowed;
  };
  bool completed;
  if (options_.backend == PlanarIndexOptions::Backend::kSortedArray) {
    completed =
        CountCandidates(q, mixed, ids_.data() + smaller_end, ii_count, nullptr,
                        0, deadline, stop, &accepted, &resolved, &unused_sum);
  } else {
    std::vector<uint32_t> candidates;
    CollectRange(smaller_end, larger_begin, &candidates);
    completed = CountCandidates(q, mixed, candidates.data(), ii_count, nullptr,
                                0, deadline, stop, &accepted, &resolved,
                                &unused_sum);
  }
  if (!completed) {
    return Status::DeadlineExceeded(
        "count query exceeded its deadline during II refinement");
  }
  result.refined = true;
  result.lower = outright + accepted;
  result.upper = result.lower + (ii_count - resolved);
  result.exact = result.gap() == 0;
  result.stats.verified = resolved;
  fill_estimate(&result);
  result.stats.result_size = result.estimate;
  return result;
}

Result<AggregateResult> PlanarIndex::RunAggregate(
    const NormalizedQuery& q, const CountTolerance& tolerance,
    const Deadline& deadline) const {
  if (!has_payload()) {
    return Status::FailedPrecondition(
        "no payload column configured (set PlanarIndexOptions::"
        "payload_column on the sorted-array backend)");
  }
  const size_t n = size();
  const bool le = q.cmp == Comparison::kLessEqual;
  const PrefixAggregates& pre = payload_prefix_;
  PLANAR_DCHECK(pre.sum.size() == n + 1);
  AggregateResult result;
  result.count.stats.num_points = n;

  if (q.IsDegenerate()) {
    const bool all_match = le ? (0.0 <= q.b) : (0.0 >= q.b);
    const size_t c = all_match ? n : 0;
    result.count.lower = result.count.upper = result.count.estimate = c;
    result.count.exact = true;
    if (all_match) {
      result.count.stats.accepted_directly = n;
      result.sum = pre.sum[n];
    } else {
      result.count.stats.rejected_directly = n;
    }
    result.sum_lower = result.sum_upper = result.sum;
    result.exact = true;
    result.count.stats.result_size = c;
    return result;
  }

  const Prepared p = Prepare(q);
  const size_t smaller_end = RankLessEqual(p.low_cut);
  const size_t larger_begin = RankLessEqual(p.high_cut);
  PLANAR_DCHECK(smaller_end <= larger_begin);
  const size_t outright = le ? smaller_end : n - larger_begin;
  const size_t ii_count = larger_begin - smaller_end;

  // Exact payload total of the outright-accepted rank range, straight
  // from the prefix sums; the II contributes its negative/positive-part
  // envelope to the bounds.
  const double accept_sum =
      le ? pre.sum[smaller_end] : pre.sum[n] - pre.sum[larger_begin];
  result.sum_lower = accept_sum + (pre.neg[larger_begin] - pre.neg[smaller_end]);
  result.sum_upper = accept_sum + (pre.pos[larger_begin] - pre.pos[smaller_end]);

  result.count.lower = outright;
  result.count.upper = outright + ii_count;
  result.count.stats.accepted_directly = outright;
  result.count.stats.rejected_directly = le ? n - larger_begin : smaller_end;
  result.count.estimate =
      result.count.lower + (result.count.upper - result.count.lower) / 2;

  const double total_abs = pre.pos[n] - pre.neg[n];
  const double allowed = tolerance.Allowed(total_abs);
  double gap = result.sum_upper - result.sum_lower;
  if (gap <= allowed) {
    result.exact = gap == 0.0;
    result.count.exact = result.count.gap() == 0;
    result.sum = result.exact ? result.sum_lower
                              : 0.5 * result.sum_lower + 0.5 * result.sum_upper;
    result.count.stats.result_size = result.count.estimate;
    return result;
  }

  // Refine: stream the II in rank order, accumulating accepted payloads
  // in canonical blocked summation, stopping once the envelope of the
  // unresolved rank suffix fits the tolerance. The suffix envelope is a
  // prefix-array difference, so the stop predicate is O(1) per poll.
  const MixedQueryPlan mixed = MixedPlanFor(q);
  const double* payload =
      phi_->data() + static_cast<size_t>(options_.payload_column);
  size_t accepted = 0;
  size_t resolved = 0;
  double accepted_sum = 0.0;
  const std::function<bool(size_t)> stop = [&](size_t done) {
    const size_t r = smaller_end + done;
    const double rem_gap = (pre.pos[larger_begin] - pre.pos[r]) -
                           (pre.neg[larger_begin] - pre.neg[r]);
    return rem_gap <= allowed;
  };
  const bool completed = CountCandidates(
      q, mixed, ids_.data() + smaller_end, ii_count, payload, phi_->dim(),
      deadline, stop, &accepted, &resolved, &accepted_sum);
  if (!completed) {
    return Status::DeadlineExceeded(
        "aggregate query exceeded its deadline during II refinement");
  }
  result.refined = true;
  result.count.refined = true;
  result.count.lower = outright + accepted;
  result.count.upper = result.count.lower + (ii_count - resolved);
  result.count.exact = result.count.gap() == 0;
  result.count.estimate =
      result.count.lower + (result.count.upper - result.count.lower) / 2;
  result.count.stats.verified = resolved;
  result.count.stats.result_size = result.count.estimate;
  const size_t r = smaller_end + resolved;
  result.sum_lower =
      accept_sum + accepted_sum + (pre.neg[larger_begin] - pre.neg[r]);
  result.sum_upper =
      accept_sum + accepted_sum + (pre.pos[larger_begin] - pre.pos[r]);
  result.exact = resolved == ii_count;
  result.sum = result.exact ? accept_sum + accepted_sum
                            : 0.5 * result.sum_lower + 0.5 * result.sum_upper;
  if (result.exact) {
    result.sum_lower = result.sum_upper = result.sum;
  }
  return result;
}

Result<TopKResult> PlanarIndex::TopK(const ScalarProductQuery& q,
                                     size_t k) const {
  return TopK(NormalizedQuery::From(q), k);
}

Result<TopKResult> PlanarIndex::TopK(const NormalizedQuery& q,
                                     size_t k) const {
  return TopK(q, k, Deadline::Infinite());
}

Result<TopKResult> PlanarIndex::TopK(const NormalizedQuery& q, size_t k,
                                     const Deadline& deadline) const {
  if (!q.IsFinite()) {
    return Status::InvalidArgument("query parameters must be finite");
  }
  if (!CanServe(q)) {
    return Status::FailedPrecondition(
        "query octant is incompatible with this index");
  }
  if (q.IsDegenerate()) {
    return Status::InvalidArgument(
        "top-k distance is undefined for an all-zero query normal");
  }
  if (k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  PLANAR_CHECK_EQ(phi_->size(), size());
  return RunTopK(q, k, deadline);
}

Result<TopKResult> PlanarIndex::RunTopK(const NormalizedQuery& q, size_t k,
                                        const Deadline& deadline) const {
  const size_t n = size();
  TopKResult result;
  result.stats.num_points = n;

  const Prepared p = Prepare(q);
  const size_t smaller_end = RankLessEqual(p.low_cut);
  const size_t larger_begin = RankLessEqual(p.high_cut);
  const double norm_a = q.NormA();
  const bool le = q.cmp == Comparison::kLessEqual;

  // The heap can never hold more than n entries, so a huge k does not
  // reserve unbounded storage.
  TopKBuffer buffer(k, n);

  // Phase 1: verify the intermediate interval (Algorithm 2, lines 3-7)
  // with the batched kernels — per block: one deadline poll, one batched
  // residual computation, then the (branchy, heap-bound) insert loop over
  // the few matches. With a usable mixed plan the f32 mirror prunes the
  // sure rejects first and the exact residuals are gathered only for the
  // remaining rows; a sure reject's residual fails the match predicate by
  // definition of the band, so the inserted (id, distance) sequence — and
  // therefore the heap state and final neighbors — is identical.
  const kernels::DotOps& ops = kernels::Ops();
  const MixedQueryPlan mixed = MixedPlanFor(q);
  const double* rows = phi_->data();
  // f32-ok: mirror base pointer for the mixed top-k filter.
  const float* rows32 = phi_->f32_data();
  const size_t stride = phi_->dim();
  const size_t dim = q.a.size();
  const size_t ii_count = larger_begin - smaller_end;
  double residuals[kernels::kBlockRows];
  // f32-ok: mirror residual block for the mixed top-k filter.
  float res32[kernels::kBlockRows];
  uint32_t possible[kernels::kBlockRows];

  auto consider_block = [&](const uint32_t* block_ids, size_t blk) {
    const uint32_t* eval_ids = block_ids;
    size_t eval_count = blk;
    if (mixed.usable) {
      kernels::OpsF32().dot_gather(mixed.a32.data(), dim, rows32, stride,
                                   block_ids, blk, mixed.bias32, res32);
      eval_count = MixedFilterPossible(mixed, res32, block_ids, blk, possible);
      eval_ids = possible;
    }
    ops.dot_gather(q.a.data(), dim, rows, stride, eval_ids, eval_count, -q.b,
                   residuals);
    for (size_t i = 0; i < eval_count; ++i) {
      const double residual = residuals[i];
      const bool match = le ? residual <= 0.0 : residual >= 0.0;
      if (match) buffer.Insert(eval_ids[i], std::fabs(residual) / norm_a);
    }
    result.stats.verified_intermediate += blk;
  };

  // Lower-bound distance of a directly-accepted point with the given key
  // (Definition 5 / Claim 3, generalized for zero-parameter axes).
  auto lower_bound_distance = [&](double key) {
    const double raw =
        le ? (p.b_prime - p.emax) - p.rmax * (key - p.c0min)
           : p.rmin * (key - p.c0max) + p.emin - p.b_prime;
    return std::max(0.0, raw) / norm_a;
  };

  // Deadline poll for the accept-region walk (phase 2): one clock read per
  // kDeadlineCheckInterval rows, including the first, so an expired
  // request evaluates nothing.
  size_t deadline_step = 0;
  auto past_deadline = [&]() {
    return (deadline_step++ & (kDeadlineCheckInterval - 1)) == 0 &&
           deadline.Expired();
  };
  const Status deadline_status = Status::DeadlineExceeded(
      "top-k query exceeded its deadline during candidate evaluation");

  // Accept-region termination check. With the f32 key mirror available,
  // the exact key is bracketed by [k32 - d, k32 + d] (see kKeyBracketRel):
  // the computed lower_bound_distance is weakly monotone in the key
  // (decreasing for <=, increasing for >=, every IEEE op order-preserving
  // with positive rmax/rmin and norm_a), so evaluating it at the bracket
  // ends decides most rows without touching the f64 keys_ line; only an
  // inconclusive bracket (or a non-finite mirror key, where the bracket
  // guarantee lapses) reads the exact key. The decision — and therefore
  // early_terminated, scanned_accept_region, and the heap contents — is
  // identical to the pure-f64 walk by the monotonicity argument.
  const bool keys32 =
      mixed.usable && !keys_.empty() && keys_f32_.size() == keys_.size();
  auto terminate_at = [&](size_t r) {
    if (!buffer.full()) return false;
    const double worst = buffer.WorstDistance();
    if (keys32) {
      const double k32 = static_cast<double>(keys_f32_[r]);
      if (std::isfinite(k32)) {
        const double d = kKeyBracketRel * std::fabs(k32) + kKeyBracketAbs;
        const double lb_term =
            lower_bound_distance(le ? k32 + d : k32 - d);
        if (lb_term > worst) return true;
        const double lb_cont =
            lower_bound_distance(le ? k32 - d : k32 + d);
        if (lb_cont <= worst) return false;
      }
    }
    return lower_bound_distance(keys_[r]) > worst;
  };

  if (options_.backend == PlanarIndexOptions::Backend::kSortedArray) {
    for (size_t off = 0; off < ii_count; off += kernels::kBlockRows) {
      if (deadline.Expired()) return deadline_status;
      const size_t blk = std::min(kernels::kBlockRows, ii_count - off);
      consider_block(ids_.data() + smaller_end + off, blk);
    }
    // Phase 2: walk the directly-accepted region from the query hyperplane
    // outward, pruning with the lower-bound distance (lines 8-14).
    if (le) {
      for (size_t r = smaller_end; r-- > 0;) {
        if (past_deadline()) return deadline_status;
        if (terminate_at(r)) {
          result.stats.early_terminated = true;
          break;
        }
        const uint32_t id = ids_[r];
        buffer.Insert(id,
                      std::fabs(ResidualNormalized(q, phi_->row(id))) / norm_a);
        ++result.stats.scanned_accept_region;
      }
    } else {
      for (size_t r = larger_begin; r < n; ++r) {
        if (past_deadline()) return deadline_status;
        if (terminate_at(r)) {
          result.stats.early_terminated = true;
          break;
        }
        const uint32_t id = ids_[r];
        buffer.Insert(id,
                      std::fabs(ResidualNormalized(q, phi_->row(id))) / norm_a);
        ++result.stats.scanned_accept_region;
      }
    }
  } else {
    // B+-tree: gather one block of candidate ids through the leaf cursor,
    // then verify the block with the same batched kernels.
    OrderStatisticBTree::Iterator it = tree_.IteratorAt(smaller_end);
    uint32_t block_ids[kernels::kBlockRows];
    for (size_t off = 0; off < ii_count; off += kernels::kBlockRows) {
      if (deadline.Expired()) return deadline_status;
      const size_t blk = std::min(kernels::kBlockRows, ii_count - off);
      for (size_t i = 0; i < blk; ++i, it.Next()) {
        block_ids[i] = it.entry().value;
      }
      consider_block(block_ids, blk);
    }
    if (le) {
      if (smaller_end > 0) {
        it = tree_.IteratorAt(smaller_end - 1);
        while (it.Valid()) {
          if (past_deadline()) return deadline_status;
          const OrderStatisticBTree::Entry e = it.entry();
          if (buffer.full() &&
              lower_bound_distance(e.key) > buffer.WorstDistance()) {
            result.stats.early_terminated = true;
            break;
          }
          buffer.Insert(
              e.value,
              std::fabs(ResidualNormalized(q, phi_->row(e.value))) / norm_a);
          ++result.stats.scanned_accept_region;
          it.Prev();
        }
      }
    } else {
      it = tree_.IteratorAt(larger_begin);
      while (it.Valid()) {
        if (past_deadline()) return deadline_status;
        const OrderStatisticBTree::Entry e = it.entry();
        if (buffer.full() &&
            lower_bound_distance(e.key) > buffer.WorstDistance()) {
          result.stats.early_terminated = true;
          break;
        }
        buffer.Insert(
            e.value,
            std::fabs(ResidualNormalized(q, phi_->row(e.value))) / norm_a);
        ++result.stats.scanned_accept_region;
        it.Next();
      }
    }
  }

  result.neighbors = buffer.TakeSorted();
  return result;
}

PlanarIndex::Explanation PlanarIndex::Explain(
    const NormalizedQuery& q) const {
  Explanation e;
  e.num_points = size();
  e.cmp = q.cmp;
  e.can_serve = q.IsFinite() && CanServe(q);
  if (!e.can_serve) return e;
  if (q.IsDegenerate()) {
    e.degenerate = true;
    e.smaller_end = e.larger_begin = size();
    return e;
  }
  const Prepared p = Prepare(q);
  e.b_prime = p.b_prime;
  e.rmin = p.rmin;
  e.rmax = p.rmax;
  e.excluded_axes = p.excluded_axes;
  e.low_cut = p.low_cut;
  e.high_cut = p.high_cut;
  e.smaller_end = RankLessEqual(p.low_cut);
  e.larger_begin = RankLessEqual(p.high_cut);
  return e;
}

std::string PlanarIndex::Explanation::ToString() const {
  char buf[512];
  if (!can_serve) return "index cannot serve this query (octant mismatch)";
  if (degenerate) return "degenerate all-zero query normal: constant answer";
  const bool le = cmp == Comparison::kLessEqual;
  const size_t accepted = le ? smaller_end : num_points - larger_begin;
  const size_t rejected = le ? num_points - larger_begin : smaller_end;
  std::snprintf(
      buf, sizeof(buf),
      "b'=%.4g ratios=[%.4g, %.4g] excluded_axes=%zu key cuts=(%.4g, %.4g) "
      "-> accept %zu outright, verify %zu, reject %zu of %zu (%.1f%% pruned)",
      b_prime, rmin, rmax, excluded_axes, low_cut, high_cut, accepted,
      intermediate(), rejected, num_points,
      num_points == 0
          ? 100.0
          : 100.0 * static_cast<double>(accepted + rejected) /
                static_cast<double>(num_points));
  return buf;
}

double PlanarIndex::MaxStretch(const NormalizedQuery& q) const {
  PLANAR_CHECK(CanServe(q));
  const double b_prime = translator_.MirroredOffset(q);
  double m_max = -std::numeric_limits<double>::infinity();
  double m_min = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < q.a.size(); ++i) {
    const double at = std::fabs(q.a[i]);
    if (at == 0.0) continue;
    // c_i * I(q, i) in mirrored space (Equation 13/15 of the paper).
    const double m = normal_[i] * (b_prime / at);
    m_max = std::max(m_max, m);
    m_min = std::min(m_min, m);
  }
  if (!std::isfinite(m_max)) return 0.0;  // all-zero query normal
  const double min_c = *std::min_element(normal_.begin(), normal_.end());
  return (m_max - m_min) / min_c;
}

double PlanarIndex::CosAngle(const NormalizedQuery& q) const {
  PLANAR_CHECK(CanServe(q));
  double dot = 0.0;
  double norm_a = 0.0;
  for (size_t i = 0; i < q.a.size(); ++i) {
    const double at = std::fabs(q.a[i]);
    dot += at * normal_[i];
    norm_a += at * at;
  }
  if (norm_a == 0.0) return 1.0;  // degenerate query: any index is "parallel"
  return dot / (std::sqrt(norm_a) * Norm(normal_));
}

void PlanarIndex::EraseKey(double key, uint32_t row) {
  if (options_.backend == PlanarIndexOptions::Backend::kSortedArray) {
    size_t pos = static_cast<size_t>(
        std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin());
    while (pos < keys_.size() && keys_[pos] == key && ids_[pos] != row) ++pos;
    PLANAR_CHECK(pos < keys_.size() && keys_[pos] == key && ids_[pos] == row);
    keys_.erase(keys_.begin() + static_cast<ptrdiff_t>(pos));
    ids_.erase(ids_.begin() + static_cast<ptrdiff_t>(pos));
  } else {
    PLANAR_CHECK(tree_.Erase(key, row));
  }
}

void PlanarIndex::InsertKey(double key, uint32_t row) {
  if (options_.backend == PlanarIndexOptions::Backend::kSortedArray) {
    size_t pos = static_cast<size_t>(
        std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin());
    // Keep (key, id) order for determinism across backends.
    while (pos < keys_.size() && keys_[pos] == key && ids_[pos] < row) ++pos;
    keys_.insert(keys_.begin() + static_cast<ptrdiff_t>(pos), key);
    ids_.insert(ids_.begin() + static_cast<ptrdiff_t>(pos), row);
  } else {
    tree_.Insert(key, row);
  }
}

bool PlanarIndex::Update(uint32_t row) {
  PLANAR_CHECK_LT(row, key_of_row_.size());
  PLANAR_CHECK_EQ(phi_->size(), key_of_row_.size());
  const double* phi_row = phi_->row(row);
  if (!translator_.Covers(phi_row)) return false;
  const double new_key = RawKey(phi_row);
  const double old_key = key_of_row_[row];
  if (new_key == old_key) return true;
  EraseKey(old_key, row);
  InsertKey(new_key, row);
  key_of_row_[row] = new_key;
  RefreshSearchLayout();
  return true;
}

bool PlanarIndex::UpdateBatch(const std::vector<uint32_t>& rows) {
  PLANAR_CHECK_EQ(phi_->size(), key_of_row_.size());
  for (uint32_t row : rows) {
    PLANAR_CHECK_LT(row, key_of_row_.size());
    if (!translator_.Covers(phi_->row(row))) return false;
  }
  if (options_.backend == PlanarIndexOptions::Backend::kBTree) {
    for (uint32_t row : rows) {
      const double new_key = RawKey(phi_->row(row));
      const double old_key = key_of_row_[row];
      if (new_key == old_key) continue;
      PLANAR_CHECK(tree_.Erase(old_key, row));
      tree_.Insert(new_key, row);
      key_of_row_[row] = new_key;
    }
    return true;
  }
  // Sorted array: recompute only the touched keys, then splice them back
  // with one merge pass instead of re-sorting all n entries — compact the
  // unchanged entries (O(n), stable, preserves rank order), sort the k
  // fresh entries, and backward-merge the two sorted runs in place
  // (O(n + k log k) total). The (key, id) tie order matches the full
  // re-sort exactly, so the result is identical to a Rebuild
  // (machine-checked by the UpdateBatchMatchesFullRebuild regression
  // test).
  const size_t n = key_of_row_.size();
  std::vector<OrderStatisticBTree::Entry> fresh;
  fresh.reserve(rows.size());
  std::vector<unsigned char> changed(n, 0);
  for (uint32_t row : rows) {
    const double new_key = RawKey(phi_->row(row));
    // A duplicate row id in `rows` recomputes the same key and skips.
    if (new_key == key_of_row_[row]) continue;
    key_of_row_[row] = new_key;
    changed[row] = 1;
    fresh.push_back({new_key, row});
  }
  if (fresh.empty()) return true;
  size_t kept = 0;
  for (size_t r = 0; r < n; ++r) {
    if (changed[ids_[r]] == 0) {
      keys_[kept] = keys_[r];
      ids_[kept] = ids_[r];
      ++kept;
    }
  }
  PLANAR_DCHECK(kept + fresh.size() == n);
  SortEntries(&fresh, options_.build_threads);
  size_t a = kept;          // end of the compacted unchanged run
  size_t b = fresh.size();  // end of the fresh run
  size_t out = n;           // write cursor, one past
  while (b > 0) {
    const OrderStatisticBTree::Entry& fb = fresh[b - 1];
    if (a > 0 && (keys_[a - 1] > fb.key ||
                  (keys_[a - 1] == fb.key && ids_[a - 1] > fb.value))) {
      --a;
      --out;
      keys_[out] = keys_[a];
      ids_[out] = ids_[a];
    } else {
      --b;
      --out;
      keys_[out] = fb.key;
      ids_[out] = fb.value;
    }
  }
  RefreshSearchLayout();
  return true;
}

bool PlanarIndex::NotifyAppend(uint32_t row) {
  PLANAR_CHECK_EQ(static_cast<size_t>(row) + 1, phi_->size());
  PLANAR_CHECK_EQ(static_cast<size_t>(row), key_of_row_.size());
  const double* phi_row = phi_->row(row);
  if (!translator_.Covers(phi_row)) return false;
  const double key = RawKey(phi_row);
  key_of_row_.push_back(key);
  InsertKey(key, row);
  RefreshSearchLayout();
  return true;
}

bool PlanarIndex::AppendBatch(uint32_t first_row, size_t count) {
  PLANAR_CHECK_EQ(static_cast<size_t>(first_row), key_of_row_.size());
  PLANAR_CHECK_EQ(static_cast<size_t>(first_row) + count, phi_->size());
  if (count == 0) return true;
  const size_t old_n = key_of_row_.size();
  for (size_t i = 0; i < count; ++i) {
    if (!translator_.Covers(phi_->row(old_n + i))) return false;
  }
  // One contiguous kernel call over the appended range: bit-identical to
  // the per-row RawKey maintenance path and the Rebuild bulk path, so a
  // batch-appended index and a rebuilt one carry the same keys.
  key_of_row_.resize(old_n + count);
  kernels::Ops().dot_range(signed_normal_.data(), signed_normal_.size(),
                           phi_->data(), phi_->dim(), old_n, count,
                           key_shift_, key_of_row_.data() + old_n);
  if (options_.backend == PlanarIndexOptions::Backend::kBTree) {
    for (size_t i = 0; i < count; ++i) {
      tree_.Insert(key_of_row_[old_n + i],
                   static_cast<uint32_t>(old_n + i));
    }
    return true;
  }
  // Sorted array: sort the k fresh entries and backward-merge them into
  // the existing run in place — the same O(n + k log k) splice UpdateBatch
  // uses, with the existing run already compact (nothing was displaced).
  // The (key, id) tie order matches a full re-sort, so the result is
  // identical to a Rebuild (machine-checked by ingest_test and the
  // update_batch_test append-then-update case).
  std::vector<OrderStatisticBTree::Entry> fresh(count);
  for (size_t i = 0; i < count; ++i) {
    fresh[i] = {key_of_row_[old_n + i], static_cast<uint32_t>(old_n + i)};
  }
  SortEntries(&fresh, options_.build_threads);
  keys_.resize(old_n + count);
  ids_.resize(old_n + count);
  size_t a = old_n;         // end of the existing sorted run
  size_t b = fresh.size();  // end of the fresh run
  size_t out = old_n + count;  // write cursor, one past
  while (b > 0) {
    const OrderStatisticBTree::Entry& fb = fresh[b - 1];
    if (a > 0 && (keys_[a - 1] > fb.key ||
                  (keys_[a - 1] == fb.key && ids_[a - 1] > fb.value))) {
      --a;
      --out;
      keys_[out] = keys_[a];
      ids_[out] = ids_[a];
    } else {
      --b;
      --out;
      keys_[out] = fb.key;
      ids_[out] = fb.value;
    }
  }
  RefreshSearchLayout();
  return true;
}

Result<PlanarIndex> PlanarIndex::CloneFor(const PhiMatrix* phi) const {
  if (options_.backend == PlanarIndexOptions::Backend::kBTree) {
    return Status::FailedPrecondition(
        "CloneFor supports the sorted-array backend only; the B+-tree "
        "node store is not copyable");
  }
  PLANAR_CHECK(phi != nullptr);
  PLANAR_CHECK_EQ(phi->size(), phi_->size());
  PlanarIndex copy;
  copy.phi_ = phi;
  copy.options_ = options_;
  copy.translator_ = translator_;
  copy.normal_ = normal_;
  copy.signed_normal_ = signed_normal_;
  copy.key_shift_ = key_shift_;
  copy.keys_ = keys_;
  copy.ids_ = ids_;
  copy.eytz_ = eytz_;
  copy.keys_f32_ = keys_f32_;
  copy.cdf_ = cdf_;
  // agg-ok: wholesale copy of prefix arrays built by the canonical
  // helper; no values are recomputed.
  copy.payload_prefix_ = payload_prefix_;
  copy.key_of_row_ = key_of_row_;
  return copy;
}

size_t PlanarIndex::MemoryUsage() const {
  size_t total = sizeof(*this);
  total += keys_.capacity() * sizeof(double);
  total += ids_.capacity() * sizeof(uint32_t);
  // f32-ok: key-mirror footprint accounting.
  total += keys_f32_.capacity() * sizeof(float);
  total += eytz_.MemoryUsage();
  total += cdf_.MemoryUsage();
  total += payload_prefix_.MemoryUsage();
  total += key_of_row_.capacity() * sizeof(double);
  total += (normal_.capacity() + signed_normal_.capacity()) * sizeof(double);
  if (options_.backend == PlanarIndexOptions::Backend::kBTree) {
    total += tree_.MemoryUsage();
  }
  return total;
}

}  // namespace planar
