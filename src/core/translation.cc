// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/translation.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace planar {

Translator Translator::Create(const PhiMatrix& phi, const Octant& octant) {
  return Create(phi, octant, Options());
}

Translator Translator::Create(const PhiMatrix& phi, const Octant& octant,
                              Options options) {
  PLANAR_CHECK(!phi.empty());
  PLANAR_CHECK_EQ(phi.dim(), octant.dim());
  PLANAR_CHECK_GE(options.delta_margin, 0.0);

  Translator t;
  t.octant_ = octant;
  const size_t d = phi.dim();
  t.delta_.resize(d);
  t.psi_min_.resize(d);
  t.psi_max_.resize(d);
  for (size_t i = 0; i < d; ++i) {
    const double lo = phi.ColumnMin(i);
    const double hi = phi.ColumnMax(i);
    // delta_i = max |phi_i(x)| over points whose sign disagrees with the
    // octant (Equation 10 of the paper); from the column bounds this is
    // max(0, -lo) for a positive axis and max(0, hi) for a negative one.
    double delta =
        octant.sign(i) > 0.0 ? std::max(0.0, -lo) : std::max(0.0, hi);
    delta *= 1.0 + options.delta_margin;
    t.delta_[i] = delta;
    if (octant.sign(i) > 0.0) {
      t.psi_min_[i] = lo + delta;
      t.psi_max_[i] = hi + delta;
    } else {
      t.psi_min_[i] = delta - hi;
      t.psi_max_[i] = delta - lo;
    }
    PLANAR_DCHECK(t.psi_min_[i] >= 0.0);
    PLANAR_DCHECK(t.psi_max_[i] >= t.psi_min_[i]);
  }
  return t;
}

bool Translator::Covers(const double* phi_row) const {
  for (size_t i = 0; i < delta_.size(); ++i) {
    if (Mirror(i, phi_row[i]) < 0.0) return false;
  }
  return true;
}

double Translator::MirroredOffset(const NormalizedQuery& q) const {
  PLANAR_DCHECK(q.a.size() == delta_.size());
  double b = q.b;
  for (size_t i = 0; i < delta_.size(); ++i) {
    b += std::fabs(q.a[i]) * delta_[i];
  }
  return b;
}

}  // namespace planar
