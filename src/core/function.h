// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// The application-specific function phi : R^d -> R^d' of the paper
// (Section 3). phi is known at indexing time; the query parameters
// (a, b) are known only at query time. The Planar index indexes phi(x),
// never the raw points, so every indexable workload is expressed as a
// PhiFunction.

#ifndef PLANAR_CORE_FUNCTION_H_
#define PLANAR_CORE_FUNCTION_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace planar {

/// Interface for the indexed function phi : R^d -> R^d'.
/// Implementations must be deterministic and thread-compatible.
class PhiFunction {
 public:
  virtual ~PhiFunction() = default;

  /// Dimensionality d of the raw data points.
  virtual size_t input_dim() const = 0;
  /// Dimensionality d' of phi(x) (the indexed space).
  virtual size_t output_dim() const = 0;
  /// Evaluates phi at `x` (length input_dim) into `out` (length
  /// output_dim).
  virtual void Apply(const double* x, double* out) const = 0;
  /// Human-readable name for diagnostics.
  virtual std::string name() const = 0;

  /// Convenience: applies phi to a vector.
  std::vector<double> operator()(const std::vector<double>& x) const;
};

/// phi(x) = x. Reduces the inequality query to half-space range searching
/// and the top-k query to the hyperplane-to-nearest-point query
/// (paper, Remark 3 of Section 3).
class IdentityFunction final : public PhiFunction {
 public:
  explicit IdentityFunction(size_t dim) : dim_(dim) {}
  size_t input_dim() const override { return dim_; }
  size_t output_dim() const override { return dim_; }
  void Apply(const double* x, double* out) const override;
  std::string name() const override { return "identity"; }

 private:
  size_t dim_;
};

/// The power-factor function of the paper's Example 1. Input: a
/// 4-attribute Consumption tuple (active_power, reactive_power, voltage,
/// current); output: (active_power, voltage * current). The SQL function
/// Critical_Consume(threshold) becomes
///   <(1, -threshold), phi(x)> <= 0.
class PowerFactorFunction final : public PhiFunction {
 public:
  size_t input_dim() const override { return 4; }
  size_t output_dim() const override { return 2; }
  void Apply(const double* x, double* out) const override;
  std::string name() const override { return "power_factor"; }
};

/// Wraps an arbitrary callback as a PhiFunction; the general-purpose
/// escape hatch for workloads like the moving-object feature maps.
class CallbackFunction final : public PhiFunction {
 public:
  using Callback = std::function<void(const double* x, double* out)>;

  CallbackFunction(size_t input_dim, size_t output_dim, std::string name,
                   Callback callback)
      : input_dim_(input_dim),
        output_dim_(output_dim),
        name_(std::move(name)),
        callback_(std::move(callback)) {}

  size_t input_dim() const override { return input_dim_; }
  size_t output_dim() const override { return output_dim_; }
  void Apply(const double* x, double* out) const override {
    callback_(x, out);
  }
  std::string name() const override { return name_; }

 private:
  size_t input_dim_;
  size_t output_dim_;
  std::string name_;
  Callback callback_;
};

/// Degree-2 polynomial feature map: optionally a constant 1, the linear
/// terms x_i, the squares x_i^2, and the pairwise products x_i * x_j
/// (i < j). Useful for quadratic predicates such as distance inequalities.
class QuadraticFeatureFunction final : public PhiFunction {
 public:
  struct Options {
    bool include_bias = false;
    bool include_linear = true;
    bool include_squares = true;
    bool include_cross_terms = true;
  };

  /// All feature groups except the bias enabled.
  explicit QuadraticFeatureFunction(size_t input_dim);
  QuadraticFeatureFunction(size_t input_dim, Options options);

  size_t input_dim() const override { return input_dim_; }
  size_t output_dim() const override { return output_dim_; }
  void Apply(const double* x, double* out) const override;
  std::string name() const override { return "quadratic"; }

 private:
  size_t input_dim_;
  size_t output_dim_;
  Options options_;
};

}  // namespace planar

#endif  // PLANAR_CORE_FUNCTION_H_
