// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/parallel.h"

#include <algorithm>
#include <thread>

#include "common/macros.h"

namespace planar {

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t threads) {
  if (n == 0) return;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, n);
  if (threads == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t chunk = (n + threads - 1) / threads;
  for (size_t t = 0; t < threads; ++t) {
    const size_t begin = t * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  for (std::thread& worker : workers) worker.join();
}

std::vector<InequalityResult> ParallelInequality(
    const PlanarIndexSet& set, const std::vector<ScalarProductQuery>& queries,
    size_t threads) {
  std::vector<InequalityResult> results(queries.size());
  ParallelFor(
      queries.size(),
      [&](size_t i) { results[i] = set.Inequality(queries[i]); }, threads);
  return results;
}

std::vector<Result<TopKResult>> ParallelTopK(
    const PlanarIndexSet& set, const std::vector<ScalarProductQuery>& queries,
    size_t k, size_t threads) {
  std::vector<Result<TopKResult>> results(
      queries.size(), Status::Internal("not executed"));
  ParallelFor(
      queries.size(), [&](size_t i) { results[i] = set.TopK(queries[i], k); },
      threads);
  return results;
}

}  // namespace planar
