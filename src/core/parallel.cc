// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/parallel.h"

#include "common/thread_pool.h"

namespace planar {

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t threads) {
  // The pool clamps to n and to its own width, and the calling thread
  // participates, so degenerate shapes (n == 0, threads > n, nested
  // calls) keep the exactly-once contract without spawning anything.
  ThreadPool::Shared().ParallelFor(n, fn, threads);
}

std::vector<InequalityResult> ParallelInequality(
    const PlanarIndexSet& set, const std::vector<ScalarProductQuery>& queries,
    size_t threads) {
  std::vector<InequalityResult> results(queries.size());
  ParallelFor(
      queries.size(),
      [&](size_t i) { results[i] = set.Inequality(queries[i]); }, threads);
  return results;
}

std::vector<Result<TopKResult>> ParallelTopK(
    const PlanarIndexSet& set, const std::vector<ScalarProductQuery>& queries,
    size_t k, size_t threads) {
  std::vector<Result<TopKResult>> results(
      queries.size(), Status::Internal("not executed"));
  ParallelFor(
      queries.size(), [&](size_t i) { results[i] = set.TopK(queries[i], k); },
      threads);
  return results;
}

}  // namespace planar
