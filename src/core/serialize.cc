// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/macros.h"

namespace planar {

namespace {

constexpr char kMagic[8] = {'P', 'L', 'N', 'R', 'I', 'D', 'X', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t size) {
  return std::fwrite(data, 1, size, f) == size;
}

bool ReadBytes(std::FILE* f, void* data, size_t size) {
  return std::fread(data, 1, size, f) == size;
}

template <typename T>
bool WriteValue(std::FILE* f, const T& value) {
  return WriteBytes(f, &value, sizeof(T));
}

template <typename T>
bool ReadValue(std::FILE* f, T* value) {
  return ReadBytes(f, value, sizeof(T));
}

// Options are flattened into a fixed-size POD record.
struct OptionsRecord {
  uint64_t budget;
  uint32_t selector;
  uint32_t backend;
  double dedup_tolerance;
  uint64_t seed;
  uint64_t max_attempts_per_index;
  double delta_margin;
  double epsilon_band;
  uint32_t axis_exclusion;
  uint32_t reserved = 0;
};

OptionsRecord PackOptions(const IndexSetOptions& o) {
  OptionsRecord r{};
  r.budget = o.budget;
  r.selector = static_cast<uint32_t>(o.selector);
  r.backend = static_cast<uint32_t>(o.index_options.backend);
  r.dedup_tolerance = o.dedup_tolerance;
  r.seed = o.seed;
  r.max_attempts_per_index = o.max_attempts_per_index;
  r.delta_margin = o.index_options.translation.delta_margin;
  r.epsilon_band = o.index_options.epsilon_band;
  r.axis_exclusion = o.index_options.enable_axis_exclusion ? 1 : 0;
  return r;
}

IndexSetOptions UnpackOptions(const OptionsRecord& r) {
  IndexSetOptions o;
  o.budget = r.budget;
  o.selector = static_cast<IndexSetOptions::Selector>(r.selector);
  o.index_options.backend =
      static_cast<PlanarIndexOptions::Backend>(r.backend);
  o.dedup_tolerance = r.dedup_tolerance;
  o.seed = r.seed;
  o.max_attempts_per_index = r.max_attempts_per_index;
  o.index_options.translation.delta_margin = r.delta_margin;
  o.index_options.epsilon_band = r.epsilon_band;
  o.index_options.enable_axis_exclusion = r.axis_exclusion != 0;
  return o;
}

}  // namespace

Status SaveIndexSet(const PlanarIndexSet& set, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const PhiMatrix& phi = set.phi();
  const OptionsRecord options = PackOptions(set.options());
  const uint64_t dim = phi.dim();
  const uint64_t n = phi.size();
  const uint64_t num_indices = set.num_indices();
  bool ok = WriteBytes(f.get(), kMagic, sizeof(kMagic)) &&
            WriteValue(f.get(), options) && WriteValue(f.get(), dim) &&
            WriteValue(f.get(), n);
  for (size_t i = 0; ok && i < n; ++i) {
    ok = WriteBytes(f.get(), phi.row(i), sizeof(double) * dim);
  }
  ok = ok && WriteValue(f.get(), num_indices);
  for (size_t i = 0; ok && i < num_indices; ++i) {
    const PlanarIndex& index = set.index(i);
    const uint64_t octant_bits = index.octant().Id();
    ok = WriteValue(f.get(), octant_bits) &&
         WriteBytes(f.get(), index.normal().data(), sizeof(double) * dim);
  }
  if (!ok) return Status::Internal("short write to '" + path + "'");
  return Status::OK();
}

Result<PlanarIndexSet> LoadIndexSet(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  char magic[8];
  if (!ReadBytes(f.get(), magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a planar index file");
  }
  OptionsRecord options_record;
  uint64_t dim = 0;
  uint64_t n = 0;
  if (!ReadValue(f.get(), &options_record) || !ReadValue(f.get(), &dim) ||
      !ReadValue(f.get(), &n) || dim == 0 || dim > 1u << 20) {
    return Status::InvalidArgument("corrupt header in '" + path + "'");
  }
  const IndexSetOptions options = UnpackOptions(options_record);

  PhiMatrix phi(dim);
  phi.Reserve(n);
  std::vector<double> row(dim);
  for (uint64_t i = 0; i < n; ++i) {
    if (!ReadBytes(f.get(), row.data(), sizeof(double) * dim)) {
      return Status::InvalidArgument("truncated phi data in '" + path + "'");
    }
    phi.AppendRow(row.data());
  }
  uint64_t num_indices = 0;
  if (!ReadValue(f.get(), &num_indices) || num_indices == 0) {
    return Status::InvalidArgument("no indices in '" + path + "'");
  }
  std::vector<std::pair<std::vector<double>, Octant>> definitions;
  definitions.reserve(num_indices);
  for (uint64_t i = 0; i < num_indices; ++i) {
    uint64_t octant_bits = 0;
    std::vector<double> normal(dim);
    if (!ReadValue(f.get(), &octant_bits) ||
        !ReadBytes(f.get(), normal.data(), sizeof(double) * dim)) {
      return Status::InvalidArgument("truncated index table in '" + path +
                                     "'");
    }
    std::vector<double> representative(dim);
    for (size_t j = 0; j < dim; ++j) {
      representative[j] = (octant_bits >> j) & 1 ? -1.0 : 1.0;
    }
    definitions.emplace_back(std::move(normal),
                             Octant::FromNormal(representative));
  }

  PLANAR_ASSIGN_OR_RETURN(
      PlanarIndexSet set,
      PlanarIndexSet::BuildWithNormals(std::move(phi),
                                       {definitions[0].first},
                                       definitions[0].second, options));
  for (size_t i = 1; i < definitions.size(); ++i) {
    PLANAR_RETURN_IF_ERROR(
        set.AddIndex(definitions[i].first, definitions[i].second));
  }
  return set;
}

}  // namespace planar
