// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/macros.h"

namespace planar {

namespace {

constexpr char kMagicV1[8] = {'P', 'L', 'N', 'R', 'I', 'D', 'X', '1'};
constexpr char kMagicV2[8] = {'P', 'L', 'N', 'R', 'I', 'D', 'X', '2'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Append-only byte buffer the payload is serialized into before it is
// checksummed and written in one pass.
class ByteWriter {
 public:
  void Append(const void* data, size_t size) {
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + size);
  }
  template <typename T>
  void AppendValue(const T& value) {
    Append(&value, sizeof(T));
  }
  const std::vector<unsigned char>& buffer() const { return buffer_; }

 private:
  std::vector<unsigned char> buffer_;
};

// Bounds-checked cursor over an in-memory payload.
class ByteReader {
 public:
  ByteReader(const unsigned char* data, size_t size)
      : data_(data), remaining_(size) {}

  bool Read(void* out, size_t size) {
    if (size > remaining_) return false;
    std::memcpy(out, data_, size);
    data_ += size;
    remaining_ -= size;
    return true;
  }
  template <typename T>
  bool ReadValue(T* out) {
    return Read(out, sizeof(T));
  }

 private:
  const unsigned char* data_;
  size_t remaining_;
};

// Options are flattened into a fixed-size POD record.
struct OptionsRecord {
  uint64_t budget;
  uint32_t selector;
  uint32_t backend;
  double dedup_tolerance;
  uint64_t seed;
  uint64_t max_attempts_per_index;
  double delta_margin;
  double epsilon_band;
  uint32_t axis_exclusion;
  uint32_t reserved = 0;
};

OptionsRecord PackOptions(const IndexSetOptions& o) {
  OptionsRecord r{};
  r.budget = o.budget;
  r.selector = static_cast<uint32_t>(o.selector);
  r.backend = static_cast<uint32_t>(o.index_options.backend);
  r.dedup_tolerance = o.dedup_tolerance;
  r.seed = o.seed;
  r.max_attempts_per_index = o.max_attempts_per_index;
  r.delta_margin = o.index_options.translation.delta_margin;
  r.epsilon_band = o.index_options.epsilon_band;
  r.axis_exclusion = o.index_options.enable_axis_exclusion ? 1 : 0;
  return r;
}

IndexSetOptions UnpackOptions(const OptionsRecord& r) {
  IndexSetOptions o;
  o.budget = r.budget;
  o.selector = static_cast<IndexSetOptions::Selector>(r.selector);
  o.index_options.backend =
      static_cast<PlanarIndexOptions::Backend>(r.backend);
  o.dedup_tolerance = r.dedup_tolerance;
  o.seed = r.seed;
  o.max_attempts_per_index = r.max_attempts_per_index;
  o.index_options.translation.delta_margin = r.delta_margin;
  o.index_options.epsilon_band = r.epsilon_band;
  o.index_options.enable_axis_exclusion = r.axis_exclusion != 0;
  return o;
}

Result<std::vector<unsigned char>> ReadWholeFile(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::vector<unsigned char> bytes;
  unsigned char chunk[1 << 16];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f.get())) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  if (std::ferror(f.get()) != 0) {
    return Status::Internal("read error on '" + path + "'");
  }
  return bytes;
}

// Parses the payload (everything after the version header) and rebuilds
// the set. `options_override`, when non-null, replaces the stored
// backend/tuning knobs.
Result<PlanarIndexSet> ParsePayload(ByteReader reader,
                                    const std::string& path,
                                    const IndexSetOptions* options_override) {
  OptionsRecord options_record;
  uint64_t dim = 0;
  uint64_t n = 0;
  if (!reader.ReadValue(&options_record) || !reader.ReadValue(&dim) ||
      !reader.ReadValue(&n) || dim == 0 || dim > 1u << 20) {
    return Status::InvalidArgument("corrupt header in '" + path + "'");
  }
  const IndexSetOptions options = options_override != nullptr
                                      ? *options_override
                                      : UnpackOptions(options_record);

  PhiMatrix phi(dim);
  phi.Reserve(n);
  std::vector<double> row(dim);
  for (uint64_t i = 0; i < n; ++i) {
    if (!reader.Read(row.data(), sizeof(double) * dim)) {
      return Status::InvalidArgument("truncated phi data in '" + path + "'");
    }
    phi.AppendRow(row.data());
  }
  uint64_t num_indices = 0;
  if (!reader.ReadValue(&num_indices) || num_indices == 0) {
    return Status::InvalidArgument("no indices in '" + path + "'");
  }
  std::vector<std::pair<std::vector<double>, Octant>> definitions;
  definitions.reserve(num_indices);
  for (uint64_t i = 0; i < num_indices; ++i) {
    uint64_t octant_bits = 0;
    std::vector<double> normal(dim);
    if (!reader.ReadValue(&octant_bits) ||
        !reader.Read(normal.data(), sizeof(double) * dim)) {
      return Status::InvalidArgument("truncated index table in '" + path +
                                     "'");
    }
    std::vector<double> representative(dim);
    for (size_t j = 0; j < dim; ++j) {
      representative[j] = (octant_bits >> j) & 1 ? -1.0 : 1.0;
    }
    definitions.emplace_back(std::move(normal),
                             Octant::FromNormal(representative));
  }

  PLANAR_ASSIGN_OR_RETURN(
      PlanarIndexSet set,
      PlanarIndexSet::BuildWithNormals(std::move(phi),
                                       {definitions[0].first},
                                       definitions[0].second, options));
  if (definitions.size() > 1) {
    // Rebuild the remaining indices as one batch so snapshot loading
    // benefits from IndexSetOptions::build_threads.
    std::vector<PlanarIndexSet::IndexDefinition> rest(
        std::make_move_iterator(definitions.begin() + 1),
        std::make_move_iterator(definitions.end()));
    PLANAR_RETURN_IF_ERROR(set.AddIndices(std::move(rest)));
  }
  return set;
}

}  // namespace

Status SaveIndexSet(const PlanarIndexSet& set, const std::string& path) {
  const PhiMatrix& phi = set.phi();
  const uint64_t dim = phi.dim();
  const uint64_t n = phi.size();
  const uint64_t num_indices = set.num_indices();

  ByteWriter payload;
  payload.AppendValue(PackOptions(set.options()));
  payload.AppendValue(dim);
  payload.AppendValue(n);
  for (size_t i = 0; i < n; ++i) {
    payload.Append(phi.row(i), sizeof(double) * dim);
  }
  payload.AppendValue(num_indices);
  for (size_t i = 0; i < num_indices; ++i) {
    const PlanarIndex& index = set.index(i);
    const uint64_t octant_bits = index.octant().Id();
    payload.AppendValue(octant_bits);
    payload.Append(index.normal().data(), sizeof(double) * dim);
  }

  const std::vector<unsigned char>& bytes = payload.buffer();
  const uint32_t crc = Crc32(bytes.data(), bytes.size());
  const uint64_t payload_size = bytes.size();

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const bool ok =
      std::fwrite(kMagicV2, 1, sizeof(kMagicV2), f.get()) ==
          sizeof(kMagicV2) &&
      std::fwrite(&crc, 1, sizeof(crc), f.get()) == sizeof(crc) &&
      std::fwrite(&payload_size, 1, sizeof(payload_size), f.get()) ==
          sizeof(payload_size) &&
      std::fwrite(bytes.data(), 1, bytes.size(), f.get()) == bytes.size();
  if (!ok) return Status::Internal("short write to '" + path + "'");
  return Status::OK();
}

Result<PlanarIndexSet> LoadIndexSet(const std::string& path) {
  return LoadIndexSet(path, nullptr);
}

Result<PlanarIndexSet> LoadIndexSet(const std::string& path,
                                    const IndexSetOptions* options) {
  PLANAR_ASSIGN_OR_RETURN(std::vector<unsigned char> bytes,
                          ReadWholeFile(path));
  if (bytes.size() < sizeof(kMagicV2)) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a planar index file");
  }
  if (std::memcmp(bytes.data(), kMagicV2, sizeof(kMagicV2)) == 0) {
    // v2: checksummed. Verify the payload before parsing a single field.
    constexpr size_t kHeaderSize =
        sizeof(kMagicV2) + sizeof(uint32_t) + sizeof(uint64_t);
    if (bytes.size() < kHeaderSize) {
      return Status::DataLoss("truncated header in '" + path + "'");
    }
    uint32_t stored_crc = 0;
    uint64_t payload_size = 0;
    std::memcpy(&stored_crc, bytes.data() + sizeof(kMagicV2),
                sizeof(stored_crc));
    std::memcpy(&payload_size,
                bytes.data() + sizeof(kMagicV2) + sizeof(stored_crc),
                sizeof(payload_size));
    const unsigned char* payload = bytes.data() + kHeaderSize;
    const size_t available = bytes.size() - kHeaderSize;
    if (available != payload_size) {
      return Status::DataLoss("'" + path + "' is truncated: expected " +
                              std::to_string(payload_size) +
                              " payload bytes, found " +
                              std::to_string(available));
    }
    const uint32_t actual_crc = Crc32(payload, available);
    if (actual_crc != stored_crc) {
      return Status::DataLoss("checksum mismatch in '" + path +
                              "': the snapshot is corrupt");
    }
    return ParsePayload(ByteReader(payload, available), path, options);
  }
  if (std::memcmp(bytes.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    // v1: no checksum; field-level bounds checks are the only guard.
    return ParsePayload(ByteReader(bytes.data() + sizeof(kMagicV1),
                                   bytes.size() - sizeof(kMagicV1)),
                        path, options);
  }
  return Status::InvalidArgument("'" + path +
                                 "' is not a planar index file");
}

}  // namespace planar
