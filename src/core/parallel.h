// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Parallel batch query execution. All query methods of PlanarIndex /
// PlanarIndexSet are const and touch no mutable state, so concurrent
// queries over one set are safe; these helpers shard a query batch
// across threads. (Maintenance calls — UpdateRow / AppendRow / Rebuild —
// must not run concurrently with queries.)

#ifndef PLANAR_CORE_PARALLEL_H_
#define PLANAR_CORE_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/result.h"
#include "core/index_set.h"

namespace planar {

/// Runs fn(i) for every i in [0, n) on up to `threads` workers of the
/// process-wide shared ThreadPool (0 = hardware concurrency; always
/// clamped to n). Blocks until every call returned. Each index is
/// processed exactly once; the assignment of indices to workers is
/// contiguous sharding. Thin shim over ThreadPool::Shared().ParallelFor
/// — no threads are constructed per call.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t threads = 0);

/// Answers a batch of inequality queries over `set` in parallel;
/// result[i] corresponds to queries[i].
std::vector<InequalityResult> ParallelInequality(
    const PlanarIndexSet& set, const std::vector<ScalarProductQuery>& queries,
    size_t threads = 0);

/// Answers a batch of top-k queries in parallel. Per-query failures (e.g.
/// a degenerate all-zero normal) surface in the matching Result slot.
std::vector<Result<TopKResult>> ParallelTopK(
    const PlanarIndexSet& set, const std::vector<ScalarProductQuery>& queries,
    size_t k, size_t threads = 0);

}  // namespace planar

#endif  // PLANAR_CORE_PARALLEL_H_
