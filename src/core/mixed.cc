// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Band derivation (summary; full walk-through in DESIGN.md section 5j).
// The f32 residual r32 = fl32(<a32, x32> - b32) differs from the f64
// reference residual r64 by (1) conversion error of a, b, and the mirror
// rows — relative u32 = 2^-24 per value, absolute ~2^-150 in the f32
// subnormal range, (2) f32 summation rounding, bounded by gamma_dim * S
// where S = |b| + sum_i |a_i| * M_i envelopes every partial sum via the
// grow-only column bounds M_i, and (3) the f64 reference's own rounding,
// ~dim * 2^-53 * S. The band adds them with ~4x margin:
//
//   band = 4 (dim+4) u32 S  +  2^-148 (1 + sum_i (|a_i| + M_i))
//        + (2 dim + 4) 2^-126
//
// The middle term covers subnormal conversion error amplified by the
// opposite factor (|a_i| * err(x_i) and M_i * err(a_i)); the last covers
// per-operation underflow rounding. The plan is unusable when 4S or the
// band leave the finite float range, so f32 partial sums can never
// overflow to infinity and make a wrong sure decision; NaN residuals fail
// both band compares and always re-verify in f64.

#include "core/mixed.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/macros.h"
#include "core/kernels/kernels.h"

namespace planar {

namespace {

// f32-ok: range constants for the band and overflow guards.
constexpr double kFloatMax =
    static_cast<double>(std::numeric_limits<float>::max());

// Reads an on/off environment flag exactly once per call site (the
// callers latch the result in a static). Same contract as
// PLANAR_DISABLE_SIMD: unset, empty, or "0" means false.
bool EnvFlagSet(const char* name) {
  // Read before any worker threads exist; nothing in the library calls
  // setenv, so the concurrent-getenv hazard cannot arise.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return false;
  return !(env[0] == '0' && env[1] == '\0');
}

}  // namespace

bool MixedPrecisionRuntimeEnabled() {
  static const bool enabled = !EnvFlagSet("PLANAR_DISABLE_F32");
  return enabled;
}

bool MixedPrecisionForcedOn() {
  static const bool forced = EnvFlagSet("PLANAR_FORCE_F32");
  return forced;
}

MixedQueryPlan MakeMixedPlan(const double* a, size_t dim, double b,
                             bool less_equal, const RowMatrix& phi) {
  if (phi.f32_data() == nullptr || phi.empty() || phi.dim() != dim) {
    MixedQueryPlan plan;
    plan.less_equal = less_equal;
    return plan;
  }
  std::vector<double> env(dim);
  for (size_t i = 0; i < dim; ++i) {
    env[i] = std::max(std::fabs(phi.ColumnMin(i)), std::fabs(phi.ColumnMax(i)));
  }
  return MakeMixedPlanWithEnvelope(a, dim, b, less_equal, env.data());
}

MixedQueryPlan MakeMixedPlanWithEnvelope(const double* a, size_t dim, double b,
                                         bool less_equal,
                                         const double* column_abs_max) {
  MixedQueryPlan plan;
  plan.less_equal = less_equal;
  if (!MixedPrecisionRuntimeEnabled()) return plan;
  if (dim == 0) return plan;
  const double u32 = std::ldexp(1.0, -24);
  double s = std::fabs(b);
  double abs_slack = 1.0;
  for (size_t i = 0; i < dim; ++i) {
    const double mi = column_abs_max[i];
    s += std::fabs(a[i]) * mi;
    abs_slack += std::fabs(a[i]) + mi;
  }
  // Overflow guard: with 4S inside the float range no f32 partial sum can
  // reach infinity, so a finite (possibly wrong-by-less-than-band) f32
  // residual is guaranteed. The !(<) form also rejects NaN envelopes
  // (non-finite a, b, or column bounds).
  if (!(s * 4.0 < kFloatMax)) return plan;
  const double band_d = 4.0 * static_cast<double>(dim + 4) * u32 * s +
                        std::ldexp(abs_slack, -148) +
                        (2.0 * static_cast<double>(dim) + 4.0) *
                            std::ldexp(1.0, -126);
  if (!(band_d < kFloatMax)) return plan;
  // Round the band up one ulp so the float compare is conservative even
  // when the double->float cast rounded down.
  plan.band = std::nextafterf(static_cast<float>(band_d),
                              std::numeric_limits<float>::infinity());
  plan.a32.resize(dim);
  for (size_t i = 0; i < dim; ++i) plan.a32[i] = FloatMirrorValue(a[i]);
  plan.bias32 = FloatMirrorValue(-b);
  plan.usable = true;
  return plan;
}

size_t MixedResolveBlock(const MixedQueryPlan& plan, const double* a,
                         size_t dim, double b, const double* rows64,
                         size_t stride, const uint32_t* ids,
                         const float* res32, size_t blk, double* decision) {
  PLANAR_DCHECK(plan.usable && blk <= kernels::kBlockRows);
  // f32-ok: band compares run in float against the f32 residuals.
  const float band = plan.band;
  // Sentinels chosen so CompressAccept's predicate (<= 0 for less_equal,
  // >= 0 otherwise) passes for sure accepts and fails for sure rejects.
  const double pass = plan.less_equal ? -1.0 : 1.0;
  const double fail = -pass;
  uint32_t band_ids[kernels::kBlockRows];
  size_t band_pos[kernels::kBlockRows];
  size_t nband = 0;
  if (plan.less_equal) {
    for (size_t i = 0; i < blk; ++i) {
      const float r = res32[i];
      const bool sure_accept = r < -band;
      const bool sure_reject = r > band;
      decision[i] = sure_accept ? pass : fail;
      // Compress-collect the band rows (NaN fails both strict compares
      // and lands here, the conservative side).
      band_ids[nband] = ids[i];
      band_pos[nband] = i;
      nband += static_cast<size_t>(!(sure_accept || sure_reject));
    }
  } else {
    for (size_t i = 0; i < blk; ++i) {
      const float r = res32[i];
      const bool sure_accept = r > band;
      const bool sure_reject = r < -band;
      decision[i] = sure_accept ? pass : fail;
      band_ids[nband] = ids[i];
      band_pos[nband] = i;
      nband += static_cast<size_t>(!(sure_accept || sure_reject));
    }
  }
  if (nband != 0) {
    double res64[kernels::kBlockRows];
    kernels::Ops().dot_gather(a, dim, rows64, stride, band_ids, nband, -b,
                              res64);
    for (size_t i = 0; i < nband; ++i) decision[band_pos[i]] = res64[i];
  }
  return nband;
}

size_t MixedResolveBlockRange(const MixedQueryPlan& plan, const double* a,
                              size_t dim, double b, const double* rows64,
                              size_t stride, size_t first_row,
                              const float* res32, size_t blk,
                              double* decision) {
  PLANAR_DCHECK(blk <= kernels::kBlockRows);
  uint32_t ids[kernels::kBlockRows];
  for (size_t i = 0; i < blk; ++i) {
    ids[i] = static_cast<uint32_t>(first_row + i);
  }
  return MixedResolveBlock(plan, a, dim, b, rows64, stride, ids, res32, blk,
                           decision);
}

size_t MixedFilterPossible(const MixedQueryPlan& plan, const float* res32,
                           const uint32_t* ids, size_t blk,
                           uint32_t* possible) {
  PLANAR_DCHECK(plan.usable);
  // f32-ok: band compares run in float against the f32 residuals.
  const float band = plan.band;
  size_t kept = 0;
  if (plan.less_equal) {
    for (size_t i = 0; i < blk; ++i) {
      possible[kept] = ids[i];
      // NaN fails the strict compare, so it stays possible.
      kept += static_cast<size_t>(!(res32[i] > band));
    }
  } else {
    for (size_t i = 0; i < blk; ++i) {
      possible[kept] = ids[i];
      kept += static_cast<size_t>(!(res32[i] < -band));
    }
  }
  return kept;
}

}  // namespace planar
