// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// A bulk-loaded kd-tree with half-space reporting — the classic spatial
// answer to half-space range searching (the phi = identity special case
// of the paper's Problem 1) and the kind of structure the related work
// applies to linear constraint queries. Serves as a practical comparator
// for the asymptotic structures of Table 1: excellent in low
// dimensionality, cursed in high.

#ifndef PLANAR_SPATIAL_KDTREE_H_
#define PLANAR_SPATIAL_KDTREE_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "core/row_matrix.h"

namespace planar {

/// An immutable kd-tree over the rows of an externally-owned matrix
/// (which must outlive the tree).
class KdTree {
 public:
  /// Bulk loads by median splits on the widest box dimension.
  explicit KdTree(const RowMatrix* points, size_t leaf_size = 32);

  /// Appends all rows satisfying <q.a, x> cmp q.b to `out`. Subtrees whose
  /// bounding box lies entirely on one side are accepted or rejected
  /// wholesale; leaf stragglers are verified exactly.
  void HalfSpaceQuery(const ScalarProductQuery& q,
                      std::vector<uint32_t>* out) const;

  /// Appends all rows within `radius` of `center` (length dim()).
  void BallQuery(const double* center, double radius,
                 std::vector<uint32_t>* out) const;

  /// Number of indexed rows / tree nodes.
  size_t size() const { return ids_.size(); }
  size_t node_count() const { return nodes_.size(); }
  size_t dim() const;

  /// Heap footprint in bytes (excluding the point matrix).
  size_t MemoryUsage() const;

 private:
  struct Node {
    std::vector<double> box_lo;
    std::vector<double> box_hi;
    uint32_t left = 0;    // child node ids (internal only)
    uint32_t right = 0;
    uint32_t first = 0;   // leaf range [first, last) into ids_
    uint32_t last = 0;
    bool is_leaf = true;
  };

  uint32_t Build(size_t begin, size_t end, size_t leaf_size);
  void ComputeBox(Node* node, size_t begin, size_t end) const;
  void HalfSpace(uint32_t node_id, const ScalarProductQuery& q, bool le,
                 std::vector<uint32_t>* out) const;
  void Ball(uint32_t node_id, const double* center, double radius,
            std::vector<uint32_t>* out) const;
  void ReportSubtree(uint32_t node_id, std::vector<uint32_t>* out) const;

  const RowMatrix* points_;
  std::vector<uint32_t> ids_;  // permutation; leaves own contiguous ranges
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
};

}  // namespace planar

#endif  // PLANAR_SPATIAL_KDTREE_H_
