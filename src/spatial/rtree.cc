// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/macros.h"

namespace planar {

bool Window::Contains(const double* point) const {
  for (size_t j = 0; j < lo.size(); ++j) {
    if (point[j] < lo[j] || point[j] > hi[j]) return false;
  }
  return true;
}

size_t RTree::dim() const { return points_->dim(); }

void RTree::ComputeBox(Node* node, size_t begin, size_t end) const {
  const size_t d = points_->dim();
  node->box_lo.assign(d, std::numeric_limits<double>::infinity());
  node->box_hi.assign(d, -std::numeric_limits<double>::infinity());
  for (size_t i = begin; i < end; ++i) {
    const double* row = points_->row(ids_[i]);
    for (size_t j = 0; j < d; ++j) {
      node->box_lo[j] = std::min(node->box_lo[j], row[j]);
      node->box_hi[j] = std::max(node->box_hi[j], row[j]);
    }
  }
}

// STR packing: recursively sort-and-slice dimension by dimension so each
// leaf holds `leaf_size` spatially clustered points, then pack upward.
uint32_t RTree::PackLeaves(size_t leaf_size) {
  const size_t n = ids_.size();
  const size_t d = points_->dim();
  const size_t num_leaves = (n + leaf_size - 1) / leaf_size;

  // Tile recursively over dimensions. For simplicity (and d up to ~16)
  // two passes suffice in practice: sort by dim 0, slice into
  // ceil(num_leaves^(1/2)) slabs, sort each slab by dim 1 (mod d).
  const size_t slabs = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(std::sqrt(static_cast<double>(num_leaves)))));
  const size_t per_slab = (n + slabs - 1) / slabs;
  std::sort(ids_.begin(), ids_.end(), [&](uint32_t a, uint32_t b) {
    return points_->at(a, 0) < points_->at(b, 0);
  });
  if (d > 1) {
    for (size_t s = 0; s * per_slab < n; ++s) {
      const size_t begin = s * per_slab;
      const size_t end = std::min(n, begin + per_slab);
      std::sort(ids_.begin() + static_cast<ptrdiff_t>(begin),
                ids_.begin() + static_cast<ptrdiff_t>(end),
                [&](uint32_t a, uint32_t b) {
                  return points_->at(a, 1) < points_->at(b, 1);
                });
    }
  }

  std::vector<uint32_t> level;
  for (size_t begin = 0; begin < n; begin += leaf_size) {
    const size_t end = std::min(n, begin + leaf_size);
    Node leaf;
    leaf.is_leaf = true;
    leaf.first = static_cast<uint32_t>(begin);
    leaf.last = static_cast<uint32_t>(end);
    ComputeBox(&leaf, begin, end);
    level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(std::move(leaf));
  }
  const size_t fanout = std::max<size_t>(2, leaf_size / 2);
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t begin = 0; begin < level.size(); begin += fanout) {
      const size_t end = std::min(level.size(), begin + fanout);
      Node internal;
      internal.is_leaf = false;
      internal.box_lo = nodes_[level[begin]].box_lo;
      internal.box_hi = nodes_[level[begin]].box_hi;
      for (size_t i = begin; i < end; ++i) {
        internal.children.push_back(level[i]);
        const Node& child = nodes_[level[i]];
        for (size_t j = 0; j < internal.box_lo.size(); ++j) {
          internal.box_lo[j] = std::min(internal.box_lo[j], child.box_lo[j]);
          internal.box_hi[j] = std::max(internal.box_hi[j], child.box_hi[j]);
        }
      }
      next.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(std::move(internal));
    }
    level = std::move(next);
  }
  return level[0];
}

RTree::RTree(const RowMatrix* points, size_t leaf_size) : points_(points) {
  PLANAR_CHECK(points != nullptr);
  PLANAR_CHECK_GT(leaf_size, 0u);
  ids_.resize(points_->size());
  std::iota(ids_.begin(), ids_.end(), 0u);
  if (ids_.empty()) {
    Node empty;
    empty.is_leaf = true;
    empty.box_lo.assign(points_->dim(), 0.0);
    empty.box_hi.assign(points_->dim(), 0.0);
    nodes_.push_back(std::move(empty));
    root_ = 0;
    return;
  }
  root_ = PackLeaves(leaf_size);
}

void RTree::ReportSubtree(uint32_t node_id,
                          std::vector<uint32_t>* out) const {
  const Node& node = nodes_[node_id];
  if (node.is_leaf) {
    for (uint32_t i = node.first; i < node.last; ++i) out->push_back(ids_[i]);
    return;
  }
  for (uint32_t child : node.children) ReportSubtree(child, out);
}

void RTree::Window_(uint32_t node_id, const Window& window,
                    std::vector<uint32_t>* out) const {
  const Node& node = nodes_[node_id];
  bool contained = true;
  for (size_t j = 0; j < window.lo.size(); ++j) {
    if (node.box_lo[j] > window.hi[j] || node.box_hi[j] < window.lo[j]) {
      return;  // disjoint
    }
    contained = contained && window.lo[j] <= node.box_lo[j] &&
                node.box_hi[j] <= window.hi[j];
  }
  if (contained) {
    ReportSubtree(node_id, out);
    return;
  }
  if (node.is_leaf) {
    for (uint32_t i = node.first; i < node.last; ++i) {
      const uint32_t id = ids_[i];
      if (window.Contains(points_->row(id))) out->push_back(id);
    }
    return;
  }
  for (uint32_t child : node.children) Window_(child, window, out);
}

void RTree::WindowQuery(const Window& window,
                        std::vector<uint32_t>* out) const {
  PLANAR_CHECK_EQ(window.lo.size(), points_->dim());
  PLANAR_CHECK_EQ(window.hi.size(), points_->dim());
  if (ids_.empty()) return;
  Window_(root_, window, out);
}

void RTree::HalfSpace(uint32_t node_id, const ScalarProductQuery& q,
                      bool le, std::vector<uint32_t>* out) const {
  const Node& node = nodes_[node_id];
  double lo = 0.0;
  double hi = 0.0;
  for (size_t j = 0; j < q.a.size(); ++j) {
    if (q.a[j] >= 0.0) {
      lo += q.a[j] * node.box_lo[j];
      hi += q.a[j] * node.box_hi[j];
    } else {
      lo += q.a[j] * node.box_hi[j];
      hi += q.a[j] * node.box_lo[j];
    }
  }
  const bool all_in = le ? hi <= q.b : lo >= q.b;
  const bool all_out = le ? lo > q.b : hi < q.b;
  if (all_out) return;
  if (all_in) {
    ReportSubtree(node_id, out);
    return;
  }
  if (node.is_leaf) {
    for (uint32_t i = node.first; i < node.last; ++i) {
      const uint32_t id = ids_[i];
      if (q.Matches(points_->row(id))) out->push_back(id);
    }
    return;
  }
  for (uint32_t child : node.children) HalfSpace(child, q, le, out);
}

void RTree::HalfSpaceQuery(const ScalarProductQuery& q,
                           std::vector<uint32_t>* out) const {
  PLANAR_CHECK_EQ(q.a.size(), points_->dim());
  if (ids_.empty()) return;
  HalfSpace(root_, q, q.cmp == Comparison::kLessEqual, out);
}

size_t RTree::MemoryUsage() const {
  size_t total = sizeof(*this) + ids_.capacity() * sizeof(uint32_t) +
                 nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    total += (node.box_lo.capacity() + node.box_hi.capacity()) *
                 sizeof(double) +
             node.children.capacity() * sizeof(uint32_t);
  }
  return total;
}

}  // namespace planar
