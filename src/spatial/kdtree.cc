// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "spatial/kdtree.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/macros.h"
#include "geometry/vec.h"

namespace planar {

KdTree::KdTree(const RowMatrix* points, size_t leaf_size) : points_(points) {
  PLANAR_CHECK(points != nullptr);
  PLANAR_CHECK_GT(leaf_size, 0u);
  ids_.resize(points_->size());
  std::iota(ids_.begin(), ids_.end(), 0u);
  if (ids_.empty()) {
    Node empty;
    empty.is_leaf = true;
    empty.box_lo.assign(points_->dim(), 0.0);
    empty.box_hi.assign(points_->dim(), 0.0);
    nodes_.push_back(std::move(empty));
    root_ = 0;
    return;
  }
  root_ = Build(0, ids_.size(), leaf_size);
}

size_t KdTree::dim() const { return points_->dim(); }

void KdTree::ComputeBox(Node* node, size_t begin, size_t end) const {
  const size_t d = points_->dim();
  node->box_lo.assign(d, std::numeric_limits<double>::infinity());
  node->box_hi.assign(d, -std::numeric_limits<double>::infinity());
  for (size_t i = begin; i < end; ++i) {
    const double* row = points_->row(ids_[i]);
    for (size_t j = 0; j < d; ++j) {
      node->box_lo[j] = std::min(node->box_lo[j], row[j]);
      node->box_hi[j] = std::max(node->box_hi[j], row[j]);
    }
  }
}

uint32_t KdTree::Build(size_t begin, size_t end, size_t leaf_size) {
  Node node;
  ComputeBox(&node, begin, end);
  const uint32_t node_id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(std::move(node));

  if (end - begin <= leaf_size) {
    nodes_[node_id].is_leaf = true;
    nodes_[node_id].first = static_cast<uint32_t>(begin);
    nodes_[node_id].last = static_cast<uint32_t>(end);
    return node_id;
  }
  // Split on the widest box dimension at the median.
  size_t split_dim = 0;
  double widest = -1.0;
  for (size_t j = 0; j < points_->dim(); ++j) {
    const double width = nodes_[node_id].box_hi[j] - nodes_[node_id].box_lo[j];
    if (width > widest) {
      widest = width;
      split_dim = j;
    }
  }
  const size_t mid = begin + (end - begin) / 2;
  std::nth_element(ids_.begin() + static_cast<ptrdiff_t>(begin),
                   ids_.begin() + static_cast<ptrdiff_t>(mid),
                   ids_.begin() + static_cast<ptrdiff_t>(end),
                   [&](uint32_t a, uint32_t b) {
                     return points_->at(a, split_dim) <
                            points_->at(b, split_dim);
                   });
  if (widest == 0.0) {
    // All points identical: keep as one (possibly oversized) leaf rather
    // than recursing forever.
    nodes_[node_id].is_leaf = true;
    nodes_[node_id].first = static_cast<uint32_t>(begin);
    nodes_[node_id].last = static_cast<uint32_t>(end);
    return node_id;
  }
  const uint32_t left = Build(begin, mid, leaf_size);
  const uint32_t right = Build(mid, end, leaf_size);
  nodes_[node_id].is_leaf = false;
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void KdTree::ReportSubtree(uint32_t node_id,
                           std::vector<uint32_t>* out) const {
  const Node& node = nodes_[node_id];
  if (node.is_leaf) {
    for (uint32_t i = node.first; i < node.last; ++i) {
      out->push_back(ids_[i]);
    }
    return;
  }
  ReportSubtree(node.left, out);
  ReportSubtree(node.right, out);
}

void KdTree::HalfSpace(uint32_t node_id, const ScalarProductQuery& q,
                       bool le, std::vector<uint32_t>* out) const {
  const Node& node = nodes_[node_id];
  // Range of <a, x> over the bounding box.
  double lo = 0.0;
  double hi = 0.0;
  for (size_t j = 0; j < q.a.size(); ++j) {
    if (q.a[j] >= 0.0) {
      lo += q.a[j] * node.box_lo[j];
      hi += q.a[j] * node.box_hi[j];
    } else {
      lo += q.a[j] * node.box_hi[j];
      hi += q.a[j] * node.box_lo[j];
    }
  }
  const bool all_in = le ? hi <= q.b : lo >= q.b;
  const bool all_out = le ? lo > q.b : hi < q.b;
  if (all_out) return;
  if (all_in) {
    ReportSubtree(node_id, out);
    return;
  }
  if (node.is_leaf) {
    for (uint32_t i = node.first; i < node.last; ++i) {
      const uint32_t id = ids_[i];
      if (q.Matches(points_->row(id))) out->push_back(id);
    }
    return;
  }
  HalfSpace(node.left, q, le, out);
  HalfSpace(node.right, q, le, out);
}

void KdTree::HalfSpaceQuery(const ScalarProductQuery& q,
                            std::vector<uint32_t>* out) const {
  PLANAR_CHECK_EQ(q.a.size(), points_->dim());
  if (ids_.empty()) return;
  HalfSpace(root_, q, q.cmp == Comparison::kLessEqual, out);
}

void KdTree::Ball(uint32_t node_id, const double* center, double radius,
                  std::vector<uint32_t>* out) const {
  const Node& node = nodes_[node_id];
  double dist2 = 0.0;
  for (size_t j = 0; j < points_->dim(); ++j) {
    if (center[j] < node.box_lo[j]) {
      const double d = node.box_lo[j] - center[j];
      dist2 += d * d;
    } else if (center[j] > node.box_hi[j]) {
      const double d = center[j] - node.box_hi[j];
      dist2 += d * d;
    }
  }
  if (dist2 > radius * radius) return;
  if (node.is_leaf) {
    for (uint32_t i = node.first; i < node.last; ++i) {
      const uint32_t id = ids_[i];
      if (SquaredDistance(points_->row(id), center, points_->dim()) <=
          radius * radius) {
        out->push_back(id);
      }
    }
    return;
  }
  Ball(node.left, center, radius, out);
  Ball(node.right, center, radius, out);
}

void KdTree::BallQuery(const double* center, double radius,
                       std::vector<uint32_t>* out) const {
  PLANAR_CHECK_GE(radius, 0.0);
  if (ids_.empty()) return;
  Ball(root_, center, radius, out);
}

size_t KdTree::MemoryUsage() const {
  size_t total = sizeof(*this) + ids_.capacity() * sizeof(uint32_t) +
                 nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    total += (node.box_lo.capacity() + node.box_hi.capacity()) *
             sizeof(double);
  }
  return total;
}

}  // namespace planar
