// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// A static STR-packed R-tree over points, with window (orthogonal range)
// and half-space reporting. This is the structure the paper's related
// work applies to linear constraint queries ("most studies in linear
// constraint queries apply spatial data structures such as R-tree and
// K-D-B tree"); together with spatial/kdtree.h it completes the
// practical comparator suite for the identity-phi case.

#ifndef PLANAR_SPATIAL_RTREE_H_
#define PLANAR_SPATIAL_RTREE_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "core/row_matrix.h"

namespace planar {

/// An axis-aligned query window: per-dimension [lo, hi] (closed).
struct Window {
  std::vector<double> lo;
  std::vector<double> hi;

  /// True iff the point (length lo.size()) lies inside the window.
  bool Contains(const double* point) const;
};

/// Sort-Tile-Recursive bulk-loaded R-tree over the rows of an
/// externally-owned matrix (which must outlive the tree).
class RTree {
 public:
  explicit RTree(const RowMatrix* points, size_t leaf_size = 32);

  /// Appends all rows inside `window` to `out`.
  void WindowQuery(const Window& window, std::vector<uint32_t>* out) const;

  /// Appends all rows satisfying the half-space predicate to `out`.
  void HalfSpaceQuery(const ScalarProductQuery& q,
                      std::vector<uint32_t>* out) const;

  size_t size() const { return ids_.size(); }
  size_t node_count() const { return nodes_.size(); }
  size_t dim() const;

  /// Heap footprint in bytes (excluding the point matrix).
  size_t MemoryUsage() const;

 private:
  struct Node {
    std::vector<double> box_lo;
    std::vector<double> box_hi;
    std::vector<uint32_t> children;  // internal
    uint32_t first = 0;              // leaf range into ids_
    uint32_t last = 0;
    bool is_leaf = true;
  };

  void ComputeBox(Node* node, size_t begin, size_t end) const;
  uint32_t PackLeaves(size_t leaf_size);
  void Window_(uint32_t node_id, const Window& window,
               std::vector<uint32_t>* out) const;
  void HalfSpace(uint32_t node_id, const ScalarProductQuery& q, bool le,
                 std::vector<uint32_t>* out) const;
  void ReportSubtree(uint32_t node_id, std::vector<uint32_t>* out) const;

  const RowMatrix* points_;
  std::vector<uint32_t> ids_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
};

}  // namespace planar

#endif  // PLANAR_SPATIAL_RTREE_H_
