// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "mobility/tpr_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/macros.h"

namespace planar {

TprTree::Bounds TprTree::BoundsOf(const LinearObject& o, bool use_z) {
  Bounds b;
  const double pos[3] = {o.p0.x, o.p0.y, use_z ? o.p0.z : 0.0};
  const double vel[3] = {o.u.x, o.u.y, use_z ? o.u.z : 0.0};
  for (int d = 0; d < 3; ++d) {
    b.pos_min[d] = pos[d];
    b.pos_max[d] = pos[d];
    b.vel_min[d] = vel[d];
    b.vel_max[d] = vel[d];
  }
  return b;
}

TprTree::Bounds TprTree::Merge(const Bounds& a, const Bounds& b) {
  Bounds m;
  for (int d = 0; d < 3; ++d) {
    m.pos_min[d] = std::min(a.pos_min[d], b.pos_min[d]);
    m.pos_max[d] = std::max(a.pos_max[d], b.pos_max[d]);
    m.vel_min[d] = std::min(a.vel_min[d], b.vel_min[d]);
    m.vel_max[d] = std::max(a.vel_max[d], b.vel_max[d]);
  }
  return m;
}

TprTree::TprTree(const std::vector<LinearObject>& objects,
                 size_t leaf_capacity, bool use_z)
    : objects_(objects), dims_(use_z ? 3 : 2) {
  PLANAR_CHECK_GT(leaf_capacity, 0u);
  const size_t n = objects_.size();
  object_ids_.resize(n);
  std::iota(object_ids_.begin(), object_ids_.end(), 0u);
  if (n == 0) {
    Node empty;
    empty.is_leaf = true;
    for (int d = 0; d < 3; ++d) {
      empty.bounds.pos_min[d] = 0;
      empty.bounds.pos_max[d] = 0;
      empty.bounds.vel_min[d] = 0;
      empty.bounds.vel_max[d] = 0;
    }
    nodes_.push_back(empty);
    root_ = 0;
    return;
  }

  // STR packing: sort by x, slice into sqrt(#leaves) strips, sort each
  // strip by y, cut into leaves.
  const size_t num_leaves = (n + leaf_capacity - 1) / leaf_capacity;
  const size_t strips =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(
                              std::sqrt(static_cast<double>(num_leaves)))));
  const size_t per_strip = (n + strips - 1) / strips;
  std::sort(object_ids_.begin(), object_ids_.end(),
            [&](uint32_t a, uint32_t b) {
              return objects_[a].p0.x < objects_[b].p0.x;
            });
  for (size_t s = 0; s * per_strip < n; ++s) {
    const size_t begin = s * per_strip;
    const size_t end = std::min(n, begin + per_strip);
    std::sort(object_ids_.begin() + begin, object_ids_.begin() + end,
              [&](uint32_t a, uint32_t b) {
                return objects_[a].p0.y < objects_[b].p0.y;
              });
  }

  // Build leaves.
  std::vector<uint32_t> level;
  for (size_t begin = 0; begin < n; begin += leaf_capacity) {
    const size_t end = std::min(n, begin + leaf_capacity);
    Node leaf;
    leaf.is_leaf = true;
    leaf.first = static_cast<uint32_t>(begin);
    leaf.last = static_cast<uint32_t>(end);
    leaf.bounds = BoundsOf(objects_[object_ids_[begin]], dims_ == 3);
    for (size_t i = begin + 1; i < end; ++i) {
      leaf.bounds =
          Merge(leaf.bounds, BoundsOf(objects_[object_ids_[i]], dims_ == 3));
    }
    level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(std::move(leaf));
  }

  // Build internal levels with the same fanout.
  const size_t fanout = std::max<size_t>(2, leaf_capacity / 2);
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t begin = 0; begin < level.size(); begin += fanout) {
      const size_t end = std::min(level.size(), begin + fanout);
      Node internal;
      internal.is_leaf = false;
      internal.bounds = nodes_[level[begin]].bounds;
      for (size_t i = begin; i < end; ++i) {
        internal.children.push_back(level[i]);
        internal.bounds = Merge(internal.bounds, nodes_[level[i]].bounds);
      }
      next.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(std::move(internal));
    }
    level = std::move(next);
  }
  root_ = level[0];
}

bool TprTree::Intersects(const Bounds& b, const Position3& center,
                         double radius, double t) const {
  const double c[3] = {center.x, center.y, center.z};
  double dist2 = 0.0;
  for (size_t d = 0; d < dims_; ++d) {
    const double lo = b.pos_min[d] + b.vel_min[d] * t;
    const double hi = b.pos_max[d] + b.vel_max[d] * t;
    if (c[d] < lo) {
      dist2 += (lo - c[d]) * (lo - c[d]);
    } else if (c[d] > hi) {
      dist2 += (c[d] - hi) * (c[d] - hi);
    }
  }
  return dist2 <= radius * radius;
}

void TprTree::Query(uint32_t node_id, const Position3& center, double radius,
                    double t, std::vector<uint32_t>* out) const {
  const Node& node = nodes_[node_id];
  if (!Intersects(node.bounds, center, radius, t)) return;
  if (node.is_leaf) {
    for (uint32_t i = node.first; i < node.last; ++i) {
      const uint32_t id = object_ids_[i];
      const Position3 p = objects_[id].At(t);
      if (SquaredDistanceBetween(p, center) <= radius * radius) {
        out->push_back(id);
      }
    }
    return;
  }
  for (uint32_t child : node.children) Query(child, center, radius, t, out);
}

void TprTree::RangeQuery(const Position3& center, double radius, double t,
                         std::vector<uint32_t>* out) const {
  PLANAR_CHECK_GE(t, 0.0);
  PLANAR_CHECK_GE(radius, 0.0);
  if (objects_.empty()) return;
  Query(root_, center, radius, t, out);
}

size_t TprTree::MemoryUsage() const {
  size_t total = sizeof(*this);
  total += objects_.capacity() * sizeof(LinearObject);
  total += object_ids_.capacity() * sizeof(uint32_t);
  total += nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) {
    total += n.children.capacity() * sizeof(uint32_t);
  }
  return total;
}

}  // namespace planar
