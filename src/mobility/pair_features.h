// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Scalar-product formulations of the moving-object intersection problem
// (Example 2 and Section 7.5.1 of the paper). Each workload factors the
// time-parameterized squared distance between two objects into
//
//   dist^2(t) = <a(params), phi(objects)>
//
// where phi depends only on quantities fixed at indexing time and `a`
// only on quantities known at query time, so "which pairs are within S of
// each other at future time t" becomes the inequality query
// <a, phi> <= S^2.
//
// * Linear x linear (2D/3D): phi is per-PAIR (d' = 3), a = (1, t, t^2).
// * Accelerating x linear (3D): phi per-pair (d' = 5),
//   a = (1, t, t^2, t^3, t^4).
// * Circular x linear (2D): phi is per-LINEAR-OBJECT (d' = 8) and each
//   circular object issues its own query with parameters depending on
//   (r, omega, center, t). (The paper's Equation 1 is equivalent; we use
//   the clean per-object factorization — see DESIGN.md.)

#ifndef PLANAR_MOBILITY_PAIR_FEATURES_H_
#define PLANAR_MOBILITY_PAIR_FEATURES_H_

#include <utility>
#include <vector>

#include "core/query.h"
#include "geometry/octant.h"
#include "mobility/motion.h"

namespace planar {

/// Linear x linear intersection as a scalar product query
/// (Section 7.5.1, "Objects moving with uniform velocity").
struct LinearPairWorkload {
  static constexpr size_t kFeatureDim = 3;

  /// phi(pair) = (|p-q|^2, 2 (p-q).(u-v), |u-v|^2).
  static void PairFeatures(const LinearObject& a, const LinearObject& b,
                           double* out);

  /// <(1, t, t^2), phi> <= S^2: all pairs within distance S at time t.
  static ScalarProductQuery QueryAt(double t, double distance);

  /// The exactly-parallel index normal for time instant t (all positive:
  /// first-octant index).
  static std::vector<double> IndexNormalAt(double t);
};

/// Accelerating x linear intersection (Section 7.5.1, "Objects moving
/// with acceleration"; 3D).
struct AcceleratingPairWorkload {
  static constexpr size_t kFeatureDim = 5;

  /// phi(pair) = (|d0|^2, 2 d0.du, |du|^2 + d0.w, du.w, |w|^2 / 4) with
  /// d0 = p0 - q0, du = u - v, w = accel.
  static void PairFeatures(const AcceleratingObject& a, const LinearObject& b,
                           double* out);

  /// <(1, t, t^2, t^3, t^4), phi> <= S^2.
  static ScalarProductQuery QueryAt(double t, double distance);

  static std::vector<double> IndexNormalAt(double t);
};

/// Circular x linear intersection (Section 7.5.1, "Circular moving
/// objects"; 2D). The linear objects are indexed once; each circular
/// object issues one query per (object, t).
struct CircularLinearWorkload {
  static constexpr size_t kFeatureDim = 8;

  /// phi(b) = (1, |q0|^2, q0.v, |v|^2, q0_x, q0_y, v_x, v_y).
  static void LinearFeatures(const LinearObject& b, double* out);

  /// dist^2 between circular object `a` at time t and an indexed linear
  /// object, as a scalar product query with threshold distance^2.
  static ScalarProductQuery QueryFor(const CircularObject& a, double t,
                                     double distance);

  /// Representative (mirrored-space normal, octant) pairs covering the
  /// sign patterns the queries of this workload can take at time t (the
  /// trigonometric parameters change sign with the object's angle).
  /// One template is produced per (radius, angle) combination:
  /// `num_angles` angles spread over the circle (>= 4 so every octant is
  /// covered) for each radius in `radii`.
  static std::vector<std::pair<std::vector<double>, Octant>> IndexTemplates(
      double t, const std::vector<double>& radii, size_t num_angles);

  /// Convenience: two radii around `typical_radius`, 8 angles.
  static std::vector<std::pair<std::vector<double>, Octant>> IndexTemplates(
      double t, double typical_radius);
};

}  // namespace planar

#endif  // PLANAR_MOBILITY_PAIR_FEATURES_H_
