// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "mobility/intersection.h"

#include <cmath>

#include "common/macros.h"

namespace planar {

namespace {

constexpr double kDegToRad = 3.14159265358979323846 / 180.0;

double SignedSpeed(double lo, double hi, Rng& rng) {
  const double magnitude = rng.Uniform(lo, hi);
  return rng.Bernoulli(0.5) ? magnitude : -magnitude;
}

void AccumulateStats(QueryStats* total, const QueryStats& one) {
  if (total == nullptr) return;
  total->num_points += one.num_points;
  total->accepted_directly += one.accepted_directly;
  total->rejected_directly += one.rejected_directly;
  total->verified += one.verified;
  total->result_size += one.result_size;
  total->index_used = one.index_used;
}

}  // namespace

std::vector<LinearObject> GenerateLinearObjects(size_t n, double space,
                                                double speed_lo,
                                                double speed_hi, bool use_z,
                                                Rng& rng) {
  std::vector<LinearObject> objects(n);
  for (LinearObject& o : objects) {
    o.p0 = {rng.Uniform(0.0, space), rng.Uniform(0.0, space),
            use_z ? rng.Uniform(0.0, space) : 0.0};
    o.u = {SignedSpeed(speed_lo, speed_hi, rng),
           SignedSpeed(speed_lo, speed_hi, rng),
           use_z ? SignedSpeed(speed_lo, speed_hi, rng) : 0.0};
  }
  return objects;
}

std::vector<CircularObject> GenerateCircularObjects(size_t n,
                                                    double radius_lo,
                                                    double radius_hi,
                                                    double omega_lo_deg,
                                                    double omega_hi_deg,
                                                    Rng& rng) {
  std::vector<CircularObject> objects(n);
  for (CircularObject& o : objects) {
    o.center = {0.0, 0.0, 0.0};  // concentric circles (Figure 1)
    o.radius = rng.Uniform(radius_lo, radius_hi);
    o.omega = rng.Uniform(omega_lo_deg, omega_hi_deg) * kDegToRad;
    o.phase = rng.Uniform(0.0, 2.0 * 3.14159265358979323846);
  }
  return objects;
}

std::vector<AcceleratingObject> GenerateAcceleratingObjects(
    size_t n, double space, double speed_lo, double speed_hi,
    double accel_lo, double accel_hi, Rng& rng) {
  std::vector<AcceleratingObject> objects(n);
  for (AcceleratingObject& o : objects) {
    o.p0 = {rng.Uniform(0.0, space), rng.Uniform(0.0, space),
            rng.Uniform(0.0, space)};
    o.u = {SignedSpeed(speed_lo, speed_hi, rng),
           SignedSpeed(speed_lo, speed_hi, rng),
           SignedSpeed(speed_lo, speed_hi, rng)};
    o.accel = {SignedSpeed(accel_lo, accel_hi, rng),
               SignedSpeed(accel_lo, accel_hi, rng),
               SignedSpeed(accel_lo, accel_hi, rng)};
  }
  return objects;
}

template <typename ObjectA>
std::vector<IdPair> BaselineIntersectImpl(const std::vector<ObjectA>& a,
                                          const std::vector<LinearObject>& b,
                                          double t, double distance) {
  std::vector<IdPair> out;
  const double limit = distance * distance;
  std::vector<Position3> b_at(b.size());
  for (size_t j = 0; j < b.size(); ++j) b_at[j] = b[j].At(t);
  for (size_t i = 0; i < a.size(); ++i) {
    const Position3 pa = a[i].At(t);
    for (size_t j = 0; j < b.size(); ++j) {
      if (SquaredDistanceBetween(pa, b_at[j]) <= limit) {
        out.emplace_back(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
      }
    }
  }
  return out;
}

std::vector<IdPair> BaselineIntersect(const std::vector<LinearObject>& a,
                                      const std::vector<LinearObject>& b,
                                      double t, double distance) {
  return BaselineIntersectImpl(a, b, t, distance);
}

std::vector<IdPair> BaselineIntersect(const std::vector<CircularObject>& a,
                                      const std::vector<LinearObject>& b,
                                      double t, double distance) {
  return BaselineIntersectImpl(a, b, t, distance);
}

std::vector<IdPair> BaselineIntersect(
    const std::vector<AcceleratingObject>& a,
    const std::vector<LinearObject>& b, double t, double distance) {
  return BaselineIntersectImpl(a, b, t, distance);
}

std::vector<IdPair> TprIntersect(const std::vector<LinearObject>& a,
                                 const TprTree& b_tree, double t,
                                 double distance) {
  std::vector<IdPair> out;
  std::vector<uint32_t> hits;
  for (size_t i = 0; i < a.size(); ++i) {
    hits.clear();
    b_tree.RangeQuery(a[i].At(t), distance, t, &hits);
    for (uint32_t j : hits) {
      out.emplace_back(static_cast<uint32_t>(i), j);
    }
  }
  return out;
}

Result<PairIntersectionIndex> PairIntersectionIndex::BuildLinear(
    const std::vector<LinearObject>& a, const std::vector<LinearObject>& b,
    const std::vector<double>& time_instants, const IndexSetOptions& options) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("object sets must be non-empty");
  }
  if (time_instants.empty()) {
    return Status::InvalidArgument("at least one time instant is required");
  }
  PhiMatrix phi(LinearPairWorkload::kFeatureDim);
  phi.Reserve(a.size() * b.size());
  double row[LinearPairWorkload::kFeatureDim];
  for (const LinearObject& oa : a) {
    for (const LinearObject& ob : b) {
      LinearPairWorkload::PairFeatures(oa, ob, row);
      phi.AppendRow(row);
    }
  }
  std::vector<std::vector<double>> normals;
  normals.reserve(time_instants.size());
  for (double t : time_instants) {
    normals.push_back(LinearPairWorkload::IndexNormalAt(t));
  }
  PLANAR_ASSIGN_OR_RETURN(
      PlanarIndexSet set,
      PlanarIndexSet::BuildWithNormals(
          std::move(phi), normals,
          Octant::First(LinearPairWorkload::kFeatureDim), options));
  return PairIntersectionIndex(std::move(set), b.size(),
                               /*accelerating=*/false);
}

Result<PairIntersectionIndex> PairIntersectionIndex::BuildAccelerating(
    const std::vector<AcceleratingObject>& a,
    const std::vector<LinearObject>& b,
    const std::vector<double>& time_instants, const IndexSetOptions& options) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("object sets must be non-empty");
  }
  if (time_instants.empty()) {
    return Status::InvalidArgument("at least one time instant is required");
  }
  PhiMatrix phi(AcceleratingPairWorkload::kFeatureDim);
  phi.Reserve(a.size() * b.size());
  double row[AcceleratingPairWorkload::kFeatureDim];
  for (const AcceleratingObject& oa : a) {
    for (const LinearObject& ob : b) {
      AcceleratingPairWorkload::PairFeatures(oa, ob, row);
      phi.AppendRow(row);
    }
  }
  std::vector<std::vector<double>> normals;
  normals.reserve(time_instants.size());
  for (double t : time_instants) {
    normals.push_back(AcceleratingPairWorkload::IndexNormalAt(t));
  }
  PLANAR_ASSIGN_OR_RETURN(
      PlanarIndexSet set,
      PlanarIndexSet::BuildWithNormals(
          std::move(phi), normals,
          Octant::First(AcceleratingPairWorkload::kFeatureDim), options));
  return PairIntersectionIndex(std::move(set), b.size(),
                               /*accelerating=*/true);
}

std::vector<IdPair> PairIntersectionIndex::Query(double t, double distance,
                                                 QueryStats* stats) const {
  const ScalarProductQuery q =
      accelerating_ ? AcceleratingPairWorkload::QueryAt(t, distance)
                    : LinearPairWorkload::QueryAt(t, distance);
  const InequalityResult result = set_.Inequality(q);
  AccumulateStats(stats, result.stats);
  std::vector<IdPair> out;
  out.reserve(result.ids.size());
  for (uint32_t pair_id : result.ids) {
    out.emplace_back(pair_id / b_size_, pair_id % b_size_);
  }
  return out;
}

Result<CircularIntersectionIndex> CircularIntersectionIndex::Build(
    const std::vector<LinearObject>& linears,
    const std::vector<double>& time_instants,
    const CircularIndexOptions& grid, const IndexSetOptions& options) {
  if (linears.empty()) {
    return Status::InvalidArgument("object set must be non-empty");
  }
  if (time_instants.empty()) {
    return Status::InvalidArgument("at least one time instant is required");
  }
  if (!(grid.radius_lo > 0.0) || grid.radius_hi < grid.radius_lo ||
      grid.radius_ratio <= 1.0) {
    return Status::InvalidArgument("invalid radius grid");
  }
  if (grid.num_angles < 4 || grid.num_angles % 4 != 0) {
    return Status::InvalidArgument(
        "num_angles must be a positive multiple of 4");
  }
  PhiMatrix phi(CircularLinearWorkload::kFeatureDim);
  phi.Reserve(linears.size());
  double row[CircularLinearWorkload::kFeatureDim];
  for (const LinearObject& o : linears) {
    CircularLinearWorkload::LinearFeatures(o, row);
    phi.AppendRow(row);
  }
  // Geometric radius grid covering [radius_lo, radius_hi].
  std::vector<double> radii;
  for (double r = grid.radius_lo; r < grid.radius_hi * grid.radius_ratio;
       r *= grid.radius_ratio) {
    radii.push_back(r);
  }
  // One template per (instant, radius, angle); templates span several
  // octants, so the set is seeded with the first and extended via
  // AddIndex. Order: instant-major, then radius, then angle (TemplateFor
  // relies on this layout).
  std::vector<std::pair<std::vector<double>, Octant>> all_templates;
  for (double t : time_instants) {
    auto templates =
        CircularLinearWorkload::IndexTemplates(t, radii, grid.num_angles);
    for (auto& tpl : templates) all_templates.push_back(std::move(tpl));
  }
  PLANAR_ASSIGN_OR_RETURN(
      PlanarIndexSet set,
      PlanarIndexSet::BuildWithNormals(std::move(phi),
                                       {all_templates[0].first},
                                       all_templates[0].second, options));
  for (size_t i = 1; i < all_templates.size(); ++i) {
    PLANAR_RETURN_IF_ERROR(
        set.AddIndex(all_templates[i].first, all_templates[i].second));
  }
  return CircularIntersectionIndex(std::move(set), linears, time_instants,
                                   radii, grid);
}

size_t CircularIntersectionIndex::TemplateFor(double t, double radius,
                                              double theta) const {
  // Nearest time instant.
  size_t ti = static_cast<size_t>(
      std::lower_bound(instants_.begin(), instants_.end(), t) -
      instants_.begin());
  if (ti == instants_.size()) {
    ti = instants_.size() - 1;
  } else if (ti > 0 && t - instants_[ti - 1] < instants_[ti] - t) {
    --ti;
  }
  // Nearest radius grid point (geometric grid -> nearest in log space).
  size_t ri = 0;
  if (radius > radii_.front()) {
    const double step = std::log(grid_.radius_ratio);
    ri = static_cast<size_t>(
        std::llround(std::log(radius / radii_.front()) / step));
    ri = std::min(ri, radii_.size() - 1);
  }
  // Angle bucket; bucket k spans [k, k+1) * 2 pi / K and its template
  // sits at the bucket center, so trigonometric signs agree inside the
  // bucket (K is a multiple of 4).
  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  double wrapped = std::fmod(theta, kTwoPi);
  if (wrapped < 0.0) wrapped += kTwoPi;
  size_t k = static_cast<size_t>(wrapped / kTwoPi *
                                 static_cast<double>(grid_.num_angles));
  k = std::min(k, grid_.num_angles - 1);
  return (ti * radii_.size() + ri) * grid_.num_angles + k;
}

std::vector<IdPair> CircularIntersectionIndex::Query(
    const std::vector<CircularObject>& circulars, double t, double distance,
    QueryStats* stats) const {
  std::vector<IdPair> out;
  const double limit = distance * distance;
  // Linear-object positions at t, computed once and shared by all
  // queries: the intermediate-interval candidates are then verified with
  // a plain 2D distance check instead of the generic d'=8 scalar product.
  std::vector<Position3> b_at(linears_.size());
  for (size_t j = 0; j < linears_.size(); ++j) b_at[j] = linears_[j].At(t);

  std::vector<uint32_t> candidates;
  for (size_t i = 0; i < circulars.size(); ++i) {
    const CircularObject& c = circulars[i];
    const ScalarProductQuery q =
        CircularLinearWorkload::QueryFor(c, t, distance);
    const NormalizedQuery norm = NormalizedQuery::From(q);
    const PlanarIndex& index =
        set_.index(TemplateFor(t, c.radius, c.omega * t + c.phase));
    if (!index.CanServe(norm)) {
      // Off-grid corner (e.g. off-center circles): the generic selection
      // path keeps the answer exact.
      const InequalityResult result = set_.Inequality(q);
      AccumulateStats(stats, result.stats);
      for (uint32_t j : result.ids) {
        out.emplace_back(static_cast<uint32_t>(i), j);
      }
      continue;
    }
    // q.b = distance^2 >= 0 and cmp is <=, so normalization never flips:
    // the accepted prefix is [0, smaller_end).
    const PlanarIndex::Intervals iv =
        std::move(index.ComputeIntervals(norm)).value();
    candidates.clear();
    index.CollectRange(0, iv.smaller_end, &candidates);
    for (uint32_t j : candidates) {
      out.emplace_back(static_cast<uint32_t>(i), j);
    }
    const Position3 pa = c.At(t);
    candidates.clear();
    index.CollectRange(iv.smaller_end, iv.larger_begin, &candidates);
    for (uint32_t j : candidates) {
      if (SquaredDistanceBetween(pa, b_at[j]) <= limit) {
        out.emplace_back(static_cast<uint32_t>(i), j);
      }
    }
    if (stats != nullptr) {
      stats->num_points += index.size();
      stats->accepted_directly += iv.smaller_end;
      stats->rejected_directly += index.size() - iv.larger_begin;
      stats->verified += iv.larger_begin - iv.smaller_end;
    }
  }
  if (stats != nullptr) stats->result_size += out.size();
  return out;
}

}  // namespace planar
