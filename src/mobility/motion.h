// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Moving-object motion models for the intersection experiments of
// Section 7.5.1: linear constant-velocity motion, circular motion with
// constant angular velocity, and linearly accelerated motion (in 2D or
// 3D as the workload requires).

#ifndef PLANAR_MOBILITY_MOTION_H_
#define PLANAR_MOBILITY_MOTION_H_

#include <array>
#include <cstddef>

namespace planar {

/// A 2D/3D position.
struct Position3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

/// Squared Euclidean distance between two positions.
double SquaredDistanceBetween(const Position3& a, const Position3& b);

/// An object moving on a straight line with constant velocity:
/// p(t) = p0 + u * t.
struct LinearObject {
  Position3 p0;
  Position3 u;  // velocity (units / min)

  Position3 At(double t) const {
    return {p0.x + u.x * t, p0.y + u.y * t, p0.z + u.z * t};
  }
};

/// An object moving on a circle of radius r around a center with constant
/// angular velocity omega (radians / min), starting at phase phi0:
/// p(t) = center + r * (cos(omega t + phi0), sin(omega t + phi0)).
struct CircularObject {
  Position3 center;
  double radius = 1.0;
  double omega = 0.1;  // rad / min
  double phase = 0.0;

  Position3 At(double t) const;
};

/// An object moving with constant acceleration:
/// p(t) = p0 + u t + 0.5 a t^2.
struct AcceleratingObject {
  Position3 p0;
  Position3 u;
  Position3 accel;

  Position3 At(double t) const {
    const double h = 0.5 * t * t;
    return {p0.x + u.x * t + accel.x * h, p0.y + u.y * t + accel.y * h,
            p0.z + u.z * t + accel.z * h};
  }
};

}  // namespace planar

#endif  // PLANAR_MOBILITY_MOTION_H_
