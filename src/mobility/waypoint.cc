// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "mobility/waypoint.h"

#include <algorithm>

#include "common/macros.h"

namespace planar {

WaypointObject::WaypointObject(std::vector<double> times,
                               std::vector<Position3> points)
    : times_(std::move(times)), points_(std::move(points)) {
  PLANAR_CHECK_GE(times_.size(), 2u);
  PLANAR_CHECK_EQ(times_.size(), points_.size());
  for (size_t i = 1; i < times_.size(); ++i) {
    PLANAR_CHECK_LT(times_[i - 1], times_[i]);
  }
}

size_t WaypointObject::SegmentAt(double t) const {
  const size_t upper = static_cast<size_t>(
      std::upper_bound(times_.begin(), times_.end(), t) - times_.begin());
  if (upper == 0) return 0;
  return std::min(upper - 1, segments() - 1);
}

LinearObject WaypointObject::SegmentObject(size_t i) const {
  PLANAR_CHECK_LT(i, segments());
  const double dt = times_[i + 1] - times_[i];
  const Position3& a = points_[i];
  const Position3& b = points_[i + 1];
  LinearObject object;
  object.u = {(b.x - a.x) / dt, (b.y - a.y) / dt, (b.z - a.z) / dt};
  // Anchor at t = 0 so LinearObject::At(t) uses absolute time.
  object.p0 = {a.x - object.u.x * times_[i], a.y - object.u.y * times_[i],
               a.z - object.u.z * times_[i]};
  return object;
}

Position3 WaypointObject::At(double t) const {
  return SegmentObject(SegmentAt(t)).At(t);
}

}  // namespace planar
