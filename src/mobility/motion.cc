// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "mobility/motion.h"

#include <cmath>

namespace planar {

double SquaredDistanceBetween(const Position3& a, const Position3& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = a.z - b.z;
  return dx * dx + dy * dy + dz * dz;
}

Position3 CircularObject::At(double t) const {
  const double angle = omega * t + phase;
  return {center.x + radius * std::cos(angle),
          center.y + radius * std::sin(angle), center.z};
}

}  // namespace planar
