// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Piecewise-linear (waypoint) motion. Classic moving-object indexes
// assume straight-line constant-velocity motion and must be updated
// whenever an object turns (the paper's Section 2 critique); a waypoint
// trajectory makes that concrete: within one segment the object IS a
// LinearObject, so the pair-feature machinery applies per segment, and a
// direction change is exactly one phi-row update (Section 4.4).

#ifndef PLANAR_MOBILITY_WAYPOINT_H_
#define PLANAR_MOBILITY_WAYPOINT_H_

#include <cstddef>
#include <vector>

#include "mobility/motion.h"

namespace planar {

/// An object following straight segments between timed waypoints and
/// continuing at the last segment's velocity after the final waypoint.
class WaypointObject {
 public:
  /// `times` strictly ascending, same length as `points`, length >= 2.
  WaypointObject(std::vector<double> times, std::vector<Position3> points);

  /// Position at time t (t < times.front() extrapolates the first
  /// segment backwards).
  Position3 At(double t) const;

  /// The segment index active at time t: the largest i with
  /// times[i] <= t, clamped to [0, segments() - 1].
  size_t SegmentAt(double t) const;

  /// Number of linear segments (waypoints - 1).
  size_t segments() const { return times_.size() - 1; }

  /// The equivalent constant-velocity object of segment i (valid for
  /// t in [times[i], times[i+1]], and beyond for the last segment).
  LinearObject SegmentObject(size_t i) const;

  /// Times at which the velocity changes (the index-update instants).
  const std::vector<double>& waypoint_times() const { return times_; }

 private:
  std::vector<double> times_;
  std::vector<Position3> points_;
};

}  // namespace planar

#endif  // PLANAR_MOBILITY_WAYPOINT_H_
