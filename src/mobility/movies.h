// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// MOVIES-style index rotation (Dittrich et al. [9], applied by the paper
// in Section 7.5.1): short-lived Planar indices are kept for a sliding
// window of anticipated time instants; as time advances, the oldest index
// is thrown away and a fresh one is built for the newest instant.

#ifndef PLANAR_MOBILITY_MOVIES_H_
#define PLANAR_MOBILITY_MOVIES_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "core/index_set.h"
#include "core/row_matrix.h"

namespace planar {

/// A sliding window of time-instant Planar indices over one phi matrix.
class TimeInstantIndexManager {
 public:
  /// Maps a time instant to the (first-octant, all-positive) index normal
  /// that is exactly parallel to queries at that instant.
  using NormalFn = std::function<std::vector<double>(double)>;

  /// Builds one index per instant (ascending order expected). Takes
  /// ownership of the matrix.
  static Result<TimeInstantIndexManager> Build(
      PhiMatrix phi, std::vector<double> instants, NormalFn normal_fn,
      const IndexSetOptions& options = IndexSetOptions());

  /// Slides the window: drops the oldest instant's index and builds one
  /// for `new_instant` (must exceed the newest held instant).
  Status Advance(double new_instant);

  /// Answers an inequality query with the best index in the window.
  InequalityResult Query(const ScalarProductQuery& q) const {
    return set_.Inequality(q);
  }

  /// The instants currently indexed, oldest first.
  const std::vector<double>& instants() const { return instants_; }

  /// The underlying index set.
  const PlanarIndexSet& set() const { return set_; }

 private:
  TimeInstantIndexManager(PlanarIndexSet set, std::vector<double> instants,
                          NormalFn normal_fn)
      : set_(std::move(set)),
        instants_(std::move(instants)),
        normal_fn_(std::move(normal_fn)) {}

  PlanarIndexSet set_;
  std::vector<double> instants_;
  NormalFn normal_fn_;
};

}  // namespace planar

#endif  // PLANAR_MOBILITY_MOVIES_H_
