// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Moving-object intersection finding (Section 7.5.1): object-set
// generators, the naive all-pairs baseline, the TPR/MBR-tree comparator,
// and Planar-index-based finders for the three workloads (linear,
// circular, accelerating).

#ifndef PLANAR_MOBILITY_INTERSECTION_H_
#define PLANAR_MOBILITY_INTERSECTION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/index_set.h"
#include "core/planar_index.h"
#include "mobility/motion.h"
#include "mobility/pair_features.h"
#include "mobility/tpr_tree.h"

namespace planar {

/// A matching (id in set A, id in set B) pair.
using IdPair = std::pair<uint32_t, uint32_t>;

/// Uniformly distributed linear movers in [0, space]^2 (or ^3) with speed
/// per axis uniform in +-[speed_lo, speed_hi] (paper: 0.1..1 mile/min).
std::vector<LinearObject> GenerateLinearObjects(size_t n, double space,
                                                double speed_lo,
                                                double speed_hi, bool use_z,
                                                Rng& rng);

/// Concentric circular movers (centers at the origin as in Figure 1):
/// radius uniform in [radius_lo, radius_hi] miles, angular velocity
/// uniform in [omega_lo_deg, omega_hi_deg] degrees/min, random phase.
std::vector<CircularObject> GenerateCircularObjects(size_t n,
                                                    double radius_lo,
                                                    double radius_hi,
                                                    double omega_lo_deg,
                                                    double omega_hi_deg,
                                                    Rng& rng);

/// Accelerating movers in [0, space]^3: initial speed per axis
/// +-[speed_lo, speed_hi] mile/min, acceleration per axis
/// +-[accel_lo, accel_hi] mile/min^2.
std::vector<AcceleratingObject> GenerateAcceleratingObjects(
    size_t n, double space, double speed_lo, double speed_hi,
    double accel_lo, double accel_hi, Rng& rng);

/// Naive baselines: evaluate the distance of every (a, b) pair at time t
/// and keep pairs within `distance`.
std::vector<IdPair> BaselineIntersect(const std::vector<LinearObject>& a,
                                      const std::vector<LinearObject>& b,
                                      double t, double distance);
std::vector<IdPair> BaselineIntersect(const std::vector<CircularObject>& a,
                                      const std::vector<LinearObject>& b,
                                      double t, double distance);
std::vector<IdPair> BaselineIntersect(
    const std::vector<AcceleratingObject>& a,
    const std::vector<LinearObject>& b, double t, double distance);

/// MBR/TPR-tree comparator for the linear workload: one range query per
/// object of set A against the tree over set B.
std::vector<IdPair> TprIntersect(const std::vector<LinearObject>& a,
                                 const TprTree& b_tree, double t,
                                 double distance);

/// Planar-index intersection finder for pair-feature workloads (linear x
/// linear and accelerating x linear): the |A| x |B| pair feature matrix is
/// indexed once with one exactly-parallel index per anticipated time
/// instant (the MOVIES-style scheme of Section 7.5.1); a query at any
/// t >= 0 picks the best index.
class PairIntersectionIndex {
 public:
  /// Builds over linear x linear pairs (d' = 3).
  static Result<PairIntersectionIndex> BuildLinear(
      const std::vector<LinearObject>& a, const std::vector<LinearObject>& b,
      const std::vector<double>& time_instants,
      const IndexSetOptions& options = IndexSetOptions());

  /// Builds over accelerating x linear pairs (d' = 5).
  static Result<PairIntersectionIndex> BuildAccelerating(
      const std::vector<AcceleratingObject>& a,
      const std::vector<LinearObject>& b,
      const std::vector<double>& time_instants,
      const IndexSetOptions& options = IndexSetOptions());

  /// All pairs within `distance` at time t. Per-query statistics are
  /// accumulated into `stats` when non-null.
  std::vector<IdPair> Query(double t, double distance,
                            QueryStats* stats = nullptr) const;

  /// The underlying index set (diagnostics / memory accounting).
  const PlanarIndexSet& set() const { return set_; }

 private:
  PairIntersectionIndex(PlanarIndexSet set, size_t b_size, bool accelerating)
      : set_(std::move(set)), b_size_(b_size), accelerating_(accelerating) {}

  PlanarIndexSet set_;
  size_t b_size_;
  bool accelerating_;
};

/// Grid resolution for the circular-workload index templates: one Planar
/// index per (time instant, radius grid point, angle bucket).
struct CircularIndexOptions {
  /// Radius domain of the circular movers; grid points are geometric with
  /// the given ratio.
  double radius_lo = 1.0;
  double radius_hi = 100.0;
  double radius_ratio = 1.25;
  /// Angle buckets per full circle (multiple of 4 so bucket boundaries
  /// align with the trigonometric sign changes).
  size_t num_angles = 16;
};

/// Planar-index intersection finder for the circular x linear workload:
/// the |B| linear objects are indexed once (d' = 8) and every circular
/// object issues one query per time instant. The query parameters depend
/// on the object's (radius, angle at t), so — unlike the
/// time-instant-only workloads — a grid of templates is kept and the
/// serving index is picked directly from (t, r, theta) in O(1) (a
/// workload-aware specialization of the paper's O(r d') selection).
class CircularIntersectionIndex {
 public:
  static Result<CircularIntersectionIndex> Build(
      const std::vector<LinearObject>& linears,
      const std::vector<double>& time_instants,
      const CircularIndexOptions& grid = CircularIndexOptions(),
      const IndexSetOptions& options = IndexSetOptions());

  /// All (circular, linear) pairs within `distance` at time t.
  /// `stats` (when non-null) accumulates the per-query statistics over
  /// all |circulars| queries.
  std::vector<IdPair> Query(const std::vector<CircularObject>& circulars,
                            double t, double distance,
                            QueryStats* stats = nullptr) const;

  const PlanarIndexSet& set() const { return set_; }

 private:
  CircularIntersectionIndex(PlanarIndexSet set,
                            std::vector<LinearObject> linears,
                            std::vector<double> instants,
                            std::vector<double> radii,
                            CircularIndexOptions grid)
      : set_(std::move(set)),
        linears_(std::move(linears)),
        instants_(std::move(instants)),
        radii_(std::move(radii)),
        grid_(grid) {}

  /// The grid index serving a (t, radius, angle) query.
  size_t TemplateFor(double t, double radius, double theta) const;

  PlanarIndexSet set_;
  std::vector<LinearObject> linears_;
  std::vector<double> instants_;
  std::vector<double> radii_;
  CircularIndexOptions grid_;
};

}  // namespace planar

#endif  // PLANAR_MOBILITY_INTERSECTION_H_
