// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// A time-parameterized R-tree over linear constant-velocity objects — the
// stand-in for the continuous-intersection MBR-tree of Zhang et al. [33]
// that the paper compares against in Figure 14(a). Each node stores a
// position MBR at reference time 0 plus a velocity MBR; the node's spatial
// extent at future time t >= 0 is
//
//   [min_pos + min_vel * t,  max_pos + max_vel * t]   per axis,
//
// which conservatively contains every enclosed object at time t. Like
// [33] (and the TPR-tree it improves on), it only supports straight-line
// constant-velocity motion — which is precisely the limitation the Planar
// index removes.

#ifndef PLANAR_MOBILITY_TPR_TREE_H_
#define PLANAR_MOBILITY_TPR_TREE_H_

#include <cstdint>
#include <vector>

#include "mobility/motion.h"

namespace planar {

/// STR-bulk-loaded time-parameterized R-tree (2D or 3D).
class TprTree {
 public:
  /// Builds over `objects` (indexed by their position in the vector).
  /// `leaf_capacity` objects per leaf; `use_z` enables the third axis.
  explicit TprTree(const std::vector<LinearObject>& objects,
                   size_t leaf_capacity = 32, bool use_z = false);

  /// Appends to `out` the ids of all objects within `radius` of `center`
  /// at time t >= 0 (exact: candidates from the tree are verified against
  /// the true object motion).
  void RangeQuery(const Position3& center, double radius, double t,
                  std::vector<uint32_t>* out) const;

  /// Number of tree nodes (diagnostics).
  size_t node_count() const { return nodes_.size(); }

  /// Number of indexed objects.
  size_t size() const { return objects_.size(); }

  /// Heap footprint in bytes.
  size_t MemoryUsage() const;

 private:
  struct Bounds {
    double pos_min[3];
    double pos_max[3];
    double vel_min[3];
    double vel_max[3];
  };
  struct Node {
    Bounds bounds;
    // Leaf: [first, last) indexes into object_ids_. Internal: children.
    uint32_t first = 0;
    uint32_t last = 0;
    std::vector<uint32_t> children;
    bool is_leaf = true;
  };

  static Bounds BoundsOf(const LinearObject& o, bool use_z);
  static Bounds Merge(const Bounds& a, const Bounds& b);
  bool Intersects(const Bounds& b, const Position3& center, double radius,
                  double t) const;
  void Query(uint32_t node, const Position3& center, double radius, double t,
             std::vector<uint32_t>* out) const;

  std::vector<LinearObject> objects_;
  std::vector<uint32_t> object_ids_;  // leaf-ordered ids
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  size_t dims_ = 2;
};

}  // namespace planar

#endif  // PLANAR_MOBILITY_TPR_TREE_H_
