// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "mobility/movies.h"

#include <utility>

#include "common/macros.h"

namespace planar {

Result<TimeInstantIndexManager> TimeInstantIndexManager::Build(
    PhiMatrix phi, std::vector<double> instants, NormalFn normal_fn,
    const IndexSetOptions& options) {
  if (instants.empty()) {
    return Status::InvalidArgument("at least one time instant is required");
  }
  for (size_t i = 1; i < instants.size(); ++i) {
    if (instants[i] <= instants[i - 1]) {
      return Status::InvalidArgument("instants must be strictly ascending");
    }
  }
  const size_t dim = phi.dim();
  std::vector<std::vector<double>> normals;
  normals.reserve(instants.size());
  for (double t : instants) {
    std::vector<double> normal = normal_fn(t);
    if (normal.size() != dim) {
      return Status::InvalidArgument("normal dimensionality mismatch");
    }
    normals.push_back(std::move(normal));
  }
  PLANAR_ASSIGN_OR_RETURN(PlanarIndexSet set,
                          PlanarIndexSet::BuildWithNormals(
                              std::move(phi), normals, Octant::First(dim),
                              options));
  return TimeInstantIndexManager(std::move(set), std::move(instants),
                                 std::move(normal_fn));
}

Status TimeInstantIndexManager::Advance(double new_instant) {
  if (new_instant <= instants_.back()) {
    return Status::InvalidArgument(
        "new instant must exceed the newest indexed instant");
  }
  // Throw the oldest index away (MOVIES), then index the new instant.
  PLANAR_RETURN_IF_ERROR(set_.RemoveIndex(0));
  instants_.erase(instants_.begin());
  PLANAR_RETURN_IF_ERROR(
      set_.AddIndex(normal_fn_(new_instant), Octant::First(set_.phi().dim())));
  instants_.push_back(new_instant);
  return Status::OK();
}

}  // namespace planar
