// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "mobility/pair_features.h"

#include <cmath>

#include "common/macros.h"

namespace planar {

namespace {

double Dot3(const Position3& a, const Position3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

Position3 Minus(const Position3& a, const Position3& b) {
  return {a.x - b.x, a.y - b.y, a.z - b.z};
}

}  // namespace

void LinearPairWorkload::PairFeatures(const LinearObject& a,
                                      const LinearObject& b, double* out) {
  const Position3 d0 = Minus(a.p0, b.p0);
  const Position3 du = Minus(a.u, b.u);
  out[0] = Dot3(d0, d0);
  out[1] = 2.0 * Dot3(d0, du);
  out[2] = Dot3(du, du);
}

ScalarProductQuery LinearPairWorkload::QueryAt(double t, double distance) {
  PLANAR_CHECK_GE(t, 0.0);
  ScalarProductQuery q;
  q.a = {1.0, t, t * t};
  q.b = distance * distance;
  q.cmp = Comparison::kLessEqual;
  return q;
}

std::vector<double> LinearPairWorkload::IndexNormalAt(double t) {
  PLANAR_CHECK_GT(t, 0.0);
  return {1.0, t, t * t};
}

void AcceleratingPairWorkload::PairFeatures(const AcceleratingObject& a,
                                            const LinearObject& b,
                                            double* out) {
  const Position3 d0 = Minus(a.p0, b.p0);
  const Position3 du = Minus(a.u, b.u);
  const Position3& w = a.accel;
  out[0] = Dot3(d0, d0);
  out[1] = 2.0 * Dot3(d0, du);
  out[2] = Dot3(du, du) + Dot3(d0, w);
  out[3] = Dot3(du, w);
  out[4] = 0.25 * Dot3(w, w);
}

ScalarProductQuery AcceleratingPairWorkload::QueryAt(double t,
                                                     double distance) {
  PLANAR_CHECK_GE(t, 0.0);
  const double t2 = t * t;
  ScalarProductQuery q;
  q.a = {1.0, t, t2, t2 * t, t2 * t2};
  q.b = distance * distance;
  q.cmp = Comparison::kLessEqual;
  return q;
}

std::vector<double> AcceleratingPairWorkload::IndexNormalAt(double t) {
  PLANAR_CHECK_GT(t, 0.0);
  const double t2 = t * t;
  return {1.0, t, t2, t2 * t, t2 * t2};
}

void CircularLinearWorkload::LinearFeatures(const LinearObject& b,
                                            double* out) {
  const Position3& q0 = b.p0;
  const Position3& v = b.u;
  out[0] = 1.0;
  out[1] = Dot3(q0, q0);
  out[2] = Dot3(q0, v);
  out[3] = Dot3(v, v);
  out[4] = q0.x;
  out[5] = q0.y;
  out[6] = v.x;
  out[7] = v.y;
}

ScalarProductQuery CircularLinearWorkload::QueryFor(const CircularObject& a,
                                                    double t,
                                                    double distance) {
  // Position of the circular object at t: c + r e(theta).
  const double theta = a.omega * t + a.phase;
  const double ex = std::cos(theta);
  const double ey = std::sin(theta);
  const double cx = a.center.x;
  const double cy = a.center.y;
  const double r = a.radius;
  // dist^2 = |q0 + v t - c - r e|^2, expanded over the linear-object
  // features (1, |q0|^2, q0.v, |v|^2, q0_x, q0_y, v_x, v_y).
  ScalarProductQuery q;
  q.a = {cx * cx + cy * cy + r * r + 2.0 * r * (ex * cx + ey * cy),
         1.0,
         2.0 * t,
         t * t,
         -2.0 * (cx + r * ex),
         -2.0 * (cy + r * ey),
         -2.0 * t * (cx + r * ex),
         -2.0 * t * (cy + r * ey)};
  q.b = distance * distance;
  q.cmp = Comparison::kLessEqual;
  return q;
}

std::vector<std::pair<std::vector<double>, Octant>>
CircularLinearWorkload::IndexTemplates(double t,
                                       const std::vector<double>& radii,
                                       size_t num_angles) {
  PLANAR_CHECK_GT(t, 0.0);
  PLANAR_CHECK_GE(num_angles, 4u);
  // With concentric circles (center at the origin) the parameters are
  //   (r^2, 1, 2t, t^2, -2 r e_x, -2 r e_y, -2 t r e_x, -2 t r e_y)
  // with e = (cos theta, sin theta). Templates discretize (r, theta):
  // angles are offset by half a step so none sits on an axis (which would
  // produce a zero normal entry).
  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  std::vector<std::pair<std::vector<double>, Octant>> templates;
  for (double r : radii) {
    PLANAR_CHECK_GT(r, 0.0);
    for (size_t k = 0; k < num_angles; ++k) {
      const double theta = kTwoPi * (static_cast<double>(k) + 0.5) /
                           static_cast<double>(num_angles);
      const double ex = std::cos(theta);
      const double ey = std::sin(theta);
      std::vector<double> signed_normal = {r * r,
                                           1.0,
                                           2.0 * t,
                                           t * t,
                                           -2.0 * r * ex,
                                           -2.0 * r * ey,
                                           -2.0 * t * r * ex,
                                           -2.0 * t * r * ey};
      const Octant octant = Octant::FromNormal(signed_normal);
      std::vector<double> mirrored(signed_normal.size());
      for (size_t i = 0; i < signed_normal.size(); ++i) {
        mirrored[i] = std::fabs(signed_normal[i]);
      }
      templates.emplace_back(std::move(mirrored), octant);
    }
  }
  return templates;
}

std::vector<std::pair<std::vector<double>, Octant>>
CircularLinearWorkload::IndexTemplates(double t, double typical_radius) {
  PLANAR_CHECK_GT(typical_radius, 0.0);
  return IndexTemplates(
      t, {0.6 * typical_radius, 1.4 * typical_radius}, /*num_angles=*/8);
}

}  // namespace planar
