// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// IngestManager: the high-rate write path over MVCC catalog snapshots —
// the LSM-style counterpart to the paper's static build. Each managed
// catalog entry gets a shard: an append-only DeltaBuffer receiving new
// phi rows, and a background merger thread that, once the delta passes a
// threshold (or on Flush/Stop), clones the installed set, folds the
// drained rows in with one batched backward merge per index
// (PlanarIndexSet::AppendRows, the UpdateBatch machinery), and publishes
// the result atomically through Catalog::Install — readers are never
// blocked and never see a partial merge.
//
// Reads overlay the delta: a query pins an epoch — a {base snapshot,
// delta} pair swapped atomically at merge install — and scan-verifies
// the not-yet-merged rows with the same kernels the base paths use
// (core/scan.h ScanRows*), so the ids returned are exactly the ids a
// quiesced from-scratch Rebuild over the same rows would return
// (machine-checked by tests/ingest_test.cc, under tsan by
// tests/ingest_stress_test.cc).
//
// Row ids are stable across merges by construction: delta row j of an
// epoch has global id base->size() + j, and a merge of the first k delta
// rows produces a base of size base->size() + k with the surviving tail
// renumbered j - k — the same global ids.

#ifndef PLANAR_INGEST_INGEST_H_
#define PLANAR_INGEST_INGEST_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "engine/catalog.h"
#include "engine/ingest_hook.h"
#include "ingest/delta_buffer.h"

namespace planar {

class EngineMetrics;

/// Ingest sizing knobs.
struct IngestOptions {
  /// Admission-control bound: rows one delta holds before Append sheds
  /// with kResourceExhausted. Also the buffer's preallocated footprint
  /// (delta_capacity * dim doubles per managed target).
  size_t delta_capacity = 65536;
  /// The merger drains once the delta reaches this many rows. Lower =
  /// smaller query-time delta scans but more frequent O(n) merges; see
  /// README "Ingest" for tuning guidance.
  size_t merge_threshold = 8192;
};

/// The engine-facing write path (see engine/ingest_hook.h for the
/// interface contract). Thread-safe; one background merger per managed
/// target, joined by Stop() (never detached).
class IngestManager final : public IngestBackend {
 public:
  explicit IngestManager(Catalog* catalog,
                         const IngestOptions& options = IngestOptions());
  /// Stop()s, joining every merger after its final drain.
  ~IngestManager() override;

  IngestManager(const IngestManager&) = delete;
  IngestManager& operator=(const IngestManager&) = delete;

  /// Puts the existing catalog entry `target` under ingest management
  /// and starts its merger. Fails with kNotFound (no such entry),
  /// kFailedPrecondition (an index uses the B+-tree backend, which the
  /// merge clone cannot copy — or `target` is already managed), or
  /// kUnavailable (after Stop()).
  Status Manage(const std::string& target) PLANAR_EXCLUDES(mu_);

  /// Forces a merge of everything appended before the call and waits
  /// until it is installed (kDeadlineExceeded if `deadline` expires
  /// first, kUnavailable if Stop() intervenes). Queries after an OK
  /// Flush see every prior append in the base snapshot.
  Status Flush(const std::string& target,
               const Deadline& deadline = Deadline::Infinite())
      PLANAR_EXCLUDES(mu_);

  /// Stops every merger: each drains its remaining delta into one final
  /// install, then exits and is joined. Subsequent Append/Manage fail
  /// with kUnavailable; queries keep serving (delta now empty).
  /// Idempotent. Call before destroying the Catalog or detaching from
  /// the Engine.
  void Stop() PLANAR_EXCLUDES(mu_);

  // IngestBackend:
  bool Manages(const std::string& target) const override PLANAR_EXCLUDES(mu_);
  Result<uint32_t> Append(const std::string& target,
                          const std::vector<double>& rows) override
      PLANAR_EXCLUDES(mu_);
  bool Inequality(const std::string& target, const ScalarProductQuery& q,
                  const Deadline& deadline,
                  Result<InequalityResult>* out) const override
      PLANAR_EXCLUDES(mu_);
  bool TopK(const std::string& target, const ScalarProductQuery& q, size_t k,
            const Deadline& deadline, Result<TopKResult>* out) const override
      PLANAR_EXCLUDES(mu_);
  bool BatchInequality(const std::string& target,
                       std::span<const ScalarProductQuery> queries,
                       std::span<const Deadline> deadlines,
                       BatchExecStats* exec_stats,
                       std::vector<Result<InequalityResult>>* out)
      const override PLANAR_EXCLUDES(mu_);
  bool Count(const std::string& target, const ScalarProductQuery& q,
             const CountTolerance& tolerance, const Deadline& deadline,
             Result<CountResult>* out) const override PLANAR_EXCLUDES(mu_);
  bool Aggregate(const std::string& target, const ScalarProductQuery& q,
                 const CountTolerance& tolerance, const Deadline& deadline,
                 Result<AggregateResult>* out) const override
      PLANAR_EXCLUDES(mu_);
  void BindMetrics(EngineMetrics* metrics) override;
  Gauges gauges() const override PLANAR_EXCLUDES(mu_);

  const IngestOptions& options() const { return options_; }

 private:
  /// One epoch: the installed base snapshot plus the delta rows appended
  /// on top of it. Swapped as a unit at merge install, so a reader that
  /// pinned a view always sees a consistent (base, delta) pair.
  struct View {
    Catalog::SetPtr base;
    std::shared_ptr<const DeltaBuffer> delta;
  };

  struct Shard {
    explicit Shard(std::string target) : name(std::move(target)) {}

    const std::string name;
    size_t dim = 0;
    mutable Mutex mu{kLockRankIngestDelta};
    /// Merger wake-ups: delta past threshold, flush requested, or stop.
    CondVar wake;
    /// Signaled after every install; Flush waits on it.
    CondVar merged;
    std::shared_ptr<const View> view PLANAR_GUARDED_BY(mu);
    /// Writer handle to the same buffer view->delta points at.
    std::shared_ptr<DeltaBuffer> delta PLANAR_GUARDED_BY(mu);
    /// Monotone row counters; Flush waits for merged_total to catch up
    /// to the appended_total it observed.
    uint64_t appended_total PLANAR_GUARDED_BY(mu) = 0;
    uint64_t merged_total PLANAR_GUARDED_BY(mu) = 0;
    bool flush_requested PLANAR_GUARDED_BY(mu) = false;
    bool stop PLANAR_GUARDED_BY(mu) = false;
    // threads-ok: dedicated long-lived merger, one per managed target.
    // It blocks on the shard's CondVar between merges, so parking it in
    // the shared ThreadPool would pin a pool slot for the manager's
    // whole lifetime and starve query fan-outs.
    std::thread merger;
  };

  /// Registry lookup; the returned shard is stable (shards are only
  /// destroyed by the destructor, after every merger joined).
  Shard* FindShard(const std::string& target) const PLANAR_EXCLUDES(mu_);

  /// Pins the target's current epoch, or nullptr when unmanaged.
  std::shared_ptr<const View> PinView(const std::string& target) const
      PLANAR_EXCLUDES(mu_);

  void MergerLoop(Shard* shard);

  Catalog* const catalog_;
  const IngestOptions options_;
  mutable Mutex mu_{kLockRankIngestManager};
  std::map<std::string, std::unique_ptr<Shard>> shards_ PLANAR_GUARDED_BY(mu_);
  std::atomic<EngineMetrics*> metrics_{nullptr};
  std::atomic<uint64_t> merges_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace planar

#endif  // PLANAR_INGEST_INGEST_H_
