// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// DeltaBuffer: the append-only row store behind one ingest-managed
// catalog entry. Writers (serialized by the owning shard's Mutex) copy
// whole phi rows into preallocated storage and publish the new row count
// with a release store; readers pin an epoch (shard ReaderMutexLock),
// acquire-load the count once, and then scan rows [0, count) with no
// lock at all — published rows are immutable and the storage never
// reallocates, so the acquire pairs with the writer's release to make
// every published row's bytes visible. Capacity doubles as admission
// control: a full buffer sheds (Append returns false) rather than
// blocking the writer behind the background merge.

#ifndef PLANAR_INGEST_DELTA_BUFFER_H_
#define PLANAR_INGEST_DELTA_BUFFER_H_

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "core/row_matrix.h"

namespace planar {

/// Fixed-capacity append-only store of row-major phi rows.
class DeltaBuffer {
 public:
  /// Storage for up to `capacity` rows of width `dim`, allocated once.
  DeltaBuffer(size_t dim, size_t capacity)
      : dim_(dim), capacity_(capacity), rows_(dim * capacity) {
    PLANAR_CHECK(dim > 0);
  }

  DeltaBuffer(const DeltaBuffer&) = delete;
  DeltaBuffer& operator=(const DeltaBuffer&) = delete;

  /// Materializes an f32 mirror of every future row plus grow-only
  /// per-column |value| envelopes, so delta scans can run the same
  /// band-disciplined mixed-precision verification as the base set
  /// (core/scan.h ScanRowsInequalityMixed with a plan from
  /// MakeMixedPlanWithEnvelope). Writer side; must be called before the
  /// first Append. The ingest manager enables it iff the base set's phi
  /// matrix carries a mirror, so the whole overlay follows one
  /// precision discipline.
  void EnableF32Mirror() {
    // relaxed-ok: writer-side setup before any row is published; no
    // reader can hold a row yet (size_ is still 0).
    PLANAR_CHECK(size_.load(std::memory_order_relaxed) == 0);
    rows32_.resize(dim_ * capacity_);
    column_abs_max_ = std::make_unique<std::atomic<double>[]>(dim_);
    for (size_t i = 0; i < dim_; ++i) {
      // relaxed-ok: see above — published to readers by the first
      // Append's release store.
      column_abs_max_[i].store(0.0, std::memory_order_relaxed);
    }
  }

  /// Copies `count` rows and publishes them. Returns false (appending
  /// nothing) when the rows do not all fit. Writer side: callers must
  /// serialize Append externally (the ingest shard holds its Mutex).
  bool Append(const double* rows, size_t count) {
    // relaxed-ok: the externally-serialized writer is the only thread
    // that stores size_, so its own relaxed load always sees the latest
    // count; readers synchronize on the release store below instead.
    const size_t current = size_.load(std::memory_order_relaxed);
    if (count > capacity_ - current) return false;
    if (count == 0) return true;
    std::memcpy(rows_.data() + current * dim_, rows,
                count * dim_ * sizeof(double));
    if (!rows32_.empty()) {
      // Mirror and envelopes are written before the release store of
      // size_, so a reader that acquire-loads size() sees both for every
      // published row. The envelopes only grow, and a reader racing a
      // later append can only observe a *larger* bound — which merely
      // widens the mixed-precision band, never unsounds it.
      // f32-ok: sanctioned delta mirror, verified through the band
      // discipline of core/mixed.h.
      float* mirror = rows32_.data() + current * dim_;
      for (size_t i = 0; i < count * dim_; ++i) {
        mirror[i] = FloatMirrorValue(rows[i]);
        const double mag = std::fabs(rows[i]);
        // relaxed-ok: single serialized writer; publication to readers
        // rides the release store of size_ below (see the comment
        // above), so no ordering on the envelope store itself is
        // needed.
        if (mag > column_abs_max_[i % dim_].load(std::memory_order_relaxed)) {
          column_abs_max_[i % dim_].store(mag, std::memory_order_relaxed);
        }
      }
    }
    size_.store(current + count, std::memory_order_release);
    return true;
  }

  /// Published row count. The acquire pairs with Append's release: rows
  /// [0, size()) are fully visible to the calling thread.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Row-major storage; valid for rows [0, size()) after a size() read.
  const double* data() const { return rows_.data(); }

  size_t dim() const { return dim_; }
  size_t capacity() const { return capacity_; }

  /// True when EnableF32Mirror was called.
  bool has_f32_mirror() const { return !rows32_.empty(); }

  /// Row-major f32 mirror; like data(), valid for rows [0, size())
  /// after a size() read. Null row pointer semantics match RowMatrix:
  /// callers must check has_f32_mirror().
  // f32-ok: sanctioned delta mirror (see EnableF32Mirror).
  const float* f32_data() const {
    return rows32_.empty() ? nullptr : rows32_.data();
  }

  /// Grow-only |value| envelope of column i over the published rows.
  /// Reader side: call after a size() read; may observe a larger bound
  /// from a concurrent append, which is safe (the mixed band only
  /// widens). Only valid with the mirror enabled.
  double column_abs_max(size_t i) const {
    // relaxed-ok: the acquire in size() already ordered the envelope
    // stores for the rows being scanned; a racing later store only
    // grows the bound (see Append).
    return column_abs_max_[i].load(std::memory_order_relaxed);
  }

 private:
  const size_t dim_;
  const size_t capacity_;
  std::vector<double> rows_;  // capacity_ * dim_ doubles, never reallocated
  // f32-ok: sanctioned delta mirror (see EnableF32Mirror).
  std::vector<float> rows32_;  // empty, or capacity_ * dim_ floats
  /// Per-column |value| envelopes (see column_abs_max); allocated by
  /// EnableF32Mirror.
  std::unique_ptr<std::atomic<double>[]> column_abs_max_;
  std::atomic<size_t> size_{0};
};

}  // namespace planar

#endif  // PLANAR_INGEST_DELTA_BUFFER_H_
