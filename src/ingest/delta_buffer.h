// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// DeltaBuffer: the append-only row store behind one ingest-managed
// catalog entry. Writers (serialized by the owning shard's Mutex) copy
// whole phi rows into preallocated storage and publish the new row count
// with a release store; readers pin an epoch (shard ReaderMutexLock),
// acquire-load the count once, and then scan rows [0, count) with no
// lock at all — published rows are immutable and the storage never
// reallocates, so the acquire pairs with the writer's release to make
// every published row's bytes visible. Capacity doubles as admission
// control: a full buffer sheds (Append returns false) rather than
// blocking the writer behind the background merge.

#ifndef PLANAR_INGEST_DELTA_BUFFER_H_
#define PLANAR_INGEST_DELTA_BUFFER_H_

#include <atomic>
#include <cstddef>
#include <cstring>
#include <vector>

#include "common/macros.h"

namespace planar {

/// Fixed-capacity append-only store of row-major phi rows.
class DeltaBuffer {
 public:
  /// Storage for up to `capacity` rows of width `dim`, allocated once.
  DeltaBuffer(size_t dim, size_t capacity)
      : dim_(dim), capacity_(capacity), rows_(dim * capacity) {
    PLANAR_CHECK(dim > 0);
  }

  DeltaBuffer(const DeltaBuffer&) = delete;
  DeltaBuffer& operator=(const DeltaBuffer&) = delete;

  /// Copies `count` rows and publishes them. Returns false (appending
  /// nothing) when the rows do not all fit. Writer side: callers must
  /// serialize Append externally (the ingest shard holds its Mutex).
  bool Append(const double* rows, size_t count) {
    // relaxed-ok: the externally-serialized writer is the only thread
    // that stores size_, so its own relaxed load always sees the latest
    // count; readers synchronize on the release store below instead.
    const size_t current = size_.load(std::memory_order_relaxed);
    if (count > capacity_ - current) return false;
    if (count == 0) return true;
    std::memcpy(rows_.data() + current * dim_, rows,
                count * dim_ * sizeof(double));
    size_.store(current + count, std::memory_order_release);
    return true;
  }

  /// Published row count. The acquire pairs with Append's release: rows
  /// [0, size()) are fully visible to the calling thread.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Row-major storage; valid for rows [0, size()) after a size() read.
  const double* data() const { return rows_.data(); }

  size_t dim() const { return dim_; }
  size_t capacity() const { return capacity_; }

 private:
  const size_t dim_;
  const size_t capacity_;
  std::vector<double> rows_;  // capacity_ * dim_ doubles, never reallocated
  std::atomic<size_t> size_{0};
};

}  // namespace planar

#endif  // PLANAR_INGEST_DELTA_BUFFER_H_
