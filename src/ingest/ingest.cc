// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "ingest/ingest.h"

#include <utility>

#include "common/macros.h"
#include "common/timer.h"
#include "core/mixed.h"
#include "core/scan.h"
#include "core/topk.h"
#include "engine/metrics.h"

namespace planar {

namespace {

// Scan-verifies `delta_rows` published delta rows, routing through the
// mixed-precision band discipline when the delta carries an f32 mirror
// (the plan's envelope comes from the delta's grow-only column bounds,
// so every scanned row is covered). The appended ids are bit-identical
// either way — the band contract of core/mixed.h.
Result<size_t> ScanDeltaInequality(const DeltaBuffer& delta, size_t delta_rows,
                                   uint32_t id_offset,
                                   const ScalarProductQuery& q,
                                   const Deadline& deadline,
                                   std::vector<uint32_t>* out) {
  if (delta_rows == 0) return static_cast<size_t>(0);
  const size_t dim = delta.dim();
  if (delta.has_f32_mirror() && dim == q.a.size()) {
    std::vector<double> envelope(dim);
    for (size_t i = 0; i < dim; ++i) envelope[i] = delta.column_abs_max(i);
    const MixedQueryPlan plan = MakeMixedPlanWithEnvelope(
        q.a.data(), dim, q.b, q.cmp == Comparison::kLessEqual,
        envelope.data());
    if (plan.usable) {
      return ScanRowsInequalityMixed(delta.data(), delta.f32_data(), dim,
                                     delta_rows, id_offset, q, plan, deadline,
                                     out);
    }
  }
  return ScanRowsInequality(delta.data(), dim, delta_rows, id_offset, q,
                            deadline, out);
}

}  // namespace

IngestManager::IngestManager(Catalog* catalog, const IngestOptions& options)
    : catalog_(catalog), options_(options) {
  PLANAR_CHECK(catalog != nullptr);
  PLANAR_CHECK(options_.delta_capacity > 0);
  PLANAR_CHECK(options_.merge_threshold > 0);
  PLANAR_CHECK(options_.merge_threshold <= options_.delta_capacity);
}

IngestManager::~IngestManager() { Stop(); }

Status IngestManager::Manage(const std::string& target) {
  if (stopped_.load(std::memory_order_acquire)) {
    return Status::Unavailable("ingest manager is stopped");
  }
  const Catalog::SetPtr base = catalog_->Find(target);
  if (base == nullptr) {
    return Status::NotFound("no catalog entry named '" + target + "'");
  }
  for (size_t i = 0; i < base->num_indices(); ++i) {
    if (base->index(i).backend() == PlanarIndexOptions::Backend::kBTree) {
      return Status::FailedPrecondition(
          "ingest requires the sorted-array backend (the merge clone "
          "cannot copy the B+-tree node store)");
    }
  }
  auto shard = std::make_unique<Shard>(target);
  shard->dim = base->phi().dim();
  Shard* raw = shard.get();
  {
    MutexLock lock(&mu_);
    if (shards_.count(target) != 0) {
      return Status::FailedPrecondition("'" + target +
                                        "' is already ingest-managed");
    }
    {
      MutexLock shard_lock(&raw->mu);
      raw->delta =
          std::make_shared<DeltaBuffer>(raw->dim, options_.delta_capacity);
      // One precision discipline for the whole overlay: the delta
      // mirrors iff the base set's matrix does, so delta scans share
      // the base's mixed-precision band path.
      if (base->phi().f32_data() != nullptr) raw->delta->EnableF32Mirror();
      raw->view = std::make_shared<const View>(View{base, raw->delta});
    }
    // threads-ok: dedicated merger thread (see Shard::merger in
    // ingest.h); joined in Stop(), never pooled.
    raw->merger = std::thread([this, raw] { MergerLoop(raw); });
    shards_.emplace(target, std::move(shard));
  }
  return Status::OK();
}

IngestManager::Shard* IngestManager::FindShard(
    const std::string& target) const {
  ReaderMutexLock lock(&mu_);
  auto it = shards_.find(target);
  return it == shards_.end() ? nullptr : it->second.get();
}

std::shared_ptr<const IngestManager::View> IngestManager::PinView(
    const std::string& target) const {
  Shard* shard = FindShard(target);
  if (shard == nullptr) return nullptr;
  ReaderMutexLock epoch(&shard->mu);
  return shard->view;
}

bool IngestManager::Manages(const std::string& target) const {
  return FindShard(target) != nullptr;
}

Result<uint32_t> IngestManager::Append(const std::string& target,
                                       const std::vector<double>& rows) {
  Shard* shard = FindShard(target);
  if (shard == nullptr) {
    return Status::NotFound("'" + target + "' is not ingest-managed");
  }
  if (rows.empty() || rows.size() % shard->dim != 0) {
    return Status::InvalidArgument(
        "append payload must be a non-empty multiple of " +
        std::to_string(shard->dim) + " doubles (row-major phi rows)");
  }
  const size_t count = rows.size() / shard->dim;
  EngineMetrics* const metrics = metrics_.load(std::memory_order_acquire);
  MutexLock lock(&shard->mu);
  if (shard->stop) {
    return Status::Unavailable("ingest manager is stopped");
  }
  const uint32_t first =
      static_cast<uint32_t>(shard->view->base->size() + shard->delta->size());
  if (!shard->delta->Append(rows.data(), count)) {
    // Shed, never block: the caller retries after the merge the full
    // delta has already triggered.
    shard->wake.Signal();
    if (metrics != nullptr) metrics->OnAppendShed();
    return Status::ResourceExhausted(
        "delta for '" + target + "' is at capacity (" +
        std::to_string(shard->delta->capacity()) +
        " rows); merge in progress, retry");
  }
  shard->appended_total += count;
  if (shard->delta->size() >= options_.merge_threshold) {
    shard->wake.Signal();
  }
  if (metrics != nullptr) metrics->OnAppendedRows(count);
  return first;
}

bool IngestManager::Inequality(const std::string& target,
                               const ScalarProductQuery& q,
                               const Deadline& deadline,
                               Result<InequalityResult>* out) const {
  const std::shared_ptr<const View> view = PinView(target);
  if (view == nullptr) return false;
  const size_t delta_rows = view->delta->size();
  Result<InequalityResult> base = view->base->Inequality(q, deadline);
  if (!base.ok()) {
    *out = base.status();
    return true;
  }
  InequalityResult result = std::move(base).value();
  Result<size_t> appended = ScanDeltaInequality(
      *view->delta, delta_rows, static_cast<uint32_t>(view->base->size()), q,
      deadline, &result.ids);
  if (!appended.ok()) {
    *out = appended.status();
    return true;
  }
  result.stats.num_points += delta_rows;
  result.stats.verified += delta_rows;
  result.stats.result_size = result.ids.size();
  *out = std::move(result);
  return true;
}

bool IngestManager::TopK(const std::string& target,
                         const ScalarProductQuery& q, size_t k,
                         const Deadline& deadline,
                         Result<TopKResult>* out) const {
  const std::shared_ptr<const View> view = PinView(target);
  if (view == nullptr) return false;
  const size_t delta_rows = view->delta->size();
  // The base call also validates q and k; an error passes through
  // untouched, exactly as on the unmanaged path.
  Result<TopKResult> base = view->base->TopK(q, k, deadline);
  if (!base.ok()) {
    *out = base.status();
    return true;
  }
  TopKResult result = std::move(base).value();
  if (delta_rows > 0) {
    // Re-seeding a buffer with the base's k nearest and offering every
    // delta row reproduces the k nearest of the union: any point in the
    // merged top-k is either a delta row or already among the base's
    // top-k. TakeSorted's id tie-break keeps the order deterministic.
    TopKBuffer buffer(k);
    for (const Neighbor& neighbor : result.neighbors) {
      buffer.Insert(neighbor.id, neighbor.distance);
    }
    Status scanned = ScanRowsTopK(view->delta->data(), view->delta->dim(),
                                  delta_rows,
                                  static_cast<uint32_t>(view->base->size()), q,
                                  deadline, &buffer);
    if (!scanned.ok()) {
      *out = scanned;
      return true;
    }
    result.neighbors = buffer.TakeSorted();
    result.stats.num_points += delta_rows;
    result.stats.verified_intermediate += delta_rows;
  }
  *out = std::move(result);
  return true;
}

bool IngestManager::BatchInequality(
    const std::string& target, std::span<const ScalarProductQuery> queries,
    std::span<const Deadline> deadlines, BatchExecStats* exec_stats,
    std::vector<Result<InequalityResult>>* out) const {
  const std::shared_ptr<const View> view = PinView(target);
  if (view == nullptr) return false;
  const size_t delta_rows = view->delta->size();
  const uint32_t id_offset = static_cast<uint32_t>(view->base->size());
  *out = view->base->BatchInequality(queries, deadlines, exec_stats);
  for (size_t i = 0; i < out->size(); ++i) {
    Result<InequalityResult>& result = (*out)[i];
    if (!result.ok()) continue;
    const Deadline deadline = deadlines.empty() ? Deadline() : deadlines[i];
    Result<size_t> appended = ScanDeltaInequality(
        *view->delta, delta_rows, id_offset, queries[i], deadline,
        &result.value().ids);
    if (!appended.ok()) {
      result = appended.status();
      continue;
    }
    result.value().stats.num_points += delta_rows;
    result.value().stats.verified += delta_rows;
    result.value().stats.result_size = result.value().ids.size();
  }
  return true;
}

bool IngestManager::Count(const std::string& target,
                          const ScalarProductQuery& q,
                          const CountTolerance& tolerance,
                          const Deadline& deadline,
                          Result<CountResult>* out) const {
  const std::shared_ptr<const View> view = PinView(target);
  if (view == nullptr) return false;
  const size_t delta_rows = view->delta->size();
  Result<CountResult> base =
      view->base->CountInequality(q, tolerance, deadline);
  if (!base.ok()) {
    *out = base.status();
    return true;
  }
  CountResult result = std::move(base).value();
  if (delta_rows > 0) {
    // The unmerged rows are counted exactly (they are few by the merge
    // threshold), so the overlay widens nothing: the bounds shift by
    // the exact delta match count, and a tolerance-0 answer stays
    // bit-equal to a quiesced merge.
    Result<size_t> matched = ScanRowsCountInequality(
        view->delta->data(), view->delta->dim(), delta_rows, q, deadline);
    if (!matched.ok()) {
      *out = matched.status();
      return true;
    }
    result.lower += matched.value();
    result.upper += matched.value();
    result.estimate += matched.value();
    result.stats.num_points += delta_rows;
    result.stats.verified += delta_rows;
    result.stats.result_size = result.estimate;
  }
  *out = std::move(result);
  return true;
}

bool IngestManager::Aggregate(const std::string& target,
                              const ScalarProductQuery& q,
                              const CountTolerance& tolerance,
                              const Deadline& deadline,
                              Result<AggregateResult>* out) const {
  const std::shared_ptr<const View> view = PinView(target);
  if (view == nullptr) return false;
  const size_t delta_rows = view->delta->size();
  // The base call also validates the payload configuration; an error
  // passes through untouched, exactly as on the unmanaged path.
  Result<AggregateResult> base =
      view->base->AggregateInequality(q, tolerance, deadline);
  if (!base.ok()) {
    *out = base.status();
    return true;
  }
  AggregateResult result = std::move(base).value();
  if (delta_rows > 0) {
    const int payload_column =
        view->base->options().index_options.payload_column;
    size_t matched = 0;
    double delta_sum = 0.0;
    const Status scanned = ScanRowsAggregateInequality(
        view->delta->data(), view->delta->dim(), delta_rows, payload_column,
        q, deadline, &matched, &delta_sum);
    if (!scanned.ok()) {
      *out = scanned;
      return true;
    }
    // Exact shift of every bound by the delta's exact contribution.
    result.sum_lower += delta_sum;
    result.sum_upper += delta_sum;
    result.sum += delta_sum;
    result.count.lower += matched;
    result.count.upper += matched;
    result.count.estimate += matched;
    result.count.stats.num_points += delta_rows;
    result.count.stats.verified += delta_rows;
    result.count.stats.result_size = result.count.estimate;
  }
  *out = std::move(result);
  return true;
}

void IngestManager::BindMetrics(EngineMetrics* metrics) {
  metrics_.store(metrics, std::memory_order_release);
}

IngestBackend::Gauges IngestManager::gauges() const {
  Gauges gauges;
  // relaxed-ok: monotone monitoring counter; nothing orders on it.
  gauges.merges = merges_.load(std::memory_order_relaxed);
  ReaderMutexLock lock(&mu_);
  gauges.targets = shards_.size();
  for (const auto& [name, shard] : shards_) {
    ReaderMutexLock epoch(&shard->mu);
    gauges.delta_rows += shard->view->delta->size();
  }
  return gauges;
}

Status IngestManager::Flush(const std::string& target,
                            const Deadline& deadline) {
  Shard* shard = FindShard(target);
  if (shard == nullptr) {
    return Status::NotFound("'" + target + "' is not ingest-managed");
  }
  MutexLock lock(&shard->mu);
  const uint64_t goal = shard->appended_total;
  shard->flush_requested = true;
  shard->wake.Signal();
  while (shard->merged_total < goal) {
    if (shard->stop) {
      return Status::Unavailable("ingest manager stopped during flush");
    }
    if (deadline.is_infinite()) {
      shard->merged.Wait(&shard->mu);
    } else if (!shard->merged.WaitUntil(&shard->mu, deadline.when()) &&
               shard->merged_total < goal) {
      return Status::DeadlineExceeded("flush deadline expired with " +
                                      std::to_string(goal -
                                                     shard->merged_total) +
                                      " rows unmerged");
    }
  }
  return Status::OK();
}

void IngestManager::Stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  std::vector<Shard*> all;
  {
    ReaderMutexLock lock(&mu_);
    all.reserve(shards_.size());
    for (const auto& [name, shard] : shards_) all.push_back(shard.get());
  }
  for (Shard* shard : all) {
    {
      MutexLock lock(&shard->mu);
      shard->stop = true;
    }
    shard->wake.Signal();
    shard->merged.SignalAll();
  }
  for (Shard* shard : all) {
    if (shard->merger.joinable()) shard->merger.join();
  }
}

void IngestManager::MergerLoop(Shard* shard) {
  for (;;) {
    std::shared_ptr<const View> view;
    size_t drain = 0;
    {
      MutexLock lock(&shard->mu);
      while (!shard->stop && !shard->flush_requested &&
             shard->delta->size() < options_.merge_threshold) {
        shard->wake.Wait(&shard->mu);
      }
      drain = shard->delta->size();
      if (drain == 0) {
        if (shard->flush_requested) {
          // Nothing outstanding: the flush goal is already met.
          shard->flush_requested = false;
          shard->merged.SignalAll();
        }
        if (shard->stop) return;
        continue;
      }
      view = shard->view;
    }
    // The expensive part runs with no lock held: clone the installed
    // base (readers keep serving it), fold in the drained prefix, and
    // install. The drained rows are immutable and `drain` was
    // snapshotted under the lock, so concurrent appends (which only
    // extend past `drain`) cannot race this read.
    WallTimer merge_timer;
    Result<PlanarIndexSet> merged = view->base->Clone();
    PLANAR_CHECK(merged.ok());  // Manage() validated the backend
    const Status appended =
        merged.value().AppendRows(view->delta->data(), drain);
    PLANAR_CHECK(appended.ok());
    const Catalog::SetPtr installed =
        catalog_->Install(shard->name, std::move(merged).value());
    // Account the merge before waking flushers so a caller returning
    // from Flush() observes the bumped counters.
    // relaxed-ok: monotone monitoring counter; nothing orders on it.
    merges_.fetch_add(1, std::memory_order_relaxed);
    if (EngineMetrics* const metrics =
            metrics_.load(std::memory_order_acquire)) {
      metrics->OnMergeCompleted(merge_timer.ElapsedMillis());
    }
    {
      MutexLock lock(&shard->mu);
      // Epoch swap: surviving tail rows (appended during the merge) move
      // to a fresh delta. Their global ids are unchanged — the base grew
      // by exactly the number of rows removed in front of them.
      auto fresh =
          std::make_shared<DeltaBuffer>(shard->dim, options_.delta_capacity);
      // The clone regenerated the base mirror iff mixed precision is
      // live; the fresh delta follows it (see Manage).
      if (installed->phi().f32_data() != nullptr) fresh->EnableF32Mirror();
      const size_t now = shard->delta->size();
      if (now > drain) {
        PLANAR_CHECK(fresh->Append(shard->delta->data() + drain * shard->dim,
                                   now - drain));
      }
      shard->delta = fresh;
      shard->view = std::make_shared<const View>(View{installed, fresh});
      shard->merged_total += drain;
      if (shard->flush_requested && shard->delta->size() == 0) {
        shard->flush_requested = false;
      }
      shard->merged.SignalAll();
    }
  }
}

}  // namespace planar
