// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "sql/predicate_compiler.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/macros.h"

namespace planar {

int SqlSchema::ColumnOf(const std::string& name) const {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

using Monomial = std::map<int, int>;
using Poly = std::map<Monomial, double>;
constexpr int kParamBase = 1 << 20;

// ---------------------------------------------------------------------
// Tokenizer

enum class TokenKind {
  kNumber,
  kIdent,
  kParam,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kLParen,
  kRParen,
  kLessEqual,
  kGreaterEqual,
  kEnd,
};

struct Token {
  TokenKind kind;
  double number = 0.0;
  std::string ident;
  int param_index = -1;  // -1: bare '?', bound positionally
  size_t offset = 0;
};

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto error = [&](const std::string& message) {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(i));
  };
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      const char* start = text.c_str() + i;
      char* end = nullptr;
      token.number = std::strtod(start, &end);
      if (end == start) return error("malformed number");
      token.kind = TokenKind::kNumber;
      i += static_cast<size_t>(end - start);
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_')) {
        ++j;
      }
      token.kind = TokenKind::kIdent;
      token.ident = text.substr(i, j - i);
      i = j;
    } else if (c == '?') {
      size_t j = i + 1;
      while (j < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      token.kind = TokenKind::kParam;
      if (j > i + 1) {
        const int index = std::atoi(text.substr(i + 1, j - i - 1).c_str());
        if (index < 1) return error("parameter indices are 1-based");
        token.param_index = index - 1;
      }
      i = j;
    } else if (c == '+') {
      token.kind = TokenKind::kPlus;
      ++i;
    } else if (c == '-') {
      token.kind = TokenKind::kMinus;
      ++i;
    } else if (c == '*') {
      token.kind = TokenKind::kStar;
      ++i;
    } else if (c == '/') {
      token.kind = TokenKind::kSlash;
      ++i;
    } else if (c == '(') {
      token.kind = TokenKind::kLParen;
      ++i;
    } else if (c == ')') {
      token.kind = TokenKind::kRParen;
      ++i;
    } else if (c == '<') {
      token.kind = TokenKind::kLessEqual;
      i += (i + 1 < text.size() && text[i + 1] == '=') ? 2 : 1;
    } else if (c == '>') {
      token.kind = TokenKind::kGreaterEqual;
      i += (i + 1 < text.size() && text[i + 1] == '=') ? 2 : 1;
    } else {
      return error(std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = text.size();
  tokens.push_back(end);
  return tokens;
}

// ---------------------------------------------------------------------
// Polynomial algebra

void PolyAddTerm(Poly& poly, const Monomial& monomial, double coefficient) {
  if (coefficient == 0.0) return;
  auto [it, inserted] = poly.emplace(monomial, coefficient);
  if (!inserted) {
    it->second += coefficient;
    if (it->second == 0.0) poly.erase(it);
  }
}

Poly PolyAdd(const Poly& a, const Poly& b) {
  Poly out = a;
  for (const auto& [m, c] : b) PolyAddTerm(out, m, c);
  return out;
}

Poly PolyNeg(const Poly& a) {
  Poly out;
  for (const auto& [m, c] : a) out.emplace(m, -c);
  return out;
}

Poly PolyMul(const Poly& a, const Poly& b) {
  Poly out;
  for (const auto& [ma, ca] : a) {
    for (const auto& [mb, cb] : b) {
      Monomial m = ma;
      for (const auto& [var, exp] : mb) m[var] += exp;
      PolyAddTerm(out, m, ca * cb);
    }
  }
  return out;
}

// A constant polynomial's value, when it is one.
bool PolyConstant(const Poly& poly, double* value) {
  if (poly.empty()) {
    *value = 0.0;
    return true;
  }
  if (poly.size() == 1 && poly.begin()->first.empty()) {
    *value = poly.begin()->second;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Parser (recursive descent straight into polynomials)

class Parser {
 public:
  Parser(std::vector<Token> tokens, const SqlSchema& schema)
      : tokens_(std::move(tokens)), schema_(schema) {}

  Result<Poly> ParseExpr() {
    PLANAR_ASSIGN_OR_RETURN(Poly left, ParseTerm());
    while (Peek() == TokenKind::kPlus || Peek() == TokenKind::kMinus) {
      const bool add = Peek() == TokenKind::kPlus;
      ++pos_;
      PLANAR_ASSIGN_OR_RETURN(Poly right, ParseTerm());
      left = add ? PolyAdd(left, right) : PolyAdd(left, PolyNeg(right));
    }
    return left;
  }

  TokenKind Peek() const { return tokens_[pos_].kind; }
  const Token& Current() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }
  int max_param_index() const { return max_param_index_; }

 private:
  Status SyntaxError(const std::string& message) const {
    return Status::InvalidArgument(
        message + " at offset " + std::to_string(tokens_[pos_].offset));
  }

  Result<Poly> ParseTerm() {
    PLANAR_ASSIGN_OR_RETURN(Poly left, ParseFactor());
    while (Peek() == TokenKind::kStar || Peek() == TokenKind::kSlash) {
      const bool mul = Peek() == TokenKind::kStar;
      ++pos_;
      PLANAR_ASSIGN_OR_RETURN(Poly right, ParseFactor());
      if (mul) {
        left = PolyMul(left, right);
      } else {
        double divisor;
        if (!PolyConstant(right, &divisor)) {
          return SyntaxError(
              "division is only supported by constant expressions");
        }
        if (divisor == 0.0) return SyntaxError("division by zero");
        Poly scaled;
        for (const auto& [m, c] : left) scaled.emplace(m, c / divisor);
        left = std::move(scaled);
      }
    }
    return left;
  }

  Result<Poly> ParseFactor() {
    const Token& token = tokens_[pos_];
    switch (token.kind) {
      case TokenKind::kNumber: {
        ++pos_;
        Poly poly;
        PolyAddTerm(poly, Monomial{}, token.number);
        return poly;
      }
      case TokenKind::kIdent: {
        const int column = schema_.ColumnOf(token.ident);
        if (column < 0) {
          return SyntaxError("unknown attribute '" + token.ident + "'");
        }
        ++pos_;
        Poly poly;
        PolyAddTerm(poly, Monomial{{column, 1}}, 1.0);
        return poly;
      }
      case TokenKind::kParam: {
        int index = token.param_index;
        if (index < 0) index = next_positional_++;
        max_param_index_ = std::max(max_param_index_, index);
        ++pos_;
        Poly poly;
        PolyAddTerm(poly, Monomial{{kParamBase + index, 1}}, 1.0);
        return poly;
      }
      case TokenKind::kLParen: {
        ++pos_;
        PLANAR_ASSIGN_OR_RETURN(Poly inner, ParseExpr());
        if (Peek() != TokenKind::kRParen) {
          return SyntaxError("expected ')'");
        }
        ++pos_;
        return inner;
      }
      case TokenKind::kMinus: {
        ++pos_;
        PLANAR_ASSIGN_OR_RETURN(Poly inner, ParseFactor());
        return PolyNeg(inner);
      }
      default:
        return SyntaxError("expected a number, attribute, parameter or '('");
    }
  }

  std::vector<Token> tokens_;
  const SqlSchema& schema_;
  size_t pos_ = 0;
  int next_positional_ = 0;
  int max_param_index_ = -1;
};

// Splits a full monomial into its attribute and parameter parts.
void SplitMonomial(const Monomial& m, Monomial* attr, Monomial* param) {
  for (const auto& [var, exp] : m) {
    if (var >= kParamBase) {
      (*param)[var - kParamBase] = exp;
    } else {
      (*attr)[var] = exp;
    }
  }
}

// Interval arithmetic helpers for DeriveDomains.
struct Interval {
  double lo;
  double hi;
};

Interval IntervalPow(Interval v, int exp) {
  PLANAR_CHECK_GE(exp, 1);
  Interval out = v;
  for (int e = 1; e < exp; ++e) {
    const double candidates[4] = {out.lo * v.lo, out.lo * v.hi,
                                  out.hi * v.lo, out.hi * v.hi};
    out = {*std::min_element(candidates, candidates + 4),
           *std::max_element(candidates, candidates + 4)};
  }
  return out;
}

Interval IntervalMul(Interval a, Interval b) {
  const double candidates[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo,
                                a.hi * b.hi};
  return {*std::min_element(candidates, candidates + 4),
          *std::max_element(candidates, candidates + 4)};
}

std::string MonomialToString(const Monomial& m, const SqlSchema& schema,
                             bool params) {
  if (m.empty()) return "1";
  std::string out;
  for (const auto& [var, exp] : m) {
    if (!out.empty()) out += "*";
    out += params ? ("p" + std::to_string(var)) : schema.attributes[var];
    if (exp > 1) out += "^" + std::to_string(exp);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// The compiled phi function

class CompiledPredicate::SqlPhiFunction final : public PhiFunction {
 public:
  SqlPhiFunction(size_t input_dim, std::vector<Axis> axes)
      : input_dim_(input_dim), axes_(std::move(axes)) {}

  size_t input_dim() const override { return input_dim_; }
  size_t output_dim() const override { return axes_.size(); }
  std::string name() const override { return "sql_predicate"; }

  void Apply(const double* x, double* out) const override {
    for (size_t i = 0; i < axes_.size(); ++i) {
      double value = 0.0;
      for (const AttrTerm& term : axes_[i].attr_poly) {
        double product = term.coefficient;
        for (const auto& [column, exp] : term.attr_monomial) {
          for (int e = 0; e < exp; ++e) product *= x[column];
        }
        value += product;
      }
      out[i] = value;
    }
  }

 private:
  size_t input_dim_;
  std::vector<Axis> axes_;
};

Result<CompiledPredicate> CompilePredicate(const std::string& text,
                                           const SqlSchema& schema) {
  if (schema.attributes.empty()) {
    return Status::InvalidArgument("schema has no attributes");
  }
  PLANAR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), schema);

  PLANAR_ASSIGN_OR_RETURN(Poly lhs, parser.ParseExpr());
  Comparison cmp;
  if (parser.Peek() == TokenKind::kLessEqual) {
    cmp = Comparison::kLessEqual;
  } else if (parser.Peek() == TokenKind::kGreaterEqual) {
    cmp = Comparison::kGreaterEqual;
  } else {
    return Status::InvalidArgument("expected '<=' or '>=' comparison");
  }
  parser.Advance();
  PLANAR_ASSIGN_OR_RETURN(Poly rhs, parser.ParseExpr());
  if (parser.Peek() != TokenKind::kEnd) {
    return Status::InvalidArgument("trailing input after the predicate");
  }

  // Normal form: diff cmp 0 with diff = lhs - rhs.
  const Poly diff = PolyAdd(lhs, PolyNeg(rhs));

  using AttrTerm = CompiledPredicate::AttrTerm;

  CompiledPredicate compiled;
  compiled.schema_ = schema;
  compiled.cmp_ = cmp;
  compiled.num_parameters_ =
      static_cast<size_t>(parser.max_param_index() + 1);

  // Group terms by their parameter monomial.
  std::map<Monomial, std::vector<AttrTerm>> groups;
  for (const auto& [monomial, coefficient] : diff) {
    Monomial attr, param;
    SplitMonomial(monomial, &attr, &param);
    if (attr.empty()) {
      if (param.empty()) {
        compiled.rhs_constant_ += coefficient;
      } else {
        compiled.rhs_param_terms_.push_back({param, coefficient});
      }
      continue;
    }
    groups[param].push_back({attr, coefficient});
  }
  if (groups.empty()) {
    return Status::InvalidArgument(
        "the predicate contains no attribute terms; nothing to index");
  }
  for (auto& [param, attr_poly] : groups) {
    // Normalize: the leading attribute coefficient moves into the query
    // coefficient (paper convention: phi holds the bare attribute
    // polynomial, a holds the numeric scale).
    const double scale = attr_poly.front().coefficient;
    for (AttrTerm& term : attr_poly) term.coefficient /= scale;
    compiled.axes_.push_back({param, std::move(attr_poly), scale});
  }
  compiled.phi_ = std::make_shared<CompiledPredicate::SqlPhiFunction>(
      schema.attributes.size(), compiled.axes_);
  return compiled;
}

double CompiledPredicate::EvalParamMonomial(
    const Monomial& m, const std::vector<double>& params) const {
  double value = 1.0;
  for (const auto& [index, exp] : m) {
    for (int e = 0; e < exp; ++e) value *= params[static_cast<size_t>(index)];
  }
  return value;
}

Result<ScalarProductQuery> CompiledPredicate::Bind(
    const std::vector<double>& params) const {
  if (params.size() != num_parameters_) {
    return Status::InvalidArgument(
        "expected " + std::to_string(num_parameters_) + " parameters, got " +
        std::to_string(params.size()));
  }
  ScalarProductQuery q;
  q.cmp = cmp_;
  q.a.reserve(axes_.size());
  for (const Axis& axis : axes_) {
    q.a.push_back(axis.scale * EvalParamMonomial(axis.param_monomial, params));
  }
  double b = -rhs_constant_;
  for (const ParamOnlyTerm& term : rhs_param_terms_) {
    b -= term.coefficient * EvalParamMonomial(term.param_monomial, params);
  }
  q.b = b;
  return q;
}

Result<std::vector<ParameterDomain>> CompiledPredicate::DeriveDomains(
    const std::vector<ParameterDomain>& parameter_bounds) const {
  if (parameter_bounds.size() != num_parameters_) {
    return Status::InvalidArgument("one bound per parameter is required");
  }
  std::vector<ParameterDomain> out;
  out.reserve(axes_.size());
  for (const Axis& axis : axes_) {
    Interval interval{axis.scale, axis.scale};
    for (const auto& [index, exp] : axis.param_monomial) {
      const ParameterDomain& bound =
          parameter_bounds[static_cast<size_t>(index)];
      interval = IntervalMul(interval, IntervalPow({bound.lo, bound.hi}, exp));
    }
    if (interval.lo < 0.0 && interval.hi > 0.0) {
      return Status::FailedPrecondition(
          "coefficient of axis [" +
          MonomialToString(axis.param_monomial, schema_, true) +
          "] straddles zero over the given parameter bounds; split the "
          "parameter range and build one index set per sub-range");
    }
    out.push_back({interval.lo, interval.hi});
  }
  return out;
}

std::string CompiledPredicate::ToString() const {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < axes_.size(); ++i) {
    if (i > 0) out += " + ";
    out += "a" + std::to_string(i) + "*[";
    const auto& poly = axes_[i].attr_poly;
    for (size_t t = 0; t < poly.size(); ++t) {
      if (t > 0) out += " + ";
      if (poly[t].coefficient != 1.0) {
        std::snprintf(buf, sizeof(buf), "%g*", poly[t].coefficient);
        out += buf;
      }
      out += MonomialToString(poly[t].attr_monomial, schema_, false);
    }
    out += "]";
  }
  out += cmp_ == Comparison::kLessEqual ? " <= b" : " >= b";
  for (size_t i = 0; i < axes_.size(); ++i) {
    out += i == 0 ? ", " : ", ";
    out += "a" + std::to_string(i) + " = ";
    if (axes_[i].scale != 1.0) {
      std::snprintf(buf, sizeof(buf), "%g*", axes_[i].scale);
      out += buf;
    }
    out += MonomialToString(axes_[i].param_monomial, schema_, true);
  }
  return out;
}

}  // namespace planar
