// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Compiling parameterized SQL predicates into scalar product queries —
// the machinery behind the paper's Example 1. A predicate like
//
//     active_power - ? * voltage * current <= 0
//
// over a relation schema is parsed, algebraically expanded, and factored
// into
//
//     < a(params), phi(attributes) >  cmp  b(params)
//
// where phi collects the attribute polynomials (known at indexing time)
// and a / b collect the parameter monomials (evaluated when the
// placeholder values arrive). The result plugs directly into
// PlanarIndex / PlanarIndexSet: CREATE-FUNCTION-style predicates with
// runtime parameters become indexable, which Oracle's function-based
// indexes cannot do (Section 1 of the paper).
//
// Grammar (arithmetic over attribute names, numeric literals, and
// parameter placeholders):
//
//   predicate := expr ('<=' | '<' | '>=' | '>') expr
//   expr      := term (('+' | '-') term)*
//   term      := factor (('*' | '/') factor)*
//   factor    := NUMBER | IDENT | PARAM | '(' expr ')' | '-' factor
//   PARAM     := '?' | '?' digits     (bare '?' binds positionally;
//                                      '?1', '?2', ... bind by index)
//
// Division is supported by constant subexpressions only. '<' / '>' are
// accepted as synonyms of '<=' / '>=' (point predicates on continuous
// data).

#ifndef PLANAR_SQL_PREDICATE_COMPILER_H_
#define PLANAR_SQL_PREDICATE_COMPILER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/function.h"
#include "core/index_set.h"
#include "core/query.h"

namespace planar {

/// The relation schema a predicate is compiled against: attribute name ->
/// column position in the raw dataset.
struct SqlSchema {
  std::vector<std::string> attributes;

  /// Column of `name`, or -1 when absent.
  int ColumnOf(const std::string& name) const;
};

/// A predicate compiled into scalar-product form.
class CompiledPredicate {
 public:
  /// The factored form's phi : R^d -> R^d' — evaluates one attribute
  /// polynomial per output axis. Shared with any index built over it.
  std::shared_ptr<const PhiFunction> phi() const { return phi_; }

  /// Number of placeholder parameters the predicate takes.
  size_t num_parameters() const { return num_parameters_; }

  /// Output dimensionality d' of phi.
  size_t output_dim() const { return axes_.size(); }

  /// Instantiates the scalar product query for concrete parameter values
  /// (size must equal num_parameters()).
  Result<ScalarProductQuery> Bind(const std::vector<double>& params) const;

  /// Parameter domains for index construction, derived by interval
  /// arithmetic from per-parameter bounds: given lo/hi for each
  /// placeholder, returns the induced [lo, hi] of every query
  /// coefficient a_i. Fails when a coefficient's domain straddles zero
  /// (the octant would be ambiguous; split the parameter range and build
  /// one set per sub-range).
  Result<std::vector<ParameterDomain>> DeriveDomains(
      const std::vector<ParameterDomain>& parameter_bounds) const;

  /// Human-readable factored form, e.g.
  /// "a0*[active_power] + a1*[voltage*current] <= b, a0 = 1, a1 = -p0".
  std::string ToString() const;

 private:
  friend Result<CompiledPredicate> CompilePredicate(const std::string&,
                                                    const SqlSchema&);

  // A monomial: variable id -> exponent. Attribute i has id i; parameter
  // j has id kParamBase + j.
  using Monomial = std::map<int, int>;
  static constexpr int kParamBase = 1 << 20;

  struct AttrTerm {
    Monomial attr_monomial;  // attribute part only
    double coefficient;
  };
  struct Axis {
    Monomial param_monomial;          // parameter part (may be empty)
    std::vector<AttrTerm> attr_poly;  // the phi component (normalized so
                                      // its leading coefficient is 1)
    double scale = 1.0;               // folded into a_i at bind time
  };
  struct ParamOnlyTerm {
    Monomial param_monomial;
    double coefficient;
  };

  class SqlPhiFunction;

  double EvalParamMonomial(const Monomial& m,
                           const std::vector<double>& params) const;

  std::shared_ptr<const PhiFunction> phi_;
  SqlSchema schema_;
  std::vector<Axis> axes_;
  std::vector<ParamOnlyTerm> rhs_param_terms_;  // moved to b at bind time
  double rhs_constant_ = 0.0;                   // moved to b
  Comparison cmp_ = Comparison::kLessEqual;
  size_t num_parameters_ = 0;
};

/// Parses and factors `text` against `schema`. Fails with
/// InvalidArgument on syntax errors, unknown attributes, or division by
/// a non-constant expression.
Result<CompiledPredicate> CompilePredicate(const std::string& text,
                                           const SqlSchema& schema);

}  // namespace planar

#endif  // PLANAR_SQL_PREDICATE_COMPILER_H_
