// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Assertion and branch-prediction macros used across the library.
//
// The library follows a no-exceptions error model: recoverable failures are
// reported through planar::Status / planar::Result (see status.h, result.h);
// programmer errors and violated invariants abort through PLANAR_CHECK.

#ifndef PLANAR_COMMON_MACROS_H_
#define PLANAR_COMMON_MACROS_H_

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <type_traits>

#define PLANAR_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define PLANAR_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))

// Aborts the process when `condition` is false. Enabled in all build modes:
// a violated invariant in an index structure silently corrupts query results,
// which is strictly worse than a crash.
#define PLANAR_CHECK(condition)                                              \
  do {                                                                       \
    if (PLANAR_PREDICT_FALSE(!(condition))) {                                \
      std::fprintf(stderr, "PLANAR_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

namespace planar {
namespace internal {

// Renders one CHECK_OP operand into `buf`. Covers the types that appear in
// checks across the library (integers, floats, bools, enums, pointers);
// anything else prints a placeholder rather than failing to compile.
template <typename T, size_t N>
void FormatCheckOperand(char (&buf)[N], const T& v) {
  using D = std::decay_t<T>;
  if constexpr (std::is_same_v<D, bool>) {
    std::snprintf(buf, N, "%s", v ? "true" : "false");
  } else if constexpr (std::is_floating_point_v<D>) {
    std::snprintf(buf, N, "%.17g", static_cast<double>(v));
  } else if constexpr (std::is_enum_v<D>) {
    const auto raw = static_cast<std::underlying_type_t<D>>(v);
    std::snprintf(buf, N, "%lld", static_cast<long long>(raw));
  } else if constexpr (std::is_integral_v<D> && std::is_signed_v<D>) {
    std::snprintf(buf, N, "%lld", static_cast<long long>(v));
  } else if constexpr (std::is_integral_v<D> && std::is_unsigned_v<D>) {
    std::snprintf(buf, N, "%llu", static_cast<unsigned long long>(v));
  } else if constexpr (std::is_pointer_v<D>) {
    std::snprintf(buf, N, "%p", static_cast<const void*>(v));
  } else {
    std::snprintf(buf, N, "<unprintable>");
  }
}

template <typename A, typename B>
[[noreturn]] void CheckOpFailure(const char* file, int line,
                                 const char* expr_text, const A& lhs,
                                 const B& rhs) {
  char lhs_buf[64];
  char rhs_buf[64];
  FormatCheckOperand(lhs_buf, lhs);
  FormatCheckOperand(rhs_buf, rhs);
  std::fprintf(stderr, "PLANAR_CHECK failed at %s:%d: %s (lhs=%s, rhs=%s)\n",
               file, line, expr_text, lhs_buf, rhs_buf);
  std::abort();
}

}  // namespace internal
}  // namespace planar

// Binary comparison check that prints both operand values on failure.
// Operands are evaluated exactly once and bound to locals before the
// comparison, so compound expressions (PLANAR_CHECK_EQ(a | b, c)) never
// parse against the operator precedence of `op`.
#define PLANAR_CHECK_OP(op, a, b)                                            \
  do {                                                                       \
    const auto& planar_check_lhs_ = (a);                                     \
    const auto& planar_check_rhs_ = (b);                                     \
    if (PLANAR_PREDICT_FALSE(!(planar_check_lhs_ op planar_check_rhs_))) {   \
      ::planar::internal::CheckOpFailure(__FILE__, __LINE__,                 \
                                         #a " " #op " " #b,                  \
                                         planar_check_lhs_,                  \
                                         planar_check_rhs_);                 \
    }                                                                        \
  } while (false)

#define PLANAR_CHECK_EQ(a, b) PLANAR_CHECK_OP(==, a, b)
#define PLANAR_CHECK_NE(a, b) PLANAR_CHECK_OP(!=, a, b)
#define PLANAR_CHECK_LT(a, b) PLANAR_CHECK_OP(<, a, b)
#define PLANAR_CHECK_LE(a, b) PLANAR_CHECK_OP(<=, a, b)
#define PLANAR_CHECK_GT(a, b) PLANAR_CHECK_OP(>, a, b)
#define PLANAR_CHECK_GE(a, b) PLANAR_CHECK_OP(>=, a, b)

// Debug-only check for hot paths.
#ifndef NDEBUG
#define PLANAR_DCHECK(condition) PLANAR_CHECK(condition)
#else
#define PLANAR_DCHECK(condition) \
  do {                           \
  } while (false)
#endif

#endif  // PLANAR_COMMON_MACROS_H_
