// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Assertion and branch-prediction macros used across the library.
//
// The library follows a no-exceptions error model: recoverable failures are
// reported through planar::Status / planar::Result (see status.h, result.h);
// programmer errors and violated invariants abort through PLANAR_CHECK.

#ifndef PLANAR_COMMON_MACROS_H_
#define PLANAR_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define PLANAR_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define PLANAR_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))

// Aborts the process when `condition` is false. Enabled in all build modes:
// a violated invariant in an index structure silently corrupts query results,
// which is strictly worse than a crash.
#define PLANAR_CHECK(condition)                                              \
  do {                                                                       \
    if (PLANAR_PREDICT_FALSE(!(condition))) {                                \
      std::fprintf(stderr, "PLANAR_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define PLANAR_CHECK_OP(op, a, b) PLANAR_CHECK((a)op(b))
#define PLANAR_CHECK_EQ(a, b) PLANAR_CHECK_OP(==, a, b)
#define PLANAR_CHECK_NE(a, b) PLANAR_CHECK_OP(!=, a, b)
#define PLANAR_CHECK_LT(a, b) PLANAR_CHECK_OP(<, a, b)
#define PLANAR_CHECK_LE(a, b) PLANAR_CHECK_OP(<=, a, b)
#define PLANAR_CHECK_GT(a, b) PLANAR_CHECK_OP(>, a, b)
#define PLANAR_CHECK_GE(a, b) PLANAR_CHECK_OP(>=, a, b)

// Debug-only check for hot paths.
#ifndef NDEBUG
#define PLANAR_DCHECK(condition) PLANAR_CHECK(condition)
#else
#define PLANAR_DCHECK(condition) \
  do {                           \
  } while (false)
#endif

#endif  // PLANAR_COMMON_MACROS_H_
