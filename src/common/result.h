// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Result<T>: a value-or-Status union, modeled on absl::StatusOr<T>.

#ifndef PLANAR_COMMON_RESULT_H_
#define PLANAR_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace planar {

/// Holds either a `T` or an error `Status`. Accessing the value of an
/// errored Result is a programmer error and aborts.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so functions can `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from a non-OK status (implicit so functions can
  /// `return Status::InvalidArgument(...);`).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    PLANAR_CHECK(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }
  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value; requires ok().
  const T& value() const& {
    PLANAR_CHECK(ok());
    return *value_;
  }
  T& value() & {
    PLANAR_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    PLANAR_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ holds a value.
};

}  // namespace planar

/// Evaluates a Result<T>-returning expression; on error propagates the
/// status, otherwise assigns the value to `lhs`.
#define PLANAR_ASSIGN_OR_RETURN(lhs, expr)                            \
  PLANAR_INTERNAL_ASSIGN_OR_RETURN(                                   \
      PLANAR_INTERNAL_CONCAT(_planar_result_, __LINE__), lhs, expr)

#define PLANAR_INTERNAL_CONCAT_IMPL(x, y) x##y
#define PLANAR_INTERNAL_CONCAT(x, y) PLANAR_INTERNAL_CONCAT_IMPL(x, y)
#define PLANAR_INTERNAL_ASSIGN_OR_RETURN(var, lhs, expr) \
  auto var = (expr);                                     \
  if (!var.ok()) return var.status();                    \
  lhs = std::move(var).value()

#endif  // PLANAR_COMMON_RESULT_H_
