// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Deterministic pseudo-random number generation.
//
// The library does not use std::mt19937 because its state is large and its
// distributions are not reproducible across standard-library versions;
// benchmarks and tests need bit-identical streams everywhere. Rng implements
// xoshiro256++ seeded via SplitMix64 (Blackman & Vigna).

#ifndef PLANAR_COMMON_RANDOM_H_
#define PLANAR_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace planar {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator with convenience distributions. Deterministic for
/// a given seed on every platform.
class Rng {
 public:
  /// Seeds the four 64-bit words from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Next raw 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi) {
    PLANAR_DCHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    PLANAR_DCHECK(n > 0);
    // Lemire's nearly-divisionless bounded sampling, biased by at most
    // 2^-64 * n which is negligible for our n.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(NextUint64()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    PLANAR_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Marsaglia polar method.
  double Gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = Sqrt(-2.0 * Log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// A child generator with an independent stream, derived from this
  /// generator's state and `stream_id`. Useful for per-dataset /
  /// per-query-set reproducibility.
  Rng Fork(uint64_t stream_id) {
    return Rng(NextUint64() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  // Local wrappers keep <cmath> out of this header's hot inline path.
  static double Sqrt(double v);
  static double Log(double v);

  uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace planar

#endif  // PLANAR_COMMON_RANDOM_H_
