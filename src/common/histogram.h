// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Fixed-bucket histogram for latency accounting. Unlike RunningStats
// (stats.h), which keeps only moments, the histogram preserves an
// approximate distribution at O(#buckets) memory — the right tradeoff for
// a long-running serving process where storing every sample for an exact
// Percentile() is not an option. Bucket boundaries are fixed at
// construction, so snapshots of the same histogram are mergeable and
// diffable across time.

#ifndef PLANAR_COMMON_HISTOGRAM_H_
#define PLANAR_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace planar {

/// Histogram over fixed, ascending bucket upper bounds plus an implicit
/// overflow bucket. Bucket i covers (bound[i-1], bound[i]]; the first
/// bucket is unbounded below, the last (overflow) unbounded above.
/// Not thread-safe; callers that share one instance must synchronize.
class FixedBucketHistogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit FixedBucketHistogram(std::vector<double> upper_bounds);

  /// The default latency scale: geometric buckets from 1 microsecond to
  /// ~16 seconds (factor 2), in milliseconds.
  static FixedBucketHistogram LatencyMillis();

  /// Adds one observation.
  void Add(double value);

  /// Adds every observation of `other`; bucket bounds must be identical.
  void Merge(const FixedBucketHistogram& other);

  /// Discards all observations, keeping the bucket layout.
  void Reset();

  /// Number of observations.
  uint64_t count() const { return count_; }
  /// Sum of all observations (0 when empty).
  double sum() const { return sum_; }
  /// Arithmetic mean (0 when empty).
  double mean() const;
  /// Smallest / largest observation (+inf / -inf when empty).
  double min() const { return min_; }
  double max() const { return max_; }

  /// Number of buckets, including the overflow bucket.
  size_t num_buckets() const { return counts_.size(); }
  /// Observations in bucket `i`.
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  /// Upper bound of bucket `i` (+inf for the overflow bucket).
  double upper_bound(size_t i) const;

  /// Percentile estimate by linear interpolation inside the owning
  /// bucket, clamped to the observed [min, max]. `q` in [0, 100].
  /// Returns 0 when empty. Error is bounded by the bucket width.
  double ApproxPercentile(double q) const;

  /// One "(lo, hi]: count" line per non-empty bucket.
  std::string ToString() const;

 private:
  std::vector<double> bounds_;    // ascending upper bounds
  std::vector<uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_;
  double max_;
};

}  // namespace planar

#endif  // PLANAR_COMMON_HISTOGRAM_H_
