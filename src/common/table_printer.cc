// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"

namespace planar {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PLANAR_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  PLANAR_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddNumericRow(const std::vector<double>& cells,
                                 int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double cell : cells) row.push_back(FormatDouble(cell, precision));
  AddRow(std::move(row));
}

void TablePrinter::Print(std::FILE* out) const {
  std::fputs(ToText().c_str(), out);
}

std::string TablePrinter::ToText() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out += i == 0 ? "| " : " | ";
      out += row[i];
      out.append(widths[i] - row[i].size(), ' ');
    }
    out += " |\n";
  };
  append_row(headers_);
  for (size_t i = 0; i < headers_.size(); ++i) {
    out += i == 0 ? "|-" : "-|-";
    out.append(widths[i], '-');
  }
  out += "-|\n";
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string TablePrinter::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += row[i];
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

}  // namespace planar
