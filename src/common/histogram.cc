// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/macros.h"

namespace planar {

FixedBucketHistogram::FixedBucketHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  PLANAR_CHECK(!bounds_.empty());
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    PLANAR_CHECK(bounds_[i] < bounds_[i + 1]);
  }
}

FixedBucketHistogram FixedBucketHistogram::LatencyMillis() {
  std::vector<double> bounds;
  for (double b = 0.001; b < 16384.0; b *= 2.0) bounds.push_back(b);
  return FixedBucketHistogram(std::move(bounds));
}

void FixedBucketHistogram::Add(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  ++counts_[bucket];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void FixedBucketHistogram::Merge(const FixedBucketHistogram& other) {
  PLANAR_CHECK(bounds_ == other.bounds_);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void FixedBucketHistogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

double FixedBucketHistogram::mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

double FixedBucketHistogram::upper_bound(size_t i) const {
  PLANAR_CHECK_LT(i, counts_.size());
  if (i == bounds_.size()) return std::numeric_limits<double>::infinity();
  return bounds_[i];
}

double FixedBucketHistogram::ApproxPercentile(double q) const {
  PLANAR_CHECK(q >= 0.0 && q <= 100.0);
  if (count_ == 0) return 0.0;
  // 1-based rank of the target observation under the nearest-rank rule.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q / 100.0 * static_cast<double>(count_))));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (seen + counts_[i] < rank) {
      seen += counts_[i];
      continue;
    }
    // Interpolate inside bucket i between its bounds, clamped to the
    // observed extremes (the overflow bucket has no finite upper bound,
    // and the first bucket no finite lower bound).
    const double lo = std::max(i == 0 ? min_ : bounds_[i - 1], min_);
    const double hi = std::min(
        i == bounds_.size() ? max_ : std::min(bounds_[i], max_), max_);
    const double frac = static_cast<double>(rank - seen) /
                        static_cast<double>(counts_[i]);
    return lo + (hi - lo) * frac;
  }
  return max_;  // unreachable: rank <= count_
}

std::string FixedBucketHistogram::ToString() const {
  std::string out;
  char line[128];
  double lo = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double hi = upper_bound(i);
    if (counts_[i] != 0) {
      std::snprintf(line, sizeof(line), "(%.4g, %.4g]: %llu\n", lo, hi,
                    static_cast<unsigned long long>(counts_[i]));
      out += line;
    }
    lo = hi;
  }
  if (out.empty()) out = "(empty)\n";
  return out;
}

}  // namespace planar
