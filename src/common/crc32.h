// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte buffers.
// Used to checksum serialized index payloads so a truncated or bit-flipped
// snapshot is detected at load time instead of rebuilding a garbage index.

#ifndef PLANAR_COMMON_CRC32_H_
#define PLANAR_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace planar {

/// Extends a running CRC-32 with `size` bytes. Start from `crc == 0` and
/// feed buffers in order; the result is independent of the chunking.
uint32_t Crc32Extend(uint32_t crc, const void* data, size_t size);

/// CRC-32 of one contiguous buffer.
inline uint32_t Crc32(const void* data, size_t size) {
  return Crc32Extend(0, data, size);
}

}  // namespace planar

#endif  // PLANAR_COMMON_CRC32_H_
