// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "common/flags.h"

#include <cstdlib>
#include <string_view>

#include "common/macros.h"

namespace planar {

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) !=
                                   std::string_view("--")) {
      values_[std::string(arg)] = argv[++i];
    } else {
      // Bare flag: treated as boolean true.
      values_[std::string(arg)] = "true";
    }
  }
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

}  // namespace planar
