// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "common/random.h"

#include <cmath>

namespace planar {

double Rng::Sqrt(double v) { return std::sqrt(v); }
double Rng::Log(double v) { return std::log(v); }

}  // namespace planar
