// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Deadline: a point on the monotonic clock after which a request should
// stop doing work. Core query paths poll Expired() cooperatively every
// kDeadlineCheckInterval verified rows (a steady_clock read per check, a
// few tens of nanoseconds, amortized over ~hundreds of scalar products),
// so a request past its deadline returns kDeadlineExceeded instead of
// finishing the verification loop. The default-constructed deadline is
// infinite and adds no clock reads to the hot path.

#ifndef PLANAR_COMMON_DEADLINE_H_
#define PLANAR_COMMON_DEADLINE_H_

#include <chrono>
#include <limits>

namespace planar {

/// How many verification-loop iterations run between deadline polls.
/// Power of two so the check compiles to a mask test.
inline constexpr size_t kDeadlineCheckInterval = 256;

/// A monotonic-clock deadline; default-constructed = never expires.
/// Cheap value type, safe to copy across threads.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() = default;
  static Deadline Infinite() { return Deadline(); }

  /// Expires `millis` milliseconds from now (clamped at >= 0).
  static Deadline After(double millis) {
    const double clamped = millis > 0.0 ? millis : 0.0;
    return At(Clock::now() +
              std::chrono::nanoseconds(
                  static_cast<int64_t>(clamped * 1e6)));
  }

  /// Expires at the given instant.
  static Deadline At(Clock::time_point when) {
    Deadline d;
    d.when_ = when;
    d.has_deadline_ = true;
    return d;
  }

  /// True iff this deadline can never expire.
  bool is_infinite() const { return !has_deadline_; }

  /// True iff the deadline has passed. Reads the clock (finite only).
  bool Expired() const { return has_deadline_ && Clock::now() >= when_; }

  /// Milliseconds until expiry: negative when already expired, +inf when
  /// infinite.
  double RemainingMillis() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   when_ - Clock::now())
                   .count()) *
           1e-6;
  }

  /// The expiry instant; meaningful only when !is_infinite().
  Clock::time_point when() const { return when_; }

 private:
  Clock::time_point when_{};
  bool has_deadline_ = false;
};

}  // namespace planar

#endif  // PLANAR_COMMON_DEADLINE_H_
