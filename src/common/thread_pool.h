// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// A reusable worker pool with optional per-core pinning — the execution
// substrate for every fan-out path in the tree (core/parallel.h shards,
// ShardedIndexSet scatter-gather, engine workers). Before this existed,
// ParallelFor constructed and joined fresh std::threads on every call,
// paying spawn latency even for tiny batches; the pool amortizes that
// cost across the process lifetime and is the one place allowed to
// construct std::thread in src/ (planar_lint rule `threads-via-pool`).
//
// ParallelFor keeps the determinism contract callers rely on: fn(i) runs
// exactly once for every i, indices are partitioned into contiguous
// chunks, and the call blocks until all of them returned. Which pool
// thread runs which chunk is unspecified — callers that need ordered
// output merge per-chunk buffers in chunk order (see
// PlanarIndex::VerifyCandidatesParallel, SortEntries).
//
// The submitting thread participates in its own ParallelFor (it claims
// chunk tickets alongside the pool workers), so a fan-out always makes
// progress even when every pool thread is busy or the pool has zero
// threads — nested ParallelFor cannot deadlock, it degrades to serial.

#ifndef PLANAR_COMMON_THREAD_POOL_H_
#define PLANAR_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace planar {

/// Pool sizing/placement knobs.
struct ThreadPoolOptions {
  /// Worker threads owned by the pool. 0 = default sizing: one thread
  /// per hardware core, floored at kThreadPoolMinDefaultThreads so
  /// concurrency tests still interleave on single-core CI runners.
  size_t threads = 0;
  /// Pin worker i to core (i % hardware cores) via
  /// pthread_setaffinity_np. Linux-only; silently a no-op elsewhere
  /// (see ThreadAffinitySupported).
  bool pin_threads = false;
};

/// Floor applied to default-sized pools (ThreadPoolOptions::threads == 0).
/// A 1-core host would otherwise get a 1-thread pool and every
/// "concurrent" tsan/stress schedule would quietly serialize.
inline constexpr size_t kThreadPoolMinDefaultThreads = 4;

/// True when this build can pin threads to cores (Linux).
bool ThreadAffinitySupported();

/// Pins the calling thread to core (core % hardware cores). Returns
/// false when unsupported on this platform or the syscall failed;
/// callers treat pinning as best-effort.
bool PinCurrentThreadToCore(size_t core);

/// Fixed-size pool of worker threads fed from one FIFO task queue.
/// Tasks are arbitrary closures: short-lived ParallelFor chunk claims
/// and long-lived engine worker loops share the same pool mechanics.
/// Thread-safe; Shutdown() (or the destructor) drains the queue and
/// joins every worker — threads are never detached.
class ThreadPool {
 public:
  explicit ThreadPool(const ThreadPoolOptions& options = ThreadPoolOptions());
  /// Shutdown()s.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for some pool worker. Must not be called after
  /// Shutdown(). Long-running tasks (engine worker loops) occupy their
  /// thread until they return; size the pool accordingly.
  void Run(std::function<void()> task) PLANAR_EXCLUDES(mu_);

  /// Runs fn(i) for every i in [0, n), partitioned into contiguous
  /// chunks claimed by up to `max_workers` threads (0 = hardware
  /// concurrency), never more than n and never more than the pool size
  /// plus the calling thread, which always participates. Blocks until
  /// every index ran exactly once. Safe to call from inside a pool task
  /// (degrades toward serial instead of deadlocking).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t max_workers = 0) PLANAR_EXCLUDES(mu_);

  /// Closes the queue, runs every task already enqueued to completion,
  /// and joins all workers. Idempotent; not concurrency-safe against
  /// Run/ParallelFor racing the close.
  void Shutdown() PLANAR_EXCLUDES(mu_);

  /// Worker threads owned by the pool (0 after Shutdown()).
  size_t threads() const { return workers_.size(); }

  /// True when the constructor pinned the workers (requested and
  /// supported on this platform).
  bool pinned() const { return pinned_; }

  /// Process-wide shared pool used by the free ParallelFor shim and any
  /// caller without an explicit pool. Default-sized, unpinned,
  /// constructed on first use and joined at static destruction.
  static ThreadPool& Shared();

 private:
  void WorkerLoop(size_t worker_index);

  const bool pin_threads_;
  bool pinned_ = false;
  mutable Mutex mu_{kLockRankThreadPool};
  /// Signaled on every enqueue and on close.
  CondVar work_;
  std::deque<std::function<void()>> tasks_ PLANAR_GUARDED_BY(mu_);
  bool closed_ PLANAR_GUARDED_BY(mu_) = false;
  /// Immutable between construction and Shutdown(); threads() reads the
  /// size without mu_ on that basis.
  std::vector<std::thread> workers_;
};

}  // namespace planar

#endif  // PLANAR_COMMON_THREAD_POOL_H_
