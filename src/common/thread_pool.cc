// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/macros.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace planar {

namespace {

size_t DefaultThreads() {
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::max(hw, kThreadPoolMinDefaultThreads);
}

/// One ParallelFor fan-out. The calling thread and any helper tasks
/// enqueued on the pool claim contiguous chunk tickets from `next`; the
/// caller blocks in Wait() until every chunk ran. Held by shared_ptr: a
/// helper the pool dequeues after the caller already finished every
/// chunk still has a live object to consult (it claims no ticket and
/// exits immediately).
struct ParallelJob {
  ParallelJob(size_t total, size_t chunk_size, size_t chunk_count,
              const std::function<void(size_t)>* body)
      : n(total), chunk(chunk_size), chunks(chunk_count), fn(body) {}

  /// Claims chunks until none remain. `fn` is guaranteed alive for
  /// every claimed chunk: Wait() returns only after the final chunk
  /// bumped `done`, so the caller's frame outlives every fn(i) call.
  void RunChunks() {
    for (;;) {
      // relaxed-ok: the ticket counter only partitions indices — each
      // fetch_add claims a distinct chunk — and the visibility callers
      // rely on is provided by the job mutex below, whose final unlock
      // happens-before Wait() returning.
      const size_t ticket = next.fetch_add(1, std::memory_order_relaxed);
      if (ticket >= chunks) return;
      const size_t begin = ticket * chunk;
      const size_t end = std::min(n, begin + chunk);
      for (size_t i = begin; i < end; ++i) (*fn)(i);
      MutexLock lock(&mu);
      if (++done == chunks) all_done.SignalAll();
    }
  }

  void Wait() {
    MutexLock lock(&mu);
    while (done < chunks) all_done.Wait(&mu);
  }

  const size_t n;
  const size_t chunk;
  const size_t chunks;
  const std::function<void(size_t)>* fn;
  std::atomic<size_t> next{0};
  Mutex mu{kLockRankThreadPoolJob};
  CondVar all_done;
  size_t done PLANAR_GUARDED_BY(mu) = 0;
};

}  // namespace

bool ThreadAffinitySupported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

bool PinCurrentThreadToCore(size_t core) {
#if defined(__linux__)
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(core % hw), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

ThreadPool::ThreadPool(const ThreadPoolOptions& options)
    : pin_threads_(options.pin_threads) {
  const size_t count =
      options.threads == 0 ? DefaultThreads() : options.threads;
  pinned_ = pin_threads_ && ThreadAffinitySupported();
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Run(std::function<void()> task) {
  PLANAR_CHECK(task != nullptr);
  {
    MutexLock lock(&mu_);
    PLANAR_CHECK(!closed_);
    tasks_.push_back(std::move(task));
  }
  work_.Signal();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             size_t max_workers) {
  if (n == 0) return;
  size_t width = max_workers;
  if (width == 0) {
    width = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  width = std::min(width, n);
  width = std::min(width, workers_.size() + 1);  // pool + calling thread
  if (width <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t chunk = (n + width - 1) / width;
  const size_t chunks = (n + chunk - 1) / chunk;
  auto job = std::make_shared<ParallelJob>(n, chunk, chunks, &fn);
  size_t helpers = chunks - 1;
  {
    MutexLock lock(&mu_);
    if (closed_) {
      // No pool to help: the calling thread runs every chunk itself.
      helpers = 0;
    } else {
      for (size_t h = 0; h < helpers; ++h) {
        tasks_.emplace_back([job] { job->RunChunks(); });
      }
    }
  }
  if (helpers > 0) work_.SignalAll();
  job->RunChunks();
  job->Wait();
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    closed_ = true;
  }
  work_.SignalAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  if (pinned_) PinCurrentThreadToCore(worker_index);
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!closed_ && tasks_.empty()) work_.Wait(&mu_);
      if (tasks_.empty()) return;  // closed and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Function-local static: constructed on first use and joined (not
  // leaked) at static destruction, keeping LeakSanitizer clean. Unpinned
  // by design — pinning is an opt-in serving decision (EngineOptions),
  // not something a library-level helper should impose process-wide.
  static ThreadPool pool;
  return pool;
}

}  // namespace planar
