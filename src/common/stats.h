// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Streaming summary statistics used to aggregate per-query measurements.

#ifndef PLANAR_COMMON_STATS_H_
#define PLANAR_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace planar {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double value);

  /// Number of observations.
  size_t count() const { return count_; }
  /// Sum of all observations (0 when empty).
  double sum() const { return mean_ * static_cast<double>(count_); }
  /// Arithmetic mean (0 when empty).
  double mean() const { return mean_; }
  /// Sample variance (0 with fewer than two observations).
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Minimum observation (+inf when empty).
  double min() const { return min_; }
  /// Maximum observation (-inf when empty).
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;
};

/// Exact percentile over a stored sample (linear interpolation between
/// order statistics). `q` in [0, 100]. Requires a non-empty sample.
double Percentile(std::vector<double> sample, double q);

/// Formats a quantity in milliseconds with adaptive precision, e.g.
/// "0.013 ms", "4.2 ms", "1203 ms".
std::string FormatMillis(double millis);

}  // namespace planar

#endif  // PLANAR_COMMON_STATS_H_
