// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Console table formatting for benchmark harnesses. Every figure/table
// bench prints its rows through TablePrinter so the output stays uniform
// and easy to diff against EXPERIMENTS.md.

#ifndef PLANAR_COMMON_TABLE_PRINTER_H_
#define PLANAR_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace planar {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each cell with fixed precision.
  /// Doubles are rendered with `precision` fractional digits.
  void AddNumericRow(const std::vector<double>& cells, int precision = 3);

  /// Renders the table to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;

  /// Renders the table into a string, identical to Print's output. Used
  /// by library code (e.g. engine debug snapshots) that must not touch
  /// the process's standard streams.
  std::string ToText() const;

  /// Renders the table as comma-separated values (for machine consumption).
  std::string ToCsv() const;

  /// Number of data rows added so far.
  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` fractional digits.
std::string FormatDouble(double value, int precision = 3);

}  // namespace planar

#endif  // PLANAR_COMMON_TABLE_PRINTER_H_
