// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Minimal command-line flag parsing for benchmarks and examples
// (--name=value or --name value). Not a general-purpose flags library;
// just enough for the experiment harnesses to scale workloads.

#ifndef PLANAR_COMMON_FLAGS_H_
#define PLANAR_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace planar {

/// Parses `--name=value` / `--name value` pairs from argv.
/// Unrecognized positional arguments are kept in positional().
class FlagParser {
 public:
  /// Parses argv; aborts on malformed flags (missing value).
  FlagParser(int argc, char** argv);

  /// Returns the flag value or `default_value` when absent.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// True iff the flag was supplied.
  bool Has(const std::string& name) const;

  /// Non-flag arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace planar

#endif  // PLANAR_COMMON_FLAGS_H_
