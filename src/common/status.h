// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Status: the library's recoverable-error type (no exceptions are used).
// Modeled on absl::Status / rocksdb::Status.

#ifndef PLANAR_COMMON_STATUS_H_
#define PLANAR_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace planar {

/// Error categories for recoverable failures.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kDeadlineExceeded = 7,
  kResourceExhausted = 8,
  kDataLoss = 9,
  kUnavailable = 10,
};

/// Returns a stable human-readable name for `code` ("OK",
/// "INVALID_ARGUMENT", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value type carrying success or an error code plus message. Cheap to move;
/// the OK state stores no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The error category (kOk on success).
  StatusCode code() const { return code_; }
  /// The error message (empty on success).
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace planar

/// Propagates a non-OK status to the caller.
#define PLANAR_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::planar::Status _planar_status = (expr);        \
    if (!_planar_status.ok()) return _planar_status; \
  } while (false)

#endif  // PLANAR_COMMON_STATUS_H_
