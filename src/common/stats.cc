// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/macros.h"

namespace planar {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> sample, double q) {
  PLANAR_CHECK(!sample.empty());
  PLANAR_CHECK(q >= 0.0 && q <= 100.0);
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample[0];
  const double rank = q / 100.0 * static_cast<double>(sample.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

std::string FormatMillis(double millis) {
  char buf[64];
  if (millis < 0.1) {
    std::snprintf(buf, sizeof(buf), "%.4f ms", millis);
  } else if (millis < 10.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", millis);
  } else if (millis < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", millis);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ms", millis);
  }
  return buf;
}

}  // namespace planar
