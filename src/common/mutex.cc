// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Lock-order registry backing PLANAR_VALIDATE_LOCK_ORDER (common/mutex.h).
// Each thread keeps a stack of the Mutexes it currently holds; acquiring
// a Mutex already on the stack (recursive acquisition — UB on
// std::shared_mutex) or a ranked Mutex whose rank is not strictly
// greater than every ranked Mutex already held (a lock-order inversion,
// the necessary condition for deadlock) aborts with a PLANAR_CHECK-style
// message. The validator complements the compile-time thread-safety
// analysis: Clang's attribute set can prove what is held at each access
// but cannot express a global acquisition order.

#include "common/mutex.h"

#include <cstddef>
#include <cstdio>
#include <cstdlib>

namespace planar {
namespace internal {
namespace {

struct HeldLock {
  const void* mu;
  int rank;
};

// Release order need not mirror acquisition order (guards in sibling
// scopes unwind independently), so releases erase by identity rather
// than popping the top.
//
// The stack is a fixed POD array, not a std::vector, and that is
// load-bearing: the main thread's thread_local destructors run before
// static-duration destructors ([basic.start.term]), and static objects
// with mutexes (e.g. ThreadPool::Shared()) still lock — and hence
// consult this registry — during their own destruction. A vector here
// would already be destroyed at that point (use-after-destroy, observed
// as exit-time heap corruption); a trivially-destructible array is just
// memory until the thread truly ends.
constexpr size_t kMaxHeldLocks = 64;
thread_local HeldLock held_locks[kMaxHeldLocks];
thread_local size_t held_count = 0;

}  // namespace

void LockOrderCheckAcquire(const void* mu, int rank) {
  for (size_t i = 0; i < held_count; ++i) {
    const HeldLock& held = held_locks[i];
    if (held.mu == mu) {
      std::fprintf(stderr,
                   "PLANAR_CHECK failed: lock-order violation: recursive "
                   "acquisition of Mutex %p (rank %d)\n",
                   mu, rank);
      std::abort();
    }
    if (rank != kLockRankUnranked && held.rank != kLockRankUnranked &&
        held.rank >= rank) {
      std::fprintf(stderr,
                   "PLANAR_CHECK failed: lock-order violation: acquiring "
                   "Mutex %p with rank %d while holding Mutex %p with rank "
                   "%d (ranks must strictly increase along every "
                   "acquisition chain; see the lock-rank table in "
                   "common/mutex.h)\n",
                   mu, rank, held.mu, held.rank);
      std::abort();
    }
  }
}

void LockOrderAcquired(const void* mu, int rank) {
  if (held_count == kMaxHeldLocks) {
    std::fprintf(stderr,
                 "PLANAR_CHECK failed: lock-order registry overflow: this "
                 "thread holds %zu mutexes at once (deeper nesting than "
                 "any sane chain; raise kMaxHeldLocks if intentional)\n",
                 held_count);
    std::abort();
  }
  held_locks[held_count++] = HeldLock{mu, rank};
}

void LockOrderReleased(const void* mu) {
  for (size_t i = held_count; i > 0; --i) {
    if (held_locks[i - 1].mu == mu) {
      for (size_t j = i - 1; j + 1 < held_count; ++j) {
        held_locks[j] = held_locks[j + 1];
      }
      --held_count;
      return;
    }
  }
  std::fprintf(stderr,
               "PLANAR_CHECK failed: lock-order violation: releasing Mutex "
               "%p this thread does not hold\n",
               mu);
  std::abort();
}

}  // namespace internal
}  // namespace planar
