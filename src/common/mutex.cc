// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Lock-order registry backing PLANAR_VALIDATE_LOCK_ORDER (common/mutex.h).
// Each thread keeps a stack of the Mutexes it currently holds; acquiring
// a Mutex already on the stack (recursive acquisition — UB on
// std::shared_mutex) or a ranked Mutex whose rank is not strictly
// greater than every ranked Mutex already held (a lock-order inversion,
// the necessary condition for deadlock) aborts with a PLANAR_CHECK-style
// message. The validator complements the compile-time thread-safety
// analysis: Clang's attribute set can prove what is held at each access
// but cannot express a global acquisition order.

#include "common/mutex.h"

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace planar {
namespace internal {
namespace {

struct HeldLock {
  const void* mu;
  int rank;
};

// Release order need not mirror acquisition order (guards in sibling
// scopes unwind independently), so releases erase by identity rather
// than popping the top.
thread_local std::vector<HeldLock> held_locks;

}  // namespace

void LockOrderCheckAcquire(const void* mu, int rank) {
  for (const HeldLock& held : held_locks) {
    if (held.mu == mu) {
      std::fprintf(stderr,
                   "PLANAR_CHECK failed: lock-order violation: recursive "
                   "acquisition of Mutex %p (rank %d)\n",
                   mu, rank);
      std::abort();
    }
    if (rank != kLockRankUnranked && held.rank != kLockRankUnranked &&
        held.rank >= rank) {
      std::fprintf(stderr,
                   "PLANAR_CHECK failed: lock-order violation: acquiring "
                   "Mutex %p with rank %d while holding Mutex %p with rank "
                   "%d (ranks must strictly increase along every "
                   "acquisition chain; see the lock-rank table in "
                   "common/mutex.h)\n",
                   mu, rank, held.mu, held.rank);
      std::abort();
    }
  }
}

void LockOrderAcquired(const void* mu, int rank) {
  held_locks.push_back(HeldLock{mu, rank});
}

void LockOrderReleased(const void* mu) {
  for (size_t i = held_locks.size(); i > 0; --i) {
    if (held_locks[i - 1].mu == mu) {
      held_locks.erase(held_locks.begin() +
                       static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
  std::fprintf(stderr,
               "PLANAR_CHECK failed: lock-order violation: releasing Mutex "
               "%p this thread does not hold\n",
               mu);
  std::abort();
}

}  // namespace internal
}  // namespace planar
