// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Wall-clock timing utilities for benchmarks and experiments.

#ifndef PLANAR_COMMON_TIMER_H_
#define PLANAR_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace planar {

/// Monotonic wall-clock stopwatch. Started on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) * 1e-3;
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace planar

#endif  // PLANAR_COMMON_TIMER_H_
