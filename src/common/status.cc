// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "common/status.h"

namespace planar {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace planar
