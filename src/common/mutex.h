// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Capability-annotated synchronization layer. Every mutex and condition
// variable in the library goes through the wrappers below (enforced by
// the sync-via-common-mutex repo lint) so that Clang's thread-safety
// analysis (-Wthread-safety, promoted to -Werror on clang builds) can
// prove lock-acquisition invariants at compile time: each guarded field
// names the Mutex that protects it with PLANAR_GUARDED_BY, each helper
// that expects its caller to hold a lock says so with PLANAR_REQUIRES,
// and any unguarded access is a build break instead of a latent race.
// On non-Clang compilers the attributes expand to nothing and the
// wrappers are thin veneers over the standard primitives.
//
// Two runtime complements cover what the static analysis cannot express:
//  - ThreadSanitizer (tsan preset) catches the races a schedule happens
//    to exercise;
//  - the debug-only lock-order validator (PLANAR_VALIDATE_LOCK_ORDER)
//    assigns every Mutex a rank and PLANAR_CHECK-fails on out-of-rank
//    or recursive acquisition, turning potential deadlocks into
//    deterministic aborts (see the lock-rank table below).

#ifndef PLANAR_COMMON_MUTEX_H_
#define PLANAR_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <shared_mutex>

// --- Clang thread-safety-analysis attribute set ---------------------------
// The full capability vocabulary, named after the semantics (REQUIRES,
// ACQUIRE, ...) rather than the legacy lock-specific spellings. Each
// macro expands to the underlying __attribute__ only when the compiler
// implements the analysis; everywhere else they vanish, so annotated
// code stays portable.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PLANAR_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef PLANAR_THREAD_ANNOTATION_
#define PLANAR_THREAD_ANNOTATION_(x)  // no-op on non-Clang compilers
#endif

/// Marks a type as a capability (a lockable resource).
#define PLANAR_CAPABILITY(x) PLANAR_THREAD_ANNOTATION_(capability(x))
/// Marks an RAII type whose lifetime equals a critical section.
#define PLANAR_SCOPED_CAPABILITY PLANAR_THREAD_ANNOTATION_(scoped_lockable)
/// Field/variable may only be touched while holding `x`.
#define PLANAR_GUARDED_BY(x) PLANAR_THREAD_ANNOTATION_(guarded_by(x))
/// Pointee (not the pointer) is protected by `x`.
#define PLANAR_PT_GUARDED_BY(x) PLANAR_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Documents (and checks, with -Wthread-safety-analysis) acquisition order.
#define PLANAR_ACQUIRED_BEFORE(...) \
  PLANAR_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define PLANAR_ACQUIRED_AFTER(...) \
  PLANAR_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
/// Caller must hold the capability exclusively (resp. shared).
#define PLANAR_REQUIRES(...) \
  PLANAR_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define PLANAR_REQUIRES_SHARED(...) \
  PLANAR_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
/// Function acquires (and holds past return) the capability.
#define PLANAR_ACQUIRE(...) \
  PLANAR_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define PLANAR_ACQUIRE_SHARED(...) \
  PLANAR_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability the caller holds.
#define PLANAR_RELEASE(...) \
  PLANAR_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define PLANAR_RELEASE_SHARED(...) \
  PLANAR_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `b`.
#define PLANAR_TRY_ACQUIRE(b, ...) \
  PLANAR_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))
#define PLANAR_TRY_ACQUIRE_SHARED(b, ...) \
  PLANAR_THREAD_ANNOTATION_(try_acquire_shared_capability(b, __VA_ARGS__))
/// Caller must NOT hold the capability (non-reentrancy contract).
#define PLANAR_EXCLUDES(...) \
  PLANAR_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (trusted by analysis).
#define PLANAR_ASSERT_CAPABILITY(x) \
  PLANAR_THREAD_ANNOTATION_(assert_capability(x))
/// Function returns a reference to the capability guarding its result.
#define PLANAR_RETURN_CAPABILITY(x) PLANAR_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch. The only sanctioned uses are the condition-variable
/// wait helpers in this header, whose unlock/relock cycle the analysis
/// cannot model; anywhere else it is a review flag.
#define PLANAR_NO_THREAD_SAFETY_ANALYSIS \
  PLANAR_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace planar {

// --- Lock-rank table ------------------------------------------------------
// Every Mutex in src/ is constructed with one of the named ranks below
// (CONTRIBUTING: "Thread-safety annotations"). Ranks order the tree's
// mutexes from outermost to innermost: a thread may only acquire a
// Mutex whose rank is strictly greater than every ranked Mutex it
// already holds, so any cycle — the necessary condition for deadlock —
// aborts deterministically under PLANAR_VALIDATE_LOCK_ORDER. Leave gaps
// when adding ranks so new subsystems slot in without renumbering.
inline constexpr int kLockRankUnranked = -1;  ///< exempt from rank checks
/// Thread-pool task queue (ThreadPool::mu_): outermost of all — held
/// only to push/pop closures, never while running one, and explicitly
/// below kLockRankEngineQueue so pool bookkeeping can never wrap engine
/// admission (a pool worker acquires the engine queue lock only after
/// the pool lock is released).
inline constexpr int kLockRankThreadPool = 50;
/// Per-ParallelFor completion latch (ParallelJob::mu): guards the
/// done-chunk count one fan-out is waiting on. Above the pool queue —
/// a worker signals completion after popping (and releasing) the pool
/// lock — and below every engine/catalog rank, because user closures
/// run with no job lock held.
inline constexpr int kLockRankThreadPoolJob = 60;
/// Engine admission queue (BoundedQueue::mu_): held only within queue
/// methods, never while calling into catalog or metrics.
inline constexpr int kLockRankEngineQueue = 100;
/// Ingest manager registry (IngestManager::mu_): maps target names to
/// shards; held only for the lookup, released before any shard work.
inline constexpr int kLockRankIngestManager = 140;
/// Ingest shard state (IngestManager::Shard::mu_): guards the delta
/// epoch and merger handshake. Sits between the manager registry and the
/// catalog because the merger installs (kLockRankCatalog) while advancing
/// the shard epoch under this lock's protocol.
inline constexpr int kLockRankIngestDelta = 150;
/// Catalog snapshot map (Catalog::mu_): may be acquired while no queue
/// lock is held; index-set builds happen outside it by design.
inline constexpr int kLockRankCatalog = 200;
/// Engine metrics histograms (EngineMetrics::hist_mu_): innermost leaf —
/// safe to take from any engine path, must never wrap another lock.
inline constexpr int kLockRankEngineMetrics = 300;

#if defined(PLANAR_VALIDATE_LOCK_ORDER)
inline constexpr bool kLockOrderValidationEnabled = true;
#else
inline constexpr bool kLockOrderValidationEnabled = false;
#endif

namespace internal {
// Lock-order registry (mutex.cc): a thread-local stack of held mutexes.
// CheckAcquire aborts (PLANAR_CHECK-style message to stderr) on
// recursive acquisition of any Mutex and on rank order violations
// between ranked ones; Acquired/Released keep the stack current. The
// functions are always compiled so every TU links the same symbols;
// calls are gated on PLANAR_VALIDATE_LOCK_ORDER at the call site.
void LockOrderCheckAcquire(const void* mu, int rank);
void LockOrderAcquired(const void* mu, int rank);
void LockOrderReleased(const void* mu);
}  // namespace internal

/// Exclusive/shared mutex carrying thread-safety-analysis capability
/// annotations and an optional deadlock-detection rank. Prefer the RAII
/// guards (MutexLock / ReaderMutexLock) over manual Lock/Unlock pairs.
class PLANAR_CAPABILITY("mutex") Mutex {
 public:
  /// `rank` positions this mutex in the global lock order (see the
  /// table above); kLockRankUnranked opts out of rank checking (but
  /// never out of recursive-acquisition detection).
  explicit Mutex(int rank = kLockRankUnranked) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocks until exclusive ownership is acquired.
  void Lock() PLANAR_ACQUIRE() {
#if defined(PLANAR_VALIDATE_LOCK_ORDER)
    internal::LockOrderCheckAcquire(this, rank_);
#endif
    raw_.lock();
#if defined(PLANAR_VALIDATE_LOCK_ORDER)
    internal::LockOrderAcquired(this, rank_);
#endif
  }

  /// Releases exclusive ownership.
  void Unlock() PLANAR_RELEASE() {
#if defined(PLANAR_VALIDATE_LOCK_ORDER)
    internal::LockOrderReleased(this);
#endif
    raw_.unlock();
  }

  /// Acquires exclusive ownership iff it is immediately available.
  bool TryLock() PLANAR_TRY_ACQUIRE(true) {
#if defined(PLANAR_VALIDATE_LOCK_ORDER)
    internal::LockOrderCheckAcquire(this, rank_);
#endif
    const bool acquired = raw_.try_lock();
#if defined(PLANAR_VALIDATE_LOCK_ORDER)
    if (acquired) internal::LockOrderAcquired(this, rank_);
#endif
    return acquired;
  }

  /// Blocks until shared (reader) ownership is acquired.
  void ReaderLock() PLANAR_ACQUIRE_SHARED() {
#if defined(PLANAR_VALIDATE_LOCK_ORDER)
    internal::LockOrderCheckAcquire(this, rank_);
#endif
    raw_.lock_shared();
#if defined(PLANAR_VALIDATE_LOCK_ORDER)
    internal::LockOrderAcquired(this, rank_);
#endif
  }

  /// Releases shared ownership.
  void ReaderUnlock() PLANAR_RELEASE_SHARED() {
#if defined(PLANAR_VALIDATE_LOCK_ORDER)
    internal::LockOrderReleased(this);
#endif
    raw_.unlock_shared();
  }

  /// Acquires shared ownership iff it is immediately available.
  bool ReaderTryLock() PLANAR_TRY_ACQUIRE_SHARED(true) {
#if defined(PLANAR_VALIDATE_LOCK_ORDER)
    internal::LockOrderCheckAcquire(this, rank_);
#endif
    const bool acquired = raw_.try_lock_shared();
#if defined(PLANAR_VALIDATE_LOCK_ORDER)
    if (acquired) internal::LockOrderAcquired(this, rank_);
#endif
    return acquired;
  }

  /// This mutex's lock-order rank.
  int rank() const { return rank_; }

 private:
  friend class CondVar;

  // Unannotated relock/unlock used only by CondVar's wait cycle: the
  // analysis models a wait as "the lock is held throughout" (which is
  // what callers observe), so the transient release must not appear as
  // annotated Acquire/Release calls. The lock-order registry still sees
  // both edges, keeping rank bookkeeping exact across waits.
  void WaitCycleUnlock() {
#if defined(PLANAR_VALIDATE_LOCK_ORDER)
    internal::LockOrderReleased(this);
#endif
    raw_.unlock();
  }
  void WaitCycleRelock() {
#if defined(PLANAR_VALIDATE_LOCK_ORDER)
    internal::LockOrderCheckAcquire(this, rank_);
#endif
    raw_.lock();
#if defined(PLANAR_VALIDATE_LOCK_ORDER)
    internal::LockOrderAcquired(this, rank_);
#endif
  }

  std::shared_mutex raw_;
  const int rank_;
};

/// RAII exclusive lock: acquires in the constructor, releases in the
/// destructor. The annotation makes the guarded scope visible to the
/// analysis.
class PLANAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PLANAR_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() PLANAR_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII shared (reader) lock. Concurrent ReaderMutexLock holders never
/// block each other; the analysis permits only const access to fields
/// guarded by `mu` inside the scope.
class PLANAR_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(Mutex* mu) PLANAR_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() PLANAR_RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with planar::Mutex. Waits require the
/// caller to hold the mutex exclusively — write the standard re-check
/// loop around every wait:
///
///   MutexLock lock(&mu_);
///   while (!PredicateLocked()) cv_.Wait(&mu_);
///
/// The transient unlock/relock inside a wait is invisible to the
/// thread-safety analysis (by design: callers hold the lock before and
/// after), which is why predicates must be re-checked by the caller
/// rather than passed in as lambdas the analysis cannot attribute.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks until notified (or spuriously
  /// woken), and reacquires `*mu` before returning.
  void Wait(Mutex* mu) PLANAR_REQUIRES(mu) {
    WaitCycle cycle(mu);
    cv_.wait(cycle);
  }

  /// Wait with a deadline. Returns false when `deadline` passed without
  /// a notification (the mutex is reacquired either way). A deadline
  /// already in the past returns false without blocking.
  bool WaitUntil(Mutex* mu, std::chrono::steady_clock::time_point deadline)
      PLANAR_REQUIRES(mu) {
    WaitCycle cycle(mu);
    return cv_.wait_until(cycle, deadline) == std::cv_status::no_timeout;
  }

  /// Wakes one waiter. Callers are not required to hold the mutex.
  void Signal() { cv_.notify_one(); }

  /// Wakes every waiter.
  void SignalAll() { cv_.notify_all(); }

 private:
  // BasicLockable adapter handed to condition_variable_any: routes the
  // wait's internal unlock/relock through the Mutex's wait-cycle hooks
  // so the lock-order registry stays exact while the thread-safety
  // analysis (correctly) keeps treating the lock as held by the caller.
  class WaitCycle {
   public:
    explicit WaitCycle(Mutex* mu) : mu_(mu) {}
    void lock() { mu_->WaitCycleRelock(); }
    void unlock() { mu_->WaitCycleUnlock(); }

   private:
    Mutex* const mu_;
  };

  std::condition_variable_any cv_;
};

}  // namespace planar

#endif  // PLANAR_COMMON_MUTEX_H_
