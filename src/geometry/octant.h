// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Hyper-octant sign patterns (Section 4.5 of the paper). With the
// inequality parameter b normalized to be non-negative, the sign pattern
// of the query normal a determines the octant O in which the query
// hyperplane intersects the coordinate axes: sign(O, i) = sign(a_i).

#ifndef PLANAR_GEOMETRY_OCTANT_H_
#define PLANAR_GEOMETRY_OCTANT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace planar {

/// A sign pattern in {-1, +1}^d identifying a hyper octant. Axes with
/// a_i == 0 are recorded as +1 (they are ignored during query processing,
/// per the paper's assumption 1).
class Octant {
 public:
  Octant() = default;

  /// The octant containing the axis intersections of a query hyperplane
  /// with normal `a` (and b >= 0): sign(O, i) = sign(a_i), zero mapped
  /// to +1.
  static Octant FromNormal(const std::vector<double>& a);

  /// The first hyper octant (all +1) in dimension d.
  static Octant First(size_t d);

  /// Sign of axis i: -1.0 or +1.0.
  double sign(size_t i) const { return negative_[i] ? -1.0 : 1.0; }

  /// Dimensionality.
  size_t dim() const { return negative_.size(); }

  /// True iff every axis has sign +1.
  bool IsFirst() const;

  /// Compact id: bit i set iff sign(i) == -1. Requires dim() <= 64.
  uint64_t Id() const;

  /// E.g. "(+,-,+)".
  std::string ToString() const;

  friend bool operator==(const Octant& a, const Octant& b) {
    return a.negative_ == b.negative_;
  }

 private:
  // true at position i iff the octant is negative along axis i.
  std::vector<bool> negative_;
};

}  // namespace planar

#endif  // PLANAR_GEOMETRY_OCTANT_H_
