// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Hyperplane geometry in R^d': the query hyperplane H(q): <a, y> = b and
// the index hyperplanes H(x): <c, y> = key(x) of the paper (Section 4).

#ifndef PLANAR_GEOMETRY_HYPERPLANE_H_
#define PLANAR_GEOMETRY_HYPERPLANE_H_

#include <vector>

#include "common/macros.h"

namespace planar {

/// A hyperplane { y in R^d : <normal, y> = offset }.
struct Hyperplane {
  std::vector<double> normal;
  double offset = 0.0;

  /// Dimensionality of the ambient space.
  size_t dim() const { return normal.size(); }

  /// Coordinate of the intersection with axis i, i.e. I(q, i) = offset /
  /// normal[i] in the paper's notation. Requires normal[i] != 0.
  double AxisIntersection(size_t i) const {
    PLANAR_DCHECK(i < normal.size());
    PLANAR_DCHECK(normal[i] != 0.0);
    return offset / normal[i];
  }

  /// Signed evaluation <normal, y> - offset.
  double Evaluate(const double* y) const;

  /// Euclidean distance from point y to this hyperplane:
  /// |<normal, y> - offset| / |normal|.
  double Distance(const double* y) const;
};

/// Cosine of the dihedral angle between two hyperplanes (the angle between
/// their normals); both normals must be non-zero.
double CosAngleBetween(const Hyperplane& p, const Hyperplane& q);

/// True iff the two hyperplanes are parallel up to `tolerance`.
bool Parallel(const Hyperplane& p, const Hyperplane& q,
              double tolerance = 1e-9);

}  // namespace planar

#endif  // PLANAR_GEOMETRY_HYPERPLANE_H_
