// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "geometry/hyperplane.h"

#include <cmath>

#include "geometry/vec.h"

namespace planar {

double Hyperplane::Evaluate(const double* y) const {
  return Dot(normal.data(), y, normal.size()) - offset;
}

double Hyperplane::Distance(const double* y) const {
  const double n = Norm(normal);
  PLANAR_CHECK_GT(n, 0.0);
  return std::fabs(Evaluate(y)) / n;
}

double CosAngleBetween(const Hyperplane& p, const Hyperplane& q) {
  return CosineSimilarity(p.normal, q.normal);
}

bool Parallel(const Hyperplane& p, const Hyperplane& q, double tolerance) {
  return AreParallel(p.normal, q.normal, tolerance);
}

}  // namespace planar
