// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "geometry/octant.h"

#include "common/macros.h"

namespace planar {

Octant Octant::FromNormal(const std::vector<double>& a) {
  Octant octant;
  octant.negative_.resize(a.size());
  for (size_t i = 0; i < a.size(); ++i) octant.negative_[i] = a[i] < 0.0;
  return octant;
}

Octant Octant::First(size_t d) {
  Octant octant;
  octant.negative_.assign(d, false);
  return octant;
}

bool Octant::IsFirst() const {
  for (bool neg : negative_) {
    if (neg) return false;
  }
  return true;
}

uint64_t Octant::Id() const {
  PLANAR_CHECK_LE(negative_.size(), 64u);
  uint64_t id = 0;
  for (size_t i = 0; i < negative_.size(); ++i) {
    if (negative_[i]) id |= (uint64_t{1} << i);
  }
  return id;
}

std::string Octant::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < negative_.size(); ++i) {
    if (i > 0) out += ',';
    out += negative_[i] ? '-' : '+';
  }
  out += ')';
  return out;
}

}  // namespace planar
