// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "geometry/vec.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"

namespace planar {

double Dot(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  PLANAR_CHECK_EQ(a.size(), b.size());
  return Dot(a.data(), b.data(), a.size());
}

double Norm(const double* a, size_t n) { return std::sqrt(Dot(a, a, n)); }

double Norm(const std::vector<double>& a) { return Norm(a.data(), a.size()); }

double SquaredDistance(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

std::vector<double> Normalized(const std::vector<double>& a) {
  const double norm = Norm(a);
  PLANAR_CHECK_GT(norm, 0.0);
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] / norm;
  return out;
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  const double na = Norm(a);
  const double nb = Norm(b);
  PLANAR_CHECK_GT(na, 0.0);
  PLANAR_CHECK_GT(nb, 0.0);
  return Dot(a, b) / (na * nb);
}

bool AreParallel(const std::vector<double>& a, const std::vector<double>& b,
                 double tolerance) {
  return std::fabs(CosineSimilarity(a, b)) >= 1.0 - tolerance;
}

std::string VecToString(const std::vector<double>& a) {
  std::string out = "(";
  char buf[32];
  for (size_t i = 0; i < a.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.4f", i == 0 ? "" : ", ", a[i]);
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace planar
