// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Dense vector kernels used throughout the library. Vectors are plain
// std::vector<double> / raw spans; these free functions keep the hot loops
// in one place and easy to vectorize.

#ifndef PLANAR_GEOMETRY_VEC_H_
#define PLANAR_GEOMETRY_VEC_H_

#include <cstddef>
#include <string>
#include <vector>

namespace planar {

/// Dot product of two length-n arrays.
double Dot(const double* a, const double* b, size_t n);

/// Dot product of two equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean (L2) norm.
double Norm(const double* a, size_t n);
double Norm(const std::vector<double>& a);

/// Squared Euclidean distance between two length-n arrays.
double SquaredDistance(const double* a, const double* b, size_t n);

/// In-place y += alpha * x.
void Axpy(double alpha, const double* x, double* y, size_t n);

/// Returns a / |a|; requires |a| > 0.
std::vector<double> Normalized(const std::vector<double>& a);

/// Cosine of the angle between a and b; requires both non-zero.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// True iff a and b are parallel up to `tolerance` on the cosine
/// (|cos| >= 1 - tolerance). Used to deduplicate index normals.
bool AreParallel(const std::vector<double>& a, const std::vector<double>& b,
                 double tolerance = 1e-9);

/// "(a_0, a_1, ..., a_{n-1})" with 4 fractional digits, for diagnostics.
std::string VecToString(const std::vector<double>& a);

}  // namespace planar

#endif  // PLANAR_GEOMETRY_VEC_H_
