// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Query workload generators for the paper's experiments (Section 7.1,
// "Query selection and parameter setting").
//
// For the synthetic and image datasets the paper issues the generalized
// query of Equation 18:
//
//   sum_i a_i x_i <= s * sum_i a_i max(i)
//
// where each a_i is drawn from a discrete domain of |Delta| = RQ values
// ("randomness of query"), max(i) is the per-dimension maximum of the
// dataset, and s is the inequality parameter (0.25 by default; swept in
// Figure 11). For the Consumption dataset it issues the power-factor
// query of Example 1: <(1, -threshold), phi(x)> <= 0.

#ifndef PLANAR_DATAGEN_WORKLOAD_H_
#define PLANAR_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/index_set.h"
#include "core/query.h"
#include "core/row_matrix.h"

namespace planar {

/// Generator of Equation-18 queries over a dataset indexed with the
/// identity function (phi(x) = x).
class Eq18Workload {
 public:
  /// `rq` is the randomness of query (domain size |Delta_i|); parameters
  /// are drawn uniformly from the integers {1, ..., rq}. `inequality`
  /// scales the right-hand side (the paper's default is 0.25).
  Eq18Workload(const PhiMatrix& phi, int rq, double inequality,
               uint64_t seed);

  /// Draws the next random query.
  ScalarProductQuery Next();

  /// The continuous parameter domains the discrete query parameters are
  /// drawn from: [1, rq] per axis. Planar indices are sampled from these
  /// (Section 5.2).
  std::vector<ParameterDomain> Domains() const;

  int rq() const { return rq_; }
  double inequality() const { return inequality_; }

 private:
  std::vector<double> column_max_;
  int rq_;
  double inequality_;
  Rng rng_;
};

/// Generator of Example-1 power-factor queries over the Consumption
/// dataset materialized with PowerFactorFunction (d' = 2):
///   <(1, -threshold), (active, voltage*current)> <= 0,
/// threshold drawn uniformly from [threshold_lo, threshold_hi]
/// (the paper uses (0.100, 1.000)).
class PowerFactorWorkload {
 public:
  PowerFactorWorkload(double threshold_lo, double threshold_hi,
                      uint64_t seed);

  /// Draws the next random query.
  ScalarProductQuery Next();

  /// Parameter domains: a_0 = 1 fixed, a_1 in [-threshold_hi,
  /// -threshold_lo].
  std::vector<ParameterDomain> Domains() const;

 private:
  double threshold_lo_;
  double threshold_hi_;
  Rng rng_;
};

}  // namespace planar

#endif  // PLANAR_DATAGEN_WORKLOAD_H_
