// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Simulated stand-ins for the paper's real-world datasets (Section 7.1).
// The originals (UCI Corel image features and UCI individual-household
// electric power consumption) are not redistributable here, so these
// generators match their cardinality, dimensionality, attribute ranges
// and the distributional traits the Planar index is sensitive to
// (clustering / skew / the power-factor selectivity profile). See
// DESIGN.md, "Substitutions".

#ifndef PLANAR_DATAGEN_REALWORLD_SIM_H_
#define PLANAR_DATAGEN_REALWORLD_SIM_H_

#include <cstddef>
#include <cstdint>

#include "core/row_matrix.h"

namespace planar {

/// Corel color-moment features: 68,040 x 9, attributes in (-4.15, 4.59),
/// mildly clustered (Gaussian mixture, clipped to the range).
/// `num_points` defaults to the original cardinality.
Dataset SimulateCMoment(size_t num_points = 68040, uint64_t seed = 7);

/// Corel co-occurrence texture features: 68,040 x 16, attributes in
/// (-5.25, 50.21), strongly skewed toward small values with a long tail.
Dataset SimulateCTexture(size_t num_points = 68040, uint64_t seed = 11);

/// Household electric power consumption: 4 attributes per tuple:
///   [0] active power (W, 0..11000)
///   [1] reactive power (VAr, 0..1000)
///   [2] voltage (V, 223..254)
///   [3] current (A, 0..48)
/// Generated so that the power factor active / (voltage * current) follows
/// a realistic distribution concentrated around 0.85 with a low-power-
/// factor tail; the Critical_Consume(threshold) selectivity then sweeps
/// from a few percent (threshold 0.1) to ~100% (threshold 1.0) as in
/// Example 1. `num_points` defaults to the original 2,075,259 tuples.
Dataset SimulateConsumption(size_t num_points = 2075259, uint64_t seed = 13);

}  // namespace planar

#endif  // PLANAR_DATAGEN_REALWORLD_SIM_H_
