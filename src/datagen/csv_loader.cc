// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "datagen/csv_loader.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

namespace planar {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};

// Splits `line` on the delimiter (no quoting; the target files have none).
void SplitLine(const std::string& line, char delimiter,
               std::vector<std::string>* fields) {
  fields->clear();
  size_t start = 0;
  while (true) {
    const size_t pos = line.find(delimiter, start);
    if (pos == std::string::npos) {
      fields->push_back(line.substr(start));
      return;
    }
    fields->push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }

  std::string line;
  std::vector<std::string> fields;
  std::vector<double> row;
  size_t line_number = 0;
  size_t dim = 0;
  // The matrix is created lazily once the first data row fixes the width.
  std::unique_ptr<Dataset> data;

  char buffer[1 << 16];
  bool header_pending = options.has_header;
  while (std::fgets(buffer, sizeof(buffer), f.get()) != nullptr) {
    ++line_number;
    line.assign(buffer);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (header_pending) {
      header_pending = false;
      continue;
    }
    if (line.empty()) continue;
    SplitLine(line, options.delimiter, &fields);

    // Resolve the kept columns.
    std::vector<int> keep = options.columns;
    if (keep.empty()) {
      keep.resize(fields.size());
      for (size_t i = 0; i < fields.size(); ++i) keep[i] = static_cast<int>(i);
    }
    if (data == nullptr) {
      dim = keep.size();
      if (dim == 0) {
        return Status::InvalidArgument("no columns to load from '" + path +
                                       "'");
      }
      data = std::make_unique<Dataset>(dim);
    } else if (keep.size() != dim) {
      return Status::InvalidArgument(
          "inconsistent column count at line " + std::to_string(line_number));
    }

    row.clear();
    bool missing = false;
    for (int column : keep) {
      if (column < 0 || static_cast<size_t>(column) >= fields.size()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + " has " +
            std::to_string(fields.size()) + " fields; column " +
            std::to_string(column) + " requested");
      }
      const std::string& field = fields[static_cast<size_t>(column)];
      if (field == options.missing_marker) {
        missing = true;
        break;
      }
      char* end = nullptr;
      const double value = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("unparsable number '" + field +
                                       "' at line " +
                                       std::to_string(line_number));
      }
      row.push_back(value);
    }
    if (missing) continue;
    data->AppendRow(row);
    if (options.max_rows > 0 && data->size() >= options.max_rows) break;
  }
  if (data == nullptr || data->empty()) {
    return Status::InvalidArgument("'" + path + "' contains no data rows");
  }
  return std::move(*data);
}

}  // namespace planar
