// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Synthetic dataset generators in the style of the skyline-operator
// generator of Borzsonyi et al. [4], which the paper uses for its
// Independent / Correlated / Anti-correlated datasets (Section 7.1):
// d-dimensional points with attribute values in a given range.

#ifndef PLANAR_DATAGEN_SYNTHETIC_H_
#define PLANAR_DATAGEN_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/row_matrix.h"

namespace planar {

/// Attribute distribution across dimensions.
enum class SyntheticDistribution {
  kIndependent,     ///< each attribute uniform and independent
  kCorrelated,      ///< high in one dimension => high in the others
  kAnticorrelated,  ///< high in one dimension => low in the others
};

/// Parameters of a synthetic dataset.
struct SyntheticSpec {
  SyntheticDistribution distribution = SyntheticDistribution::kIndependent;
  size_t num_points = 1000;
  size_t dim = 2;
  /// Attribute range (the paper uses (1, 100)).
  double range_lo = 1.0;
  double range_hi = 100.0;
  uint64_t seed = 1;
};

/// Generates a dataset per `spec`. Deterministic given the seed.
Dataset GenerateSynthetic(const SyntheticSpec& spec);

/// "indp" / "corr" / "anti".
std::string DistributionName(SyntheticDistribution d);

}  // namespace planar

#endif  // PLANAR_DATAGEN_SYNTHETIC_H_
