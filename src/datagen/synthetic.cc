// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/macros.h"
#include "common/random.h"

namespace planar {

namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

}  // namespace

Dataset GenerateSynthetic(const SyntheticSpec& spec) {
  PLANAR_CHECK_GT(spec.dim, 0u);
  PLANAR_CHECK_LT(spec.range_lo, spec.range_hi);
  Dataset data(spec.dim);
  data.Reserve(spec.num_points);
  Rng rng(spec.seed);
  const double span = spec.range_hi - spec.range_lo;
  std::vector<double> row(spec.dim);

  for (size_t p = 0; p < spec.num_points; ++p) {
    switch (spec.distribution) {
      case SyntheticDistribution::kIndependent: {
        for (size_t j = 0; j < spec.dim; ++j) row[j] = rng.NextDouble();
        break;
      }
      case SyntheticDistribution::kCorrelated: {
        // A common "level" plus small per-attribute noise: points cluster
        // around the main diagonal.
        const double level = rng.NextDouble();
        for (size_t j = 0; j < spec.dim; ++j) {
          row[j] = Clamp01(level + rng.Gaussian(0.0, 0.08));
        }
        break;
      }
      case SyntheticDistribution::kAnticorrelated: {
        // Points near the hyperplane sum(x) = d/2: offsets sum to zero, so
        // a high value in one attribute forces low values elsewhere.
        const double level = Clamp01(rng.Gaussian(0.5, 0.08));
        double mean = 0.0;
        for (size_t j = 0; j < spec.dim; ++j) {
          row[j] = rng.Uniform(-0.4, 0.4);
          mean += row[j];
        }
        mean /= static_cast<double>(spec.dim);
        for (size_t j = 0; j < spec.dim; ++j) {
          row[j] = Clamp01(level + (row[j] - mean));
        }
        break;
      }
    }
    for (size_t j = 0; j < spec.dim; ++j) {
      row[j] = spec.range_lo + span * row[j];
    }
    data.AppendRow(row);
  }
  return data;
}

std::string DistributionName(SyntheticDistribution d) {
  switch (d) {
    case SyntheticDistribution::kIndependent:
      return "indp";
    case SyntheticDistribution::kCorrelated:
      return "corr";
    case SyntheticDistribution::kAnticorrelated:
      return "anti";
  }
  return "unknown";
}

}  // namespace planar
