// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "datagen/realworld_sim.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/macros.h"
#include "common/random.h"

namespace planar {

namespace {

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

Dataset SimulateCMoment(size_t num_points, uint64_t seed) {
  constexpr size_t kDim = 9;
  constexpr double kLo = -4.15;
  constexpr double kHi = 4.59;
  constexpr size_t kClusters = 8;

  Rng rng(seed);
  // Cluster centers and scales drawn once; images cluster by dominant
  // color, so moments of one image correlate across channels. Centers sit
  // in the upper part of the range: normalized color moments of natural
  // photos are predominantly positive, which is also what gives the
  // paper's Eq.-18 queries (threshold at 25% of the per-axis maximum)
  // their low selectivity on this dataset.
  std::vector<std::vector<double>> centers(kClusters,
                                           std::vector<double>(kDim));
  std::vector<double> scales(kClusters);
  for (size_t c = 0; c < kClusters; ++c) {
    for (size_t j = 0; j < kDim; ++j) {
      centers[c][j] = rng.Uniform(2.0, kHi * 0.85);
    }
    scales[c] = rng.Uniform(0.25, 0.7);
  }

  Dataset data(kDim);
  data.Reserve(num_points);
  std::vector<double> row(kDim);
  for (size_t p = 0; p < num_points; ++p) {
    const size_t c = rng.UniformInt(static_cast<uint64_t>(kClusters));
    // Brightness/saturation of the photo shifts every moment together:
    // moderate cross-channel correlation.
    const double shared = rng.Gaussian(0.0, 0.6);
    for (size_t j = 0; j < kDim; ++j) {
      row[j] = Clamp(centers[c][j] + shared + rng.Gaussian(0.0, scales[c]),
                     kLo, kHi);
    }
    data.AppendRow(row);
  }
  return data;
}

Dataset SimulateCTexture(size_t num_points, uint64_t seed) {
  constexpr size_t kDim = 16;
  constexpr double kLo = -5.25;
  constexpr double kHi = 50.21;

  Rng rng(seed);
  // Co-occurrence texture statistics of one image are all driven by the
  // image's overall contrast/energy: the 16 attributes are strongly
  // correlated with a per-image factor, concentrated in the upper-middle
  // of the range with a long low-energy tail. The strong single-factor
  // structure is what lets any Planar index order this dataset almost
  // perfectly (the paper's standout 150x result on CTexture).
  std::vector<double> level(kDim);
  for (size_t j = 0; j < kDim; ++j) level[j] = rng.Uniform(0.55, 1.0);

  Dataset data(kDim);
  data.Reserve(num_points);
  std::vector<double> row(kDim);
  for (size_t p = 0; p < num_points; ++p) {
    const double energy = 30.0 * std::exp(rng.Gaussian(0.0, 0.12));
    for (size_t j = 0; j < kDim; ++j) {
      const double value =
          energy * level[j] * (1.0 + rng.Gaussian(0.0, 0.015)) +
          rng.Gaussian(0.0, 0.4);
      row[j] = Clamp(value, kLo, kHi);
    }
    data.AppendRow(row);
  }
  return data;
}

Dataset SimulateConsumption(size_t num_points, uint64_t seed) {
  constexpr size_t kDim = 4;
  Rng rng(seed);
  Dataset data(kDim);
  data.Reserve(num_points);
  std::vector<double> row(kDim);
  for (size_t p = 0; p < num_points; ++p) {
    const double voltage = Clamp(rng.Gaussian(240.0, 4.0), 223.0, 254.0);
    // Household current: mixture of idle, regular and heavy usage.
    double current;
    const double mode = rng.NextDouble();
    if (mode < 0.35) {
      current = rng.Uniform(0.2, 2.0);  // idle / standby
    } else if (mode < 0.9) {
      current = rng.Uniform(1.0, 16.0);  // regular usage
    } else {
      current = rng.Uniform(10.0, 48.0);  // heavy appliances
    }
    // Power factor: most households concentrate near 0.9; a minority of
    // strongly reactive loads spreads across (0.1, 0.9), so the
    // Critical_Consume selectivity rises smoothly as the threshold sweeps
    // 0.1 -> 1.0 (a few percent at 0.2, tens of percent near 0.9).
    double pf;
    if (rng.Bernoulli(0.85)) {
      pf = 1.0 - std::fabs(rng.Gaussian(0.0, 0.1));
    } else {
      pf = rng.Uniform(0.1, 0.9);
    }
    pf = Clamp(pf, 0.05, 0.999);
    const double apparent = voltage * current;       // VA
    const double active = pf * apparent;             // W
    const double reactive =
        Clamp(std::sqrt(std::max(0.0, apparent * apparent - active * active)) *
                  0.2,
              0.0, 1000.0);  // VAr, scaled into the paper's 0..1 kVAr range
    row[0] = Clamp(active, 0.0, 11000.0);
    row[1] = reactive;
    row[2] = voltage;
    row[3] = current;
    data.AppendRow(row);
  }
  return data;
}

}  // namespace planar
