// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Loading delimited numeric files into Datasets — so the simulated
// stand-ins (realworld_sim.h) can be swapped for the real UCI files
// (household power consumption uses ';' as delimiter and '?' for missing
// values; the Corel feature files are plain comma-separated).

#ifndef PLANAR_DATAGEN_CSV_LOADER_H_
#define PLANAR_DATAGEN_CSV_LOADER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/row_matrix.h"

namespace planar {

/// Options for LoadCsv.
struct CsvOptions {
  char delimiter = ',';
  /// Skip the first line.
  bool has_header = false;
  /// Columns to keep, in order; empty keeps all columns.
  std::vector<int> columns;
  /// Rows containing this token in a kept column are skipped (the UCI
  /// consumption file marks missing readings with "?").
  std::string missing_marker = "?";
  /// Stop after this many data rows (0 = no limit).
  size_t max_rows = 0;
};

/// Parses `path` into a Dataset. Fails on unreadable files, unparsable
/// numbers, or rows whose column count does not cover the requested
/// columns. Rows with missing values are skipped, not errors.
Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options);

}  // namespace planar

#endif  // PLANAR_DATAGEN_CSV_LOADER_H_
