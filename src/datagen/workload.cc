// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "datagen/workload.h"

#include "common/macros.h"

namespace planar {

Eq18Workload::Eq18Workload(const PhiMatrix& phi, int rq, double inequality,
                           uint64_t seed)
    : rq_(rq), inequality_(inequality), rng_(seed) {
  PLANAR_CHECK_GE(rq, 1);
  PLANAR_CHECK(!phi.empty());
  column_max_.resize(phi.dim());
  for (size_t j = 0; j < phi.dim(); ++j) column_max_[j] = phi.ColumnMax(j);
}

ScalarProductQuery Eq18Workload::Next() {
  ScalarProductQuery q;
  q.a.resize(column_max_.size());
  q.cmp = Comparison::kLessEqual;
  double rhs = 0.0;
  for (size_t j = 0; j < q.a.size(); ++j) {
    q.a[j] = static_cast<double>(rng_.UniformInt(1, rq_));
    rhs += q.a[j] * column_max_[j];
  }
  q.b = inequality_ * rhs;
  return q;
}

std::vector<ParameterDomain> Eq18Workload::Domains() const {
  std::vector<ParameterDomain> domains(column_max_.size());
  for (auto& d : domains) {
    d.lo = 1.0;
    d.hi = static_cast<double>(rq_);
  }
  return domains;
}

PowerFactorWorkload::PowerFactorWorkload(double threshold_lo,
                                         double threshold_hi, uint64_t seed)
    : threshold_lo_(threshold_lo), threshold_hi_(threshold_hi), rng_(seed) {
  PLANAR_CHECK_GT(threshold_lo, 0.0);
  PLANAR_CHECK_LE(threshold_lo, threshold_hi);
}

ScalarProductQuery PowerFactorWorkload::Next() {
  const double threshold = rng_.Uniform(threshold_lo_, threshold_hi_);
  ScalarProductQuery q;
  q.a = {1.0, -threshold};
  q.b = 0.0;
  q.cmp = Comparison::kLessEqual;
  return q;
}

std::vector<ParameterDomain> PowerFactorWorkload::Domains() const {
  return {{1.0, 1.0}, {-threshold_hi_, -threshold_lo_}};
}

}  // namespace planar
