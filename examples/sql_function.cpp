// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// The full Example-1 pipeline of the paper, automated: a parameterized
// SQL predicate is compiled into scalar-product form, the parameter
// domains of the Planar indices are derived from the threshold range by
// interval arithmetic, and Critical_Consume(threshold) runs through the
// index — no hand-written feature map anywhere.
//
// Build & run:   ./build/examples/sql_function [--rows=500000]

#include <cstdio>

#include "common/flags.h"
#include "common/timer.h"
#include "core/scan.h"
#include "datagen/realworld_sim.h"
#include "sql/predicate_compiler.h"

using namespace planar;  // NOLINT: example brevity

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 500000));

  // CREATE FUNCTION Critical_Consume(threshold) ... WHERE
  //   ActivePower - threshold * Voltage * Current <= 0
  const SqlSchema schema{
      {"active_power", "reactive_power", "voltage", "current"}};
  auto predicate = CompilePredicate(
      "active_power - ? * voltage * current <= 0", schema);
  if (!predicate.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 predicate.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled predicate: %s\n", predicate->ToString().c_str());

  // Materialize phi over the (simulated) consumption table and derive the
  // index-normal domains from the threshold range (0.1, 1.0).
  std::printf("simulating %zu consumption tuples...\n", rows);
  const Dataset table = SimulateConsumption(rows);
  PhiMatrix phi = MaterializePhi(table, *predicate->phi());
  auto domains = predicate->DeriveDomains({{0.1, 1.0}});
  if (!domains.ok()) {
    std::fprintf(stderr, "domain derivation failed: %s\n",
                 domains.status().ToString().c_str());
    return 1;
  }

  IndexSetOptions options;
  options.budget = 50;
  WallTimer build_timer;
  auto set = PlanarIndexSet::Build(std::move(phi), *domains, options);
  if (!set.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 set.status().ToString().c_str());
    return 1;
  }
  std::printf("built %zu Planar indices in %.2f s\n\n", set->num_indices(),
              build_timer.ElapsedSeconds());

  std::printf("%-28s %-10s %-12s %-12s %s\n", "query", "rows", "planar",
              "scan", "speedup");
  for (double threshold : {0.15, 0.4, 0.65, 0.9}) {
    auto query = predicate->Bind({threshold});
    if (!query.ok()) return 1;
    WallTimer planar_timer;
    const InequalityResult via_index = set->Inequality(*query);
    const double planar_ms = planar_timer.ElapsedMillis();
    WallTimer scan_timer;
    const InequalityResult via_scan = ScanInequality(set->phi(), *query);
    const double scan_ms = scan_timer.ElapsedMillis();
    if (via_index.ids.size() != via_scan.ids.size()) {
      std::fprintf(stderr, "MISMATCH\n");
      return 1;
    }
    char name[64];
    std::snprintf(name, sizeof(name), "Critical_Consume(%.2f)", threshold);
    std::printf("%-28s %-10zu %-12s %-12s %.1fx\n", name,
                via_index.ids.size(),
                (std::to_string(planar_ms) + " ms").c_str(),
                (std::to_string(scan_ms) + " ms").c_str(),
                scan_ms / (planar_ms > 0 ? planar_ms : 1e-9));
  }
  return 0;
}
