// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Band and conjunctive predicates over one index set: an auditor wants
// households whose power factor lies in a band (neither efficient nor
// already-flagged), and intersections of several runtime-parameterized
// half-space constraints. Both run on the same Planar indices that serve
// the plain Critical_Consume queries — with EXPLAIN output showing the
// chosen plan.
//
// Build & run:   ./build/examples/band_monitor [--rows=300000]

#include <cstdio>

#include "common/flags.h"
#include "common/timer.h"
#include "core/band.h"
#include "core/conjunction.h"
#include "core/function.h"
#include "core/index_set.h"
#include "datagen/realworld_sim.h"

using namespace planar;  // NOLINT: example brevity

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 300000));

  std::printf("simulating %zu consumption tuples...\n", rows);
  const Dataset table = SimulateConsumption(rows);
  PhiMatrix phi = MaterializePhi(table, PowerFactorFunction());

  // Queries have the form active - theta * (voltage * current) cmp 0 with
  // theta in (0.1, 1.0): domains (1, 1) x (-1.0, -0.1).
  IndexSetOptions options;
  options.budget = 40;
  auto set = PlanarIndexSet::Build(std::move(phi),
                                   {{1.0, 1.0}, {-1.0, -0.1}}, options);
  if (!set.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 set.status().ToString().c_str());
    return 1;
  }
  std::printf("built %zu indices over %zu tuples\n\n", set->num_indices(),
              set->size());

  // --- Band: households with power factor in [0.55, 0.70] -------------
  // pf in [t1, t2]  <=>  active - t2*VI <= 0  AND  active - t1*VI >= 0,
  // i.e. the band  0 <= <(1, -t1'), phi> ...; expressed directly as a
  // band on <(1, -0.625), phi> would change both cuts together, so use
  // the conjunction form for independent thresholds and the band form
  // for a slab around one hyperplane.
  {
    ConjunctiveQuery audit;
    audit.constraints.push_back(
        {{1.0, -0.70}, 0.0, Comparison::kLessEqual});     // pf <= 0.70
    audit.constraints.push_back(
        {{1.0, -0.55}, 0.0, Comparison::kGreaterEqual});  // pf >= 0.55
    WallTimer timer;
    auto result = ConjunctiveInequality(*set, audit);
    if (!result.ok()) return 1;
    std::printf(
        "conjunction pf in [0.55, 0.70]: %zu households in %.2f ms "
        "(driver index %d, %zu verified of %zu)\n",
        result->ids.size(), timer.ElapsedMillis(), result->stats.index_used,
        result->stats.verified, set->size());
  }

  // --- Slab: tuples within a margin of the 0.625 threshold ------------
  {
    BandQuery slab;
    slab.a = {1.0, -0.625};
    slab.lo = 50.0;   // watts above the 0.625 threshold ...
    slab.hi = 400.0;  // ... up to 400 W above it
    WallTimer timer;
    auto result = BandInequality(*set, slab);
    if (!result.ok()) return 1;
    std::printf(
        "slab active - 0.625*VI in [50, 400] W: %zu households in %.2f ms "
        "(%.1f%% pruned)\n",
        result->ids.size(), timer.ElapsedMillis(),
        100.0 * result->stats.PruningFraction());
  }

  // --- EXPLAIN ---------------------------------------------------------
  {
    const ScalarProductQuery q{{1.0, -0.4}, 0.0, Comparison::kLessEqual};
    std::printf("\nEXPLAIN Critical_Consume(0.40):\n  %s\n",
                set->Explain(q).ToString().c_str());
    const auto bounds = set->EstimateSelectivity(q);
    std::printf("  selectivity bounds before execution: [%.2f%%, %.2f%%]\n",
                100.0 * bounds.lo, 100.0 * bounds.hi);
  }
  return 0;
}
