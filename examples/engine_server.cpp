// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Engine walkthrough: a concurrent query-serving runtime over a catalog
// of named Planar index sets. Demonstrates the full serving lifecycle —
// install, concurrent clients, a live (non-blocking) index rebuild,
// per-request deadlines, admission-control shedding, and the metrics
// snapshot — in one runnable program.
//
// Build & run:   ./build/examples/engine_server

#include <cstdio>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/function.h"
#include "engine/engine.h"

using namespace planar;  // NOLINT: example brevity

namespace {

PlanarIndexSet BuildSet(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset points(3);
  for (size_t i = 0; i < n; ++i) {
    points.AppendRow(
        {rng.Uniform(1, 100), rng.Uniform(1, 100), rng.Uniform(1, 100)});
  }
  IdentityFunction phi_fn(3);
  PhiMatrix phi = MaterializePhi(points, phi_fn);
  IndexSetOptions options;
  options.budget = 12;
  auto set = PlanarIndexSet::Build(
      std::move(phi), {{1.0, 8.0}, {1.0, 8.0}, {1.0, 8.0}}, options);
  PLANAR_CHECK(set.ok());
  return std::move(set).value();
}

}  // namespace

int main() {
  // 1. A catalog maps names to refcounted index-set snapshots. Building
  //    happens outside any lock; Install is an O(1) pointer swap.
  Catalog catalog;
  catalog.Install("products", BuildSet(50000, 1));
  std::printf("installed 'products' (%zu points)\n",
              catalog.Find("products")->size());

  // 2. An engine: bounded admission queue + worker pool, bound to the
  //    catalog. Requests are admitted or shed, never block the caller.
  EngineOptions options;
  options.num_workers = 4;
  options.queue_capacity = 512;
  options.max_batch = 16;
  Engine engine(&catalog, options);

  // 3. Concurrent clients fire scalar product queries while, in
  //    parallel, the "products" set is rebuilt and swapped live —
  //    in-flight queries keep their snapshot and are never invalidated.
  std::thread rebuilder([&catalog] {
    catalog.Install("products", BuildSet(60000, 2));  // never blocks readers
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&engine, c] {
      Rng rng(static_cast<uint64_t>(c) + 10);
      for (int i = 0; i < 50; ++i) {
        EngineRequest request;
        request.target = "products";
        request.kind = i % 4 == 0 ? QueryKind::kTopK : QueryKind::kInequality;
        request.k = 5;
        request.query.a = {rng.Uniform(1, 8), rng.Uniform(1, 8),
                           rng.Uniform(1, 8)};
        request.query.b = rng.Uniform(200, 900);
        request.deadline = Deadline::After(50.0);  // 50 ms budget
        auto future = engine.Submit(std::move(request));
        if (!future.ok()) continue;  // queue full: request was shed
        (void)future->get();
      }
    });
  }
  rebuilder.join();
  for (std::thread& t : clients) t.join();

  // 4. Deadlines are enforced inside the verification loops: a request
  //    whose budget is already spent comes back as kDeadlineExceeded
  //    without finishing (or even starting) the scalar product work.
  EngineRequest tight;
  tight.target = "products";
  tight.query = {{3.0, 5.0, 2.0}, 400.0, Comparison::kLessEqual};
  tight.deadline = Deadline::After(0.0);
  auto expired = engine.Submit(tight);
  PLANAR_CHECK(expired.ok());
  std::printf("expired deadline -> %s\n",
              expired->get().status.ToString().c_str());

  // 5. Unknown targets fail per-request, not per-engine.
  EngineRequest missing = tight;
  missing.target = "users";
  missing.deadline = Deadline::Infinite();
  auto not_found = engine.Submit(missing);
  PLANAR_CHECK(not_found.ok());
  std::printf("unknown target  -> %s\n",
              not_found->get().status.ToString().c_str());

  // 6. Graceful drain, then the built-in observability: lifecycle
  //    counters and latency/queue-wait histograms.
  engine.Drain();
  std::printf("\n%s\n", engine.Snapshot().ToString().c_str());
  return 0;
}
