// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Example 2 of the paper: two fleets move in a 2D plane — one on
// concentric circles, one on straight lines (Figure 1). "Which pairs will
// be within S miles of each other at future time t?" is a scalar product
// query, so the line-movers are indexed once and every circle-mover asks
// one query per time instant. No spatio-temporal index (TPR/Bx/MBR-tree)
// supports circular motion; the Planar index does not care.
//
// Build & run:   ./build/examples/moving_objects [--n=2000]

#include <algorithm>
#include <cstdio>

#include "common/flags.h"
#include "common/random.h"
#include "common/timer.h"
#include "mobility/intersection.h"

using namespace planar;  // NOLINT: example brevity

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 2000));
  const double distance = 5.0;  // miles

  Rng rng(99);
  // Circle-movers: radius 1..100 mi, angular speed 1..5 deg/min.
  const auto circulars = GenerateCircularObjects(n, 1.0, 100.0, 1.0, 5.0,
                                                 rng);
  // Line-movers around the same origin, speed 0.1..1 mi/min.
  auto linears = GenerateLinearObjects(n, 200.0, 0.1, 1.0, false, rng);
  for (auto& o : linears) {
    o.p0.x -= 100.0;
    o.p0.y -= 100.0;
  }

  // Index the line-movers once, for anticipated query times 10..15 min.
  const std::vector<double> instants{10, 11, 12, 13, 14, 15};
  WallTimer build_timer;
  auto index = CircularIntersectionIndex::Build(linears, instants);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "indexed %zu line-movers with %zu Planar indices in %.2f s\n",
      linears.size(), index->set().num_indices(),
      build_timer.ElapsedSeconds());

  for (double t : {10.0, 12.5, 15.0}) {
    WallTimer planar_timer;
    QueryStats stats;
    auto pairs = index->Query(circulars, t, distance, &stats);
    const double planar_ms = planar_timer.ElapsedMillis();

    WallTimer baseline_timer;
    auto reference = BaselineIntersect(circulars, linears, t, distance);
    const double baseline_ms = baseline_timer.ElapsedMillis();

    std::sort(pairs.begin(), pairs.end());
    std::sort(reference.begin(), reference.end());
    std::printf(
        "t = %4.1f min: %6zu intersecting pairs | planar %8.2f ms "
        "vs baseline %8.2f ms (%4.1fx) | exact: %s\n",
        t, pairs.size(), planar_ms, baseline_ms,
        baseline_ms / (planar_ms > 0 ? planar_ms : 1e-9),
        pairs == reference ? "yes" : "NO");
  }
  return 0;
}
