// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Example 1 of the paper: evaluating the complex SQL function
//
//   CREATE FUNCTION Critical_Consume(threshold) RETURN ID
//   FROM Consumption
//   WHERE ActivePower - threshold * Voltage * Current <= 0
//
// as the scalar product query <(1, -threshold), phi(x)> <= 0 with
// phi(x) = (ActivePower, Voltage * Current). The threshold is only known
// at query time, so Oracle-style function-based indexes do not apply —
// the Planar index does.
//
// Build & run:   ./build/examples/power_factor_sql [--rows=500000]

#include <cstdio>

#include "common/flags.h"
#include "common/timer.h"
#include "core/function.h"
#include "core/index_set.h"
#include "core/scan.h"
#include "datagen/realworld_sim.h"
#include "datagen/workload.h"

using namespace planar;  // NOLINT: example brevity

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 500000));

  std::printf("simulating %zu household consumption tuples...\n", rows);
  const Dataset consumption = SimulateConsumption(rows);

  // Materialize phi(x) = (active_power, voltage * current).
  PowerFactorFunction phi_fn;
  PhiMatrix phi = MaterializePhi(consumption, phi_fn);

  // Thresholds come from (0.1, 1.0), so the parameter domains are
  // a_0 = 1 (fixed) and a_1 in [-1.0, -0.1].
  PowerFactorWorkload workload(0.1, 1.0, /*seed=*/7);
  IndexSetOptions options;
  options.budget = 50;
  WallTimer build_timer;
  auto set = PlanarIndexSet::Build(std::move(phi), workload.Domains(),
                                   options);
  if (!set.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 set.status().ToString().c_str());
    return 1;
  }
  std::printf("built %zu indices in %.2f s\n", set->num_indices(),
              build_timer.ElapsedSeconds());

  // Evaluate Critical_Consume for a few thresholds.
  for (double threshold : {0.2, 0.5, 0.8}) {
    ScalarProductQuery q{{1.0, -threshold}, 0.0, Comparison::kLessEqual};

    WallTimer index_timer;
    const InequalityResult via_index = set->Inequality(q);
    const double index_ms = index_timer.ElapsedMillis();

    WallTimer scan_timer;
    const InequalityResult via_scan = ScanInequality(set->phi(), q);
    const double scan_ms = scan_timer.ElapsedMillis();

    std::printf(
        "Critical_Consume(%.1f): %zu critical households "
        "(%.1f%% selectivity) | planar %.2f ms (%.1f%% pruned, index %d) "
        "vs scan %.2f ms -> %.1fx\n",
        threshold, via_index.ids.size(),
        100.0 * static_cast<double>(via_index.ids.size()) /
            static_cast<double>(set->size()),
        index_ms,
        100.0 * via_index.stats.PruningFraction(),
        via_index.stats.index_used, scan_ms,
        scan_ms / (index_ms > 0 ? index_ms : 1e-9));
    if (via_index.ids.size() != via_scan.ids.size()) {
      std::fprintf(stderr, "MISMATCH against the baseline!\n");
      return 1;
    }
  }
  return 0;
}
