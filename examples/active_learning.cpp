// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Pool-based active learning (Section 7.5.2): a linear classifier asks for
// the top-k unlabeled points nearest to its hyperplane — the paper's top-k
// nearest neighbor query — labels them, and improves. The Planar index
// answers the queries exactly while evaluating only a fraction of the
// pool, unlike the approximate hashing methods of Jain et al. / Liu et al.
//
// Build & run:   ./build/examples/active_learning [--pool=50000]

#include <cstdio>

#include "common/flags.h"
#include "common/random.h"
#include "learn/active_learner.h"

using namespace planar;  // NOLINT: example brevity

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t pool_size = static_cast<size_t>(flags.GetInt("pool", 50000));

  // An unlabeled pool in [0, 1]^4; the hidden concept is a linear
  // separator the oracle knows.
  Rng rng(7);
  PhiMatrix pool(4);
  PhiMatrix features(4);
  std::vector<int> truth;
  for (size_t i = 0; i < pool_size; ++i) {
    const std::vector<double> row{rng.Uniform(0.01, 1), rng.Uniform(0.01, 1),
                                  rng.Uniform(0.01, 1), rng.Uniform(0.01, 1)};
    pool.AppendRow(row);
    features.AppendRow(row);
    const double hidden = 1.5 * row[0] + 0.5 * row[1] + row[2] + 2 * row[3];
    truth.push_back(hidden >= 2.4 ? 1 : -1);
  }

  IndexSetOptions options;
  options.budget = 20;
  auto set = PlanarIndexSet::Build(
      std::move(pool), std::vector<ParameterDomain>(4, {0.5, 2.5}), options);
  if (!set.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 set.status().ToString().c_str());
    return 1;
  }

  ActiveLearner::Options learner_options;
  learner_options.batch_size = 10;
  learner_options.learning_rate = 0.05;
  ActiveLearner learner(
      &*set, [&](uint32_t row) { return truth[row]; },
      LinearClassifier({1.0, 1.0, 1.0, 1.0}, 2.0), learner_options);

  std::printf("pool: %zu points, %zu Planar indices\n", set->size(),
              set->num_indices());
  std::printf("%-6s %-9s %-9s %-10s %s\n", "round", "labeled", "updates",
              "checked", "pool accuracy");
  for (int round = 1; round <= 25; ++round) {
    auto outcome = learner.Step();
    if (!outcome.ok()) {
      std::fprintf(stderr, "step failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    if (round % 5 == 0 || round == 1) {
      std::printf("%-6d %-9zu %-9zu %-10zu %.4f\n", round,
                  learner.total_labeled(), outcome->model_updates,
                  outcome->points_checked,
                  learner.model().Accuracy(features, truth));
    }
  }
  std::printf(
      "labeled %zu of %zu points (%.2f%%) to train the classifier\n",
      learner.total_labeled(), pool_size,
      100.0 * static_cast<double>(learner.total_labeled()) /
          static_cast<double>(pool_size));
  return 0;
}
