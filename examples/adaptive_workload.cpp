// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Query-driven index adaptation — the paper's future-work direction
// ("dynamically update the indices based on past queries", Section 8).
// A workload whose parameter distribution shifts over time defeats any
// fixed budget of sampled indices; AdaptiveIndexSet re-learns its
// normals from the recent query log and recovers the pruning power.
//
// Build & run:   ./build/examples/adaptive_workload [--n=200000]

#include <cstdio>

#include "common/flags.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/adaptive.h"

using namespace planar;  // NOLINT: example brevity

namespace {

// Queries drawn from a narrow cone around `center` (a "hot" workload).
ScalarProductQuery HotQuery(const std::vector<double>& center, Rng& rng) {
  ScalarProductQuery q;
  q.a.resize(center.size());
  double scale = 0.0;
  for (size_t i = 0; i < center.size(); ++i) {
    q.a[i] = center[i] * rng.Uniform(0.95, 1.05);
    scale += q.a[i] * 100.0;
  }
  q.b = 0.3 * scale;
  q.cmp = Comparison::kLessEqual;
  return q;
}

struct Phase {
  const char* name;
  std::vector<double> center;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 200000));

  Rng rng(11);
  PhiMatrix pool(4);
  for (size_t i = 0; i < n; ++i) {
    pool.AppendRow({rng.Uniform(1, 100), rng.Uniform(1, 100),
                    rng.Uniform(1, 100), rng.Uniform(1, 100)});
  }
  IndexSetOptions set_options;
  set_options.budget = 12;
  auto set = PlanarIndexSet::Build(
      std::move(pool), std::vector<ParameterDomain>(4, {0.5, 20.0}),
      set_options);
  if (!set.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 set.status().ToString().c_str());
    return 1;
  }
  AdaptiveOptions adaptive_options;
  adaptive_options.history = 128;
  AdaptiveIndexSet adaptive(std::move(set).value(), adaptive_options);

  // The workload shifts through three "hot" parameter regions the
  // sampled indices are unlikely to cover well.
  const Phase phases[] = {
      {"phase A (hot normal ~ (18, 1, 1, 1))", {18.0, 1.0, 1.0, 1.0}},
      {"phase B (hot normal ~ (1, 17, 2, 9))", {1.0, 17.0, 2.0, 9.0}},
      {"phase C (hot normal ~ (6, 1, 19, 1))", {6.0, 1.0, 19.0, 1.0}},
  };
  std::printf("%-40s %-16s %-16s %-10s\n", "workload", "before adapt",
              "after adapt", "replaced");
  for (const Phase& phase : phases) {
    Rng qrng(rng.NextUint64());
    auto measure = [&](int queries) {
      RunningStats ms;
      for (int i = 0; i < queries; ++i) {
        WallTimer timer;
        (void)adaptive.Inequality(HotQuery(phase.center, qrng));
        ms.Add(timer.ElapsedMillis());
      }
      return ms.mean();
    };
    const double before = measure(60);
    auto replaced = adaptive.Readapt();
    if (!replaced.ok()) {
      std::fprintf(stderr, "readapt failed: %s\n",
                   replaced.status().ToString().c_str());
      return 1;
    }
    const double after = measure(60);
    std::printf("%-40s %-16s %-16s %zu indices\n", phase.name,
                FormatMillis(before).c_str(), FormatMillis(after).c_str(),
                *replaced);
  }
  return 0;
}
