// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Quickstart: index a function of a small dataset with a budget of Planar
// indices and answer scalar product queries — the inequality query
// (Problem 1) and the top-k nearest neighbor query (Problem 2).
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "common/random.h"
#include "core/function.h"
#include "core/index_set.h"
#include "core/scan.h"

using namespace planar;  // NOLINT: example brevity

int main() {
  // 1. A dataset of 100,000 points in R^3 with attributes in (1, 100).
  Rng rng(42);
  Dataset points(3);
  for (int i = 0; i < 100000; ++i) {
    points.AppendRow(
        {rng.Uniform(1, 100), rng.Uniform(1, 100), rng.Uniform(1, 100)});
  }

  // 2. The application-specific function phi, fixed at indexing time.
  //    Here: the identity (half-space range searching); swap in any
  //    PhiFunction — e.g. QuadraticFeatureFunction for distance
  //    predicates or your own CallbackFunction.
  IdentityFunction phi_fn(3);
  PhiMatrix phi = MaterializePhi(points, phi_fn);

  // 3. Build a budget of 20 Planar indices. The only prior knowledge the
  //    index needs is the *domain* of each future query parameter
  //    (Section 4.1 of the paper) — here a_i in [1, 8].
  IndexSetOptions options;
  options.budget = 20;
  auto set = PlanarIndexSet::Build(
      std::move(phi), {{1.0, 8.0}, {1.0, 8.0}, {1.0, 8.0}}, options);
  if (!set.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 set.status().ToString().c_str());
    return 1;
  }
  std::printf("built %zu Planar indices over %zu points\n",
              set->num_indices(), set->size());

  // 4. Problem 1 — inequality query, parameters known only now:
  //    3 x0 + 5 x1 + 2 x2 <= 400.
  ScalarProductQuery query{{3.0, 5.0, 2.0}, 400.0, Comparison::kLessEqual};
  InequalityResult result = set->Inequality(query);
  std::printf(
      "inequality query: %zu matches; pruned %.1f%% of points without "
      "evaluating the scalar product (index %d)\n",
      result.ids.size(), 100.0 * result.stats.PruningFraction(),
      result.stats.index_used);

  // Cross-check against the sequential-scan baseline.
  const InequalityResult reference = ScanInequality(set->phi(), query);
  std::printf("baseline scan agrees: %s\n",
              reference.ids.size() == result.ids.size() ? "yes" : "NO");

  // 5. Problem 2 — the 5 satisfying points nearest the query hyperplane.
  auto topk = set->TopK(query, 5);
  if (!topk.ok()) {
    std::fprintf(stderr, "top-k failed: %s\n",
                 topk.status().ToString().c_str());
    return 1;
  }
  std::printf("top-5 nearest satisfying points (checked %zu of %zu):\n",
              topk->stats.checked(), set->size());
  for (const Neighbor& n : topk->neighbors) {
    std::printf("  point %u at distance %.4f\n", n.id, n.distance);
  }

  // 6. The index is dynamic: update a point and query again.
  const double moved[] = {1.0, 1.0, 1.0};
  (void)set->UpdateRow(0, moved);
  std::printf("after moving point 0 to (1,1,1): match count %zu\n",
              set->Inequality(query).ids.size());
  return 0;
}
