// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// planar_cli — build, inspect, and query Planar index sets from the
// command line.
//
//   planar_cli build --csv data.csv [--delimiter=';'] [--header]
//                    [--columns=2,3,4,5] [--max_rows=N]
//                    --domains="1:4,1:4,-2:-1" [--budget=50]
//                    --out=index.planar
//   planar_cli info  --index=index.planar
//   planar_cli query --index=index.planar --a="1,2,-0.5" --b=10
//                    [--cmp=le|ge] [--topk=K] [--explain]
//   planar_cli count --index=index.planar --a="1,2,-0.5" --b=10
//                    [--cmp=le|ge] [--tolerance=N] [--rel=F]
//   planar_cli append --index=index.planar (--csv=more.csv | --rows="1,2;3,4")
//                     [--out=index.planar]
//
// `append` routes the new rows through the ingest delta path (the same
// IngestManager the engine serves writes with), forces a background
// merge via Flush, and re-serializes the merged set — so the written
// file is byte-identical to a from-scratch build over the full data.
//
// The feature space of a CLI-built index is the raw CSV columns
// (phi = identity); use the library API for nonlinear phi.

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/timer.h"
#include "core/index_set.h"
#include "core/scan.h"
#include "core/serialize.h"
#include "datagen/csv_loader.h"
#include "engine/catalog.h"
#include "ingest/ingest.h"

namespace planar {
namespace {

// Parses "a,b,c" into doubles.
Result<std::vector<double>> ParseDoubles(const std::string& text) {
  std::vector<double> out;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const std::string piece =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (piece.empty()) {
      return Status::InvalidArgument("empty element in list '" + text + "'");
    }
    char* end = nullptr;
    out.push_back(std::strtod(piece.c_str(), &end));
    if (end == piece.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad number '" + piece + "'");
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// Parses "lo:hi,lo:hi" into domains.
Result<std::vector<ParameterDomain>> ParseDomains(const std::string& text) {
  std::vector<ParameterDomain> out;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const std::string piece =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    const size_t colon = piece.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("domain '" + piece +
                                     "' is not of the form lo:hi");
    }
    PLANAR_ASSIGN_OR_RETURN(std::vector<double> lo,
                            ParseDoubles(piece.substr(0, colon)));
    PLANAR_ASSIGN_OR_RETURN(std::vector<double> hi,
                            ParseDoubles(piece.substr(colon + 1)));
    if (lo.size() != 1 || hi.size() != 1) {
      return Status::InvalidArgument("domain '" + piece +
                                     "' is not of the form lo:hi");
    }
    out.push_back({lo[0], hi[0]});
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int RunBuild(const FlagParser& flags) {
  const std::string csv = flags.GetString("csv", "");
  const std::string out_path = flags.GetString("out", "index.planar");
  if (csv.empty()) {
    std::fprintf(stderr, "build requires --csv\n");
    return 2;
  }
  CsvOptions csv_options;
  const std::string delimiter = flags.GetString("delimiter", ",");
  csv_options.delimiter = delimiter.empty() ? ',' : delimiter[0];
  csv_options.has_header = flags.GetBool("header", false);
  csv_options.max_rows =
      static_cast<size_t>(flags.GetInt("max_rows", 0));
  if (flags.Has("columns")) {
    auto columns = ParseDoubles(flags.GetString("columns", ""));
    if (!columns.ok()) return Fail(columns.status());
    for (double c : *columns) {
      csv_options.columns.push_back(static_cast<int>(c));
    }
  }
  WallTimer load_timer;
  auto data = LoadCsv(csv, csv_options);
  if (!data.ok()) return Fail(data.status());
  std::printf("loaded %zu rows x %zu columns in %.2f s\n", data->size(),
              data->dim(), load_timer.ElapsedSeconds());

  auto domains = ParseDomains(flags.GetString(
      "domains", std::string()));
  if (!domains.ok()) return Fail(domains.status());

  IndexSetOptions options;
  options.budget = static_cast<size_t>(flags.GetInt("budget", 50));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  WallTimer build_timer;
  auto set = PlanarIndexSet::Build(std::move(*data), *domains, options);
  if (!set.ok()) return Fail(set.status());
  std::printf("built %zu Planar indices in %.2f s (%.1f MB)\n",
              set->num_indices(), build_timer.ElapsedSeconds(),
              static_cast<double>(set->MemoryUsage()) / 1e6);
  const Status saved = SaveIndexSet(*set, out_path);
  if (!saved.ok()) return Fail(saved);
  std::printf("saved to %s\n", out_path.c_str());
  return 0;
}

int RunInfo(const FlagParser& flags) {
  auto set = LoadIndexSet(flags.GetString("index", "index.planar"));
  if (!set.ok()) return Fail(set.status());
  std::printf("points: %zu  dimensions: %zu  indices: %zu  memory: %.1f MB\n",
              set->size(), set->phi().dim(), set->num_indices(),
              static_cast<double>(set->MemoryUsage()) / 1e6);
  for (size_t i = 0; i < set->num_indices(); ++i) {
    const PlanarIndex& index = set->index(i);
    std::printf("  index %zu: octant %s normal (", i,
                index.octant().ToString().c_str());
    for (size_t j = 0; j < index.normal().size(); ++j) {
      std::printf("%s%.4g", j == 0 ? "" : ", ", index.normal()[j]);
    }
    std::printf(")\n");
  }
  return 0;
}

int RunQuery(const FlagParser& flags) {
  auto set = LoadIndexSet(flags.GetString("index", "index.planar"));
  if (!set.ok()) return Fail(set.status());

  auto a = ParseDoubles(flags.GetString("a", ""));
  if (!a.ok()) return Fail(a.status());
  ScalarProductQuery q;
  q.a = *a;
  q.b = flags.GetDouble("b", 0.0);
  q.cmp = flags.GetString("cmp", "le") == "ge" ? Comparison::kGreaterEqual
                                               : Comparison::kLessEqual;
  if (q.a.size() != set->phi().dim()) {
    std::fprintf(stderr, "--a needs %zu coefficients\n", set->phi().dim());
    return 2;
  }

  if (flags.GetBool("explain", false)) {
    std::printf("plan: %s\n", set->Explain(q).ToString().c_str());
    const auto bounds = set->EstimateSelectivity(q);
    std::printf("selectivity bounds: [%.2f%%, %.2f%%]\n", 100.0 * bounds.lo,
                100.0 * bounds.hi);
  }

  const int64_t topk = flags.GetInt("topk", 0);
  WallTimer timer;
  if (topk > 0) {
    auto result = set->TopK(q, static_cast<size_t>(topk));
    if (!result.ok()) return Fail(result.status());
    std::printf("%zu nearest satisfying rows in %.3f ms (checked %zu):\n",
                result->neighbors.size(), timer.ElapsedMillis(),
                result->stats.checked());
    for (const Neighbor& n : result->neighbors) {
      std::printf("  row %u  distance %.6g\n", n.id, n.distance);
    }
    return 0;
  }
  const InequalityResult result = set->Inequality(q);
  std::printf("%zu matching rows in %.3f ms (%.1f%% pruned, index %d)\n",
              result.ids.size(), timer.ElapsedMillis(),
              100.0 * result.stats.PruningFraction(),
              result.stats.index_used);
  const size_t show = std::min<size_t>(result.ids.size(), 10);
  for (size_t i = 0; i < show; ++i) {
    std::printf("  row %u\n", result.ids[i]);
  }
  if (result.ids.size() > show) {
    std::printf("  ... and %zu more\n", result.ids.size() - show);
  }
  return 0;
}

int RunCount(const FlagParser& flags) {
  auto set = LoadIndexSet(flags.GetString("index", "index.planar"));
  if (!set.ok()) return Fail(set.status());

  auto a = ParseDoubles(flags.GetString("a", ""));
  if (!a.ok()) return Fail(a.status());
  ScalarProductQuery q;
  q.a = *a;
  q.b = flags.GetDouble("b", 0.0);
  q.cmp = flags.GetString("cmp", "le") == "ge" ? Comparison::kGreaterEqual
                                               : Comparison::kLessEqual;
  if (q.a.size() != set->phi().dim()) {
    std::fprintf(stderr, "--a needs %zu coefficients\n", set->phi().dim());
    return 2;
  }

  CountTolerance tolerance;
  tolerance.absolute = flags.GetDouble("tolerance", 0.0);
  tolerance.relative = flags.GetDouble("rel", 0.0);

  WallTimer timer;
  auto result = set->CountInequality(q, tolerance);
  if (!result.ok()) return Fail(result.status());
  std::printf("bounds [%zu, %zu]  estimate %zu%s in %.3f ms "
              "(%s%zu rows verified, index %d)\n",
              result->lower, result->upper, result->estimate,
              result->model_estimated ? " (model)" : "",
              timer.ElapsedMillis(), result->refined ? "refined, " : "",
              result->stats.verified, result->stats.index_used);
  if (result->exact) {
    std::printf("exact count: %zu\n", result->estimate);
    return 0;
  }
  // The approximate answer came back within tolerance without resolving
  // every II row; re-run at tolerance 0 so the user also sees the truth.
  WallTimer exact_timer;
  auto exact = set->CountInequality(q);
  if (!exact.ok()) return Fail(exact.status());
  std::printf("exact count: %zu in %.3f ms (%zu rows verified)\n",
              exact->estimate, exact_timer.ElapsedMillis(),
              exact->stats.verified);
  return 0;
}

int RunAppend(const FlagParser& flags) {
  const std::string index_path = flags.GetString("index", "index.planar");
  const std::string out_path = flags.GetString("out", index_path);
  auto set = LoadIndexSet(index_path);
  if (!set.ok()) return Fail(set.status());
  const size_t dim = set->phi().dim();
  const size_t before = set->size();

  // Gather the rows to append: a CSV file, inline --rows, or both.
  std::vector<double> rows;
  if (flags.Has("csv")) {
    CsvOptions csv_options;
    const std::string delimiter = flags.GetString("delimiter", ",");
    csv_options.delimiter = delimiter.empty() ? ',' : delimiter[0];
    csv_options.has_header = flags.GetBool("header", false);
    auto data = LoadCsv(flags.GetString("csv", ""), csv_options);
    if (!data.ok()) return Fail(data.status());
    if (data->dim() != dim) {
      std::fprintf(stderr, "csv has %zu columns, index expects %zu\n",
                   data->dim(), dim);
      return 2;
    }
    rows.insert(rows.end(), data->data(), data->data() + data->size() * dim);
  }
  if (flags.Has("rows")) {
    std::string text = flags.GetString("rows", "");
    size_t start = 0;
    while (start <= text.size()) {
      const size_t semi = text.find(';', start);
      const std::string piece =
          text.substr(start, semi == std::string::npos ? std::string::npos
                                                       : semi - start);
      auto row = ParseDoubles(piece);
      if (!row.ok()) return Fail(row.status());
      if (row->size() != dim) {
        std::fprintf(stderr, "row '%s' has %zu values, index expects %zu\n",
                     piece.c_str(), row->size(), dim);
        return 2;
      }
      rows.insert(rows.end(), row->begin(), row->end());
      if (semi == std::string::npos) break;
      start = semi + 1;
    }
  }
  if (rows.empty()) {
    std::fprintf(stderr, "append requires --csv and/or --rows\n");
    return 2;
  }

  // The library write path: install the set, hand it to an
  // IngestManager, append through the delta, and force a merge. The
  // final catalog snapshot is the merged set.
  constexpr char kName[] = "cli";
  Catalog catalog;
  catalog.Install(kName, std::move(set).value());
  const size_t count = rows.size() / dim;
  IngestOptions options;
  options.delta_capacity = count;
  options.merge_threshold = count;
  IngestManager manager(&catalog, options);
  Status status = manager.Manage(kName);
  if (!status.ok()) return Fail(status);
  WallTimer timer;
  auto first = manager.Append(kName, rows);
  if (!first.ok()) return Fail(first.status());
  status = manager.Flush(kName);
  if (!status.ok()) return Fail(status);
  manager.Stop();
  const Catalog::SetPtr merged = catalog.Find(kName);
  std::printf("appended %zu rows (ids %u..%zu) in %.2f s: %zu -> %zu points\n",
              count, first.value(), before + count - 1,
              timer.ElapsedSeconds(), before, merged->size());
  status = SaveIndexSet(*merged, out_path);
  if (!status.ok()) return Fail(status);
  std::printf("saved to %s\n", out_path.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::string command =
      flags.positional().empty() ? "" : flags.positional()[0];
  if (command == "build") return RunBuild(flags);
  if (command == "info") return RunInfo(flags);
  if (command == "query") return RunQuery(flags);
  if (command == "count") return RunCount(flags);
  if (command == "append") return RunAppend(flags);
  std::fprintf(stderr,
               "usage: planar_cli <build|info|query|count|append> [flags]\n"
               "  build --csv=f [--delimiter=';'] [--header] "
               "[--columns=0,1,2] --domains=lo:hi,... [--budget=N] "
               "[--out=index.planar]\n"
               "  info  --index=index.planar\n"
               "  query --index=index.planar --a=1,2,3 --b=10 [--cmp=le|ge] "
               "[--topk=K] [--explain]\n"
               "  count --index=index.planar --a=1,2,3 --b=10 [--cmp=le|ge] "
               "[--tolerance=N] [--rel=F]\n"
               "  append --index=index.planar (--csv=f | --rows='1,2;3,4') "
               "[--out=index.planar]\n");
  return 2;
}

}  // namespace
}  // namespace planar

int main(int argc, char** argv) { return planar::Run(argc, argv); }
