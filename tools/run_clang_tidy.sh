#!/usr/bin/env bash
# Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
#
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# library translation unit, using the compile_commands.json of an
# existing build directory.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
#   build-dir   directory containing compile_commands.json
#               (default: the first of build, build-release,
#               build-asan-ubsan that has one)
#
# Environment:
#   CLANG_TIDY  clang-tidy binary to use (default: clang-tidy)
#
# Exits 0 when clang-tidy is unavailable so that environments without
# LLVM (the pinned CI image runs it; minimal dev containers may not)
# still pass the full ctest suite; the CI clang-tidy job installs the
# real tool and enforces the gate.
set -u -o pipefail

cd "$(dirname "$0")/.."

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$CLANG_TIDY" > /dev/null 2>&1; then
  echo "run_clang_tidy: SKIPPED ($CLANG_TIDY not installed)"
  exit 0
fi

build_dir="${1:-}"
if [ -z "$build_dir" ]; then
  for candidate in build build-release build-asan-ubsan; do
    if [ -f "$candidate/compile_commands.json" ]; then
      build_dir="$candidate"
      break
    fi
  done
fi
if [ -z "$build_dir" ] || [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json found; configure first" >&2
  echo "  (cmake --preset release  # or: cmake -B build -S .)" >&2
  exit 1
fi

mapfile -t sources < <(find src -name '*.cc' | sort)
echo "run_clang_tidy: checking ${#sources[@]} files against $build_dir"

status=0
for source in "${sources[@]}"; do
  if ! "$CLANG_TIDY" --quiet -p "$build_dir" "$source"; then
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "run_clang_tidy: OK"
else
  echo "run_clang_tidy: findings above must be fixed" >&2
fi
exit "$status"
