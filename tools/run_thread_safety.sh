#!/usr/bin/env bash
# Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
#
# Single-command thread-safety gate: configures a clang build (the
# clang-tsa preset's settings) and compiles the whole tree with
# -Wthread-safety promoted to -Werror (added automatically by
# CMakeLists.txt for clang), so any unguarded access to an annotated
# field, missing REQUIRES, or lock-balance error fails the build.
#
# Usage: tools/run_thread_safety.sh [build-dir]
#
#   build-dir   where to configure/build (default: build-clang-tsa)
#
# Environment:
#   CLANG_CXX   clang++ binary to use (default: clang++)
#
# Exits 0 with a SKIPPED note when clang is unavailable so that
# environments without LLVM (minimal dev containers) still pass the
# full ctest suite; the CI clang-thread-safety job installs the real
# compiler and enforces the gate.
set -u -o pipefail

cd "$(dirname "$0")/.."

CLANG_CXX="${CLANG_CXX:-clang++}"
if ! command -v "$CLANG_CXX" > /dev/null 2>&1; then
  echo "run_thread_safety: SKIPPED ($CLANG_CXX not installed)"
  exit 0
fi

build_dir="${1:-build-clang-tsa}"

echo "run_thread_safety: configuring $build_dir with $CLANG_CXX"
if ! cmake -S . -B "$build_dir" \
    -DCMAKE_CXX_COMPILER="$CLANG_CXX" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON; then
  echo "run_thread_safety: configure failed" >&2
  exit 1
fi

jobs="$(nproc 2> /dev/null || echo 2)"
echo "run_thread_safety: building with -Werror=thread-safety (-j$jobs)"
if ! cmake --build "$build_dir" -j "$jobs"; then
  echo "run_thread_safety: FAILED — fix the thread-safety findings above" >&2
  echo "  (annotate guarded fields with PLANAR_GUARDED_BY, locked helpers" >&2
  echo "   with PLANAR_REQUIRES; see CONTRIBUTING 'Thread-safety" >&2
  echo "   annotations')" >&2
  exit 1
fi

echo "run_thread_safety: OK (tree is clean under -Werror=thread-safety)"
