#!/usr/bin/env python3
# Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
"""Repository lint: enforces planar invariants the compiler cannot.

Rules (library code under src/ unless stated otherwise):

  no-exceptions     `throw` / `try` are forbidden in src/ — the library
                    reports recoverable failures through Status/Result and
                    aborts on violated invariants via PLANAR_CHECK.
  no-stdout         `std::cout` / `std::cerr` / bare `printf(` / `puts(` /
                    `fprintf(stdout, ...)` are forbidden in src/; library
                    code must not write to the process's standard streams
                    (snprintf into caller buffers and the PLANAR_CHECK
                    fprintf(stderr) abort path are fine).
  no-bare-assert    `assert(` is forbidden in src/ — invariants go through
                    PLANAR_CHECK, which stays armed in release builds.
  no-detached-threads
                    `.detach()` is forbidden in src/ — every thread the
                    library spawns (e.g. the engine's worker pool under
                    src/engine) must be joined so shutdown is a
                    deterministic drain, never a process-exit race.
  sync-via-common-mutex
                    raw standard synchronization primitives (std::mutex
                    and friends, std::lock_guard / std::unique_lock /
                    std::scoped_lock / std::shared_lock,
                    std::condition_variable[_any]) are forbidden in src/
                    outside common/mutex.{h,cc}: all locking goes
                    through the capability-annotated planar::Mutex /
                    MutexLock / ReaderMutexLock / CondVar wrappers so
                    Clang's thread-safety analysis (-Werror=thread-safety
                    on clang builds) sees every critical section.
  relaxed-atomic-comment
                    every `std::memory_order_relaxed` use in src/ must
                    carry a `relaxed-ok:` comment (same line or within
                    the 8 lines above; consecutive uses chain) stating
                    why relaxed ordering suffices at that site — the
                    same annotate-the-contract discipline as the kernel
                    rules, so future edits cannot silently weaken a
                    cancellation flag or counter into a race.
  threads-via-pool  raw `std::thread` / `std::jthread` construction is
                    forbidden in src/ outside common/ (the ThreadPool's
                    home): library parallelism runs on the shared pinned
                    pool (common/thread_pool.h) so thread counts, core
                    affinity, and shutdown stay centralized. A site that
                    genuinely needs a dedicated thread (e.g. the ingest
                    background merger, which blocks on a CondVar for its
                    whole lifetime and must not occupy a pool slot)
                    carries a `threads-ok:` comment (same line or within
                    the 8 lines above; consecutive uses chain) justifying
                    the exemption. `std::thread::hardware_concurrency()`
                    never fires — querying the core count is not spawning
                    a thread.
  header-guards     every .h under src/, tests/, and bench/ must open with
                    `#ifndef PLANAR_<PATH>_<FILE>_H_` + matching #define
                    derived from its repo-relative path.
  no-march-native   `-march=native` is forbidden in committed build files
                    (CMakeLists.txt, *.cmake, CMakePresets.json): it makes
                    binaries non-portable and non-reproducible. SIMD use
                    goes through runtime dispatch (src/core/kernels) with
                    per-source -mavx2/-mfma on the dispatched TU only.
  core-sort-via-sort-util
                    `std::sort` / `std::stable_sort` of key or entry
                    containers is forbidden in src/core outside
                    sort_util.*: core index sorts must go through
                    SortEntries so the deterministic-parallel-sort
                    guarantee (identical output for any thread count)
                    holds everywhere. Sorting other containers (axes,
                    positions, heaps) is fine.
  kernel-ffp-contract
                    every kernel TU (src/core/kernels/*.cc) must appear in
                    a set_source_files_properties(...) block of
                    src/core/CMakeLists.txt that carries -ffp-contract=off:
                    the scalar/SIMD bit-identity contract (kernels.h)
                    forbids the compiler from contracting a*b+c into FMA,
                    and a newly added kernel TU that misses the flag breaks
                    it silently on -O2.
  agg-prefix-construction
                    mutating the prefix-aggregate arrays (`.sum` /
                    `.pos` / `.neg` container writes: element
                    assignment, push_back/assign/resize/clear and
                    friends) is forbidden in src/ outside
                    core/aggregate.cc — prefix aggregates must be
                    (re)built only through BuildPrefixAggregates /
                    PrefixAggregates::Clear so the canonical blocked
                    summation order (and hence bit-reproducible SUM
                    answers) holds everywhere. A site that genuinely
                    must touch the arrays carries an `agg-ok:` comment
                    (same line or within the 8 lines above; consecutive
                    uses chain). Scalar result fields (e.g.
                    AggregateResult::sum) never fire — only indexed or
                    container-method writes do.
  no-naked-float-in-core
                    the `float` type is forbidden in src/core outside the
                    mixed-precision module (core/mixed.{h,cc}) and the
                    kernel TUs (src/core/kernels/): every query answer
                    must come from the exact f64 pipeline, and a float
                    that leaks into index math silently destroys the
                    bit-identity guarantee the mixed mode is built
                    around. A deliberate reduced-precision site (mirror
                    storage, band compares) carries an `f32-ok:` comment
                    (same line or within the 8 lines above; consecutive
                    uses chain) stating why the precision loss is safe —
                    i.e. how the site is covered by the widened band +
                    exact re-verify contract.

Exit status 0 when clean, 1 with one "file:line: rule: message" diagnostic
per finding otherwise. Registered as a ctest (`ctest -R planar_lint`).
`--self-test` exercises the kernel-ffp-contract rule against synthetic
fixture trees (missing flag, covered multi-file block, flag only inside a
comment) and exits nonzero if the rule ever stops firing.
"""

import argparse
import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src",)
HEADER_GUARD_DIRS = ("src", "tests", "bench")

RE_EXCEPTION = re.compile(r"(?<![A-Za-z0-9_])(?:throw|try)(?![A-Za-z0-9_])")
RE_STDOUT = re.compile(
    r"std::cout|std::cerr"
    r"|(?<![A-Za-z0-9_])printf\s*\("      # printf( / std::printf( — not
                                          # snprintf( / fprintf(
    r"|(?<![A-Za-z0-9_])puts\s*\("
    r"|(?<![A-Za-z0-9_])fprintf\s*\(\s*stdout\b"
)
RE_ASSERT = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
RE_DETACH = re.compile(r"\.\s*detach\s*\(\s*\)")
# Raw standard synchronization primitives (sync-via-common-mutex). The
# annotated wrappers in src/common/mutex.{h,cc} are the only files
# allowed to name these.
RE_RAW_SYNC = re.compile(
    r"std::(?:recursive_mutex|timed_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|mutex"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock"
    r"|condition_variable_any|condition_variable)\b")
SYNC_EXEMPT_FILES = {Path("src/common/mutex.h"), Path("src/common/mutex.cc")}
# Number of lines above a memory_order_relaxed use within which a
# `relaxed-ok:` comment (or a previously covered use) must appear.
RELAXED_COMMENT_WINDOW = 8
# Raw thread construction (threads-via-pool). The negative lookahead
# keeps std::thread::hardware_concurrency() (a core-count query, not a
# spawn) from firing. src/common/ — the pool's home — is exempt.
RE_RAW_THREAD = re.compile(r"std::(?:jthread|thread)\b(?!\s*::)")
# Same annotate-the-exemption discipline (and window) as relaxed-ok:.
THREADS_COMMENT_WINDOW = 8
# std::sort(<first-arg>, ...) where the sorted container smells like index
# keys or (key, id) entries.
RE_CORE_SORT = re.compile(
    r"std::(?:stable_)?sort\s*\(\s*([A-Za-z_][A-Za-z0-9_.\->]*)")
RE_KEYLIKE = re.compile(r"entr|key", re.IGNORECASE)
# The `float` type token (no-naked-float-in-core). Word boundaries keep
# identifiers like FloatMirrorValue or f32_data from firing; comments and
# strings are stripped before matching.
RE_NAKED_FLOAT = re.compile(r"(?<![A-Za-z0-9_])float(?![A-Za-z0-9_])")
# Same annotate-the-exemption discipline (and window) as relaxed-ok:.
F32_COMMENT_WINDOW = 8
# The mixed-precision module and the kernel TUs are float's home.
F32_EXEMPT_FILES = {"mixed.h", "mixed.cc"}
# Prefix-aggregate mutations (agg-prefix-construction): element writes
# or container-method calls on a `.sum` / `.pos` / `.neg` member. Reads
# (`pre.sum[r]` on the right-hand side) and scalar assignments
# (`result.sum = ...`, no index / no container method) never fire.
RE_AGG_MUTATION = re.compile(
    r"(?:\.|->)(?:sum|pos|neg)\s*"
    r"(?:\[[^\]]*\]\s*(?:=(?!=)|\+=|-=|\*=|/=)"
    r"|\.\s*(?:push_back|emplace_back|assign|resize|clear|insert|erase"
    r"|shrink_to_fit|swap)\s*\()")
# Same annotate-the-exemption discipline (and window) as relaxed-ok:.
AGG_COMMENT_WINDOW = 8
# The canonical construction helper's home (core/aggregate.cc) is exempt.
AGG_EXEMPT_FILES = {Path("src/core/aggregate.cc")}


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments, string literals, and char literals, preserving
    line structure so reported line numbers stay accurate."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            i = min(j + 1, n)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def expected_guard(rel_path: Path) -> str:
    parts = [p.upper().replace(".", "_").replace("-", "_")
             for p in rel_path.with_suffix("").parts]
    return "PLANAR_" + "_".join(parts) + "_H_"


def findings_for_file(root: Path, path: Path):
    rel = path.relative_to(root)
    text = path.read_text(encoding="utf-8")
    code = strip_comments_and_strings(text)
    lines = code.splitlines()

    if str(rel.parts[0]) in SOURCE_DIRS:
        raw_lines = text.splitlines()
        last_relaxed_ok = -10**9  # line of the newest relaxed-ok comment
        last_threads_ok = -10**9  # line of the newest threads-ok comment
        last_f32_ok = -10**9      # line of the newest f32-ok comment
        last_agg_ok = -10**9      # line of the newest agg-ok comment
        in_common = len(rel.parts) > 1 and rel.parts[1] == "common"
        float_guarded = (len(rel.parts) > 1 and rel.parts[1] == "core"
                         and "kernels" not in rel.parts
                         and rel.name not in F32_EXEMPT_FILES)
        for lineno, line in enumerate(lines, start=1):
            raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
            if "relaxed-ok:" in raw:
                last_relaxed_ok = lineno
            if "threads-ok:" in raw:
                last_threads_ok = lineno
            if "f32-ok:" in raw:
                last_f32_ok = lineno
            if "agg-ok:" in raw:
                last_agg_ok = lineno
            if RE_EXCEPTION.search(line):
                yield (rel, lineno, "no-exceptions",
                       "throw/try is forbidden in library code; use "
                       "Status/Result or PLANAR_CHECK")
            if RE_STDOUT.search(line):
                yield (rel, lineno, "no-stdout",
                       "library code must not write to stdout/stderr; "
                       "format into caller-provided buffers instead")
            if RE_ASSERT.search(line):
                yield (rel, lineno, "no-bare-assert",
                       "use PLANAR_CHECK (armed in release builds) "
                       "instead of assert")
            if RE_DETACH.search(line):
                yield (rel, lineno, "no-detached-threads",
                       "library threads must be joined (graceful "
                       "drain), never detached")
            if rel not in SYNC_EXEMPT_FILES and RE_RAW_SYNC.search(line):
                yield (rel, lineno, "sync-via-common-mutex",
                       "raw std synchronization primitives are forbidden "
                       "in library code; use the annotated planar::Mutex "
                       "/ MutexLock / ReaderMutexLock / CondVar wrappers "
                       "(common/mutex.h) so the thread-safety analysis "
                       "sees the critical section")
            if "memory_order_relaxed" in line:
                if lineno - last_relaxed_ok <= RELAXED_COMMENT_WINDOW:
                    last_relaxed_ok = lineno  # consecutive uses chain
                else:
                    yield (rel, lineno, "relaxed-atomic-comment",
                           "memory_order_relaxed needs a nearby "
                           "'relaxed-ok:' comment stating why relaxed "
                           "ordering suffices at this site (and what the "
                           "authoritative synchronization is)")
            if not in_common and RE_RAW_THREAD.search(line):
                if lineno - last_threads_ok <= THREADS_COMMENT_WINDOW:
                    last_threads_ok = lineno  # consecutive uses chain
                else:
                    yield (rel, lineno, "threads-via-pool",
                           "raw std::thread/std::jthread is forbidden "
                           "outside src/common/; run the work on the "
                           "shared ThreadPool (common/thread_pool.h), or "
                           "carry a nearby 'threads-ok:' comment "
                           "justifying a dedicated thread")
            if float_guarded and RE_NAKED_FLOAT.search(line):
                if lineno - last_f32_ok <= F32_COMMENT_WINDOW:
                    last_f32_ok = lineno  # consecutive uses chain
                else:
                    yield (rel, lineno, "no-naked-float-in-core",
                           "the float type in src/core is reserved for "
                           "the mixed-precision mirror (core/mixed, "
                           "core/kernels); move it there, or carry a "
                           "nearby 'f32-ok:' comment stating how this "
                           "site is covered by the widened-band + exact "
                           "f64 re-verify contract")
            if rel not in AGG_EXEMPT_FILES and RE_AGG_MUTATION.search(line):
                if lineno - last_agg_ok <= AGG_COMMENT_WINDOW:
                    last_agg_ok = lineno  # consecutive uses chain
                else:
                    yield (rel, lineno, "agg-prefix-construction",
                           "prefix-aggregate arrays (.sum/.pos/.neg) must "
                           "be (re)built through BuildPrefixAggregates / "
                           "PrefixAggregates::Clear (core/aggregate.cc) so "
                           "the canonical blocked summation order holds; "
                           "carry a nearby 'agg-ok:' comment if this "
                           "mutation is genuinely canonical")

    if (len(rel.parts) > 2 and rel.parts[0] == "src" and rel.parts[1] == "core"
            and not rel.name.startswith("sort_util")):
        # Whole-text scan: the first argument may sit on the next line.
        for match in RE_CORE_SORT.finditer(code):
            if RE_KEYLIKE.search(match.group(1)):
                lineno = code.count("\n", 0, match.start()) + 1
                yield (rel, lineno, "core-sort-via-sort-util",
                       "sorting key/entry containers in src/core must go "
                       "through SortEntries (core/sort_util.h) to keep "
                       "builds deterministic at any thread count")

    if path.suffix == ".h" and str(rel.parts[0]) in HEADER_GUARD_DIRS:
        # src/ headers are included as "core/foo.h" (relative to src/),
        # so their guard drops the leading SRC component.
        guard_rel = Path(*rel.parts[1:]) if rel.parts[0] == "src" else rel
        want = expected_guard(guard_rel)
        ifndef = re.search(r"^#ifndef\s+(\S+)", text, re.MULTILINE)
        define = re.search(r"^#define\s+(\S+)", text, re.MULTILINE)
        if not ifndef or ifndef.group(1) != want:
            got = ifndef.group(1) if ifndef else "<missing>"
            yield (rel, 1, "header-guards",
                   f"expected guard {want}, found {got}")
        elif not define or define.group(1) != want:
            got = define.group(1) if define else "<missing>"
            yield (rel, 1, "header-guards",
                   f"#define does not match #ifndef {want} (found {got})")


def build_file_findings(root: Path):
    """Scans committed build files for -march=native (no-march-native)."""
    candidates = [root / "CMakePresets.json"]
    for pattern in ("CMakeLists.txt", "*.cmake"):
        candidates.extend(p for p in root.rglob(pattern)
                          if not any(part.startswith("build")
                                     or part == "third_party"
                                     for part in p.relative_to(root).parts))
    for path in sorted(set(candidates)):
        if not path.is_file():
            continue
        rel = path.relative_to(root)
        is_cmake = path.suffix != ".json"
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            if is_cmake:
                line = line.split("#", 1)[0]  # CMake comments may discuss it
            if "-march=native" in line:
                yield (rel, lineno, "no-march-native",
                       "host-specific codegen is forbidden in committed "
                       "build files; use runtime dispatch "
                       "(src/core/kernels) instead")


RE_SOURCE_PROPS = re.compile(r"set_source_files_properties\s*\(([^)]*)\)",
                             re.DOTALL)
RE_KERNEL_TU = re.compile(r"kernels/([A-Za-z0-9_.\-]+\.cc)")


def kernel_ffp_findings(root: Path):
    """Every src/core/kernels/*.cc must be compiled with -ffp-contract=off
    (kernel-ffp-contract)."""
    kernels_dir = root / "src" / "core" / "kernels"
    cmake = root / "src" / "core" / "CMakeLists.txt"
    if not kernels_dir.is_dir():
        return
    covered = set()
    if cmake.is_file():
        text = "\n".join(line.split("#", 1)[0] for line in
                         cmake.read_text(encoding="utf-8").splitlines())
        for match in RE_SOURCE_PROPS.finditer(text):
            block = match.group(1)
            if "-ffp-contract=off" not in block:
                continue
            for tu in RE_KERNEL_TU.finditer(block):
                covered.add(tu.group(1))
    for path in sorted(kernels_dir.glob("*.cc")):
        if path.name not in covered:
            yield (Path("src/core/CMakeLists.txt"), 1, "kernel-ffp-contract",
                   f"kernel TU src/core/kernels/{path.name} is not covered "
                   "by a set_source_files_properties(... -ffp-contract=off) "
                   "block; FP contraction would break the scalar/SIMD "
                   "bit-identity contract (see kernels.h)")


def self_test() -> int:
    """Fixture-based check that kernel-ffp-contract actually fires."""
    import tempfile

    def write_tree(cmake_text: str) -> Path:
        root = Path(tempfile.mkdtemp(prefix="planar_lint_selftest_"))
        kdir = root / "src" / "core" / "kernels"
        kdir.mkdir(parents=True)
        (kdir / "kernels.cc").write_text("// fixture\n")
        (kdir / "kernels_avx2.cc").write_text("// fixture\n")
        (root / "src" / "core" / "CMakeLists.txt").write_text(cmake_text)
        return root

    cases = [
        # (cmake fixture, expected number of findings)
        ('set_source_files_properties(kernels/kernels.cc PROPERTIES\n'
         '  COMPILE_OPTIONS "-ffp-contract=off")\n', 1),  # avx2 TU missed
        ('set_source_files_properties(\n'
         '  kernels/kernels.cc\n'
         '  kernels/kernels_avx2.cc\n'
         '  PROPERTIES COMPILE_OPTIONS "-mavx2;-mfma;-ffp-contract=off")\n',
         0),  # multi-file block covers both
        ('# set_source_files_properties(kernels/kernels.cc PROPERTIES\n'
         '#   COMPILE_OPTIONS "-ffp-contract=off")\n', 2),  # comments don't count
        ('set_source_files_properties(kernels/kernels.cc\n'
         '  kernels/kernels_avx2.cc PROPERTIES COMPILE_OPTIONS "-mavx2")\n',
         2),  # block without the flag doesn't count
    ]
    for i, (fixture, want) in enumerate(cases):
        root = write_tree(fixture)
        got = list(kernel_ffp_findings(root))
        if len(got) != want or any(rule != "kernel-ffp-contract"
                                   for _, _, rule, _ in got):
            print(f"planar_lint: self-test case {i} FAILED: expected {want} "
                  f"kernel-ffp-contract finding(s), got {got}",
                  file=sys.stderr)
            return 1

    def write_source(rel_path: str, content: str) -> Path:
        root = Path(tempfile.mkdtemp(prefix="planar_lint_selftest_"))
        target = root / rel_path
        target.parent.mkdir(parents=True)
        target.write_text(content)
        return root

    # (path, file content, rule expected to fire, expected finding count)
    file_cases = [
        # sync-via-common-mutex: raw primitives outside common/mutex.h.
        # (one finding per offending line, like the other line rules)
        ("src/engine/fixture.cc",
         "#include <mutex>\nstd::mutex mu;\nstd::lock_guard<std::mutex> "
         "l(mu);\n", "sync-via-common-mutex", 2),
        ("src/engine/fixture.cc",
         "void f() { std::condition_variable_any cv; }\n",
         "sync-via-common-mutex", 1),
        # ... but common/mutex.h itself may name them,
        ("src/common/mutex.cc", "std::shared_mutex raw;\n",
         "sync-via-common-mutex", 0),
        # and comments / planar wrappers never fire.
        ("src/engine/fixture.cc",
         "// std::mutex is forbidden here\nplanar::Mutex mu;\n"
         "planar::MutexLock lock(&mu);\n", "sync-via-common-mutex", 0),
        # relaxed-atomic-comment: bare relaxed load fires,
        ("src/core/fixture.cc",
         "int f() { return x.load(std::memory_order_relaxed); }\n",
         "relaxed-atomic-comment", 1),
        # a same-line or preceding relaxed-ok: comment covers it,
        ("src/core/fixture.cc",
         "// relaxed-ok: advisory flag; join is authoritative.\n"
         "int f() { return x.load(std::memory_order_relaxed); }\n",
         "relaxed-atomic-comment", 0),
        # consecutive uses chain through one comment,
        ("src/core/fixture.cc",
         "// relaxed-ok: independent counters.\n"
         + "x.fetch_add(1, std::memory_order_relaxed);\n" * 12,
         "relaxed-atomic-comment", 0),
        # and a comment too far above does not cover the use.
        ("src/core/fixture.cc",
         "// relaxed-ok: stale justification.\n" + "\n" * 10
         + "int f() { return x.load(std::memory_order_relaxed); }\n",
         "relaxed-atomic-comment", 1),
        # acquire/release orderings need no comment.
        ("src/core/fixture.cc",
         "int f() { return x.load(std::memory_order_acquire); }\n",
         "relaxed-atomic-comment", 0),
        # threads-via-pool: raw construction fires (std::thread and
        # std::jthread alike),
        ("src/engine/fixture.cc",
         "std::thread worker([] {});\n", "threads-via-pool", 1),
        ("src/engine/fixture.cc",
         "std::jthread worker([] {});\n", "threads-via-pool", 1),
        # a nearby threads-ok: comment justifies a dedicated thread,
        ("src/ingest/fixture.cc",
         "// threads-ok: long-lived merger; blocks on a CondVar, must\n"
         "// not occupy a pool slot.\n"
         "std::thread merger([] {});\n", "threads-via-pool", 0),
        # a justification too far above does not cover the use,
        ("src/ingest/fixture.cc",
         "// threads-ok: stale justification.\n" + "\n" * 10
         + "std::thread merger([] {});\n", "threads-via-pool", 1),
        # the pool's home (src/common/) is exempt,
        ("src/common/thread_pool.cc",
         "workers_.emplace_back(std::thread([] {}));\n",
         "threads-via-pool", 0),
        # and querying the core count is not spawning a thread.
        ("src/core/fixture.cc",
         "size_t n = std::thread::hardware_concurrency();\n",
         "threads-via-pool", 0),
        # no-naked-float-in-core: a bare float in src/core fires,
        ("src/core/fixture.cc",
         "float band = 0.0f;\n", "no-naked-float-in-core", 1),
        # a same-line or preceding f32-ok: comment covers it,
        ("src/core/fixture.cc",
         "// f32-ok: mirror storage; band + f64 re-verify keep answers "
         "exact.\nstd::vector<float> mirror;\n",
         "no-naked-float-in-core", 0),
        # consecutive uses chain through one comment,
        ("src/core/fixture.cc",
         "// f32-ok: mirror keys, same contract as the row mirror.\n"
         + "float k = 0.0f;\n" * 12, "no-naked-float-in-core", 0),
        # a comment too far above does not cover the use,
        ("src/core/fixture.cc",
         "// f32-ok: stale justification.\n" + "\n" * 10
         + "float band = 0.0f;\n", "no-naked-float-in-core", 1),
        # identifiers containing 'float' and comments never fire,
        ("src/core/fixture.cc",
         "// a float in a comment is fine\n"
         "double FloatMirrorValue(double v);\n",
         "no-naked-float-in-core", 0),
        # the mixed-precision module and kernel TUs are exempt,
        ("src/core/mixed.cc", "float band = 0.0f;\n",
         "no-naked-float-in-core", 0),
        ("src/core/kernels/fixture.cc", "float acc[8];\n",
         "no-naked-float-in-core", 0),
        # and the rule only polices src/core.
        ("src/engine/fixture.cc", "float x = 0.0f;\n",
         "no-naked-float-in-core", 0),
        # agg-prefix-construction: container-method writes fire,
        ("src/ingest/fixture.cc",
         "void f(PrefixAggregates* out) { out->sum.assign(9, 0.0); }\n",
         "agg-prefix-construction", 1),
        # element assignment fires (including compound assignment),
        ("src/core/fixture.cc",
         "void f(PrefixAggregates& p) {\n"
         "  p.sum[3] = 1.0;\n"
         "  p.neg[3] += 2.0;\n"
         "}\n", "agg-prefix-construction", 2),
        # reads and scalar result fields never fire,
        ("src/engine/fixture.cc",
         "double g(const PrefixAggregates& p, AggregateResult* r) {\n"
         "  r->sum = p.sum[4] - p.sum[1];\n"
         "  return p.pos[4] == p.sum[4] ? p.neg[0] : 0.0;\n"
         "}\n", "agg-prefix-construction", 0),
        # a nearby agg-ok: comment covers a sanctioned mutation,
        ("src/core/fixture.cc",
         "// agg-ok: rebuild after delta merge, same canonical order.\n"
         "void f(PrefixAggregates& p) { p.pos.clear(); }\n",
         "agg-prefix-construction", 0),
        # consecutive uses chain through one comment,
        ("src/core/fixture.cc",
         "// agg-ok: canonical teardown.\n"
         + "p.sum.clear();\n" * 12, "agg-prefix-construction", 0),
        # a comment too far above does not cover the use,
        ("src/core/fixture.cc",
         "// agg-ok: stale justification.\n" + "\n" * 10
         + "void f(PrefixAggregates& p) { p.sum.resize(4); }\n",
         "agg-prefix-construction", 1),
        # and the canonical helper's home is exempt.
        ("src/core/aggregate.cc",
         "void Build(PrefixAggregates* out) { out->sum.assign(9, 0.0); }\n",
         "agg-prefix-construction", 0),
    ]
    for i, (rel_path, content, rule, want) in enumerate(file_cases):
        root = write_source(rel_path, content)
        path = root / rel_path
        got = [f for f in findings_for_file(root, path) if f[2] == rule]
        if len(got) != want:
            print(f"planar_lint: self-test file case {i} FAILED: expected "
                  f"{want} {rule} finding(s), got {got}", file=sys.stderr)
            return 1

    total = len(cases) + len(file_cases)
    print(f"planar_lint: self-test OK ({total} fixture cases)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=Path(__file__).parent.parent,
                        help="repository root (default: the checkout "
                             "containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rule fixtures instead of linting")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    root = args.root.resolve()

    scan_dirs = sorted(set(SOURCE_DIRS) | set(HEADER_GUARD_DIRS))
    files = []
    for d in scan_dirs:
        base = root / d
        if base.is_dir():
            files.extend(sorted(base.rglob("*.h")))
            files.extend(sorted(base.rglob("*.cc")))

    failures = 0
    for path in files:
        for rel, lineno, rule, message in findings_for_file(root, path):
            print(f"{rel}:{lineno}: {rule}: {message}")
            failures += 1
    for rel, lineno, rule, message in build_file_findings(root):
        print(f"{rel}:{lineno}: {rule}: {message}")
        failures += 1
    for rel, lineno, rule, message in kernel_ffp_findings(root):
        print(f"{rel}:{lineno}: {rule}: {message}")
        failures += 1

    if failures:
        print(f"planar_lint: {failures} finding(s) in {len(files)} files",
              file=sys.stderr)
        return 1
    print(f"planar_lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
