#!/usr/bin/env bash
# Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
#
# Verifies that every C++ file satisfies .clang-format
# (`clang-format --dry-run -Werror`). Pass --fix to rewrite in place.
#
# Environment:
#   CLANG_FORMAT  clang-format binary to use (default: clang-format)
#
# Exits 0 when clang-format is unavailable so environments without LLVM
# still pass the full ctest suite; the CI format job installs the real
# tool and enforces the gate.
set -u -o pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" > /dev/null 2>&1; then
  echo "check_format: SKIPPED ($CLANG_FORMAT not installed)"
  exit 0
fi

mode=(--dry-run -Werror)
if [ "${1:-}" = "--fix" ]; then
  mode=(-i)
fi

mapfile -t sources < <(find src tests bench examples tools \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) | sort)
echo "check_format: ${#sources[@]} files"

if "$CLANG_FORMAT" "${mode[@]}" --style=file "${sources[@]}"; then
  echo "check_format: OK"
else
  echo "check_format: run tools/check_format.sh --fix" >&2
  exit 1
fi
