// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Ablations for the design choices called out in DESIGN.md §5 (not a
// paper figure):
//   1. best-index selection: volume/stretch vs angle minimization
//      (the paper reports volume winning; Section 7.1),
//   2. axis exclusion on/off (this library's extension of the paper's
//      zero-parameter-axis remark),
//   3. key-storage backend: sorted array vs order-statistic B+-tree.
//
// Flags: --n (default 200k), --runs.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/synthetic_harness.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace planar;         // NOLINT
  using namespace planar::bench;  // NOLINT
  FlagParser flags(argc, argv);
  const size_t n = ScaledN(flags, 200000, 1000000);
  const int runs = Runs(flags);
  const size_t dim = 6;
  const int rq = 8;  // enough query randomness that selection matters
  const size_t budget = 50;

  PrintHeader("Ablation",
              "Eq.-18 queries on Indp, n = " + std::to_string(n) +
                  ", dim = 6, RQ = 8, #index = 50");
  const Dataset data =
      MakeSynthetic(SyntheticDistribution::kIndependent, n, dim);

  TablePrinter table({"configuration", "query time (ms)", "pruning %"});
  struct Config {
    std::string name;
    IndexSetOptions::Selector selector;
    bool axis_exclusion;
    PlanarIndexOptions::Backend backend;
  };
  const Config configs[] = {
      {"interval-count + exclusion + array (default)",
       IndexSetOptions::Selector::kIntervalCount, true,
       PlanarIndexOptions::Backend::kSortedArray},
      {"stretch/volume selection (paper)",
       IndexSetOptions::Selector::kStretch, true,
       PlanarIndexOptions::Backend::kSortedArray},
      {"angle selection (paper)", IndexSetOptions::Selector::kAngle, true,
       PlanarIndexOptions::Backend::kSortedArray},
      {"no axis exclusion (paper's intervals)",
       IndexSetOptions::Selector::kIntervalCount, false,
       PlanarIndexOptions::Backend::kSortedArray},
      {"B+-tree backend", IndexSetOptions::Selector::kIntervalCount, true,
       PlanarIndexOptions::Backend::kBTree},
  };
  for (const Config& config : configs) {
    IndexSetOptions options;
    options.selector = config.selector;
    options.index_options.enable_axis_exclusion = config.axis_exclusion;
    options.index_options.backend = config.backend;
    PlanarIndexSet set = BuildEq18Set(data, rq, budget, options);
    Eq18Workload queries(set.phi(), rq, 0.25, /*seed=*/59);
    RunningStats pruning;
    const double ms = MeanMillis(
        [&] {
          pruning.Add(100.0 *
                      set.Inequality(queries.Next()).stats.PruningFraction());
        },
        runs);
    table.AddRow({config.name, FormatDouble(ms, 3),
                  FormatDouble(pruning.mean(), 1)});
  }
  table.Print();
  return 0;
}
