// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Figure 6 of the paper: index and query-processing times on the three
// real-world datasets.
//   6(a) Consumption + the Example-1 SQL function, query time vs #index.
//   6(b) CMoment,  Eq.-18 queries, query time vs RQ for several #index.
//   6(c) CTexture, same.
//   6(d) index-construction time on all three datasets vs #index.
//
// The datasets are simulated stand-ins with matched cardinality /
// dimensionality / ranges (see DESIGN.md, "Substitutions").
//
// Flags: --consumption_n, --image_n, --runs, --full.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/function.h"
#include "core/index_set.h"
#include "core/scan.h"
#include "datagen/realworld_sim.h"
#include "datagen/workload.h"

namespace planar {
namespace {

using bench::MeanMillis;
using bench::PrintHeader;

struct BuiltSet {
  PlanarIndexSet set;
  double build_seconds;
};

BuiltSet Build(PhiMatrix phi, const std::vector<ParameterDomain>& domains,
               size_t budget) {
  IndexSetOptions options;
  options.budget = budget;
  WallTimer timer;
  auto set = PlanarIndexSet::Build(std::move(phi), domains, options);
  PLANAR_CHECK(set.ok());
  return BuiltSet{std::move(set).value(), timer.ElapsedSeconds()};
}

PhiMatrix Copy(const PhiMatrix& phi) {
  PhiMatrix out(phi.dim());
  out.Reserve(phi.size());
  for (size_t i = 0; i < phi.size(); ++i) out.AppendRow(phi.row(i));
  return out;
}

void RunConsumption(size_t n, int runs, TablePrinter* index_time_table) {
  PrintHeader("Figure 6(a)",
              "Consumption (simulated, " + std::to_string(n) +
                  " tuples): Example-1 SQL function "
                  "Critical_Consume(threshold), threshold ~ U(0.1, 1.0)");
  const Dataset data = SimulateConsumption(n);
  const PhiMatrix phi = MaterializePhi(data, PowerFactorFunction());
  PowerFactorWorkload workload(0.1, 1.0, /*seed=*/3);

  TablePrinter table({"#index", "query time (ms)", "pruning %"});
  for (size_t budget : {10u, 50u, 100u, 200u}) {
    BuiltSet built = Build(Copy(phi), workload.Domains(), budget);
    PowerFactorWorkload queries(0.1, 1.0, /*seed=*/17);
    RunningStats pruning;
    const double ms = MeanMillis(
        [&] {
          const InequalityResult r = built.set.Inequality(queries.Next());
          pruning.Add(100.0 * r.stats.PruningFraction());
        },
        runs);
    table.AddRow({std::to_string(budget), FormatDouble(ms, 3),
                  FormatDouble(pruning.mean(), 1)});
    index_time_table->AddRow({"Consumption", std::to_string(budget),
                              FormatDouble(built.build_seconds, 2)});
  }
  PowerFactorWorkload queries(0.1, 1.0, /*seed=*/17);
  const double baseline_ms =
      MeanMillis([&] { (void)ScanInequality(phi, queries.Next()); }, runs);
  table.AddRow({"baseline", FormatDouble(baseline_ms, 3), "0.0"});
  table.Print();
}

void RunImage(const std::string& name, const Dataset& data, int runs,
              TablePrinter* index_time_table) {
  PrintHeader(name == "CMoment" ? "Figure 6(b)" : "Figure 6(c)",
              name + " (simulated, " + std::to_string(data.size()) + " x " +
                  std::to_string(data.dim()) +
                  "): Eq.-18 queries, query time (ms) vs RQ");
  const PhiMatrix phi = MaterializePhi(data, IdentityFunction(data.dim()));

  TablePrinter table({"RQ", "#ind=1", "#ind=10", "#ind=50", "#ind=100",
                      "baseline"});
  const std::vector<size_t> budgets{1, 10, 50, 100};
  for (int rq : {2, 4, 8, 12}) {
    Eq18Workload workload(phi, rq, 0.25, /*seed=*/5);
    std::vector<std::string> row{"RQ=" + std::to_string(rq)};
    for (size_t budget : budgets) {
      BuiltSet built = Build(Copy(phi), workload.Domains(), budget);
      Eq18Workload queries(phi, rq, 0.25, /*seed=*/23);
      const double ms = MeanMillis(
          [&] { (void)built.set.Inequality(queries.Next()); }, runs);
      row.push_back(FormatDouble(ms, 3));
      if (rq == 4) {
        index_time_table->AddRow({name, std::to_string(budget),
                                  FormatDouble(built.build_seconds, 2)});
      }
    }
    Eq18Workload queries(phi, rq, 0.25, /*seed=*/23);
    row.push_back(FormatDouble(
        MeanMillis([&] { (void)ScanInequality(phi, queries.Next()); }, runs),
        3));
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace planar

int main(int argc, char** argv) {
  using namespace planar;  // NOLINT
  FlagParser flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const size_t consumption_n = static_cast<size_t>(flags.GetInt(
      "consumption_n", full ? 2075259 : 500000));
  const size_t image_n =
      static_cast<size_t>(flags.GetInt("image_n", 68040));
  const int runs = bench::Runs(flags, 30);

  TablePrinter index_time_table({"dataset", "#index", "build time (s)"});
  RunConsumption(consumption_n, runs, &index_time_table);
  RunImage("CMoment", SimulateCMoment(image_n), runs, &index_time_table);
  RunImage("CTexture", SimulateCTexture(image_n), runs, &index_time_table);

  bench::PrintHeader("Figure 6(d)",
                     "index-construction time on the real-world datasets");
  index_time_table.Print();
  return 0;
}
