// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Ingest subsystem bench: sustained concurrent insert rate and the query
// latency paid for it, swept over the background-merge threshold. A
// writer thread streams row batches through IngestManager::Append while
// closed-loop reader threads run inequality queries against the delta
// overlay; the same readers are first timed against the quiesced set so
// each configuration reports its latency regression factor.
//
//   --n         base rows already indexed   (default 20000)
//   --rows      rows streamed by the writer (default 40000)
//   --queries   queries per reader thread   (default 1500)
//   --readers   reader threads              (default 2)
//   --full      paper-scale base            (n = 100000)
//   --smoke     tiny sizes + bit-identity gate; non-zero exit on
//               mismatch between the overlay and a quiesced rebuild
//
// One JSON line per configuration; a trailing TablePrinter summary.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "ingest/ingest.h"
#include "tests/test_util.h"

namespace planar {
namespace {

constexpr char kTarget[] = "bench";

std::vector<ParameterDomain> Domains() {
  return {{1.0, 6.0}, {-6.0, -1.0}, {1.0, 6.0}};
}

ScalarProductQuery RandomQuery(Rng* rng) {
  ScalarProductQuery q;
  q.a = {rng->Uniform(1, 6), -rng->Uniform(1, 6), rng->Uniform(1, 6)};
  q.b = rng->Uniform(-100, 300);
  q.cmp = Comparison::kLessEqual;
  return q;
}

double Percentile(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = static_cast<size_t>(
      p / 100.0 * static_cast<double>(latencies->size() - 1) + 0.5);
  return (*latencies)[std::min(idx, latencies->size() - 1)];
}

struct ConfigResult {
  size_t threshold = 0;
  double ingest_rps = 0.0;   // sustained appended rows per second
  double quiesced_p50 = 0.0;  // ms, readers against the static set
  double quiesced_p99 = 0.0;
  double concurrent_p50 = 0.0;  // ms, readers racing the writer+merger
  double concurrent_p99 = 0.0;
  uint64_t merges = 0;
  uint64_t sheds = 0;
};

// Closed-loop readers; each runs `queries` inequality queries and
// appends its per-query latencies (ms) into its own slot of `out`.
void RunReaders(const IngestManager& manager, size_t readers, int queries,
                std::vector<double>* out,
                const std::atomic<bool>* stop_early) {
  std::vector<std::vector<double>> lanes(readers);
  std::vector<std::thread> threads;
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&manager, &lanes, r, queries, stop_early] {
      Rng rng(900 + r);
      lanes[r].reserve(queries);
      for (int i = 0; i < queries; ++i) {
        if (stop_early != nullptr &&
            stop_early->load(std::memory_order_acquire)) {
          break;
        }
        const ScalarProductQuery q = RandomQuery(&rng);
        WallTimer timer;
        Result<InequalityResult> result = Status::Internal("unset");
        if (!manager.Inequality(kTarget, q, Deadline::Infinite(), &result) ||
            !result.ok()) {
          std::fprintf(stderr, "bench_ingest: query failed\n");
          std::abort();
        }
        lanes[r].push_back(timer.ElapsedMillis());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::vector<double>& lane : lanes) {
    out->insert(out->end(), lane.begin(), lane.end());
  }
}

ConfigResult RunConfig(size_t n, size_t stream_rows, size_t threshold,
                       size_t readers, int queries, PhiMatrix* all_out) {
  Catalog catalog;
  PhiMatrix all(3);
  {
    PhiMatrix phi = RandomPhi(n, 3, -20.0, 80.0, 3);
    for (size_t i = 0; i < phi.size(); ++i) all.AppendRow(phi.row(i));
    auto set = PlanarIndexSet::Build(std::move(phi), Domains());
    PLANAR_CHECK(set.ok());
    catalog.Install(kTarget, std::move(set).value());
  }
  Rng rng(17);
  std::vector<double> pool(stream_rows * 3);
  for (double& v : pool) v = rng.Uniform(-20.0, 80.0);
  for (size_t i = 0; i < stream_rows; ++i) all.AppendRow(pool.data() + i * 3);

  IngestOptions options;
  options.merge_threshold = threshold;
  options.delta_capacity = std::max<size_t>(threshold * 4, 4096);
  IngestManager manager(&catalog, options);
  PLANAR_CHECK(manager.Manage(kTarget).ok());

  ConfigResult r;
  r.threshold = threshold;

  // Phase 1: quiesced baseline — same readers, no writer, empty delta.
  std::vector<double> quiesced;
  RunReaders(manager, readers, queries, &quiesced, nullptr);
  r.quiesced_p50 = Percentile(&quiesced, 50);
  r.quiesced_p99 = Percentile(&quiesced, 99);

  // Phase 2: the writer streams the pool while the readers re-run. The
  // writer retries shed batches (counting them), so every pool row lands.
  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> sheds{0};
  double ingest_seconds = 0.0;
  std::thread writer([&] {
    constexpr size_t kBatch = 256;
    WallTimer timer;
    size_t next = 0;
    while (next < stream_rows) {
      const size_t count = std::min(kBatch, stream_rows - next);
      auto first = manager.Append(
          kTarget, std::vector<double>(pool.begin() + next * 3,
                                       pool.begin() + (next + count) * 3));
      if (!first.ok()) {
        sheds.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
        continue;
      }
      next += count;
    }
    ingest_seconds = timer.ElapsedSeconds();
    writer_done.store(true, std::memory_order_release);
  });
  std::vector<double> concurrent;
  RunReaders(manager, readers, queries, &concurrent, nullptr);
  writer.join();
  r.concurrent_p50 = Percentile(&concurrent, 50);
  r.concurrent_p99 = Percentile(&concurrent, 99);
  r.ingest_rps = ingest_seconds > 0.0
                     ? static_cast<double>(stream_rows) / ingest_seconds
                     : 0.0;
  r.sheds = sheds.load(std::memory_order_relaxed);

  const Status flushed = manager.Flush(kTarget);
  PLANAR_CHECK(flushed.ok());
  r.merges = manager.gauges().merges;
  PLANAR_CHECK_EQ(catalog.Find(kTarget)->size(), n + stream_rows);

  if (all_out != nullptr) {
    *all_out = std::move(all);
    // Keep the manager's final state reachable for the smoke gate: the
    // caller re-runs queries through a fresh manager over the installed
    // set, so nothing else to hand over.
  }
  return r;
}

// --smoke gate: the overlay (exercised during RunConfig) must answer
// exactly like a from-scratch build over the same rows once quiesced.
bool SmokeBitIdentity(const PhiMatrix& all) {
  Catalog catalog;
  {
    PhiMatrix base(3);
    for (size_t i = 0; i < all.size() / 2; ++i) base.AppendRow(all.row(i));
    auto set = PlanarIndexSet::Build(std::move(base), Domains());
    PLANAR_CHECK(set.ok());
    catalog.Install(kTarget, std::move(set).value());
  }
  IngestOptions options;
  options.merge_threshold = 64;  // force several merges
  options.delta_capacity = 4096;
  IngestManager manager(&catalog, options);
  PLANAR_CHECK(manager.Manage(kTarget).ok());
  for (size_t i = all.size() / 2; i < all.size(); i += 100) {
    const size_t count = std::min<size_t>(100, all.size() - i);
    std::vector<double> rows;
    rows.reserve(count * 3);
    for (size_t j = 0; j < count; ++j) {
      const double* row = all.row(i + j);
      rows.insert(rows.end(), row, row + 3);
    }
    const auto first = manager.Append(kTarget, rows);
    PLANAR_CHECK(first.ok());
  }
  PhiMatrix copy(3);
  for (size_t i = 0; i < all.size(); ++i) copy.AppendRow(all.row(i));
  auto fresh = PlanarIndexSet::Build(std::move(copy), Domains());
  PLANAR_CHECK(fresh.ok());

  Rng rng(29);
  for (int trial = 0; trial < 40; ++trial) {
    const ScalarProductQuery q = RandomQuery(&rng);
    Result<InequalityResult> got = Status::Internal("unset");
    if (!manager.Inequality(kTarget, q, Deadline::Infinite(), &got) ||
        !got.ok()) {
      return false;
    }
    if (Sorted(got->ids) != Sorted(fresh->Inequality(q).ids)) return false;
    Result<TopKResult> topk = Status::Internal("unset");
    if (!manager.TopK(kTarget, q, 10, Deadline::Infinite(), &topk) ||
        !topk.ok()) {
      return false;
    }
    auto want = fresh->TopK(q, 10);
    if (!want.ok() || topk->neighbors.size() != want->neighbors.size()) {
      return false;
    }
    for (size_t i = 0; i < want->neighbors.size(); ++i) {
      if (topk->neighbors[i].id != want->neighbors[i].id) return false;
    }
  }
  const Status flushed = manager.Flush(kTarget);
  PLANAR_CHECK(flushed.ok());
  for (int trial = 0; trial < 10; ++trial) {
    const ScalarProductQuery q = RandomQuery(&rng);
    Result<InequalityResult> got = Status::Internal("unset");
    if (!manager.Inequality(kTarget, q, Deadline::Infinite(), &got) ||
        !got.ok()) {
      return false;
    }
    if (Sorted(got->ids) != Sorted(fresh->Inequality(q).ids)) return false;
  }
  return true;
}

}  // namespace
}  // namespace planar

int main(int argc, char** argv) {
  using namespace planar;  // NOLINT: bench brevity
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const size_t n = smoke ? 2000 : bench::ScaledN(flags, 20000, 100000);
  const size_t stream_rows = smoke
                                 ? 4000
                                 : static_cast<size_t>(
                                       flags.GetInt("rows", 40000));
  const int queries =
      smoke ? 200 : static_cast<int>(flags.GetInt("queries", 1500));
  const size_t readers = static_cast<size_t>(flags.GetInt("readers", 2));

  bench::PrintHeader(
      "ingest",
      "sustained insert rate vs query latency over merge thresholds; " +
          std::to_string(readers) + " closed-loop readers, " +
          std::to_string(stream_rows) + " streamed rows");

  std::vector<size_t> thresholds =
      smoke ? std::vector<size_t>{256}
            : std::vector<size_t>{1024, 4096, 16384};
  TablePrinter table({"threshold", "ingest rows/s", "quiesced p50 ms",
                      "concurrent p50 ms", "concurrent p99 ms", "merges",
                      "sheds"});
  PhiMatrix all(3);
  for (const size_t threshold : thresholds) {
    const ConfigResult r =
        RunConfig(n, stream_rows, threshold, readers, queries, &all);
    table.AddRow({std::to_string(r.threshold), FormatDouble(r.ingest_rps, 0),
                  FormatDouble(r.quiesced_p50, 4),
                  FormatDouble(r.concurrent_p50, 4),
                  FormatDouble(r.concurrent_p99, 4),
                  std::to_string(r.merges), std::to_string(r.sheds)});
    std::printf(
        "{\"bench\":\"ingest\",\"n\":%zu,\"stream_rows\":%zu,"
        "\"merge_threshold\":%zu,\"readers\":%zu,\"ingest_rps\":%.1f,"
        "\"quiesced_p50_ms\":%.4f,\"quiesced_p99_ms\":%.4f,"
        "\"concurrent_p50_ms\":%.4f,\"concurrent_p99_ms\":%.4f,"
        "\"merges\":%llu,\"sheds\":%llu%s}\n",
        n, stream_rows, r.threshold, readers, r.ingest_rps, r.quiesced_p50,
        r.quiesced_p99, r.concurrent_p50, r.concurrent_p99,
        static_cast<unsigned long long>(r.merges),
        static_cast<unsigned long long>(r.sheds),
        bench::JsonStamp(readers + 2).c_str());
  }
  std::printf("\n");
  table.Print();

  if (smoke) {
    if (!SmokeBitIdentity(all)) {
      std::fprintf(stderr,
                   "bench_ingest: SMOKE FAILED — overlay diverged from the "
                   "quiesced rebuild\n");
      return 1;
    }
    std::printf("smoke: overlay bit-identical to quiesced rebuild — OK\n");
  }
  return 0;
}
