// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Figure 8 of the paper: query-processing time on the synthetic datasets
// vs the number of Planar indices (1..100), RQ = 4, dimensionality 2..14.
// Also serves as the selection-heuristic ablation (DESIGN.md §5):
// --selector=angle switches from volume/stretch to angle minimization.
//
// Flags: --n (default 200k; --full = 1M), --runs, --selector.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/synthetic_harness.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "core/scan.h"

int main(int argc, char** argv) {
  using namespace planar;         // NOLINT
  using namespace planar::bench;  // NOLINT
  FlagParser flags(argc, argv);
  const size_t n = ScaledN(flags, 200000, 1000000);
  const int runs = Runs(flags);
  const int rq = static_cast<int>(flags.GetInt("rq", 4));
  IndexSetOptions options;
  const std::string selector = flags.GetString("selector", "interval-count");
  if (selector == "angle") {
    options.selector = IndexSetOptions::Selector::kAngle;
  } else if (selector == "stretch") {
    options.selector = IndexSetOptions::Selector::kStretch;
  }

  PrintHeader("Figure 8",
              "query time (ms) vs #index; n = " + std::to_string(n) +
                  ", RQ = " + std::to_string(rq) + ", selector = " +
                  selector);

  for (size_t dim : {2u, 6u, 10u, 14u}) {
    std::printf("\n-- dimension = %zu --\n", dim);
    TablePrinter table({"#index", "indp", "corr", "anti", "baseline"});
    for (size_t budget : {1u, 10u, 50u, 100u}) {
      std::vector<std::string> row{std::to_string(budget)};
      double baseline_ms = 0.0;
      for (auto dist : AllDistributions()) {
        const Dataset data = MakeSynthetic(dist, n, dim);
        PlanarIndexSet set = BuildEq18Set(data, rq, budget, options);
        Eq18Workload queries(set.phi(), rq, 0.25, /*seed=*/31);
        row.push_back(FormatDouble(
            MeanMillis([&] { (void)set.Inequality(queries.Next()); }, runs),
            3));
        if (dist == SyntheticDistribution::kIndependent && budget == 1) {
          Eq18Workload base_queries(set.phi(), rq, 0.25, /*seed=*/31);
          baseline_ms = MeanMillis(
              [&] { (void)ScanInequality(set.phi(), base_queries.Next()); },
              runs);
        }
      }
      row.push_back(budget == 1 ? FormatDouble(baseline_ms, 3)
                                : std::string("-"));
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  return 0;
}
