// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Figure 10 of the paper: pruning percentage on the synthetic datasets vs
// the number of Planar indices (1..100), RQ = 4, dimensionality 2..14.
//
// Flags: --n (default 200k; --full = 1M), --runs, --rq.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/synthetic_harness.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace planar;         // NOLINT
  using namespace planar::bench;  // NOLINT
  FlagParser flags(argc, argv);
  const size_t n = ScaledN(flags, 200000, 1000000);
  const int runs = Runs(flags);
  const int rq = static_cast<int>(flags.GetInt("rq", 4));

  PrintHeader("Figure 10",
              "pruning percentage vs #index; n = " + std::to_string(n) +
                  ", RQ = " + std::to_string(rq));

  for (size_t dim : {2u, 6u, 10u, 14u}) {
    std::printf("\n-- dimension = %zu --\n", dim);
    TablePrinter table({"#index", "indp", "corr", "anti"});
    for (size_t budget : {1u, 10u, 50u, 100u}) {
      std::vector<std::string> row{std::to_string(budget)};
      for (auto dist : AllDistributions()) {
        const Dataset data = MakeSynthetic(dist, n, dim);
        PlanarIndexSet set = BuildEq18Set(data, rq, budget);
        Eq18Workload queries(set.phi(), rq, 0.25, /*seed=*/41);
        RunningStats pruning;
        for (int i = 0; i < runs; ++i) {
          pruning.Add(
              100.0 * set.Inequality(queries.Next()).stats.PruningFraction());
        }
        row.push_back(FormatDouble(pruning.mean(), 1));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  return 0;
}
