// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Figure 13 of the paper: index construction cost and maintenance.
//   13(a) index-construction time vs dimensionality, #index 1..100.
//   13(b) memory consumption (MB) vs #index, per dimensionality.
//   13(c) per-index update time (ms) when 1..25% of the points change,
//         dimensions 6 and 10 — plus the B+-tree backend as the
//         update-vs-query ablation of DESIGN.md §5.
//
// Flags: --n (default 300k; --full = 1M), --runs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/synthetic_harness.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/planar_index.h"

namespace planar {
namespace {

// Measures the wall time of updating `fraction` of the points in a fresh
// single index with the given backend; returns milliseconds.
double MeasureUpdates(const Dataset& data, double fraction,
                      PlanarIndexOptions::Backend backend) {
  PhiMatrix phi = MaterializePhi(data, IdentityFunction(data.dim()));
  PlanarIndexOptions options;
  options.backend = backend;
  std::vector<double> normal(data.dim(), 1.0);
  auto index = PlanarIndex::BuildFirstOctant(&phi, normal, options);
  PLANAR_CHECK(index.ok());

  const size_t updates =
      static_cast<size_t>(fraction * static_cast<double>(data.size()));
  Rng rng(71);
  std::vector<uint32_t> rows(updates);
  std::vector<double> value(data.dim());
  for (size_t i = 0; i < updates; ++i) {
    rows[i] = static_cast<uint32_t>(rng.UniformInt(data.size()));
    for (size_t j = 0; j < data.dim(); ++j) {
      value[j] = rng.Uniform(1.0, 100.0);
    }
    phi.SetRow(rows[i], value.data());
  }
  WallTimer timer;
  PLANAR_CHECK(index->UpdateBatch(rows));
  return timer.ElapsedMillis();
}

}  // namespace
}  // namespace planar

int main(int argc, char** argv) {
  using namespace planar;         // NOLINT
  using namespace planar::bench;  // NOLINT
  FlagParser flags(argc, argv);
  const size_t n = ScaledN(flags, 300000, 1000000);
  const int rq = 4;

  PrintHeader("Figure 13(a)",
              "index-construction time (s) vs dimensionality; n = " +
                  std::to_string(n));
  std::vector<PlanarIndexSet> kept_sets;  // reused for 13(b)
  std::vector<size_t> kept_dims;
  {
    TablePrinter table({"dim", "#index=1", "#index=10", "#index=50",
                        "#index=100"});
    for (size_t dim : {2u, 6u, 10u, 14u}) {
      const Dataset data =
          MakeSynthetic(SyntheticDistribution::kIndependent, n, dim);
      std::vector<std::string> row{std::to_string(dim)};
      for (size_t budget : {1u, 10u, 50u, 100u}) {
        WallTimer timer;
        PlanarIndexSet set = BuildEq18Set(data, rq, budget);
        row.push_back(FormatDouble(timer.ElapsedSeconds(), 2));
        if (budget == 100) {
          kept_sets.push_back(std::move(set));
          kept_dims.push_back(dim);
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }

  PrintHeader("Figure 13(b)",
              "memory consumption (MB) of the index structure vs #index");
  {
    TablePrinter table({"dim", "#index=1", "#index=10", "#index=50",
                        "#index=100"});
    for (size_t i = 0; i < kept_sets.size(); ++i) {
      const PlanarIndexSet& set = kept_sets[i];
      // Per-index footprint scales linearly; report the measured footprint
      // of prefixes of the built 100-index set.
      const double phi_mb =
          static_cast<double>(set.phi().MemoryUsage()) / 1e6;
      const double total_mb = static_cast<double>(set.MemoryUsage()) / 1e6;
      const double per_index_mb =
          (total_mb - phi_mb) / static_cast<double>(set.num_indices());
      std::vector<std::string> row{std::to_string(kept_dims[i])};
      for (size_t budget : {1u, 10u, 50u, 100u}) {
        row.push_back(FormatDouble(
            phi_mb + per_index_mb * static_cast<double>(budget), 1));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  kept_sets.clear();

  PrintHeader("Figure 13(c)",
              "per-index update time (ms) vs percentage of points updated; "
              "n = " + std::to_string(n) +
              " (sorted-array backend, as in the paper; the B+-tree "
              "backend is this library's O(log n)-update ablation)");
  {
    TablePrinter table({"% updated", "dim=6 array", "dim=10 array",
                        "dim=6 btree", "dim=10 btree"});
    const Dataset data6 =
        MakeSynthetic(SyntheticDistribution::kIndependent, n, 6);
    const Dataset data10 =
        MakeSynthetic(SyntheticDistribution::kIndependent, n, 10);
    for (double pct : {1.0, 5.0, 10.0, 25.0}) {
      const double fraction = pct / 100.0;
      table.AddRow(
          {FormatDouble(pct, 0),
           FormatDouble(
               MeasureUpdates(data6, fraction,
                              PlanarIndexOptions::Backend::kSortedArray),
               1),
           FormatDouble(
               MeasureUpdates(data10, fraction,
                              PlanarIndexOptions::Backend::kSortedArray),
               1),
           FormatDouble(MeasureUpdates(data6, fraction,
                                       PlanarIndexOptions::Backend::kBTree),
                        1),
           FormatDouble(MeasureUpdates(data10, fraction,
                                       PlanarIndexOptions::Backend::kBTree),
                        1)});
    }
    table.Print();
  }
  return 0;
}
