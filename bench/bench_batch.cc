// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Cross-query batched execution bench: queries/second (and verified
// rows/second) of PlanarIndexSet::BatchInequality against the serial
// per-query path, swept over batch size. Two workloads:
//
//   overlap   perturbations of one base direction with nearby cuts — the
//             intermediate intervals coalesce into a few merged ranges,
//             so the batch path streams shared phi rows once and feeds
//             them to the multi-query micro-GEMM kernel
//   spread    independent directions and cuts across the whole range —
//             little interval overlap, the honest control; batch sizes
//             must at least not regress here
//
// Prints a table plus one JSON line per configuration (the committed
// baseline lives in BENCH_batch.json at the repo root). The serial
// baseline and every batched answer are cross-checked for bit identity
// before timing is reported.
//
//   --n      rows                      (default 200000; --full 1000000)
//   --runs   measured repetitions      (default 5, best-of)
//   --smoke  tiny sizes, single run — CI correctness-of-plumbing mode

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "core/batch.h"
#include "core/index_set.h"
#include "tests/test_util.h"

namespace planar {
namespace {

template <typename Fn>
double MinMillis(Fn&& fn, int runs) {
  double best = 0.0;
  for (int i = 0; i < runs; ++i) {
    WallTimer timer;
    fn();
    const double ms = timer.ElapsedMillis();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

constexpr size_t kDim = 8;

PlanarIndexSet BuildSet(size_t n, bool mixed) {
  PhiMatrix phi = RandomPhi(n, kDim, 1.0, 100.0, 31);
  IndexSetOptions options;
  options.budget = 6;
  // Measure the index path at any interval size: the fallback would
  // reroute wide-interval queries to a scan and muddy the comparison
  // (both paths batch scans the same way anyway).
  options.scan_fallback_fraction = 1.0;
  options.index_options.mixed_precision = mixed;
  auto set = PlanarIndexSet::Build(
      std::move(phi), std::vector<ParameterDomain>(kDim, {1.0, 4.0}),
      options);
  PLANAR_CHECK(set.ok());
  return std::move(set).value();
}

// `overlap`: one base direction, jittered, cuts in a narrow band around a
// mid-range selectivity — every query's II lands on nearly the same rank
// range. Otherwise independent directions and cuts over the whole range.
std::vector<ScalarProductQuery> MakeWorkload(bool overlap, size_t count,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<ScalarProductQuery> queries(count);
  // E[<a, phi(x)>] with a ~ U[1,4]^d, phi ~ U[1,100]^d is 2.5*50.5*d.
  const double mid = 2.5 * 50.5 * static_cast<double>(kDim);
  for (ScalarProductQuery& q : queries) {
    q.a.resize(kDim);
    if (overlap) {
      for (size_t j = 0; j < kDim; ++j) {
        q.a[j] = 2.5 + rng.Uniform(-0.05, 0.05);
      }
      q.b = mid * rng.Uniform(0.97, 1.03);
    } else {
      for (size_t j = 0; j < kDim; ++j) q.a[j] = rng.Uniform(1.0, 4.0);
      q.b = mid * rng.Uniform(0.4, 1.6);
    }
    q.cmp = Comparison::kLessEqual;
  }
  return queries;
}

// One BatchInequality pass over `queries` in chunks of `batch_size`;
// accumulates sharing stats across chunks.
void RunBatched(const PlanarIndexSet& set,
                const std::vector<ScalarProductQuery>& queries,
                size_t batch_size,
                std::vector<Result<InequalityResult>>* out,
                BatchExecStats* total) {
  out->clear();
  *total = BatchExecStats();
  for (size_t i = 0; i < queries.size(); i += batch_size) {
    const size_t m = std::min(batch_size, queries.size() - i);
    BatchExecStats stats;
    auto results = set.BatchInequality(
        std::span<const ScalarProductQuery>(queries.data() + i, m), {},
        &stats);
    for (auto& r : results) out->push_back(std::move(r));
    total->queries += stats.queries;
    total->index_groups += stats.index_groups;
    total->scan_queries += stats.scan_queries;
    total->merged_ranges += stats.merged_ranges;
    total->rows_streamed += stats.rows_streamed;
    total->rows_demanded += stats.rows_demanded;
  }
}

}  // namespace
}  // namespace planar

int main(int argc, char** argv) {
  using namespace planar;
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const size_t n = smoke ? 4000 : bench::ScaledN(flags, 200000, 1000000);
  const int runs = smoke ? 1 : bench::Runs(flags, 5);
  const size_t num_queries = smoke ? 16 : 64;

  bench::PrintHeader(
      "bench_batch",
      "BatchInequality vs serial Inequality, n=" + std::to_string(n) +
          " d'=" + std::to_string(kDim) + " queries=" +
          std::to_string(num_queries) +
          " (bit-identity cross-checked, mixed on/off sweep)");

  // Same data and normals either way (same seed); the mixed set carries
  // the f32 mirror, the plain set does not. The plain serial path is the
  // single reference both sweeps must reproduce bit-identically.
  const PlanarIndexSet set_plain = BuildSet(n, /*mixed=*/false);
  const PlanarIndexSet set_mixed = BuildSet(n, /*mixed=*/true);
  const std::vector<size_t> batch_sizes =
      smoke ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 4, 16, 64};

  TablePrinter table({"workload", "mixed", "batch", "serial q/s",
                      "batch q/s", "speedup", "sharing", "rows/s"});
  bool ok = true;
  for (const bool overlap : {true, false}) {
    const char* workload = overlap ? "overlap" : "spread";
    const std::vector<ScalarProductQuery> queries =
        MakeWorkload(overlap, num_queries, overlap ? 77 : 78);

    // Serial reference: pure f64 answers + best-of-runs time.
    std::vector<Result<InequalityResult>> serial;
    const double serial_ms = MinMillis(
        [&] {
          serial.clear();
          for (const ScalarProductQuery& q : queries) {
            serial.push_back(set_plain.Inequality(q, Deadline::Infinite()));
          }
        },
        runs);
    const double serial_qps =
        static_cast<double>(queries.size()) / (serial_ms / 1000.0);

    for (const bool mixed : {false, true}) {
      const PlanarIndexSet& set = mixed ? set_mixed : set_plain;
      for (const size_t batch_size : batch_sizes) {
        std::vector<Result<InequalityResult>> batched;
        BatchExecStats stats;
        const double batch_ms = MinMillis(
            [&] { RunBatched(set, queries, batch_size, &batched, &stats); },
            runs);
        // Bit-identity gate: a fast wrong answer is not a result. The
        // mixed sweep checks against the same pure f64 serial reference.
        for (size_t i = 0; i < queries.size(); ++i) {
          if (!batched[i].ok() || !serial[i].ok() ||
              batched[i]->ids != serial[i]->ids) {
            std::fprintf(stderr,
                         "FAIL: batched answer diverges from serial "
                         "(workload=%s mixed=%d batch=%zu query=%zu)\n",
                         workload, mixed ? 1 : 0, batch_size, i);
            ok = false;
          }
        }
        const double batch_qps =
            static_cast<double>(queries.size()) / (batch_ms / 1000.0);
        const double speedup = serial_ms > 0.0 ? serial_ms / batch_ms : 0.0;
        const double rows_per_sec =
            static_cast<double>(stats.rows_demanded) / (batch_ms / 1000.0);
        table.AddRow({workload, mixed ? "on" : "off",
                      std::to_string(batch_size), FormatDouble(serial_qps, 1),
                      FormatDouble(batch_qps, 1), FormatDouble(speedup, 2),
                      FormatDouble(stats.SharingFactor(), 2),
                      FormatDouble(rows_per_sec / 1e6, 1)});
        std::printf(
            "{\"bench\":\"batch\",\"workload\":\"%s\",\"mixed\":%s,"
            "\"n\":%zu,\"queries\":%zu,\"batch_size\":%zu,"
            "\"serial_qps\":%.1f,\"batch_qps\":%.1f,\"speedup\":%.2f,"
            "\"sharing_factor\":%.2f,\"rows_per_sec\":%.0f%s}\n",
            workload, mixed ? "true" : "false", n, queries.size(),
            batch_size, serial_qps, batch_qps, speedup,
            stats.SharingFactor(), rows_per_sec,
            bench::JsonStamp(1, set.ResidentBytes()).c_str());
      }
    }
  }
  std::printf("\n");
  table.Print();
  if (!ok) return 1;
  return 0;
}
