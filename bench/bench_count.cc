// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Approximate aggregate fast path sweep (DESIGN.md section 5k): COUNT
// latency across tolerance x n against two baselines — the full
// materializing Inequality-and-count, and the pure boundary-search
// bounds — plus a head-to-head of the learned predict-then-probe
// boundary search against the PR 4 Eytzinger descent on the same index.
// Every tolerance-0 count is first cross-checked bit-equal to the scan
// baseline (a mismatch is a hard failure), which makes --smoke the CI
// gate for the count path.
//
//   --n        dataset size            (default 100000)
//   --queries  queries per mode        (default 64)
//   --runs     timed repetitions, best-of (default 5)
//   --full     paper-scale dataset     (n = 1000000)
//   --smoke    tiny sizes, single run — CI bit-exactness gate

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "core/index_set.h"
#include "core/planar_index.h"
#include "core/scan.h"
#include "tests/test_util.h"

namespace planar {
namespace {

std::vector<ScalarProductQuery> MakeQueries(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<ScalarProductQuery> queries(count);
  for (size_t i = 0; i < count; ++i) {
    // b >= 0 keeps every query index-served: normalization negates a
    // negative-b query into the mirrored octant, which falls back to
    // the O(n) scan on both sides and would measure the scan, not the
    // count path this bench exists to characterize.
    queries[i].a = {rng.Uniform(1, 6), -rng.Uniform(1, 6), rng.Uniform(1, 6)};
    queries[i].b = rng.Uniform(0, 300);
    queries[i].cmp =
        i % 2 == 0 ? Comparison::kLessEqual : Comparison::kGreaterEqual;
  }
  return queries;
}

/// Best-of-`runs` wall milliseconds of `fn` (min: the sweep compares
/// configurations, and min is the noise-robust estimator).
template <typename Fn>
double BestMillis(Fn&& fn, int runs) {
  double best = 0.0;
  for (int i = 0; i < runs; ++i) {
    WallTimer timer;
    fn();
    const double ms = timer.ElapsedMillis();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

void PrintJson(const char* mode, size_t n, size_t queries, double tolerance,
               double ms, double baseline_ms, double refined_fraction) {
  const double ns_per_query =
      queries > 0 ? ms * 1e6 / static_cast<double>(queries) : 0.0;
  const double speedup = ms > 0.0 ? baseline_ms / ms : 0.0;
  std::printf(
      "{\"bench\":\"count\",\"mode\":\"%s\",\"n\":%zu,\"queries\":%zu,"
      "\"tolerance\":%.0f,\"mean_ms\":%.4f,\"ns_per_query\":%.1f,"
      "\"speedup_vs_inequality\":%.2f,\"refined_fraction\":%.3f%s}\n",
      mode, n, queries, tolerance, ms, ns_per_query, speedup,
      refined_fraction, bench::JsonStamp(1).c_str());
}

}  // namespace
}  // namespace planar

int main(int argc, char** argv) {
  using namespace planar;  // NOLINT: bench brevity
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const size_t n = smoke ? 4000 : bench::ScaledN(flags, 100000, 1000000);
  const size_t num_queries =
      static_cast<size_t>(flags.GetInt("queries", smoke ? 16 : 64));
  const int runs = smoke ? 1 : bench::Runs(flags, 5);

  bench::PrintHeader(
      "approximate count fast path",
      "COUNT bounds/refinement latency across tolerance, vs the "
      "materializing Inequality baseline; learned predict-then-probe vs "
      "Eytzinger boundary search; tolerance-0 bit-exactness checked");

  const PhiMatrix phi = RandomPhi(n, 3, -20.0, 80.0, 17);
  const std::vector<ParameterDomain> domains = {
      {1.0, 6.0}, {-6.0, -1.0}, {1.0, 6.0}};
  auto set = PlanarIndexSet::Build(PhiMatrix(phi), domains);
  PLANAR_CHECK(set.ok());
  const std::vector<ScalarProductQuery> queries = MakeQueries(num_queries, 23);

  // Bit-exactness gate: tolerance-0 counts equal the scan baseline.
  for (size_t i = 0; i < queries.size(); ++i) {
    auto count = set->CountInequality(queries[i]);
    PLANAR_CHECK(count.ok());
    const size_t truth = ScanInequality(phi, queries[i]).ids.size();
    if (!count->exact || count->estimate != truth) {
      std::fprintf(stderr, "FAIL: count mismatch at query %zu (%zu != %zu)\n",
                   i, count->estimate, truth);
      return 1;
    }
  }

  // Baseline: the materializing path a caller without CountInequality
  // pays — answer the inequality, count the ids.
  const double inequality_ms = BestMillis(
      [&] {
        size_t sink = 0;
        for (const ScalarProductQuery& q : queries) {
          sink += set->Inequality(q).ids.size();
        }
        PLANAR_CHECK(sink != static_cast<size_t>(-1));
      },
      runs);
  PrintJson("inequality_baseline", n, num_queries, 0.0, inequality_ms,
            inequality_ms, 0.0);

  // Tolerance sweep: absolute tolerances from exact to bounds-only.
  TablePrinter table(
      {"tolerance", "ms/sweep", "ns/query", "vs inequality", "refined"});
  const std::vector<double> tolerances = {
      0.0, 16.0, 256.0, 4096.0, static_cast<double>(n)};
  for (const double tol : tolerances) {
    CountTolerance tolerance;
    tolerance.absolute = tol;
    size_t refined = 0;
    for (const ScalarProductQuery& q : queries) {
      auto count = set->CountInequality(q, tolerance);
      PLANAR_CHECK(count.ok());
      if (count->refined) ++refined;
    }
    const double ms = BestMillis(
        [&] {
          for (const ScalarProductQuery& q : queries) {
            auto count = set->CountInequality(q, tolerance);
            PLANAR_CHECK(count.ok());
          }
        },
        runs);
    const double refined_fraction =
        static_cast<double>(refined) / static_cast<double>(num_queries);
    const char* mode = tol == 0.0            ? "exact"
                       : tol >= static_cast<double>(n) ? "bounds_only"
                                                       : "sweep";
    PrintJson(mode, n, num_queries, tol, ms, inequality_ms, refined_fraction);
    table.AddRow({FormatDouble(tol, 0), FormatDouble(ms, 3),
                  FormatDouble(ms * 1e6 / static_cast<double>(num_queries), 0),
                  FormatDouble(inequality_ms / ms, 1),
                  FormatDouble(refined_fraction, 2)});
  }

  // Predict-then-probe vs Eytzinger, same index, bounds-only queries
  // (two boundary searches per count, no II streaming): the learned
  // model's win or loss on ns/lookup is whatever these two lines say.
  CountTolerance bounds_only;
  bounds_only.absolute = static_cast<double>(n);
  PlanarIndexOptions eytzinger_only;
  eytzinger_only.learned_cdf = false;
  PhiMatrix first_octant = RandomPhi(n, 3, 1.0, 100.0, 19);
  auto model_index =
      PlanarIndex::BuildFirstOctant(&first_octant, {1.0, 2.0, 1.0});
  auto eytz_index = PlanarIndex::BuildFirstOctant(&first_octant,
                                                  {1.0, 2.0, 1.0},
                                                  eytzinger_only);
  PLANAR_CHECK(model_index.ok() && eytz_index.ok());
  std::vector<ScalarProductQuery> lookups(num_queries * 8);
  {
    Rng rng(29);
    for (ScalarProductQuery& q : lookups) {
      q.a = {rng.Uniform(1, 6), rng.Uniform(1, 6), rng.Uniform(1, 6)};
      q.b = rng.Uniform(0, 2000);
      q.cmp = Comparison::kLessEqual;
    }
  }
  const auto time_lookups = [&](const PlanarIndex& index) {
    return BestMillis(
        [&] {
          for (const ScalarProductQuery& q : lookups) {
            auto count = index.CountInequality(q, bounds_only);
            PLANAR_CHECK(count.ok());
          }
        },
        runs);
  };
  const double model_ms = time_lookups(model_index.value());
  const double eytz_ms = time_lookups(eytz_index.value());
  PrintJson("lookup_model", n, lookups.size(), 0.0, model_ms, eytz_ms, 0.0);
  PrintJson("lookup_eytzinger", n, lookups.size(), 0.0, eytz_ms, eytz_ms, 0.0);
  std::printf(
      "\npredict-then-probe %.0f ns/lookup vs eytzinger %.0f ns/lookup "
      "(model %s by %.2fx; model %s, max_error %zu)\n",
      model_ms * 1e6 / static_cast<double>(lookups.size()),
      eytz_ms * 1e6 / static_cast<double>(lookups.size()),
      model_ms <= eytz_ms ? "wins" : "loses",
      model_ms <= eytz_ms ? eytz_ms / model_ms : model_ms / eytz_ms,
      model_index->learned_cdf().empty() ? "ABSENT (fallback timed)"
                                         : "present",
      model_index->learned_cdf().max_error());

  std::printf("\n");
  table.Print();
  std::printf("bit-exactness: OK (%zu tolerance-0 counts vs scan)\n",
              queries.size());
  return 0;
}
