// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Engine throughput sweep: requests/second and latency percentiles as a
// function of worker count and batch size. Clients are closed-loop (each
// keeps one request in flight), generated with the same ParallelFor
// primitive the core library uses. Prints a TablePrinter table plus one
// JSON line per configuration for machine consumption.
//
//   --n        dataset size            (default 20000)
//   --queries  requests per client     (default 400)
//   --clients  concurrent clients      (default 4)
//   --full     paper-scale dataset     (n = 100000)

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "core/parallel.h"
#include "engine/engine.h"
#include "tests/test_util.h"

namespace planar {
namespace {

struct SweepResult {
  size_t workers;
  size_t batch;
  double seconds;
  double rps;
  double p50_ms;
  double p99_ms;
  uint64_t completed;
  uint64_t shed;
};

SweepResult RunConfig(Catalog& catalog, size_t workers, size_t batch,
                      size_t clients, int queries_per_client) {
  EngineOptions options;
  options.num_workers = workers;
  options.queue_capacity = 1024;
  options.max_batch = batch;
  Engine engine(&catalog, options);

  WallTimer timer;
  // Closed-loop clients: ParallelFor shards one task per client thread.
  ParallelFor(
      clients,
      [&engine, queries_per_client](size_t client) {
        Rng rng(client + 7);
        for (int i = 0; i < queries_per_client; ++i) {
          EngineRequest request;
          request.target = "bench";
          request.kind =
              i % 4 == 0 ? QueryKind::kTopK : QueryKind::kInequality;
          request.k = 8;
          request.query.a = {rng.Uniform(1, 6), -rng.Uniform(1, 6),
                             rng.Uniform(1, 6)};
          request.query.b = rng.Uniform(-100, 300);
          auto future = engine.Submit(std::move(request));
          if (!future.ok()) continue;  // shed under pressure
          (void)future->get();
        }
      },
      clients);
  engine.Drain();
  const double seconds = timer.ElapsedSeconds();

  const DebugSnapshot snapshot = engine.Snapshot();
  SweepResult r;
  r.workers = workers;
  r.batch = batch;
  r.seconds = seconds;
  r.completed = snapshot.counters.completed_ok;
  r.shed = snapshot.counters.rejected_queue_full;
  r.rps = seconds > 0.0 ? static_cast<double>(r.completed) / seconds : 0.0;
  r.p50_ms = snapshot.latency_millis.ApproxPercentile(50);
  r.p99_ms = snapshot.latency_millis.ApproxPercentile(99);
  return r;
}

}  // namespace
}  // namespace planar

int main(int argc, char** argv) {
  using namespace planar;  // NOLINT: bench brevity
  FlagParser flags(argc, argv);
  const size_t n = bench::ScaledN(flags, 20000, 100000);
  const int queries = static_cast<int>(flags.GetInt("queries", 400));
  const size_t clients =
      static_cast<size_t>(flags.GetInt("clients", 4));

  bench::PrintHeader("engine throughput",
                     "requests/s over worker-count x batch-size; " +
                         std::to_string(clients) + " closed-loop clients, " +
                         std::to_string(queries) + " requests each");

  Catalog catalog;
  {
    PhiMatrix phi = RandomPhi(n, 3, -20.0, 80.0, 3);
    auto set = PlanarIndexSet::Build(
        std::move(phi), {{1.0, 6.0}, {-6.0, -1.0}, {1.0, 6.0}});
    PLANAR_CHECK(set.ok());
    catalog.Install("bench", std::move(set).value());
  }

  const size_t worker_counts[] = {1, 2, 4, 8};
  const size_t batch_sizes[] = {1, 8, 32};
  TablePrinter table(
      {"workers", "batch", "req/s", "p50 ms", "p99 ms", "completed", "shed"});
  for (const size_t workers : worker_counts) {
    for (const size_t batch : batch_sizes) {
      const SweepResult r =
          RunConfig(catalog, workers, batch, clients, queries);
      table.AddRow({std::to_string(r.workers), std::to_string(r.batch),
                    FormatDouble(r.rps, 0), FormatDouble(r.p50_ms, 4),
                    FormatDouble(r.p99_ms, 4), std::to_string(r.completed),
                    std::to_string(r.shed)});
      std::printf(
          "{\"bench\":\"engine_throughput\",\"workers\":%zu,\"batch\":%zu,"
          "\"clients\":%zu,\"n\":%zu,\"rps\":%.1f,\"p50_ms\":%.4f,"
          "\"p99_ms\":%.4f,\"completed\":%llu,\"shed\":%llu%s}\n",
          r.workers, r.batch, clients, n, r.rps, r.p50_ms, r.p99_ms,
          static_cast<unsigned long long>(r.completed),
          static_cast<unsigned long long>(r.shed),
          bench::JsonStamp(r.workers + clients).c_str());
    }
  }
  std::printf("\n");
  table.Print();
  return 0;
}
