// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Microbenchmark for the vectorized verification kernels (src/core/kernels):
// rows/second of the batched paths against the pre-kernel baselines they
// replaced (per-row planar::Dot plus a branchy accept loop). Three
// workloads, each swept over d' in {2, 4, 8, 16}:
//
//   batch_dot     dot_range residuals           vs per-row Dot
//   batch_verify  dot_gather + CompressAccept   vs per-row Dot + branchy push
//   build_keys    dot_range key construction    vs per-row Dot + shift
//
// Prints a table plus one JSON line per configuration (the committed
// baseline lives in BENCH_kernels.json at the repo root).
//
// The default row count is cache-resident so the comparison is
// compute-bound (the kernels' reason to exist); --full streams from
// DRAM, where both paths converge toward memory bandwidth and the gap
// narrows — both regimes are honest, they answer different questions.
//
//   --n      rows                      (default 16384; --full 1000000)
//   --runs   measured repetitions      (default 25, best-of)
//   --smoke  tiny sizes, single run — CI correctness-of-plumbing mode

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "core/kernels/kernels.h"
#include "core/mixed.h"
#include "core/row_matrix.h"
#include "geometry/vec.h"
#include "tests/test_util.h"

namespace planar {
namespace {

// Keeps the compiler from discarding the measured loops.
volatile double g_sink = 0.0;

// Best-of-runs wall time: robust against host steal time and frequency
// dips, which matters more than averaging on shared single-core runners.
template <typename Fn>
double MinMillis(Fn&& fn, int runs) {
  double best = 0.0;
  for (int i = 0; i < runs; ++i) {
    WallTimer timer;
    fn();
    const double ms = timer.ElapsedMillis();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

struct Measurement {
  double baseline_rows_per_sec = 0.0;
  double kernel_rows_per_sec = 0.0;
  double speedup() const {
    return baseline_rows_per_sec > 0.0
               ? kernel_rows_per_sec / baseline_rows_per_sec
               : 0.0;
  }
};

double RowsPerSec(size_t rows, double millis) {
  return millis > 0.0 ? static_cast<double>(rows) / (millis / 1000.0) : 0.0;
}

// Residuals for every row, blocked: the scan / II hot loop shape.
Measurement BenchBatchDot(const PhiMatrix& phi, const std::vector<double>& a,
                          double b, int runs) {
  const size_t n = phi.size();
  const size_t dim = phi.dim();
  std::vector<double> residuals(n);
  Measurement m;
  const double base_ms = MinMillis(
      [&] {
        double acc = 0.0;
        for (size_t i = 0; i < n; ++i) {
          residuals[i] = Dot(a.data(), phi.row(i), dim) - b;
          acc += residuals[i];
        }
        g_sink = acc;
      },
      runs);
  const kernels::DotOps& ops = kernels::Ops();
  const double kern_ms = MinMillis(
      [&] {
        for (size_t row = 0; row < n; row += kernels::kBlockRows) {
          const size_t blk = std::min(kernels::kBlockRows, n - row);
          ops.dot_range(a.data(), dim, phi.data(), dim, row, blk, -b,
                        residuals.data() + row);
        }
        g_sink = residuals[n - 1];
      },
      runs);
  m.baseline_rows_per_sec = RowsPerSec(n, base_ms);
  m.kernel_rows_per_sec = RowsPerSec(n, kern_ms);
  return m;
}

// The full II verification shape: gather candidate rows by id, compute
// residuals, emit matching ids. Baseline is the pre-kernel per-row loop
// (one Dot, one data-dependent branch, one push_back per row).
Measurement BenchBatchVerify(const PhiMatrix& phi,
                             const std::vector<double>& a, double b,
                             const std::vector<uint32_t>& ids, int runs) {
  const size_t n = ids.size();
  const size_t dim = phi.dim();
  std::vector<uint32_t> accepted;
  Measurement m;
  const double base_ms = MinMillis(
      [&] {
        accepted.clear();
        for (size_t i = 0; i < n; ++i) {
          const double residual = Dot(a.data(), phi.row(ids[i]), dim) - b;
          if (residual <= 0.0) accepted.push_back(ids[i]);
        }
        g_sink = static_cast<double>(accepted.size());
      },
      runs);
  const kernels::DotOps& ops = kernels::Ops();
  double residuals[kernels::kBlockRows];
  const double kern_ms = MinMillis(
      [&] {
        accepted.clear();
        accepted.reserve(n);
        for (size_t off = 0; off < n; off += kernels::kBlockRows) {
          const size_t blk = std::min(kernels::kBlockRows, n - off);
          ops.dot_gather(a.data(), dim, phi.data(), dim, ids.data() + off,
                         blk, -b, residuals);
          const size_t old_size = accepted.size();
          accepted.resize(old_size + blk);
          const size_t kept =
              kernels::CompressAccept(residuals, ids.data() + off, blk, true,
                                      accepted.data() + old_size);
          accepted.resize(old_size + kept);
        }
        g_sink = static_cast<double>(accepted.size());
      },
      runs);
  m.baseline_rows_per_sec = RowsPerSec(n, base_ms);
  m.kernel_rows_per_sec = RowsPerSec(n, kern_ms);
  return m;
}

// Mixed-precision verification shape (core/mixed.h): f32 residuals over
// the mirror classify every row against the widened accept band; only the
// in-band rows are re-verified with the exact f64 gather. Baseline is the
// pure f64 gather + compress path (batch_verify's kernel side) — the
// speedup column is therefore mixed-vs-f64, the claim the mode exists
// for. The accepted id streams are asserted identical every run.
Measurement BenchBatchVerifyMixed(const PhiMatrix& phi,
                                  const std::vector<double>& a, double b,
                                  const std::vector<uint32_t>& ids,
                                  int runs) {
  const size_t n = ids.size();
  const size_t dim = phi.dim();
  const kernels::DotOps& ops = kernels::Ops();
  std::vector<uint32_t> accepted;
  std::vector<uint32_t> accepted_mixed;
  Measurement m;
  double residuals[kernels::kBlockRows];
  const double base_ms = MinMillis(
      [&] {
        accepted.clear();
        accepted.reserve(n);
        for (size_t off = 0; off < n; off += kernels::kBlockRows) {
          const size_t blk = std::min(kernels::kBlockRows, n - off);
          ops.dot_gather(a.data(), dim, phi.data(), dim, ids.data() + off,
                         blk, -b, residuals);
          const size_t old_size = accepted.size();
          accepted.resize(old_size + blk);
          const size_t kept =
              kernels::CompressAccept(residuals, ids.data() + off, blk, true,
                                      accepted.data() + old_size);
          accepted.resize(old_size + kept);
        }
        g_sink = static_cast<double>(accepted.size());
      },
      runs);
  const MixedQueryPlan plan = MakeMixedPlan(a.data(), dim, b, true, phi);
  PLANAR_CHECK(plan.usable);  // the bench data is well inside float range
  const kernels::DotOpsF32& ops32 = kernels::OpsF32();
  // f32-ok (bench): the mirror-side residual buffer of the classify pass.
  float res32[kernels::kBlockRows];
  double decision[kernels::kBlockRows];
  const double kern_ms = MinMillis(
      [&] {
        accepted_mixed.clear();
        accepted_mixed.reserve(n);
        for (size_t off = 0; off < n; off += kernels::kBlockRows) {
          const size_t blk = std::min(kernels::kBlockRows, n - off);
          ops32.dot_gather(plan.a32.data(), dim, phi.f32_data(), dim,
                           ids.data() + off, blk, plan.bias32, res32);
          MixedResolveBlock(plan, a.data(), dim, b, phi.data(), dim,
                            ids.data() + off, res32, blk, decision);
          const size_t old_size = accepted_mixed.size();
          accepted_mixed.resize(old_size + blk);
          const size_t kept = kernels::CompressAccept(
              decision, ids.data() + off, blk, true,
              accepted_mixed.data() + old_size);
          accepted_mixed.resize(old_size + kept);
        }
        g_sink = static_cast<double>(accepted_mixed.size());
      },
      runs);
  // Bit-identity gate: the mixed path must accept exactly the f64 ids in
  // exactly the f64 order, or the measurement is meaningless.
  PLANAR_CHECK(accepted == accepted_mixed);
  m.baseline_rows_per_sec = RowsPerSec(n, base_ms);
  m.kernel_rows_per_sec = RowsPerSec(n, kern_ms);
  return m;
}

// Key construction: the Rebuild hot loop (key_i = <c, phi_i> + shift).
Measurement BenchBuildKeys(const PhiMatrix& phi,
                           const std::vector<double>& normal, double shift,
                           int runs) {
  const size_t n = phi.size();
  const size_t dim = phi.dim();
  std::vector<double> keys(n);
  Measurement m;
  const double base_ms = MinMillis(
      [&] {
        for (size_t i = 0; i < n; ++i) {
          keys[i] = Dot(normal.data(), phi.row(i), dim) + shift;
        }
        g_sink = keys[n - 1];
      },
      runs);
  const kernels::DotOps& ops = kernels::Ops();
  const double kern_ms = MinMillis(
      [&] {
        ops.dot_range(normal.data(), dim, phi.data(), dim, 0, n, shift,
                      keys.data());
        g_sink = keys[n - 1];
      },
      runs);
  m.baseline_rows_per_sec = RowsPerSec(n, base_ms);
  m.kernel_rows_per_sec = RowsPerSec(n, kern_ms);
  return m;
}

}  // namespace
}  // namespace planar

int main(int argc, char** argv) {
  using namespace planar;  // NOLINT: bench brevity
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const size_t n = smoke ? 4096 : bench::ScaledN(flags, 16384, 1000000);
  const int runs = smoke ? 1 : bench::Runs(flags, 25);

  bench::PrintHeader(
      "kernel throughput",
      "rows/s of batched kernels vs per-row baseline; backend=" +
          std::string(kernels::BackendName()));

  const size_t dims[] = {2, 4, 8, 16};
  TablePrinter table({"workload", "d'", "baseline Mrows/s", "kernel Mrows/s",
                      "speedup"});
  for (const size_t dim : dims) {
    PhiMatrix phi = RandomPhi(n, dim, 0.0, 100.0, 97 + dim);
    phi.EnableF32Mirror();  // for the batch_verify_mixed workload
    Rng rng(13 + dim);
    std::vector<double> a(dim);
    for (size_t j = 0; j < dim; ++j) a[j] = rng.Uniform(0.5, 4.0);
    const double b = 100.0 * static_cast<double>(dim);  // ~50% selectivity
    // Candidate ids with gaps, like a real intermediate interval.
    std::vector<uint32_t> ids;
    ids.reserve(n / 2);
    for (size_t i = 0; i < n; i += 2) {
      ids.push_back(static_cast<uint32_t>(i));
    }

    struct Row {
      const char* workload;
      Measurement m;
      // Hot-path streamed bytes of the measured configuration; 0 when
      // the workload has no footprint story to tell.
      size_t resident = 0;
    };
    const Row rows[] = {
        {"batch_dot", BenchBatchDot(phi, a, b, runs)},
        {"batch_verify", BenchBatchVerify(phi, a, b, ids, runs)},
        {"batch_verify_mixed", BenchBatchVerifyMixed(phi, a, b, ids, runs),
         n * dim * sizeof(float)},
        {"build_keys", BenchBuildKeys(phi, a, 0.25, runs)},
    };
    for (const Row& row : rows) {
      table.AddRow({row.workload, std::to_string(dim),
                    FormatDouble(row.m.baseline_rows_per_sec / 1e6, 1),
                    FormatDouble(row.m.kernel_rows_per_sec / 1e6, 1),
                    FormatDouble(row.m.speedup(), 2)});
      std::printf(
          "{\"bench\":\"kernels\",\"workload\":\"%s\",\"dim\":%zu,"
          "\"n\":%zu,\"backend\":\"%s\",\"baseline_rows_per_sec\":%.0f,"
          "\"kernel_rows_per_sec\":%.0f,\"speedup\":%.2f%s}\n",
          row.workload, dim, n, kernels::BackendName(),
          row.m.baseline_rows_per_sec, row.m.kernel_rows_per_sec,
          row.m.speedup(), bench::JsonStamp(1, row.resident).c_str());
    }
  }
  std::printf("\n");
  table.Print();
  return 0;
}
