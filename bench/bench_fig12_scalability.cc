// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Figure 12 of the paper: scalability with the number of data points
// (0.1M .. 1M): 12(a) index-construction time (identical across the
// synthetic distributions) and 12(b-d) query time per distribution,
// #index 1..100, RQ = 4, dimensionality 6.
//
// Flags: --runs, --max_n (default 1M).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/synthetic_harness.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/scan.h"

int main(int argc, char** argv) {
  using namespace planar;         // NOLINT
  using namespace planar::bench;  // NOLINT
  FlagParser flags(argc, argv);
  const int runs = Runs(flags);
  const size_t max_n =
      static_cast<size_t>(flags.GetInt("max_n", 1000000));
  const int rq = 4;
  const size_t dim = 6;
  std::vector<size_t> sizes;
  for (double frac : {0.1, 0.3, 0.5, 0.7, 1.0}) {
    sizes.push_back(static_cast<size_t>(frac * static_cast<double>(max_n)));
  }

  PrintHeader("Figure 12(a)",
              "index-construction time (s) vs #points; dim = 6, RQ = 4");
  {
    TablePrinter table({"#points", "#index=1", "#index=10", "#index=50",
                        "#index=100"});
    for (size_t n : sizes) {
      const Dataset data =
          MakeSynthetic(SyntheticDistribution::kIndependent, n, dim);
      std::vector<std::string> row{std::to_string(n)};
      for (size_t budget : {1u, 10u, 50u, 100u}) {
        WallTimer timer;
        PlanarIndexSet set = BuildEq18Set(data, rq, budget);
        row.push_back(FormatDouble(timer.ElapsedSeconds(), 2));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }

  const char* figure[] = {"Figure 12(b)", "Figure 12(c)", "Figure 12(d)"};
  int fig_idx = 0;
  for (auto dist : AllDistributions()) {
    PrintHeader(figure[fig_idx++],
                "query time (ms) vs #points; " + DistributionName(dist) +
                    ", dim = 6, RQ = 4");
    TablePrinter table({"#points", "#index=1", "#index=10", "#index=50",
                        "#index=100", "baseline"});
    for (size_t n : sizes) {
      const Dataset data = MakeSynthetic(dist, n, dim);
      std::vector<std::string> row{std::to_string(n)};
      double baseline_ms = 0.0;
      for (size_t budget : {1u, 10u, 50u, 100u}) {
        PlanarIndexSet set = BuildEq18Set(data, rq, budget);
        Eq18Workload queries(set.phi(), rq, 0.25, /*seed=*/47);
        row.push_back(FormatDouble(
            MeanMillis([&] { (void)set.Inequality(queries.Next()); }, runs),
            3));
        if (budget == 1) {
          Eq18Workload base_queries(set.phi(), rq, 0.25, /*seed=*/47);
          baseline_ms = MeanMillis(
              [&] { (void)ScanInequality(set.phi(), base_queries.Next()); },
              runs);
        }
      }
      row.push_back(FormatDouble(baseline_ms, 3));
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  return 0;
}
