// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Shard-per-core scatter-gather sweep: ShardedIndexSet latency against
// the monolithic PlanarIndexSet baseline across shard count x fan-out
// worker count, for the three serving paths (inequality, top-k, batched
// inequality). Every configuration is first cross-checked bit-identical
// to the monolithic answers (sorted id lists; memcmp'd top-k neighbors)
// — a mismatch is a hard failure, which makes --smoke the CI gate for
// the scatter-gather merge.
//
// The JSON lines carry effective_threads = min(shards, workers): the
// parallelism the configuration can actually express. On a 1-core host
// the scaling curve is honest but flat — effective_threads > 1 next to
// host_threads = 1 says exactly that.
//
//   --n        dataset size            (default 60000)
//   --queries  queries per mode        (default 48)
//   --runs     timed repetitions, best-of (default 5)
//   --full     paper-scale dataset     (n = 500000)
//   --smoke    tiny sizes, single run — CI bit-identity gate

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "core/sharded.h"
#include "tests/test_util.h"

namespace planar {
namespace {

constexpr size_t kTopK = 16;

std::vector<ScalarProductQuery> MakeQueries(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<ScalarProductQuery> queries(count);
  for (size_t i = 0; i < count; ++i) {
    queries[i].a = {rng.Uniform(1, 6), -rng.Uniform(1, 6), rng.Uniform(1, 6)};
    queries[i].b = rng.Uniform(-100, 300);
    queries[i].cmp =
        i % 2 == 0 ? Comparison::kLessEqual : Comparison::kGreaterEqual;
  }
  return queries;
}

/// Best-of-`runs` wall milliseconds of `fn` (min, not mean: the sweep
/// compares configurations, and min is the noise-robust estimator).
template <typename Fn>
double BestMillis(Fn&& fn, int runs) {
  double best = 0.0;
  for (int i = 0; i < runs; ++i) {
    WallTimer timer;
    fn();
    const double ms = timer.ElapsedMillis();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

/// Cross-checks one sharded set against the monolithic reference on all
/// three paths. Returns false (after printing the first divergence) on
/// any mismatch — the answers must be bitwise equal, not just close.
bool BitIdentical(const PlanarIndexSet& mono, const ShardedIndexSet& sharded,
                  const std::vector<ScalarProductQuery>& queries) {
  const auto batch = sharded.BatchInequality(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    const InequalityResult mono_ineq = mono.Inequality(queries[i]);
    auto shard_ineq = sharded.Inequality(queries[i]);
    PLANAR_CHECK(shard_ineq.ok());
    PLANAR_CHECK(batch[i].ok());
    const std::vector<uint32_t> want = Sorted(mono_ineq.ids);
    if (shard_ineq.value().ids != want || batch[i].value().ids != want) {
      std::fprintf(stderr,
                   "FAIL: inequality id mismatch at query %zu "
                   "(shards=%zu)\n",
                   i, sharded.num_shards());
      return false;
    }
    auto mono_topk = mono.TopK(queries[i], kTopK);
    auto shard_topk = sharded.TopK(queries[i], kTopK);
    PLANAR_CHECK(mono_topk.ok());
    PLANAR_CHECK(shard_topk.ok());
    const std::vector<Neighbor>& want_nn = mono_topk.value().neighbors;
    const std::vector<Neighbor>& got_nn = shard_topk.value().neighbors;
    // Element-wise, not memcmp: Neighbor has padding bytes after `id`.
    const bool topk_equal =
        got_nn.size() == want_nn.size() &&
        std::equal(got_nn.begin(), got_nn.end(), want_nn.begin(),
                   [](const Neighbor& a, const Neighbor& b) {
                     return a.id == b.id && a.distance == b.distance;
                   });
    if (!topk_equal) {
      std::fprintf(stderr,
                   "FAIL: top-k mismatch at query %zu (shards=%zu)\n", i,
                   sharded.num_shards());
      return false;
    }
  }
  return true;
}

struct ModeTimes {
  double inequality_ms = 0.0;  // whole query sweep, one pass
  double topk_ms = 0.0;
  double batch_ms = 0.0;
};

/// The monolithic baseline delivers the same answer the sharded set
/// contracts to: the canonical ascending-id order. Monolithic ids come
/// back in index-rank order, so the baseline pays the same sort a
/// client needing deterministic ids pays — without it the comparison
/// would charge canonicalization to the sharded side only.
ModeTimes TimeMonolithic(const PlanarIndexSet& set,
                         const std::vector<ScalarProductQuery>& queries,
                         int runs) {
  ModeTimes t;
  t.inequality_ms = BestMillis(
      [&] {
        for (const ScalarProductQuery& q : queries) {
          InequalityResult r = set.Inequality(q);
          std::sort(r.ids.begin(), r.ids.end());
        }
      },
      runs);
  t.topk_ms = BestMillis(
      [&] {
        for (const ScalarProductQuery& q : queries) (void)set.TopK(q, kTopK);
      },
      runs);
  t.batch_ms = BestMillis(
      [&] {
        auto results = set.BatchInequality(queries);
        for (auto& r : results) {
          std::sort(r.value().ids.begin(), r.value().ids.end());
        }
      },
      runs);
  return t;
}

struct PairTimes {
  ModeTimes mono;
  ModeTimes sharded;
};

/// Times the baseline and one sharded configuration interleaved —
/// alternating mono/sharded sweeps within every repetition — so clock
/// drift and background noise hit both sides of each ratio equally.
/// Best-of per side, like BestMillis.
PairTimes TimePaired(const PlanarIndexSet& mono, const ShardedIndexSet& set,
                     const std::vector<ScalarProductQuery>& queries,
                     int runs) {
  const auto once = [](auto&& fn) {
    WallTimer timer;
    fn();
    return timer.ElapsedMillis();
  };
  const auto keep_min = [](double* slot, double ms) {
    if (*slot == 0.0 || ms < *slot) *slot = ms;
  };
  PairTimes t;
  for (int i = 0; i < runs; ++i) {
    keep_min(&t.mono.inequality_ms, once([&] {
               for (const ScalarProductQuery& q : queries) {
                 InequalityResult r = mono.Inequality(q);
                 std::sort(r.ids.begin(), r.ids.end());
               }
             }));
    keep_min(&t.sharded.inequality_ms, once([&] {
               for (const ScalarProductQuery& q : queries) {
                 (void)set.Inequality(q);
               }
             }));
    keep_min(&t.mono.topk_ms, once([&] {
               for (const ScalarProductQuery& q : queries) {
                 (void)mono.TopK(q, kTopK);
               }
             }));
    keep_min(&t.sharded.topk_ms, once([&] {
               for (const ScalarProductQuery& q : queries) {
                 (void)set.TopK(q, kTopK);
               }
             }));
    keep_min(&t.mono.batch_ms, once([&] {
               auto results = mono.BatchInequality(queries);
               for (auto& r : results) {
                 std::sort(r.value().ids.begin(), r.value().ids.end());
               }
             }));
    keep_min(&t.sharded.batch_ms,
             once([&] { (void)set.BatchInequality(queries); }));
  }
  return t;
}

void PrintJson(const char* mode, size_t n, size_t queries, size_t shards,
               size_t workers, double ms, double mono_ms,
               size_t effective_threads) {
  const double qps =
      ms > 0.0 ? static_cast<double>(queries) / (ms / 1000.0) : 0.0;
  const double speedup = ms > 0.0 ? mono_ms / ms : 0.0;
  std::printf(
      "{\"bench\":\"shard\",\"mode\":\"%s\",\"n\":%zu,\"queries\":%zu,"
      "\"shards\":%zu,\"workers\":%zu,\"mean_ms\":%.4f,\"qps\":%.1f,"
      "\"speedup_vs_mono\":%.3f%s}\n",
      mode, n, queries, shards, workers, ms, qps, speedup,
      bench::JsonStamp(effective_threads).c_str());
}

}  // namespace
}  // namespace planar

int main(int argc, char** argv) {
  using namespace planar;  // NOLINT: bench brevity
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const size_t n = smoke ? 4000 : bench::ScaledN(flags, 60000, 500000);
  const size_t num_queries = static_cast<size_t>(
      flags.GetInt("queries", smoke ? 12 : 48));
  const int runs = smoke ? 1 : bench::Runs(flags, 5);
  const std::vector<size_t> shard_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};
  const std::vector<size_t> worker_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4};

  bench::PrintHeader(
      "shard scatter-gather",
      "sharded vs monolithic latency over shards x workers; every config "
      "bit-identity-checked against the monolithic answers");

  const PhiMatrix phi = RandomPhi(n, 3, -20.0, 80.0, 17);
  const std::vector<ParameterDomain> domains = {
      {1.0, 6.0}, {-6.0, -1.0}, {1.0, 6.0}};
  auto mono = PlanarIndexSet::Build(PhiMatrix(phi), domains);
  PLANAR_CHECK(mono.ok());
  const std::vector<ScalarProductQuery> queries = MakeQueries(num_queries, 23);

  const ModeTimes mono_t = TimeMonolithic(mono.value(), queries, runs);
  PrintJson("inequality", n, num_queries, 0, 1, mono_t.inequality_ms,
            mono_t.inequality_ms, 1);
  PrintJson("topk", n, num_queries, 0, 1, mono_t.topk_ms, mono_t.topk_ms, 1);
  PrintJson("batch", n, num_queries, 0, 1, mono_t.batch_ms, mono_t.batch_ms,
            1);

  TablePrinter table({"shards", "workers", "ineq speedup", "topk speedup",
                      "batch speedup"});
  bool all_identical = true;
  for (const size_t shards : shard_counts) {
    for (const size_t workers : worker_counts) {
      ShardedIndexSetOptions options;
      options.shards = shards;
      options.min_rows_per_shard = 1;
      options.query_threads = workers;
      auto sharded = ShardedIndexSet::Build(PhiMatrix(phi), domains, options);
      PLANAR_CHECK(sharded.ok());
      if (!BitIdentical(mono.value(), sharded.value(), queries)) {
        all_identical = false;
        continue;
      }
      const PairTimes t = TimePaired(mono.value(), sharded.value(), queries,
                                     runs);
      const size_t effective = std::min(shards, workers);
      PrintJson("inequality", n, num_queries, shards, workers,
                t.sharded.inequality_ms, t.mono.inequality_ms, effective);
      PrintJson("topk", n, num_queries, shards, workers, t.sharded.topk_ms,
                t.mono.topk_ms, effective);
      PrintJson("batch", n, num_queries, shards, workers, t.sharded.batch_ms,
                t.mono.batch_ms, effective);
      table.AddRow(
          {std::to_string(shards), std::to_string(workers),
           FormatDouble(t.mono.inequality_ms / t.sharded.inequality_ms, 2),
           FormatDouble(t.mono.topk_ms / t.sharded.topk_ms, 2),
           FormatDouble(t.mono.batch_ms / t.sharded.batch_ms, 2)});
    }
  }

  std::printf("\n");
  table.Print();
  if (!all_identical) {
    std::fprintf(stderr, "bit-identity check FAILED\n");
    return 1;
  }
  std::printf("bit-identity: OK (%zu queries x %zu configs x 3 modes)\n",
              num_queries, shard_counts.size() * worker_counts.size());
  return 0;
}
