// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Shared harness for the synthetic-dataset experiments (Figures 7-12 and
// Table 3): builds indexed Eq.-18 workloads over the Independent /
// Correlated / Anti-correlated generators.

#ifndef PLANAR_BENCH_SYNTHETIC_HARNESS_H_
#define PLANAR_BENCH_SYNTHETIC_HARNESS_H_

#include <string>
#include <vector>

#include "common/macros.h"
#include "core/function.h"
#include "core/index_set.h"
#include "core/row_matrix.h"
#include "datagen/synthetic.h"
#include "datagen/workload.h"

namespace planar {
namespace bench {

inline const std::vector<SyntheticDistribution>& AllDistributions() {
  static const std::vector<SyntheticDistribution> kAll = {
      SyntheticDistribution::kIndependent, SyntheticDistribution::kCorrelated,
      SyntheticDistribution::kAnticorrelated};
  return kAll;
}

/// Generates a synthetic dataset in the paper's (1, 100) attribute range.
inline Dataset MakeSynthetic(SyntheticDistribution dist, size_t n,
                             size_t dim) {
  SyntheticSpec spec;
  spec.distribution = dist;
  spec.num_points = n;
  spec.dim = dim;
  spec.seed = 1000 + static_cast<uint64_t>(dist) * 7 + dim;
  return GenerateSynthetic(spec);
}

/// Builds a PlanarIndexSet over phi(x) = x for Eq.-18 queries with the
/// given randomness of query.
inline PlanarIndexSet BuildEq18Set(
    const Dataset& data, int rq, size_t budget,
    IndexSetOptions options = IndexSetOptions()) {
  PhiMatrix phi = MaterializePhi(data, IdentityFunction(data.dim()));
  Eq18Workload workload(phi, rq, 0.25, /*seed=*/5);
  options.budget = budget;
  auto set = PlanarIndexSet::Build(std::move(phi), workload.Domains(),
                                   options);
  PLANAR_CHECK(set.ok());
  return std::move(set).value();
}

}  // namespace bench
}  // namespace planar

#endif  // PLANAR_BENCH_SYNTHETIC_HARNESS_H_
