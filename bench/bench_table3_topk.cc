// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Table 3 of the paper: top-k nearest-neighbor-finding time on the Indp
// dataset (dim 6, RQ 4, #index 100) for k in {50, 1000, 10000}: the
// percentage of points whose scalar product is evaluated
// ("checked/total") and the query time, against the sequential scan.
//
// Flags: --n (default 300k; --full = 1M), --runs.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/synthetic_harness.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "core/scan.h"

int main(int argc, char** argv) {
  using namespace planar;         // NOLINT
  using namespace planar::bench;  // NOLINT
  FlagParser flags(argc, argv);
  const size_t n = ScaledN(flags, 300000, 1000000);
  const int runs = Runs(flags);
  const int rq = 4;

  PrintHeader("Table 3",
              "top-k nearest-neighbor time, Indp, dim = 6, RQ = 4, "
              "#index = 100, n = " + std::to_string(n));

  const Dataset data =
      MakeSynthetic(SyntheticDistribution::kIndependent, n, 6);
  PlanarIndexSet set = BuildEq18Set(data, rq, 100);

  TablePrinter table({"top-k", "checked/total %", "planar (ms)",
                      "baseline (ms)"});
  for (size_t k : {50u, 1000u, 10000u}) {
    Eq18Workload queries(set.phi(), rq, 0.25, /*seed=*/53);
    RunningStats checked;
    const double planar_ms = MeanMillis(
        [&] {
          auto r = set.TopK(queries.Next(), k);
          PLANAR_CHECK(r.ok());
          checked.Add(100.0 * static_cast<double>(r->stats.checked()) /
                      static_cast<double>(n));
        },
        runs);
    Eq18Workload base_queries(set.phi(), rq, 0.25, /*seed=*/53);
    const double base_ms = MeanMillis(
        [&] { PLANAR_CHECK(ScanTopK(set.phi(), base_queries.Next(), k).ok()); },
        runs);
    table.AddRow({std::to_string(k), FormatDouble(checked.mean(), 2),
                  FormatDouble(planar_ms, 2), FormatDouble(base_ms, 2)});
  }
  table.Print();
  return 0;
}
