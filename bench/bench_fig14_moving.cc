// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Figure 14 of the paper: moving-object intersection with Planar indices
// for anticipated time instants t = 10..15 min (MOVIES-style rotation).
//   14(a) linear x linear (2D, 1000x1000 mi^2, S = 10 mi): baseline vs
//         Planar vs the TPR/MBR-tree comparator.
//   14(b) circular x linear (2D, 100x100 mi^2, r = 1..100 mi,
//         omega = 1..5 deg/min): baseline vs Planar.
//   14(c) accelerating x linear (3D, 1000^3 mi^3, accel 0.01..0.05
//         mi/min^2): baseline vs Planar.
//
// Note: our baseline precomputes each object's position once per query
// time (stronger than a recompute-per-pair scan), so the Planar-vs-
// baseline factors are conservative relative to the paper's.
//
// Flags: --n (objects per set, default 1500; --full = 5000), --runs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "mobility/intersection.h"

int main(int argc, char** argv) {
  using namespace planar;         // NOLINT
  using namespace planar::bench;  // NOLINT
  FlagParser flags(argc, argv);
  const size_t n = ScaledN(flags, 1500, 5000);
  const int runs = Runs(flags, 3);
  const std::vector<double> instants{10, 11, 12, 13, 14, 15};
  const std::vector<double> query_times{10.0, 11.0, 11.5, 12.0, 13.5, 15.0};
  const double distance = 10.0;

  // ---- 14(a): objects moving with uniform velocity -------------------
  {
    Rng rng(1);
    const auto a = GenerateLinearObjects(n, 1000.0, 0.1, 1.0, false, rng);
    const auto b = GenerateLinearObjects(n, 1000.0, 0.1, 1.0, false, rng);
    PrintHeader("Figure 14(a)",
                "linearly moving objects, " + std::to_string(n) + " x " +
                    std::to_string(n) + " pairs, S = 10 mi: query time (ms)");
    WallTimer build_timer;
    auto planar_index = PairIntersectionIndex::BuildLinear(a, b, instants);
    PLANAR_CHECK(planar_index.ok());
    const double planar_build_s = build_timer.ElapsedSeconds();
    build_timer.Reset();
    TprTree tpr(b);
    const double tpr_build_s = build_timer.ElapsedSeconds();
    std::printf("build: planar %.1f s (%zu time-instant indices), "
                "MBR-tree %.2f s\n",
                planar_build_s, planar_index->set().num_indices(),
                tpr_build_s);

    TablePrinter table({"t (min)", "baseline", "planar", "MBR tree",
                        "pairs"});
    for (double t : query_times) {
      size_t pairs = 0;
      const double base_ms = MeanMillis(
          [&] { pairs = BaselineIntersect(a, b, t, distance).size(); },
          runs);
      const double planar_ms = MeanMillis(
          [&] { (void)planar_index->Query(t, distance); }, runs);
      const double tpr_ms =
          MeanMillis([&] { (void)TprIntersect(a, tpr, t, distance); }, runs);
      table.AddRow({FormatDouble(t, 1), FormatDouble(base_ms, 1),
                    FormatDouble(planar_ms, 1), FormatDouble(tpr_ms, 1),
                    std::to_string(pairs)});
    }
    table.Print();
  }

  // ---- 14(b): circular moving objects --------------------------------
  {
    Rng rng(2);
    const auto circulars =
        GenerateCircularObjects(n, 1.0, 100.0, 1.0, 5.0, rng);
    auto linears = GenerateLinearObjects(n, 200.0, 0.1, 1.0, false, rng);
    for (auto& o : linears) {  // center the space on the circles
      o.p0.x -= 100.0;
      o.p0.y -= 100.0;
    }
    PrintHeader("Figure 14(b)",
                "circular x linear objects, " + std::to_string(n) + " x " +
                    std::to_string(n) +
                    " pairs, S = 10 mi: query time (ms); spatio-temporal "
                    "trees do not support this motion");
    WallTimer build_timer;
    auto index = CircularIntersectionIndex::Build(linears, instants);
    PLANAR_CHECK(index.ok());
    std::printf("build: planar %.1f s (%zu grid indices)\n",
                build_timer.ElapsedSeconds(), index->set().num_indices());

    TablePrinter table({"t (min)", "baseline", "planar", "pruning %",
                        "pairs"});
    for (double t : query_times) {
      size_t pairs = 0;
      const double base_ms = MeanMillis(
          [&] {
            pairs = BaselineIntersect(circulars, linears, t, distance).size();
          },
          runs);
      QueryStats stats;
      const double planar_ms = MeanMillis(
          [&] {
            stats = QueryStats();
            (void)index->Query(circulars, t, distance, &stats);
          },
          runs);
      table.AddRow({FormatDouble(t, 1), FormatDouble(base_ms, 1),
                    FormatDouble(planar_ms, 1),
                    FormatDouble(100.0 * stats.PruningFraction(), 1),
                    std::to_string(pairs)});
    }
    table.Print();
  }

  // ---- 14(c): objects moving with acceleration (3D) ------------------
  {
    Rng rng(3);
    const auto a = GenerateAcceleratingObjects(n, 1000.0, 0.1, 1.0, 0.01,
                                               0.05, rng);
    const auto b = GenerateLinearObjects(n, 1000.0, 0.1, 1.0, true, rng);
    PrintHeader("Figure 14(c)",
                "accelerating x linear objects (3D), " + std::to_string(n) +
                    " x " + std::to_string(n) +
                    " pairs, S = 10 mi: query time (ms)");
    WallTimer build_timer;
    auto index = PairIntersectionIndex::BuildAccelerating(a, b, instants);
    PLANAR_CHECK(index.ok());
    std::printf("build: planar %.1f s (%zu time-instant indices)\n",
                build_timer.ElapsedSeconds(), index->set().num_indices());

    TablePrinter table({"t (min)", "baseline", "planar", "pairs"});
    for (double t : query_times) {
      size_t pairs = 0;
      const double base_ms = MeanMillis(
          [&] { pairs = BaselineIntersect(a, b, t, distance).size(); },
          runs);
      const double planar_ms =
          MeanMillis([&] { (void)index->Query(t, distance); }, runs);
      table.AddRow({FormatDouble(t, 1), FormatDouble(base_ms, 1),
                    FormatDouble(planar_ms, 1), std::to_string(pairs)});
    }
    table.Print();
  }
  return 0;
}
