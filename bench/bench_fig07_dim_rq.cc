// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Figure 7 of the paper: query-processing time on the synthetic datasets
// (indp / corr / anti) with 100 Planar indices, dimensionality 2..14 and
// randomness of query (RQ) 2..12; the sequential scan as the baseline.
//
// Flags: --n (points, default 200k; --full = 1M), --runs, --budget.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/synthetic_harness.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "core/scan.h"

int main(int argc, char** argv) {
  using namespace planar;         // NOLINT
  using namespace planar::bench;  // NOLINT
  FlagParser flags(argc, argv);
  const size_t n = ScaledN(flags, 200000, 1000000);
  const int runs = Runs(flags);
  const size_t budget = static_cast<size_t>(flags.GetInt("budget", 100));

  PrintHeader("Figure 7",
              "query time (ms) vs randomness of query; n = " +
                  std::to_string(n) + ", #index = " + std::to_string(budget));

  for (size_t dim : {2u, 6u, 10u, 14u}) {
    std::printf("\n-- dimension = %zu --\n", dim);
    TablePrinter table({"RQ", "indp", "corr", "anti", "baseline"});
    for (int rq : {2, 4, 8, 12}) {
      std::vector<std::string> row{"RQ=" + std::to_string(rq)};
      double baseline_ms = 0.0;
      for (auto dist : AllDistributions()) {
        const Dataset data = MakeSynthetic(dist, n, dim);
        PlanarIndexSet set = BuildEq18Set(data, rq, budget);
        Eq18Workload queries(set.phi(), rq, 0.25, /*seed=*/29);
        row.push_back(FormatDouble(
            MeanMillis([&] { (void)set.Inequality(queries.Next()); }, runs),
            3));
        if (dist == SyntheticDistribution::kIndependent) {
          Eq18Workload base_queries(set.phi(), rq, 0.25, /*seed=*/29);
          baseline_ms = MeanMillis(
              [&] { (void)ScanInequality(set.phi(), base_queries.Next()); },
              runs);
        }
      }
      row.push_back(FormatDouble(baseline_ms, 3));
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  return 0;
}
