// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Supplementary to Table 1 of the paper: the asymptotic half-space
// structures [1, 19, 2] were never implemented, so this bench compares
// what one *can* implement — a kd-tree with half-space reporting —
// against the Planar index and the scan on the phi = identity case, as
// dimensionality grows. Expected shape: the spatial structure wins in
// very low dimensionality, degrades with the curse of dimensionality;
// the Planar index degrades much more gently and needs no geometry
// beyond a sort.
//
// Flags: --n (default 200k; --full = 1M), --runs.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/synthetic_harness.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/scan.h"
#include "spatial/kdtree.h"

int main(int argc, char** argv) {
  using namespace planar;         // NOLINT
  using namespace planar::bench;  // NOLINT
  FlagParser flags(argc, argv);
  const size_t n = ScaledN(flags, 200000, 1000000);
  const int runs = Runs(flags);
  const int rq = 4;

  PrintHeader("Half-space comparators (supplement to Table 1)",
              "Eq.-18 queries on Indp, n = " + std::to_string(n) +
                  ", RQ = 4; planar = 100 indices");

  TablePrinter table({"dim", "scan (ms)", "kd-tree (ms)", "planar (ms)",
                      "kd-tree build (s)", "planar build (s)"});
  for (size_t dim : {2u, 4u, 6u, 10u, 14u}) {
    const Dataset data =
        MakeSynthetic(SyntheticDistribution::kIndependent, n, dim);
    WallTimer planar_build;
    PlanarIndexSet set = BuildEq18Set(data, rq, 100);
    const double planar_build_s = planar_build.ElapsedSeconds();
    WallTimer kd_build;
    KdTree tree(&set.phi());
    const double kd_build_s = kd_build.ElapsedSeconds();

    Eq18Workload q1(set.phi(), rq, 0.25, 71);
    const double scan_ms = MeanMillis(
        [&] { (void)ScanInequality(set.phi(), q1.Next()); }, runs);
    Eq18Workload q2(set.phi(), rq, 0.25, 71);
    std::vector<uint32_t> hits;
    const double kd_ms = MeanMillis(
        [&] {
          hits.clear();
          tree.HalfSpaceQuery(q2.Next(), &hits);
        },
        runs);
    Eq18Workload q3(set.phi(), rq, 0.25, 71);
    const double planar_ms = MeanMillis(
        [&] { (void)set.Inequality(q3.Next()); }, runs);

    table.AddRow({std::to_string(dim), FormatDouble(scan_ms, 3),
                  FormatDouble(kd_ms, 3), FormatDouble(planar_ms, 3),
                  FormatDouble(kd_build_s, 2),
                  FormatDouble(planar_build_s, 2)});
  }
  table.Print();
  return 0;
}
