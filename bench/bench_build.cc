// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Build-pipeline and boundary-search benchmark (the committed baseline
// lives in BENCH_build.json at the repo root). Two sections:
//
//   build   PlanarIndexSet::BuildWithNormals rows/s — r fixed normals
//           over n rows — swept over set-level build_threads, against
//           the serial (threads = 1) baseline. Fixed normals keep every
//           configuration building the exact same indices, so the sweep
//           measures the pipeline, not the workload. speedup > 1 needs
//           real cores: the JSON carries host_threads so a single-core
//           runner's ~1.0x reads as what it is.
//
//   search  ns per SI/LI rank lookup over a sorted key array: branchless
//           prefetching Eytzinger descent vs std::lower_bound, random
//           probes. Single-threaded; speedup = std_ns / eytzinger_ns.
//
//   --n      rows per index           (default 262144; --full 1048576)
//   --runs   measured repetitions     (default 5, best-of)
//   --smoke  tiny sizes, single run — CI correctness-of-plumbing mode

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "core/eytzinger.h"
#include "core/index_set.h"
#include "tests/test_util.h"

namespace planar {
namespace {

volatile double g_sink = 0.0;

// Best-of-runs wall time: robust against host steal time on shared
// single-core runners (same rationale as bench_kernels).
template <typename Fn>
double MinMillis(Fn&& fn, int runs) {
  double best = 0.0;
  for (int i = 0; i < runs; ++i) {
    WallTimer timer;
    fn();
    const double ms = timer.ElapsedMillis();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

// r strictly-positive normals for the first octant, deterministic.
std::vector<std::vector<double>> MakeNormals(size_t r, size_t dim) {
  Rng rng(47);
  std::vector<std::vector<double>> normals(r, std::vector<double>(dim));
  for (auto& normal : normals) {
    for (double& c : normal) c = rng.Uniform(0.5, 4.0);
  }
  return normals;
}

double BuildMillis(const PhiMatrix& phi,
                   const std::vector<std::vector<double>>& normals,
                   size_t threads, int runs) {
  const Octant octant =
      Octant::FromNormal(std::vector<double>(phi.dim(), 1.0));
  IndexSetOptions options;
  options.build_threads = threads;
  // Hand-rolled best-of loop: each run consumes a fresh matrix copy, and
  // the copy must stay outside the timed region.
  double best = 0.0;
  for (int i = 0; i < runs; ++i) {
    PhiMatrix copy = phi;
    WallTimer timer;
    auto set = PlanarIndexSet::BuildWithNormals(std::move(copy), normals,
                                                octant, options);
    const double ms = timer.ElapsedMillis();
    PLANAR_CHECK(set.ok());
    g_sink = static_cast<double>(set->num_indices());
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

struct SearchMeasurement {
  double std_ns = 0.0;
  double eytzinger_ns = 0.0;
  double speedup() const {
    return eytzinger_ns > 0.0 ? std_ns / eytzinger_ns : 0.0;
  }
};

SearchMeasurement BenchBoundarySearch(size_t n, int runs) {
  Rng rng(51);
  std::vector<double> keys(n);
  for (double& k : keys) k = rng.Uniform(0.0, 1e6);
  std::sort(keys.begin(), keys.end());
  EytzingerKeys eytz;
  eytz.Build(keys.data(), keys.size());
  PLANAR_CHECK(!eytz.empty());

  // Pre-generated random probes defeat the branch predictor the same way
  // for both searches; the probe sequence is identical across them.
  const size_t kProbes = 1 << 16;
  std::vector<double> probes(kProbes);
  for (double& p : probes) p = rng.Uniform(-1e5, 1.1e6);

  SearchMeasurement m;
  const double std_ms = MinMillis(
      [&] {
        size_t acc = 0;
        for (const double p : probes) {
          acc += static_cast<size_t>(
              std::upper_bound(keys.begin(), keys.end(), p) - keys.begin());
        }
        g_sink = static_cast<double>(acc);
      },
      runs);
  const double eytz_ms = MinMillis(
      [&] {
        size_t acc = 0;
        for (const double p : probes) acc += eytz.UpperBound(p);
        g_sink = static_cast<double>(acc);
      },
      runs);
  m.std_ns = std_ms * 1e6 / static_cast<double>(kProbes);
  m.eytzinger_ns = eytz_ms * 1e6 / static_cast<double>(kProbes);
  return m;
}

}  // namespace
}  // namespace planar

int main(int argc, char** argv) {
  using namespace planar;  // NOLINT: bench brevity
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const size_t n = smoke ? 20000 : bench::ScaledN(flags, 262144, 1048576);
  const int runs = smoke ? 1 : bench::Runs(flags, 5);
  const unsigned host_threads =
      std::max(1u, std::thread::hardware_concurrency());

  bench::PrintHeader(
      "index-set build pipeline + boundary search",
      "build rows/s vs serial across r and threads; Eytzinger vs "
      "std::upper_bound rank lookups; host_threads=" +
          std::to_string(host_threads));

  const size_t dim = 4;
  const size_t r_values[] = {4, 8};
  const size_t thread_values[] = {1, 2, 4, 8};

  TablePrinter build_table(
      {"r", "n", "threads", "Mrows/s", "speedup vs serial"});
  const PhiMatrix phi = RandomPhi(n, dim, 1.0, 100.0, 53);
  for (const size_t r : r_values) {
    const auto normals = MakeNormals(smoke ? std::min<size_t>(r, 4) : r, dim);
    double serial_ms = 0.0;
    for (const size_t threads : thread_values) {
      if (smoke && threads > 2) continue;
      const double ms = BuildMillis(phi, normals, threads, runs);
      if (threads == 1) serial_ms = ms;
      // Rows processed: every index computes+sorts all n keys.
      const double rows =
          static_cast<double>(normals.size()) * static_cast<double>(n);
      const double rows_per_sec = rows / (ms / 1000.0);
      const double speedup = ms > 0.0 ? serial_ms / ms : 0.0;
      build_table.AddRow({std::to_string(normals.size()), std::to_string(n),
                          std::to_string(threads),
                          FormatDouble(rows_per_sec / 1e6, 1),
                          FormatDouble(speedup, 2)});
      std::printf(
          "{\"bench\":\"build\",\"r\":%zu,\"n\":%zu,\"threads\":%zu,"
          "\"rows_per_sec\":%.0f,\"speedup_vs_serial\":%.2f%s}\n",
          normals.size(), n, threads, rows_per_sec, speedup,
          bench::JsonStamp(threads).c_str());
    }
  }

  TablePrinter search_table({"n", "std ns", "eytzinger ns", "speedup"});
  const size_t search_sizes_full[] = {1u << 16, 1u << 20, 1u << 22};
  const size_t search_sizes_smoke[] = {1u << 12};
  const size_t* search_sizes = smoke ? search_sizes_smoke : search_sizes_full;
  const size_t num_search_sizes = smoke ? 1 : 3;
  for (size_t i = 0; i < num_search_sizes; ++i) {
    const size_t keys = search_sizes[i];
    const SearchMeasurement m = BenchBoundarySearch(keys, runs);
    search_table.AddRow({std::to_string(keys), FormatDouble(m.std_ns, 1),
                         FormatDouble(m.eytzinger_ns, 1),
                         FormatDouble(m.speedup(), 2)});
    std::printf(
        "{\"bench\":\"search\",\"n\":%zu,\"std_ns\":%.1f,"
        "\"eytzinger_ns\":%.1f,\"speedup\":%.2f%s}\n",
        keys, m.std_ns, m.eytzinger_ns, m.speedup(),
        bench::JsonStamp(1).c_str());
  }

  std::printf("\n");
  build_table.Print();
  search_table.Print();
  return 0;
}
