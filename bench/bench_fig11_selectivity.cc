// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Figure 11 of the paper: query selectivity and query-processing time as
// the inequality parameter of Eq. 18 sweeps 0.10 .. 1.00; synthetic
// datasets, #index = 100, RQ = 4, dimensions 6 and 10.
//
// Flags: --n (default 200k; --full = 1M), --runs.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/synthetic_harness.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "core/scan.h"

int main(int argc, char** argv) {
  using namespace planar;         // NOLINT
  using namespace planar::bench;  // NOLINT
  FlagParser flags(argc, argv);
  const size_t n = ScaledN(flags, 200000, 1000000);
  const int runs = Runs(flags);
  const int rq = 4;
  const size_t budget = 100;

  PrintHeader("Figure 11",
              "selectivity (%) and query time (ms) vs inequality parameter; "
              "n = " + std::to_string(n) + ", RQ = 4, #index = 100");

  for (size_t dim : {6u, 10u}) {
    std::printf("\n-- dimension = %zu --\n", dim);
    TablePrinter table({"ineq", "sel% indp", "sel% corr", "sel% anti",
                        "ms indp", "ms corr", "ms anti", "ms baseline"});
    for (double ineq : {0.10, 0.25, 0.50, 0.75, 1.00}) {
      std::vector<std::string> selectivity;
      std::vector<std::string> times;
      double baseline_ms = 0.0;
      for (auto dist : AllDistributions()) {
        const Dataset data = MakeSynthetic(dist, n, dim);
        PlanarIndexSet set = BuildEq18Set(data, rq, budget);
        Eq18Workload queries(set.phi(), rq, ineq, /*seed=*/43);
        RunningStats sel;
        const double ms = MeanMillis(
            [&] {
              const InequalityResult r = set.Inequality(queries.Next());
              sel.Add(100.0 * static_cast<double>(r.ids.size()) /
                      static_cast<double>(n));
            },
            runs);
        selectivity.push_back(FormatDouble(sel.mean(), 1));
        times.push_back(FormatDouble(ms, 3));
        if (dist == SyntheticDistribution::kIndependent) {
          Eq18Workload base_queries(set.phi(), rq, ineq, /*seed=*/43);
          baseline_ms = MeanMillis(
              [&] { (void)ScanInequality(set.phi(), base_queries.Next()); },
              runs);
        }
      }
      table.AddRow({FormatDouble(ineq, 2), selectivity[0], selectivity[1],
                    selectivity[2], times[0], times[1], times[2],
                    FormatDouble(baseline_ms, 3)});
    }
    table.Print();
  }
  return 0;
}
