// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Shared plumbing for the figure/table reproduction benches. Every bench
// accepts --n / --runs / --full to trade fidelity against wall-clock time
// on small machines; --full selects the paper's original workload sizes.

#ifndef PLANAR_BENCH_BENCH_UTIL_H_
#define PLANAR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <thread>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/flags.h"
#include "common/stats.h"
#include "common/timer.h"

// Injected by bench/CMakeLists.txt from `git rev-parse --short HEAD`;
// "unknown" outside a git checkout (e.g. a source tarball).
#ifndef PLANAR_GIT_SHA
#define PLANAR_GIT_SHA "unknown"
#endif

// Injected by bench/CMakeLists.txt at configure time (UTC, ISO-8601);
// "unknown" when the header is compiled outside the bench tree.
#ifndef PLANAR_BUILD_UTC
#define PLANAR_BUILD_UTC "unknown"
#endif

namespace planar {
namespace bench {

/// Compiler that produced this binary, e.g. "gcc 13.2.0".
inline std::string CompilerId() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// Peak resident set size of this process in bytes, or 0 when the
/// platform offers no getrusage. Linux reports ru_maxrss in KiB, macOS in
/// bytes; normalized to bytes here. High-water mark, not current usage —
/// it can only grow over the process lifetime, so per-workload deltas
/// within one bench binary are not meaningful; the stamped value answers
/// "what did reproducing this line cost in memory", not "what does the
/// index occupy" (that is resident_bytes below).
inline size_t PeakRssBytes() {
#if defined(__linux__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<size_t>(usage.ru_maxrss);
#else
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

/// Provenance fields every bench JSON line must carry, as a comma-led
/// fragment ready to splice before the closing brace:
///   std::printf("{\"bench\":\"x\",\"metric\":%f%s}\n", v,
///               JsonStamp(threads).c_str());
/// `effective_threads` is how many threads the measured configuration
/// actually used (1 for single-threaded benches), recorded next to the
/// host's core count so scaling claims stay honest: a "parallel" result
/// with effective_threads == 1 (e.g. measured on a 1-core host) is flat
/// by construction, not by regression. Committed BENCH_*.json baselines
/// are only comparable when the stamp matches the host they were
/// measured on. `resident_bytes`, when non-zero, is the measured
/// configuration's hot-path footprint (PlanarIndexSet::ResidentBytes);
/// peak_rss_bytes is stamped on every line.
inline std::string JsonStamp(size_t effective_threads,
                             size_t resident_bytes = 0) {
  std::string stamp =
      std::string(",\"git_sha\":\"") + PLANAR_GIT_SHA + "\",\"build_utc\":\"" +
      PLANAR_BUILD_UTC + "\",\"compiler\":\"" + CompilerId() +
      "\",\"host_threads\":" +
      std::to_string(std::thread::hardware_concurrency()) +
      ",\"effective_threads\":" + std::to_string(effective_threads) +
      ",\"peak_rss_bytes\":" + std::to_string(PeakRssBytes());
  if (resident_bytes != 0) {
    stamp += ",\"resident_bytes\":" + std::to_string(resident_bytes);
  }
  return stamp;
}

/// Prints the standard bench banner.
inline void PrintHeader(const std::string& experiment,
                        const std::string& what) {
  std::printf("\n=== %s ===\n%s\n", experiment.c_str(), what.c_str());
}

/// Mean wall-clock milliseconds of `fn` over `runs` invocations.
template <typename Fn>
double MeanMillis(Fn&& fn, int runs) {
  RunningStats stats;
  for (int i = 0; i < runs; ++i) {
    WallTimer timer;
    fn();
    stats.Add(timer.ElapsedMillis());
  }
  return stats.mean();
}

/// Scaled problem size: the paper's value under --full, otherwise the
/// bench's default (or --n when given).
inline size_t ScaledN(const FlagParser& flags, size_t dflt, size_t paper) {
  if (flags.GetBool("full", false)) return paper;
  return static_cast<size_t>(flags.GetInt("n", static_cast<int64_t>(dflt)));
}

/// Number of measured queries per configuration.
inline int Runs(const FlagParser& flags, int dflt = 20) {
  return static_cast<int>(flags.GetInt("runs", dflt));
}

}  // namespace bench
}  // namespace planar

#endif  // PLANAR_BENCH_BENCH_UTIL_H_
