// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Figure 9 of the paper: pruning percentage (points accepted or rejected
// without evaluating the scalar product) on the synthetic datasets vs
// randomness of query, #index = 100, dimensionality 2..14.
//
// Flags: --n (default 200k; --full = 1M), --runs, --budget.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/synthetic_harness.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace planar;         // NOLINT
  using namespace planar::bench;  // NOLINT
  FlagParser flags(argc, argv);
  const size_t n = ScaledN(flags, 200000, 1000000);
  const int runs = Runs(flags);
  const size_t budget = static_cast<size_t>(flags.GetInt("budget", 100));

  PrintHeader("Figure 9",
              "pruning percentage vs randomness of query; n = " +
                  std::to_string(n) + ", #index = " + std::to_string(budget));

  for (size_t dim : {2u, 6u, 10u, 14u}) {
    std::printf("\n-- dimension = %zu --\n", dim);
    TablePrinter table({"RQ", "indp", "corr", "anti"});
    for (int rq : {2, 4, 8, 12}) {
      std::vector<std::string> row{"RQ=" + std::to_string(rq)};
      for (auto dist : AllDistributions()) {
        const Dataset data = MakeSynthetic(dist, n, dim);
        PlanarIndexSet set = BuildEq18Set(data, rq, budget);
        Eq18Workload queries(set.phi(), rq, 0.25, /*seed=*/37);
        RunningStats pruning;
        for (int i = 0; i < runs; ++i) {
          pruning.Add(
              100.0 * set.Inequality(queries.Next()).stats.PruningFraction());
        }
        row.push_back(FormatDouble(pruning.mean(), 1));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  return 0;
}
