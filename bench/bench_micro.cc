// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// google-benchmark microbenchmarks of the core kernels: index build,
// interval computation, inequality / top-k queries, best-index selection,
// the sequential-scan baseline, and B+-tree operations.

#include <algorithm>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/synthetic_harness.h"
#include "btree/btree.h"
#include "common/random.h"
#include "core/eytzinger.h"
#include "core/planar_index.h"
#include "core/scan.h"

namespace planar {
namespace {

PhiMatrix MakePhi(size_t n, size_t dim) {
  const Dataset data = bench::MakeSynthetic(
      SyntheticDistribution::kIndependent, n, dim);
  return MaterializePhi(data, IdentityFunction(dim));
}

void BM_IndexBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const PhiMatrix phi = MakePhi(n, 6);
  const std::vector<double> normal(6, 1.0);
  for (auto _ : state) {
    auto index = PlanarIndex::BuildFirstOctant(&phi, normal);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_IndexBuild)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_InequalityParallel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const PhiMatrix phi = MakePhi(n, 6);
  auto index =
      PlanarIndex::BuildFirstOctant(&phi, {1.0, 2.0, 3.0, 1.0, 2.0, 3.0});
  const ScalarProductQuery q{{1.0, 2.0, 3.0, 1.0, 2.0, 3.0}, 100.0 * 3.0,
                             Comparison::kLessEqual};
  for (auto _ : state) {
    auto result = index->Inequality(q);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_InequalityParallel)->Arg(100000)->Arg(1000000);

void BM_InequalitySkewed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const PhiMatrix phi = MakePhi(n, 6);
  auto index = PlanarIndex::BuildFirstOctant(&phi,
                                             std::vector<double>(6, 1.0));
  const ScalarProductQuery q{{3.0, 1.0, 2.0, 1.0, 1.0, 2.0}, 100.0 * 2.5,
                             Comparison::kLessEqual};
  for (auto _ : state) {
    auto result = index->Inequality(q);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_InequalitySkewed)->Arg(100000)->Arg(1000000);

void BM_SequentialScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const PhiMatrix phi = MakePhi(n, 6);
  const ScalarProductQuery q{{3.0, 1.0, 2.0, 1.0, 1.0, 2.0}, 100.0 * 2.5,
                             Comparison::kLessEqual};
  for (auto _ : state) {
    auto result = ScanInequality(phi, q);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SequentialScan)->Arg(100000)->Arg(1000000);

// High-selectivity scan: nearly every row matches, so the result vector
// reaches ~n entries. ScanInequality reserves n up front (like the index
// II paths); without that reserve this case pays log2(n) geometric
// regrowths, each copying the accumulated ids — measurably slower than
// the residual kernels at 1M rows. (ScanTopK needs no such fix: its
// TopKBuffer reserves k at construction.)
void BM_SequentialScanDense(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const PhiMatrix phi = MakePhi(n, 6);
  const ScalarProductQuery q{{1.0, 1.0, 1.0, 1.0, 1.0, 1.0}, 1e9,
                             Comparison::kLessEqual};
  for (auto _ : state) {
    auto result = ScanInequality(phi, q);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SequentialScanDense)->Arg(100000)->Arg(1000000);

void BM_TopK(benchmark::State& state) {
  const PhiMatrix phi = MakePhi(200000, 6);
  auto index = PlanarIndex::BuildFirstOctant(&phi,
                                             std::vector<double>(6, 1.0));
  const ScalarProductQuery q{{1.0, 1.0, 1.0, 1.0, 1.0, 1.0}, 150.0,
                             Comparison::kLessEqual};
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = index->TopK(q, k);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TopK)->Arg(10)->Arg(100)->Arg(10000);

void BM_SelectBestIndex(benchmark::State& state) {
  const Dataset data = bench::MakeSynthetic(
      SyntheticDistribution::kIndependent, 10000, 6);
  PlanarIndexSet set = bench::BuildEq18Set(
      data, /*rq=*/8, static_cast<size_t>(state.range(0)));
  Eq18Workload workload(set.phi(), 8, 0.25, 61);
  const NormalizedQuery q = NormalizedQuery::From(workload.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.SelectBestIndex(q));
  }
}
BENCHMARK(BM_SelectBestIndex)->Arg(10)->Arg(100)->Arg(200);

// The SI/LI boundary searches that precede every query: a rank lookup in
// a sorted key array. Random probes defeat the branch predictor, which is
// precisely the case the Eytzinger layout exists for.
std::vector<double> SortedKeys(size_t n) {
  Rng rng(9);
  std::vector<double> keys(n);
  for (double& k : keys) k = rng.Uniform(0.0, 1e6);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void BM_BoundarySearchStd(benchmark::State& state) {
  const std::vector<double> keys =
      SortedKeys(static_cast<size_t>(state.range(0)));
  Rng rng(10);
  for (auto _ : state) {
    const double probe = rng.Uniform(0.0, 1e6);
    benchmark::DoNotOptimize(
        std::upper_bound(keys.begin(), keys.end(), probe) - keys.begin());
  }
}
BENCHMARK(BM_BoundarySearchStd)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_BoundarySearchEytzinger(benchmark::State& state) {
  const std::vector<double> keys =
      SortedKeys(static_cast<size_t>(state.range(0)));
  EytzingerKeys eytz;
  eytz.Build(keys.data(), keys.size());
  Rng rng(10);
  for (auto _ : state) {
    const double probe = rng.Uniform(0.0, 1e6);
    benchmark::DoNotOptimize(eytz.UpperBound(probe));
  }
}
BENCHMARK(BM_BoundarySearchEytzinger)
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->Arg(1 << 22);

void BM_BTreeInsert(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    OrderStatisticBTree tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      tree.Insert(rng.NextDouble(), static_cast<uint32_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(10000)->Arg(100000);

void BM_BTreeRankQuery(benchmark::State& state) {
  Rng rng(6);
  OrderStatisticBTree tree;
  for (int i = 0; i < 1000000; ++i) {
    tree.Insert(rng.NextDouble(), static_cast<uint32_t>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.CountLessEqual(rng.NextDouble()));
  }
}
BENCHMARK(BM_BTreeRankQuery);

void BM_PointUpdateArray(benchmark::State& state) {
  PhiMatrix phi = MakePhi(static_cast<size_t>(state.range(0)), 6);
  auto index = PlanarIndex::BuildFirstOctant(&phi,
                                             std::vector<double>(6, 1.0));
  Rng rng(7);
  std::vector<double> row(6);
  for (auto _ : state) {
    const uint32_t target =
        static_cast<uint32_t>(rng.UniformInt(phi.size()));
    for (double& v : row) v = rng.Uniform(1.0, 100.0);
    phi.SetRow(target, row.data());
    benchmark::DoNotOptimize(index->Update(target));
  }
}
BENCHMARK(BM_PointUpdateArray)->Arg(100000)->Arg(1000000);

void BM_PointUpdateBTree(benchmark::State& state) {
  PhiMatrix phi = MakePhi(static_cast<size_t>(state.range(0)), 6);
  PlanarIndexOptions options;
  options.backend = PlanarIndexOptions::Backend::kBTree;
  auto index = PlanarIndex::BuildFirstOctant(
      &phi, std::vector<double>(6, 1.0), options);
  Rng rng(8);
  std::vector<double> row(6);
  for (auto _ : state) {
    const uint32_t target =
        static_cast<uint32_t>(rng.UniformInt(phi.size()));
    for (double& v : row) v = rng.Uniform(1.0, 100.0);
    phi.SetRow(target, row.data());
    benchmark::DoNotOptimize(index->Update(target));
  }
}
BENCHMARK(BM_PointUpdateBTree)->Arg(100000)->Arg(1000000);

}  // namespace
}  // namespace planar

BENCHMARK_MAIN();
