// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "common/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace planar {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ImplicitConversionFromValue) {
  auto make = []() -> Result<std::string> { return std::string("hi"); };
  EXPECT_EQ(make().value(), "hi");
}

TEST(ResultTest, ImplicitConversionFromStatus) {
  auto make = []() -> Result<std::string> {
    return Status::NotFound("gone");
  };
  EXPECT_EQ(make().status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1});
  r->push_back(2);
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH((void)r.value(), "PLANAR_CHECK");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PLANAR_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

}  // namespace
}  // namespace planar
