// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Ingest subsystem tests: manage/append/flush lifecycle, delta-overlay
// reads (Inequality / TopK / BatchInequality), admission control, engine
// integration (kAppend requests, snapshot gauges), and the randomized
// bit-identity guarantee — queries through the ingest path answer
// exactly like a serial quiesced from-scratch build over the same rows,
// before, during, and after background merges.

#include "ingest/ingest.h"

#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/scan.h"
#include "engine/engine.h"
#include "tests/test_util.h"

namespace planar {
namespace {

constexpr char kTarget[] = "main";

std::vector<ParameterDomain> Domains() {
  return {{1.0, 6.0}, {-6.0, -1.0}, {1.0, 6.0}};
}

IndexSetOptions SmallBudget() {
  IndexSetOptions options;
  options.budget = 5;
  return options;
}

// Builds an n-row set, installs it as kTarget, and mirrors its rows into
// `*all` so tests can grow a quiesced reference alongside the ingest.
void InstallBase(Catalog* catalog, size_t n, uint64_t seed, PhiMatrix* all) {
  PhiMatrix phi = RandomPhi(n, 3, -20.0, 80.0, seed);
  if (all != nullptr) {
    for (size_t i = 0; i < phi.size(); ++i) all->AppendRow(phi.row(i));
  }
  auto set = PlanarIndexSet::Build(std::move(phi), Domains(), SmallBudget());
  PLANAR_CHECK(set.ok());
  catalog->Install(kTarget, std::move(set).value());
}

std::vector<double> RandomRows(size_t count, Rng* rng) {
  std::vector<double> rows(count * 3);
  for (double& v : rows) v = rng->Uniform(-20.0, 80.0);
  return rows;
}

ScalarProductQuery RandomQuery(Rng* rng) {
  ScalarProductQuery q;
  q.a = {rng->Uniform(1, 6), -rng->Uniform(1, 6), rng->Uniform(1, 6)};
  q.b = rng->Uniform(-200, 400);
  q.cmp = rng->UniformInt(2) == 0 ? Comparison::kLessEqual
                                  : Comparison::kGreaterEqual;
  return q;
}

// The quiesced reference: a from-scratch build over every row appended
// so far. Same domains, options, and seed as the managed set, so the
// sampled index definitions are identical.
PlanarIndexSet FreshBuild(const PhiMatrix& all) {
  PhiMatrix copy(all);
  auto set = PlanarIndexSet::Build(std::move(copy), Domains(), SmallBudget());
  PLANAR_CHECK(set.ok());
  return std::move(set).value();
}

TEST(IngestManageTest, ValidatesTargetAndBackend) {
  Catalog catalog;
  IngestManager manager(&catalog);
  EXPECT_EQ(manager.Manage("absent").code(), StatusCode::kNotFound);

  IndexSetOptions tree = SmallBudget();
  tree.index_options.backend = PlanarIndexOptions::Backend::kBTree;
  PhiMatrix phi = RandomPhi(100, 3, -20.0, 80.0, 7);
  auto set = PlanarIndexSet::Build(std::move(phi), Domains(), tree);
  ASSERT_TRUE(set.ok());
  catalog.Install("tree", std::move(set).value());
  EXPECT_EQ(manager.Manage("tree").code(), StatusCode::kFailedPrecondition);

  InstallBase(&catalog, 100, 8, nullptr);
  ASSERT_TRUE(manager.Manage(kTarget).ok());
  EXPECT_TRUE(manager.Manages(kTarget));
  EXPECT_FALSE(manager.Manages("tree"));
  // Double-manage is refused.
  EXPECT_EQ(manager.Manage(kTarget).code(), StatusCode::kFailedPrecondition);
}

TEST(IngestOverlayTest, InequalitySeesUnmergedRows) {
  Catalog catalog;
  PhiMatrix all(3);
  InstallBase(&catalog, 400, 9, &all);
  IngestOptions options;
  options.merge_threshold = 1 << 20;  // never merge in this test
  options.delta_capacity = 1 << 20;
  IngestManager manager(&catalog, options);
  ASSERT_TRUE(manager.Manage(kTarget).ok());

  Rng rng(10);
  const std::vector<double> rows = RandomRows(150, &rng);
  auto first = manager.Append(kTarget, rows);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 400u);  // ids continue past the base
  for (size_t i = 0; i < 150; ++i) all.AppendRow(rows.data() + i * 3);

  for (int trial = 0; trial < 20; ++trial) {
    const ScalarProductQuery q = RandomQuery(&rng);
    Result<InequalityResult> got = Status::Internal("unset");
    ASSERT_TRUE(manager.Inequality(kTarget, q, Deadline::Infinite(), &got));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->stats.num_points, 550u);
    EXPECT_EQ(Sorted(got->ids), BruteForceMatches(all, q)) << trial;
  }
}

TEST(IngestOverlayTest, TopKMatchesQuiescedRebuild) {
  Catalog catalog;
  PhiMatrix all(3);
  InstallBase(&catalog, 300, 11, &all);
  IngestOptions options;
  options.merge_threshold = 1 << 20;
  options.delta_capacity = 1 << 20;
  IngestManager manager(&catalog, options);
  ASSERT_TRUE(manager.Manage(kTarget).ok());

  Rng rng(12);
  const std::vector<double> rows = RandomRows(120, &rng);
  ASSERT_TRUE(manager.Append(kTarget, rows).ok());
  for (size_t i = 0; i < 120; ++i) all.AppendRow(rows.data() + i * 3);
  const PlanarIndexSet reference = FreshBuild(all);

  for (int trial = 0; trial < 15; ++trial) {
    const ScalarProductQuery q = RandomQuery(&rng);
    const size_t k = 1 + rng.UniformInt(20);
    Result<TopKResult> got = Status::Internal("unset");
    ASSERT_TRUE(manager.TopK(kTarget, q, k, Deadline::Infinite(), &got));
    ASSERT_TRUE(got.ok());
    auto want = reference.TopK(q, k);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->neighbors.size(), want->neighbors.size()) << trial;
    for (size_t i = 0; i < want->neighbors.size(); ++i) {
      EXPECT_EQ(got->neighbors[i].id, want->neighbors[i].id) << trial;
      EXPECT_DOUBLE_EQ(got->neighbors[i].distance,
                       want->neighbors[i].distance)
          << trial;
    }
  }
}

TEST(IngestOverlayTest, BatchInequalityMatchesSerialOverlay) {
  Catalog catalog;
  PhiMatrix all(3);
  InstallBase(&catalog, 350, 13, &all);
  IngestOptions options;
  options.merge_threshold = 1 << 20;
  options.delta_capacity = 1 << 20;
  IngestManager manager(&catalog, options);
  ASSERT_TRUE(manager.Manage(kTarget).ok());

  Rng rng(14);
  const std::vector<double> rows = RandomRows(90, &rng);
  ASSERT_TRUE(manager.Append(kTarget, rows).ok());
  for (size_t i = 0; i < 90; ++i) all.AppendRow(rows.data() + i * 3);

  std::vector<ScalarProductQuery> queries;
  for (int i = 0; i < 6; ++i) {
    ScalarProductQuery q = RandomQuery(&rng);
    q.cmp = Comparison::kLessEqual;  // one coalescible group
    queries.push_back(q);
  }
  std::vector<Result<InequalityResult>> batch;
  ASSERT_TRUE(manager.BatchInequality(kTarget, queries, {}, nullptr, &batch));
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << i;
    Result<InequalityResult> serial = Status::Internal("unset");
    ASSERT_TRUE(manager.Inequality(kTarget, queries[i], Deadline::Infinite(),
                                   &serial));
    ASSERT_TRUE(serial.ok());
    // Bit-identical to the serial overlay, which matches brute force.
    EXPECT_EQ(batch[i]->ids, serial->ids) << i;
    EXPECT_EQ(Sorted(batch[i]->ids), BruteForceMatches(all, queries[i])) << i;
  }
}

TEST(IngestOverlayTest, CountOverlayIsBitExactAcrossMerge) {
  Catalog catalog;
  PhiMatrix all(3);
  InstallBase(&catalog, 400, 15, &all);
  IngestOptions options;
  options.merge_threshold = 1 << 20;  // merge only on Flush
  options.delta_capacity = 1 << 20;
  IngestManager manager(&catalog, options);
  ASSERT_TRUE(manager.Manage(kTarget).ok());

  Rng rng(16);
  const std::vector<double> rows = RandomRows(130, &rng);
  ASSERT_TRUE(manager.Append(kTarget, rows).ok());
  for (size_t i = 0; i < 130; ++i) all.AppendRow(rows.data() + i * 3);

  std::vector<ScalarProductQuery> queries;
  for (int i = 0; i < 20; ++i) queries.push_back(RandomQuery(&rng));

  // Unmerged: base bounds plus an exact delta scan-count.
  for (const ScalarProductQuery& q : queries) {
    Result<CountResult> got = Status::Internal("unset");
    ASSERT_TRUE(manager.Count(kTarget, q, CountTolerance(),
                              Deadline::Infinite(), &got));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->exact);
    EXPECT_EQ(got->estimate, BruteForceMatches(all, q).size());
    EXPECT_EQ(got->stats.num_points, 530u);
  }
  // Quiesced: after Flush the same counts come from the merged base.
  ASSERT_TRUE(manager.Flush(kTarget).ok());
  for (const ScalarProductQuery& q : queries) {
    Result<CountResult> got = Status::Internal("unset");
    ASSERT_TRUE(manager.Count(kTarget, q, CountTolerance(),
                              Deadline::Infinite(), &got));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->estimate, BruteForceMatches(all, q).size());
  }
  manager.Stop();
}

TEST(IngestOverlayTest, AggregateOverlayMatchesBruteForce) {
  // Integer-valued rows so payload sums are exact in double arithmetic.
  Catalog catalog;
  PhiMatrix all(3);
  Rng rng(17);
  {
    PhiMatrix phi(3);
    phi.Reserve(350);
    for (size_t i = 0; i < 350; ++i) {
      const std::vector<double> row = {
          static_cast<double>(1 + rng.NextUint64() % 60),
          -static_cast<double>(1 + rng.NextUint64() % 60),
          static_cast<double>(1 + rng.NextUint64() % 60)};
      phi.AppendRow(row);
      all.AppendRow(row);
    }
    IndexSetOptions with_payload = SmallBudget();
    with_payload.index_options.payload_column = 2;
    auto set =
        PlanarIndexSet::Build(std::move(phi), Domains(), with_payload);
    ASSERT_TRUE(set.ok()) << set.status().ToString();
    catalog.Install(kTarget, std::move(set).value());
  }
  IngestOptions options;
  options.merge_threshold = 1 << 20;
  options.delta_capacity = 1 << 20;
  IngestManager manager(&catalog, options);
  ASSERT_TRUE(manager.Manage(kTarget).ok());

  std::vector<double> rows(120 * 3);
  for (size_t i = 0; i < rows.size(); i += 3) {
    rows[i] = static_cast<double>(1 + rng.NextUint64() % 60);
    rows[i + 1] = -static_cast<double>(1 + rng.NextUint64() % 60);
    rows[i + 2] = static_cast<double>(1 + rng.NextUint64() % 60);
  }
  ASSERT_TRUE(manager.Append(kTarget, rows).ok());
  for (size_t i = 0; i < 120; ++i) all.AppendRow(rows.data() + i * 3);

  for (int trial = 0; trial < 20; ++trial) {
    const ScalarProductQuery q = RandomQuery(&rng);
    Result<AggregateResult> got = Status::Internal("unset");
    ASSERT_TRUE(manager.Aggregate(kTarget, q, CountTolerance(),
                                  Deadline::Infinite(), &got));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    double want_sum = 0.0;
    size_t want_count = 0;
    for (size_t i = 0; i < all.size(); ++i) {
      if (q.Matches(all.row(i))) {
        want_sum += all.row(i)[2];
        ++want_count;
      }
    }
    EXPECT_TRUE(got->exact);
    EXPECT_EQ(got->sum, want_sum) << trial;
    EXPECT_EQ(got->count.estimate, want_count) << trial;
  }
  manager.Stop();
}

TEST(IngestFlushTest, FlushMergesIntoTheCatalogWithStableIds) {
  Catalog catalog;
  PhiMatrix all(3);
  InstallBase(&catalog, 250, 15, &all);
  IngestOptions options;
  options.merge_threshold = 1 << 20;  // merge only via Flush
  options.delta_capacity = 1 << 20;
  IngestManager manager(&catalog, options);
  ASSERT_TRUE(manager.Manage(kTarget).ok());

  Rng rng(16);
  const std::vector<double> rows = RandomRows(130, &rng);
  ASSERT_TRUE(manager.Append(kTarget, rows).ok());
  for (size_t i = 0; i < 130; ++i) all.AppendRow(rows.data() + i * 3);

  const ScalarProductQuery q = RandomQuery(&rng);
  Result<InequalityResult> before = Status::Internal("unset");
  ASSERT_TRUE(manager.Inequality(kTarget, q, Deadline::Infinite(), &before));
  ASSERT_TRUE(before.ok());

  const uint64_t version_before = catalog.version();
  ASSERT_TRUE(manager.Flush(kTarget).ok());
  EXPECT_GT(catalog.version(), version_before);
  // The install holds every row; the delta is empty again.
  EXPECT_EQ(catalog.Find(kTarget)->size(), 380u);
  EXPECT_EQ(manager.gauges().delta_rows, 0u);
  EXPECT_EQ(manager.gauges().merges, 1u);

  // Ids are stable across the merge: the same query answers the same.
  Result<InequalityResult> after = Status::Internal("unset");
  ASSERT_TRUE(manager.Inequality(kTarget, q, Deadline::Infinite(), &after));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Sorted(after->ids), Sorted(before->ids));
  EXPECT_EQ(Sorted(after->ids), BruteForceMatches(all, q));

  // A second flush with nothing appended is a no-op.
  ASSERT_TRUE(manager.Flush(kTarget).ok());
  EXPECT_EQ(manager.gauges().merges, 1u);
}

TEST(IngestAdmissionTest, ShedsWhenDeltaIsFull) {
  Catalog catalog;
  InstallBase(&catalog, 100, 17, nullptr);
  IngestOptions options;
  options.delta_capacity = 64;
  options.merge_threshold = 64;
  IngestManager manager(&catalog, options);
  ASSERT_TRUE(manager.Manage(kTarget).ok());

  Rng rng(18);
  // One batch larger than the whole delta: shed outright, nothing kept.
  auto shed = manager.Append(kTarget, RandomRows(65, &rng));
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);

  // After a merge drains the delta, appends are admitted again.
  ASSERT_TRUE(manager.Append(kTarget, RandomRows(64, &rng)).ok());
  ASSERT_TRUE(manager.Flush(kTarget).ok());
  EXPECT_TRUE(manager.Append(kTarget, RandomRows(32, &rng)).ok());

  // Malformed payloads are rejected before touching the delta.
  EXPECT_EQ(manager.Append(kTarget, {}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.Append(kTarget, {1.0, 2.0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.Append("absent", {1.0, 2.0, 3.0}).status().code(),
            StatusCode::kNotFound);
}

TEST(IngestStopTest, StopDrainsAndRejectsFurtherAppends) {
  Catalog catalog;
  PhiMatrix all(3);
  InstallBase(&catalog, 120, 19, &all);
  IngestOptions options;
  options.merge_threshold = 1 << 20;
  options.delta_capacity = 1 << 20;
  IngestManager manager(&catalog, options);
  ASSERT_TRUE(manager.Manage(kTarget).ok());

  Rng rng(20);
  const std::vector<double> rows = RandomRows(40, &rng);
  ASSERT_TRUE(manager.Append(kTarget, rows).ok());
  for (size_t i = 0; i < 40; ++i) all.AppendRow(rows.data() + i * 3);

  manager.Stop();
  // The final drain merged everything into the catalog.
  EXPECT_EQ(catalog.Find(kTarget)->size(), 160u);
  EXPECT_EQ(manager.Append(kTarget, RandomRows(1, &rng)).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(manager.Manage(kTarget).code(), StatusCode::kUnavailable);
  // Reads keep serving after Stop.
  const ScalarProductQuery q = RandomQuery(&rng);
  Result<InequalityResult> got = Status::Internal("unset");
  ASSERT_TRUE(manager.Inequality(kTarget, q, Deadline::Infinite(), &got));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(Sorted(got->ids), BruteForceMatches(all, q));
}

// The acceptance-criteria test: across many rounds of appends and
// background merges, every query kind answers exactly like a serial
// quiesced from-scratch build over the same rows.
TEST(IngestRandomizedTest, BitIdenticalToQuiescedRebuildAcrossMerges) {
  Catalog catalog;
  PhiMatrix all(3);
  InstallBase(&catalog, 500, 21, &all);
  IngestOptions options;
  options.merge_threshold = 96;  // small: many background merges
  options.delta_capacity = 4096;
  IngestManager manager(&catalog, options);
  ASSERT_TRUE(manager.Manage(kTarget).ok());

  Rng rng(22);
  for (int round = 0; round < 12; ++round) {
    const size_t count = 40 + rng.UniformInt(120);
    const std::vector<double> rows = RandomRows(count, &rng);
    auto first = manager.Append(kTarget, rows);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_EQ(first.value(), all.size());  // id continuity across merges
    for (size_t i = 0; i < count; ++i) all.AppendRow(rows.data() + i * 3);
    if (round % 4 == 3) {
      ASSERT_TRUE(manager.Flush(kTarget).ok());
    }

    const PlanarIndexSet reference = FreshBuild(all);
    for (int trial = 0; trial < 4; ++trial) {
      const ScalarProductQuery q = RandomQuery(&rng);
      Result<InequalityResult> got = Status::Internal("unset");
      ASSERT_TRUE(manager.Inequality(kTarget, q, Deadline::Infinite(), &got));
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(Sorted(got->ids), Sorted(reference.Inequality(q).ids))
          << "round " << round << " trial " << trial;

      const size_t k = 1 + rng.UniformInt(15);
      Result<TopKResult> topk = Status::Internal("unset");
      ASSERT_TRUE(manager.TopK(kTarget, q, k, Deadline::Infinite(), &topk));
      ASSERT_TRUE(topk.ok());
      auto want = reference.TopK(q, k);
      ASSERT_TRUE(want.ok());
      ASSERT_EQ(topk->neighbors.size(), want->neighbors.size());
      for (size_t i = 0; i < want->neighbors.size(); ++i) {
        EXPECT_EQ(topk->neighbors[i].id, want->neighbors[i].id)
            << "round " << round << " trial " << trial << " rank " << i;
        EXPECT_DOUBLE_EQ(topk->neighbors[i].distance,
                         want->neighbors[i].distance);
      }
    }
  }
  // Quiesce completely and compare once more.
  ASSERT_TRUE(manager.Flush(kTarget).ok());
  EXPECT_EQ(catalog.Find(kTarget)->size(), all.size());
  const PlanarIndexSet reference = FreshBuild(all);
  for (int trial = 0; trial < 10; ++trial) {
    const ScalarProductQuery q = RandomQuery(&rng);
    Result<InequalityResult> got = Status::Internal("unset");
    ASSERT_TRUE(manager.Inequality(kTarget, q, Deadline::Infinite(), &got));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(Sorted(got->ids), Sorted(reference.Inequality(q).ids)) << trial;
  }
}

TEST(IngestEngineTest, AppendRequestsAndOverlayReadsThroughTheEngine) {
  Catalog catalog;
  PhiMatrix all(3);
  InstallBase(&catalog, 200, 23, &all);
  IngestOptions ingest_options;
  ingest_options.merge_threshold = 1 << 20;
  ingest_options.delta_capacity = 1 << 20;
  IngestManager manager(&catalog, ingest_options);
  ASSERT_TRUE(manager.Manage(kTarget).ok());

  EngineOptions engine_options;
  engine_options.num_workers = 0;  // deterministic: RunPending drives
  Engine engine(&catalog, engine_options);
  engine.AttachIngest(&manager);

  Rng rng(24);
  const std::vector<double> rows = RandomRows(60, &rng);
  EngineRequest append;
  append.target = kTarget;
  append.kind = QueryKind::kAppend;
  append.rows = rows;
  auto append_future = engine.Submit(std::move(append));
  ASSERT_TRUE(append_future.ok());
  EXPECT_EQ(engine.RunPending(), 1u);
  EngineResponse append_response = append_future.value().get();
  ASSERT_TRUE(append_response.status.ok());
  EXPECT_EQ(append_response.first_appended_id, 200u);
  for (size_t i = 0; i < 60; ++i) all.AppendRow(rows.data() + i * 3);

  // Single query: the engine's read path consults the overlay.
  EngineRequest query;
  query.target = kTarget;
  query.kind = QueryKind::kInequality;
  query.query = RandomQuery(&rng);
  auto query_future = engine.Submit(query);
  ASSERT_TRUE(query_future.ok());
  EXPECT_EQ(engine.RunPending(), 1u);
  EngineResponse query_response = query_future.value().get();
  ASSERT_TRUE(query_response.status.ok());
  EXPECT_EQ(Sorted(query_response.inequality.ids),
            BruteForceMatches(all, query.query));

  // Grouped queries: the coalesced path overlays the delta too.
  std::vector<std::future<EngineResponse>> futures;
  std::vector<ScalarProductQuery> queries;
  for (int i = 0; i < 4; ++i) {
    EngineRequest grouped;
    grouped.target = kTarget;
    grouped.kind = QueryKind::kInequality;
    grouped.query = RandomQuery(&rng);
    grouped.query.cmp = Comparison::kLessEqual;
    queries.push_back(grouped.query);
    auto future = engine.Submit(std::move(grouped));
    ASSERT_TRUE(future.ok());
    futures.push_back(std::move(future).value());
  }
  EXPECT_EQ(engine.RunPending(), 4u);
  for (int i = 0; i < 4; ++i) {
    EngineResponse response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << i;
    EXPECT_EQ(Sorted(response.inequality.ids),
              BruteForceMatches(all, queries[i]))
        << i;
  }

  // Gauges and counters flow into the snapshot.
  const DebugSnapshot snapshot = engine.Snapshot();
  EXPECT_EQ(snapshot.ingest_targets, 1u);
  EXPECT_EQ(snapshot.delta_rows, 60u);
  EXPECT_EQ(snapshot.counters.appended_rows, 60u);
  EXPECT_EQ(snapshot.counters.merges, 0u);

  manager.Stop();
  EXPECT_EQ(engine.Snapshot().counters.merges, 1u);  // final drain
}

TEST(IngestEngineTest, AppendWithoutBackendFailsPrecondition) {
  Catalog catalog;
  InstallBase(&catalog, 50, 25, nullptr);
  EngineOptions engine_options;
  engine_options.num_workers = 0;
  Engine engine(&catalog, engine_options);

  EngineRequest append;
  append.target = kTarget;
  append.kind = QueryKind::kAppend;
  append.rows = {1.0, 2.0, 3.0};
  auto future = engine.Submit(std::move(append));
  ASSERT_TRUE(future.ok());
  EXPECT_EQ(engine.RunPending(), 1u);
  EXPECT_EQ(future.value().get().status.code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace planar
