// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Mixed-precision verification suite (core/mixed.h): the f32 classify +
// widened band + exact f64 re-verify pipeline must be invisible in every
// result — same ids in the same order, same statistics, same error
// messages, bit-equal distances — under adversarial magnitudes
// (denormals, near-overflow values, residuals within one ulp of a
// boundary), across dimensions 1..16 and both comparison directions, on
// the serial, parallel, batch, scan, and sharded paths.

#include "core/mixed.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/index_set.h"
#include "core/kernels/kernels.h"
#include "core/scan.h"
#include "core/serialize.h"
#include "core/sharded.h"
#include "tests/test_util.h"

namespace planar {
namespace {

uint64_t Bits(double x) {
  uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// f32-ok (test): bit images of the f32 kernel outputs under comparison.
uint32_t Bits32(float x) {
  uint32_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// A pair of sets over identical data and normals, one with the mixed
// option, one without. Under PLANAR_FORCE_F32 both end up mixed, under
// PLANAR_DISABLE_F32 both end up plain; the identity assertions below
// hold in every combination, which is exactly the point.
struct SetPair {
  PlanarIndexSet plain;
  PlanarIndexSet mixed;
};

SetPair BuildPair(size_t n, size_t dim, uint64_t seed,
                  double lo = 1.0, double hi = 100.0) {
  IndexSetOptions options;
  options.budget = 4;
  options.seed = 7;
  const std::vector<ParameterDomain> domains(dim, {0.5, 4.0});
  auto plain =
      PlanarIndexSet::Build(RandomPhi(n, dim, lo, hi, seed), domains, options);
  options.index_options.mixed_precision = true;
  auto mixed =
      PlanarIndexSet::Build(RandomPhi(n, dim, lo, hi, seed), domains, options);
  EXPECT_TRUE(plain.ok()) << plain.status().message();
  EXPECT_TRUE(mixed.ok()) << mixed.status().message();
  return SetPair{std::move(plain).value(), std::move(mixed).value()};
}

ScalarProductQuery MakeQuery(size_t dim, uint64_t seed, bool le,
                             double b_scale) {
  Rng rng(seed);
  ScalarProductQuery q;
  q.a.resize(dim);
  for (size_t j = 0; j < dim; ++j) q.a[j] = rng.Uniform(0.5, 4.0);
  // Mid-range cut so both accept regions and the intermediate interval
  // are non-trivial.
  q.b = b_scale * 2.25 * 50.5 * static_cast<double>(dim);
  q.cmp = le ? Comparison::kLessEqual : Comparison::kGreaterEqual;
  return q;
}

void ExpectSameInequality(const Result<InequalityResult>& x,
                          const Result<InequalityResult>& y) {
  ASSERT_EQ(x.ok(), y.ok());
  if (!x.ok()) {
    EXPECT_EQ(x.status().code(), y.status().code());
    EXPECT_EQ(x.status().message(), y.status().message());
    return;
  }
  EXPECT_EQ(x->ids, y->ids);  // same ids in the same order
  EXPECT_EQ(x->stats.num_points, y->stats.num_points);
  EXPECT_EQ(x->stats.accepted_directly, y->stats.accepted_directly);
  EXPECT_EQ(x->stats.rejected_directly, y->stats.rejected_directly);
  EXPECT_EQ(x->stats.verified, y->stats.verified);
  EXPECT_EQ(x->stats.result_size, y->stats.result_size);
  EXPECT_EQ(x->stats.index_used, y->stats.index_used);
}

void ExpectSameTopK(const Result<TopKResult>& x, const Result<TopKResult>& y) {
  ASSERT_EQ(x.ok(), y.ok());
  if (!x.ok()) {
    EXPECT_EQ(x.status().code(), y.status().code());
    EXPECT_EQ(x.status().message(), y.status().message());
    return;
  }
  ASSERT_EQ(x->neighbors.size(), y->neighbors.size());
  for (size_t i = 0; i < x->neighbors.size(); ++i) {
    EXPECT_EQ(x->neighbors[i].id, y->neighbors[i].id);
    EXPECT_EQ(Bits(x->neighbors[i].distance), Bits(y->neighbors[i].distance));
  }
  EXPECT_EQ(x->stats.num_points, y->stats.num_points);
  EXPECT_EQ(x->stats.verified_intermediate, y->stats.verified_intermediate);
  EXPECT_EQ(x->stats.scanned_accept_region, y->stats.scanned_accept_region);
  EXPECT_EQ(x->stats.early_terminated, y->stats.early_terminated);
  EXPECT_EQ(x->stats.index_used, y->stats.index_used);
}

// ---------------------------------------------------------------------------
// f32 kernels: dispatched backend vs scalar reference, bit-identical.

TEST(MixedKernels, DispatchMatchesScalarReference) {
  const kernels::DotOpsF32& ops = kernels::OpsF32();
  const kernels::DotOpsF32& ref = kernels::ScalarOpsF32();
  Rng rng(11);
  for (size_t dim = 1; dim <= 16; ++dim) {
    const size_t n = 300;  // not a multiple of the block size
    // f32-ok (test): native f32 inputs for the kernel contract check.
    std::vector<float> rows(n * dim);
    std::vector<float> a(dim);
    for (float& v : rows) v = static_cast<float>(rng.Uniform(-50.0, 50.0));
    for (float& v : a) v = static_cast<float>(rng.Uniform(-4.0, 4.0));
    const float bias = static_cast<float>(rng.Uniform(-10.0, 10.0));
    std::vector<uint32_t> ids;
    for (size_t i = 0; i < n; i += 3) ids.push_back(static_cast<uint32_t>(i));

    for (size_t i = 0; i < n; i += 37) {
      EXPECT_EQ(Bits32(ops.dot_one(a.data(), rows.data() + i * dim, dim)),
                Bits32(ref.dot_one(a.data(), rows.data() + i * dim, dim)))
          << "dim=" << dim << " row=" << i;
    }
    std::vector<float> got(n), want(n);
    ops.dot_range(a.data(), dim, rows.data(), dim, 1, n - 1, bias,
                  got.data());
    ref.dot_range(a.data(), dim, rows.data(), dim, 1, n - 1, bias,
                  want.data());
    for (size_t i = 0; i + 1 < n; ++i) {
      EXPECT_EQ(Bits32(got[i]), Bits32(want[i])) << "dim=" << dim;
    }
    ops.dot_gather(a.data(), dim, rows.data(), dim, ids.data(), ids.size(),
                   bias, got.data());
    ref.dot_gather(a.data(), dim, rows.data(), dim, ids.data(), ids.size(),
                   bias, want.data());
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(Bits32(got[i]), Bits32(want[i])) << "dim=" << dim;
    }
    // Three queries exercises both the paired and the odd-tail paths of
    // the blocked many-query kernel.
    std::vector<float> a2(dim), a3(dim);
    for (float& v : a2) v = static_cast<float>(rng.Uniform(-4.0, 4.0));
    for (float& v : a3) v = static_cast<float>(rng.Uniform(-4.0, 4.0));
    const float* qs[3] = {a.data(), a2.data(), a3.data()};
    const float biases[3] = {bias, -bias, 0.25f};
    std::vector<float> got_m(3 * ids.size()), want_m(3 * ids.size());
    ops.dot_block_many(qs, biases, 3, dim, rows.data(), dim, ids.data(),
                       ids.size(), got_m.data(), ids.size());
    ref.dot_block_many(qs, biases, 3, dim, rows.data(), dim, ids.data(),
                       ids.size(), want_m.data(), ids.size());
    for (size_t i = 0; i < got_m.size(); ++i) {
      EXPECT_EQ(Bits32(got_m[i]), Bits32(want_m[i])) << "dim=" << dim;
    }
  }
}

// ---------------------------------------------------------------------------
// Band soundness: the widened band really contains the f32/f64 gap, so a
// "sure" classification can never contradict the exact answer.

TEST(MixedBand, BandContainsF32Error) {
  if (!MixedPrecisionRuntimeEnabled()) GTEST_SKIP();
  Rng rng(23);
  for (size_t dim = 1; dim <= 16; ++dim) {
    for (int rep = 0; rep < 4; ++rep) {
      // Wild magnitude spread, both signs, including subnormal-in-f32
      // values — everything the conversion slack term exists for.
      const double scale =
          std::ldexp(1.0, static_cast<int>(rng.UniformInt(-40, 40)));
      PhiMatrix phi(dim);
      std::vector<double> row(dim);
      for (size_t i = 0; i < 200; ++i) {
        for (size_t j = 0; j < dim; ++j) {
          row[j] = rng.Uniform(-scale, scale);
        }
        phi.AppendRow(row);
      }
      phi.EnableF32Mirror();
      std::vector<double> a(dim);
      for (size_t j = 0; j < dim; ++j) a[j] = rng.Uniform(-3.0, 3.0);
      const double b = rng.Uniform(-scale, scale);
      const MixedQueryPlan plan =
          MakeMixedPlan(a.data(), dim, b, true, phi);
      if (!plan.usable) continue;  // overflow guard fired; that is sound
      // f32-ok (test): the classify pass under scrutiny.
      std::vector<float> res32(phi.size());
      std::vector<uint32_t> ids(phi.size());
      for (size_t i = 0; i < phi.size(); ++i) {
        ids[i] = static_cast<uint32_t>(i);
      }
      kernels::OpsF32().dot_gather(plan.a32.data(), dim, phi.f32_data(), dim,
                                   ids.data(), ids.size(), plan.bias32,
                                   res32.data());
      std::vector<double> res64(phi.size());
      kernels::Ops().dot_gather(a.data(), dim, phi.data(), dim, ids.data(),
                                ids.size(), -b, res64.data());
      for (size_t i = 0; i < phi.size(); ++i) {
        EXPECT_LE(std::fabs(static_cast<double>(res32[i]) - res64[i]),
                  static_cast<double>(plan.band))
            << "dim=" << dim << " scale=" << scale << " row=" << i;
      }
    }
  }
}

TEST(MixedBand, PlanUnusableOnOverflowOrMismatch) {
  PhiMatrix phi = RandomPhi(64, 4, 1.0, 100.0, 5);
  std::vector<double> a = {1.0, 1.0, 1.0, 1.0};
  // No mirror: never usable.
  EXPECT_FALSE(MakeMixedPlan(a.data(), 4, 0.0, true, phi).usable);
  phi.EnableF32Mirror();
  if (MixedPrecisionRuntimeEnabled()) {
    EXPECT_TRUE(MakeMixedPlan(a.data(), 4, 0.0, true, phi).usable);
  }
  // Envelope past float range: the overflow guard must refuse.
  EXPECT_FALSE(MakeMixedPlan(a.data(), 4, 1e300, true, phi).usable);
  const std::vector<double> huge = {1e300, 1.0, 1.0, 1.0};
  EXPECT_FALSE(MakeMixedPlan(huge.data(), 4, 0.0, true, phi).usable);
  // Dimension mismatch.
  EXPECT_FALSE(MakeMixedPlan(a.data(), 3, 0.0, true, phi).usable);
}

// ---------------------------------------------------------------------------
// End-to-end bit identity, mixed on vs off.

TEST(MixedIdentity, InequalityAcrossDimsAndDirections) {
  for (size_t dim = 1; dim <= 16; dim += (dim < 4 ? 1 : 3)) {
    SetPair sets = BuildPair(600, dim, 100 + dim);
    for (const bool le : {true, false}) {
      for (const double b_scale : {0.6, 1.0, 1.4}) {
        const ScalarProductQuery q =
            MakeQuery(dim, 9 * dim + (le ? 1 : 0), le, b_scale);
        ExpectSameInequality(sets.plain.Inequality(q, Deadline::Infinite()),
                             sets.mixed.Inequality(q, Deadline::Infinite()));
        // And both match brute force (exactness, not just agreement).
        const auto got = sets.mixed.Inequality(q, Deadline::Infinite());
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(Sorted(got->ids), BruteForceMatches(sets.mixed.phi(), q));
      }
    }
  }
}

TEST(MixedIdentity, TopKAcrossDimsAndDirections) {
  for (size_t dim = 2; dim <= 16; dim += 5) {
    SetPair sets = BuildPair(500, dim, 300 + dim);
    for (const bool le : {true, false}) {
      for (const size_t k : {1u, 7u, 64u}) {
        const ScalarProductQuery q = MakeQuery(dim, 31 * dim, le, 1.0);
        ExpectSameTopK(sets.plain.TopK(q, k), sets.mixed.TopK(q, k));
      }
    }
  }
}

TEST(MixedIdentity, BatchInequalityMatchesSerial) {
  SetPair sets = BuildPair(800, 6, 42);
  std::vector<ScalarProductQuery> queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(MakeQuery(6, 1000 + i, i % 2 == 0, 0.7 + 0.05 * i));
  }
  const auto plain = sets.plain.BatchInequality(queries);
  const auto mixed = sets.mixed.BatchInequality(queries);
  ASSERT_EQ(plain.size(), mixed.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    ExpectSameInequality(plain[i], mixed[i]);
    // Batched-mixed must also equal serial-mixed (the batch partition
    // cannot change any per-query answer).
    ExpectSameInequality(mixed[i],
                         sets.mixed.Inequality(queries[i], Deadline::Infinite()));
  }
}

TEST(MixedIdentity, ScanPathsMatch) {
  // Force the scan: no domains cover these negative-normal queries.
  PhiMatrix plain_phi = RandomPhi(700, 5, 1.0, 100.0, 77);
  PhiMatrix mixed_phi = RandomPhi(700, 5, 1.0, 100.0, 77);
  mixed_phi.EnableF32Mirror();
  Rng rng(3);
  for (int i = 0; i < 8; ++i) {
    ScalarProductQuery q;
    q.a.resize(5);
    for (double& v : q.a) v = rng.Uniform(-4.0, 4.0);
    q.b = rng.Uniform(-200.0, 200.0);
    q.cmp = i % 2 == 0 ? Comparison::kLessEqual : Comparison::kGreaterEqual;
    const InequalityResult a = ScanInequality(plain_phi, q);
    const InequalityResult b = ScanInequality(mixed_phi, q);
    EXPECT_EQ(a.ids, b.ids);
    EXPECT_EQ(a.stats.verified, b.stats.verified);
    const auto ta = ScanTopK(plain_phi, q, 9);
    const auto tb = ScanTopK(mixed_phi, q, 9);
    ExpectSameTopK(ta, tb);
  }
}

TEST(MixedIdentity, ShardedMatchesMonolithic) {
  ShardedIndexSetOptions plain_opts;
  plain_opts.shards = 3;
  plain_opts.min_rows_per_shard = 1;
  plain_opts.set_options.budget = 3;
  ShardedIndexSetOptions mixed_opts = plain_opts;
  mixed_opts.set_options.index_options.mixed_precision = true;
  const std::vector<ParameterDomain> domains(6, {0.5, 4.0});
  auto plain = ShardedIndexSet::Build(RandomPhi(900, 6, 1.0, 100.0, 55),
                                      domains, plain_opts);
  auto mixed = ShardedIndexSet::Build(RandomPhi(900, 6, 1.0, 100.0, 55),
                                      domains, mixed_opts);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(mixed.ok());
  for (int i = 0; i < 6; ++i) {
    const ScalarProductQuery q = MakeQuery(6, 500 + i, i % 2 == 0, 1.0);
    const auto a = plain->Inequality(q);
    const auto b = mixed->Inequality(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->ids, b->ids);
    ExpectSameTopK(plain->TopK(q, 11), mixed->TopK(q, 11));
  }
}

// ---------------------------------------------------------------------------
// Adversarial magnitudes and band-boundary rows.

TEST(MixedAdversarial, DenormalAndHugeValuesStayExact) {
  const size_t dim = 4;
  const double specials[] = {1e-320,
                             4.9406564584124654e-324,  // min denormal
                             -1e-320,
                             1e300,
                             -1e300,
                             std::ldexp(1.0, -140),  // f32-subnormal range
                             0.0,
                             1.0};
  PhiMatrix plain_phi(dim);
  PhiMatrix mixed_phi(dim);
  Rng rng(9);
  std::vector<double> row(dim);
  for (size_t i = 0; i < 256; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      row[j] = (i % 3 == 0) ? specials[(i + j) % 8]
                            : rng.Uniform(-1e3, 1e3);
    }
    plain_phi.AppendRow(row);
    mixed_phi.AppendRow(row);
  }
  mixed_phi.EnableF32Mirror();
  for (const bool le : {true, false}) {
    for (const double b : {0.0, 1e-300, -1e250, 42.0}) {
      ScalarProductQuery q;
      q.a = {1e-310, 2.0, -3.0, std::ldexp(1.0, -130)};
      q.b = b;
      q.cmp = le ? Comparison::kLessEqual : Comparison::kGreaterEqual;
      const InequalityResult a = ScanInequality(plain_phi, q);
      const InequalityResult bres = ScanInequality(mixed_phi, q);
      EXPECT_EQ(a.ids, bres.ids) << "le=" << le << " b=" << b;
    }
  }
}

TEST(MixedAdversarial, ResidualWithinOneUlpOfBoundary) {
  // Queries cut exactly at (and one ulp around) a row's key, in both
  // directions: every such row's f32 residual lands inside the band and
  // the f64 re-verify decides it — the decisive compare is exact.
  const size_t dim = 3;
  SetPair sets = BuildPair(400, dim, 808);
  const PhiMatrix& phi = sets.mixed.phi();
  Rng rng(17);
  std::vector<double> a(dim);
  for (double& v : a) v = rng.Uniform(0.5, 4.0);
  for (size_t pick = 0; pick < 400; pick += 57) {
    const double* r = phi.row(pick);
    double exact = 0.0;
    for (size_t j = 0; j < dim; ++j) exact += a[j] * r[j];
    for (const double b :
         {exact, std::nextafter(exact, 1e308), std::nextafter(exact, -1e308)}) {
      for (const bool le : {true, false}) {
        ScalarProductQuery q;
        q.a = a;
        q.b = b;
        q.cmp = le ? Comparison::kLessEqual : Comparison::kGreaterEqual;
        ExpectSameInequality(sets.plain.Inequality(q, Deadline::Infinite()),
                             sets.mixed.Inequality(q, Deadline::Infinite()));
        const auto got = sets.mixed.Inequality(q, Deadline::Infinite());
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(Sorted(got->ids), BruteForceMatches(phi, q));
      }
    }
  }
}

TEST(MixedAdversarial, DeadlineCancelsInsideReVerify) {
  // An already-expired deadline must cancel with the canonical message on
  // both paths — including from inside the mixed f64 re-verify loop.
  SetPair sets = BuildPair(6000, 4, 2024);
  const ScalarProductQuery q = MakeQuery(4, 5, true, 1.0);
  const Deadline expired = Deadline::After(-1.0);
  const auto a = sets.plain.Inequality(q, expired);
  const auto b = sets.mixed.Inequality(q, expired);
  ASSERT_FALSE(a.ok());
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(a.status().code(), b.status().code());
  EXPECT_EQ(a.status().message(), b.status().message());
}

// ---------------------------------------------------------------------------
// Serialization: the mirror is never persisted and regenerates on load.

TEST(MixedSerialize, BlobsByteIdenticalAndMirrorRegenerates) {
  SetPair sets = BuildPair(300, 5, 4096);
  const std::string dir = ::testing::TempDir();
  const std::string plain_path = dir + "/mixed_plain.planar";
  const std::string mixed_path = dir + "/mixed_mixed.planar";
  ASSERT_TRUE(SaveIndexSet(sets.plain, plain_path).ok());
  ASSERT_TRUE(SaveIndexSet(sets.mixed, mixed_path).ok());
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string plain_bytes = slurp(plain_path);
  const std::string mixed_bytes = slurp(mixed_path);
  ASSERT_FALSE(plain_bytes.empty());
  // The option is a runtime serving knob: the serialized blobs (CRC and
  // all) must be byte-identical with and without it.
  EXPECT_EQ(plain_bytes, mixed_bytes);

  // Loading the plain blob with a mixed override regenerates the mirror.
  IndexSetOptions override_opts;
  override_opts.budget = 4;
  override_opts.seed = 7;
  override_opts.index_options.mixed_precision = true;
  auto loaded = LoadIndexSet(plain_path, &override_opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  if (MixedPrecisionRuntimeEnabled()) {
    EXPECT_NE(loaded->phi().f32_data(), nullptr);
  } else {
    EXPECT_EQ(loaded->phi().f32_data(), nullptr);
  }
  const ScalarProductQuery q = MakeQuery(5, 1, true, 1.0);
  ExpectSameInequality(sets.plain.Inequality(q, Deadline::Infinite()),
                       loaded->Inequality(q, Deadline::Infinite()));
  std::remove(plain_path.c_str());
  std::remove(mixed_path.c_str());
}

// ---------------------------------------------------------------------------
// Footprint and reservation behavior.

TEST(MixedFootprint, ResidentBytesDropAtLeast40Percent) {
  if (!MixedPrecisionRuntimeEnabled()) GTEST_SKIP();
  SetPair sets = BuildPair(2000, 8, 31337);
  const double plain_bytes = static_cast<double>(sets.plain.ResidentBytes());
  const double mixed_bytes = static_cast<double>(sets.mixed.ResidentBytes());
  ASSERT_GT(plain_bytes, 0.0);
  if (sets.plain.phi().f32_data() != nullptr) {
    GTEST_SKIP() << "PLANAR_FORCE_F32 makes both sets mixed";
  }
  EXPECT_LE(mixed_bytes, 0.6 * plain_bytes);
  // Total RAM moves the other way: the mirror is extra storage.
  EXPECT_GT(sets.mixed.MemoryUsage(), sets.plain.MemoryUsage());
}

TEST(MixedFootprint, ScanTopKHugeKDoesNotOverReserve) {
  // k far beyond the row count: the TopKBuffer reservation is clamped to
  // the candidate count, so this completes instead of bad_alloc-ing.
  PhiMatrix phi = RandomPhi(1000, 3, 1.0, 100.0, 2);
  phi.EnableF32Mirror();
  ScalarProductQuery q;
  q.a = {1.0, 1.0, 1.0};
  q.b = 1e9;  // everything matches
  q.cmp = Comparison::kLessEqual;
  const auto result = ScanTopK(phi, q, size_t{1} << 50);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->neighbors.size(), 1000u);
}

}  // namespace
}  // namespace planar
