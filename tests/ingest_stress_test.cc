// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Concurrency stress for the ingest subsystem, designed to run under
// ThreadSanitizer: one writer appends batches from a precomputed row
// pool while reader threads query through the delta overlay and the
// background merger repeatedly drains the delta and installs merged
// sets. Readers check linearizability-style invariants built on two
// monotone counters the writer publishes with release stores:
//
//   started_   — advanced BEFORE a batch is handed to Append
//   completed_ — advanced AFTER Append returned OK
//
// For a query that loads completed_ (acquire) before running and
// started_ after running:
//   (a) every satisfying row with id < base + completed_before MUST be
//       reported (the acquire pairs with the writer's release, which in
//       turn ordered after the delta's release-published size), and
//   (b) every reported id MUST be < base + started_after (a row can
//       only be visible once its batch was started).
// Plus: no duplicate ids, and every reported id satisfies the
// predicate. After the writer finishes, a Flush quiesces the shard and
// the results are compared exactly against a serial from-scratch build.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ingest/ingest.h"
#include "tests/test_util.h"

namespace planar {
namespace {

constexpr char kTarget[] = "stream";
constexpr size_t kDim = 3;
constexpr size_t kBaseRows = 400;
constexpr size_t kPoolRows = 4096;

std::vector<ParameterDomain> Domains() {
  return {{1.0, 6.0}, {-6.0, -1.0}, {1.0, 6.0}};
}

struct Fixture {
  PhiMatrix all{kDim};              // base rows followed by the pool
  std::vector<double> pool;         // rows the writer appends, in order
  std::vector<ScalarProductQuery> queries;
  // satisfies[q][id]: does global row id satisfy queries[q]?
  std::vector<std::vector<char>> satisfies;
};

Fixture MakeFixture() {
  Fixture f;
  Rng rng(4242);
  PhiMatrix base = RandomPhi(kBaseRows, kDim, -20.0, 80.0, 4242);
  for (size_t i = 0; i < base.size(); ++i) f.all.AppendRow(base.row(i));
  f.pool.resize(kPoolRows * kDim);
  for (double& v : f.pool) v = rng.Uniform(-20.0, 80.0);
  for (size_t i = 0; i < kPoolRows; ++i) {
    f.all.AppendRow(f.pool.data() + i * kDim);
  }
  for (int i = 0; i < 4; ++i) {
    ScalarProductQuery q;
    q.a = {rng.Uniform(1, 6), -rng.Uniform(1, 6), rng.Uniform(1, 6)};
    q.b = rng.Uniform(-100, 300);
    q.cmp = i % 2 == 0 ? Comparison::kLessEqual : Comparison::kGreaterEqual;
    f.queries.push_back(q);
  }
  f.satisfies.resize(f.queries.size());
  for (size_t qi = 0; qi < f.queries.size(); ++qi) {
    const ScalarProductQuery& q = f.queries[qi];
    f.satisfies[qi].resize(f.all.size());
    for (size_t id = 0; id < f.all.size(); ++id) {
      double dot = 0.0;
      for (size_t d = 0; d < kDim; ++d) dot += q.a[d] * f.all.row(id)[d];
      f.satisfies[qi][id] = q.cmp == Comparison::kLessEqual ? dot <= q.b
                                                            : dot >= q.b;
    }
  }
  return f;
}

TEST(IngestStressTest, ConcurrentReadsStayConsistentAcrossMerges) {
  const Fixture f = MakeFixture();
  Catalog catalog;
  {
    PhiMatrix base(kDim);
    for (size_t i = 0; i < kBaseRows; ++i) base.AppendRow(f.all.row(i));
    IndexSetOptions options;
    options.budget = 4;
    auto set = PlanarIndexSet::Build(std::move(base), Domains(), options);
    ASSERT_TRUE(set.ok());
    catalog.Install(kTarget, std::move(set).value());
  }
  IngestOptions options;
  options.merge_threshold = 64;  // merge constantly while readers run
  options.delta_capacity = kPoolRows;  // large enough to never shed
  IngestManager manager(&catalog, options);
  ASSERT_TRUE(manager.Manage(kTarget).ok());

  std::atomic<size_t> started{0};
  std::atomic<size_t> completed{0};
  std::atomic<bool> writer_done{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    Rng rng(7);
    size_t next = 0;
    while (next < kPoolRows) {
      const size_t count = std::min<size_t>(1 + rng.UniformInt(48),
                                            kPoolRows - next);
      started.store(next + count, std::memory_order_release);
      auto first = manager.Append(
          kTarget,
          std::vector<double>(f.pool.begin() + next * kDim,
                              f.pool.begin() + (next + count) * kDim));
      if (!first.ok() || first.value() != kBaseRows + next) {
        failures.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      next += count;
      completed.store(next, std::memory_order_release);
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + r);
      std::vector<char> present(f.all.size());
      do {
        const size_t qi = rng.UniformInt(f.queries.size());
        const size_t completed_before =
            completed.load(std::memory_order_acquire);
        Result<InequalityResult> got = Status::Internal("unset");
        if (!manager.Inequality(kTarget, f.queries[qi], Deadline::Infinite(),
                                &got) ||
            !got.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        const size_t started_after = started.load(std::memory_order_acquire);
        bool bad = false;
        std::fill(present.begin(), present.end(), 0);
        for (uint32_t id : got->ids) {
          // (b) never a row whose batch had not started, never a
          // duplicate, never a non-satisfying row.
          if (id >= kBaseRows + started_after || present[id] ||
              !f.satisfies[qi][id]) {
            bad = true;
            break;
          }
          present[id] = 1;
        }
        if (!bad) {
          // (a) every satisfying row published before the query began.
          const size_t visible_floor = kBaseRows + completed_before;
          for (size_t id = 0; id < visible_floor; ++id) {
            if (f.satisfies[qi][id] && !present[id]) {
              bad = true;
              break;
            }
          }
        }
        if (bad) failures.fetch_add(1, std::memory_order_relaxed);
      } while (!writer_done.load(std::memory_order_acquire));
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(completed.load(std::memory_order_acquire), kPoolRows);

  // Quiesce and compare exactly against a serial from-scratch build.
  ASSERT_TRUE(manager.Flush(kTarget).ok());
  EXPECT_EQ(catalog.Find(kTarget)->size(), kBaseRows + kPoolRows);
  EXPECT_EQ(manager.gauges().delta_rows, 0u);
  EXPECT_GE(manager.gauges().merges, 1u);
  {
    PhiMatrix full(kDim);
    for (size_t i = 0; i < f.all.size(); ++i) full.AppendRow(f.all.row(i));
    IndexSetOptions set_options;
    set_options.budget = 4;
    auto fresh = PlanarIndexSet::Build(std::move(full), Domains(), set_options);
    ASSERT_TRUE(fresh.ok());
    for (size_t qi = 0; qi < f.queries.size(); ++qi) {
      Result<InequalityResult> got = Status::Internal("unset");
      ASSERT_TRUE(manager.Inequality(kTarget, f.queries[qi],
                                     Deadline::Infinite(), &got));
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(Sorted(got->ids), Sorted(fresh->Inequality(f.queries[qi]).ids))
          << qi;
    }
  }
}

}  // namespace
}  // namespace planar
