// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.

#include "core/query.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace planar {
namespace {

TEST(ScalarProductQueryTest, MatchesLessEqual) {
  ScalarProductQuery q{{1.0, 1.0}, 5.0, Comparison::kLessEqual};
  const double in[] = {2.0, 2.0};
  const double edge[] = {2.5, 2.5};
  const double out[] = {3.0, 3.0};
  EXPECT_TRUE(q.Matches(in));
  EXPECT_TRUE(q.Matches(edge));
  EXPECT_FALSE(q.Matches(out));
}

TEST(ScalarProductQueryTest, MatchesGreaterEqual) {
  ScalarProductQuery q{{2.0, -1.0}, 1.0, Comparison::kGreaterEqual};
  const double yes[] = {1.0, 0.5};  // 2 - 0.5 = 1.5 >= 1
  const double no[] = {0.0, 0.5};   // -0.5 < 1
  EXPECT_TRUE(q.Matches(yes));
  EXPECT_FALSE(q.Matches(no));
}

TEST(ScalarProductQueryTest, Residual) {
  ScalarProductQuery q{{1.0, 2.0}, 4.0, Comparison::kLessEqual};
  const double p[] = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(q.Residual(p), -1.0);
}

TEST(ScalarProductQueryTest, DistanceIsHyperplaneDistance) {
  ScalarProductQuery q{{3.0, 4.0}, 5.0, Comparison::kLessEqual};
  const double p[] = {3.0, 4.0};  // <a,p> = 25, |a| = 5 -> dist = 4
  EXPECT_DOUBLE_EQ(q.Distance(p), 4.0);
}

TEST(ScalarProductQueryTest, ToStringMentionsDirection) {
  ScalarProductQuery le{{1.0}, 2.0, Comparison::kLessEqual};
  ScalarProductQuery ge{{1.0}, 2.0, Comparison::kGreaterEqual};
  EXPECT_NE(le.ToString().find("<="), std::string::npos);
  EXPECT_NE(ge.ToString().find(">="), std::string::npos);
}

TEST(NormalizedQueryTest, NonNegativeBUnchanged) {
  ScalarProductQuery q{{1.0, -2.0}, 3.0, Comparison::kLessEqual};
  const NormalizedQuery n = NormalizedQuery::From(q);
  EXPECT_EQ(n.a, q.a);
  EXPECT_EQ(n.b, 3.0);
  EXPECT_EQ(n.cmp, Comparison::kLessEqual);
}

TEST(NormalizedQueryTest, NegativeBFlipsEverything) {
  ScalarProductQuery q{{1.0, -2.0}, -3.0, Comparison::kLessEqual};
  const NormalizedQuery n = NormalizedQuery::From(q);
  EXPECT_EQ(n.a, (std::vector<double>{-1.0, 2.0}));
  EXPECT_EQ(n.b, 3.0);
  EXPECT_EQ(n.cmp, Comparison::kGreaterEqual);
}

TEST(NormalizedQueryTest, FlipPreservesPredicate) {
  ScalarProductQuery q{{2.0, -1.5}, -0.7, Comparison::kGreaterEqual};
  const NormalizedQuery n = NormalizedQuery::From(q);
  EXPECT_EQ(n.cmp, Comparison::kLessEqual);
  for (double x0 : {-2.0, -0.5, 0.0, 0.3, 1.9}) {
    for (double x1 : {-1.0, 0.0, 2.5}) {
      const double phi[] = {x0, x1};
      const double orig = 2.0 * x0 - 1.5 * x1;
      const bool orig_match = orig >= -0.7;
      const double flipped = n.a[0] * x0 + n.a[1] * x1;
      const bool norm_match = n.cmp == Comparison::kLessEqual
                                  ? flipped <= n.b
                                  : flipped >= n.b;
      EXPECT_EQ(orig_match, norm_match) << x0 << "," << x1;
      (void)phi;
    }
  }
}

TEST(NormalizedQueryTest, OctantFollowsSigns) {
  const NormalizedQuery n =
      NormalizedQuery::From({{1.0, -2.0, 0.0}, 1.0, Comparison::kLessEqual});
  EXPECT_EQ(n.octant.sign(0), 1.0);
  EXPECT_EQ(n.octant.sign(1), -1.0);
  EXPECT_EQ(n.octant.sign(2), 1.0);  // zero maps to +
}

TEST(NormalizedQueryTest, Degenerate) {
  EXPECT_TRUE(NormalizedQuery::From({{0.0, 0.0}, 1.0, Comparison::kLessEqual})
                  .IsDegenerate());
  EXPECT_FALSE(
      NormalizedQuery::From({{0.0, 0.1}, 1.0, Comparison::kLessEqual})
          .IsDegenerate());
}

TEST(ScalarProductQueryTest, IsFiniteAcceptsOrdinaryParameters) {
  EXPECT_TRUE((ScalarProductQuery{{1.0, -2.0, 0.0}, 3.0,
                                  Comparison::kLessEqual})
                  .IsFinite());
  // Zero, negative, and denormal components are all legitimate finite
  // parameters; only NaN and infinities are excluded.
  EXPECT_TRUE((ScalarProductQuery{{0.0, -0.0, 5e-324}, -7.5,
                                  Comparison::kGreaterEqual})
                  .IsFinite());
}

TEST(ScalarProductQueryTest, IsFiniteRejectsNaNAndInfinity) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE((ScalarProductQuery{{nan, 1.0}, 1.0,
                                   Comparison::kLessEqual})
                   .IsFinite());
  EXPECT_FALSE((ScalarProductQuery{{1.0, inf}, 1.0,
                                   Comparison::kLessEqual})
                   .IsFinite());
  EXPECT_FALSE((ScalarProductQuery{{1.0, -inf}, 1.0,
                                   Comparison::kGreaterEqual})
                   .IsFinite());
  EXPECT_FALSE((ScalarProductQuery{{1.0, 1.0}, nan,
                                   Comparison::kLessEqual})
                   .IsFinite());
  EXPECT_FALSE((ScalarProductQuery{{1.0, 1.0}, -inf,
                                   Comparison::kLessEqual})
                   .IsFinite());
}

TEST(NormalizedQueryTest, IsFiniteSurvivesNormalization) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(NormalizedQuery::From({{1.0, -2.0}, -3.0,
                                     Comparison::kLessEqual})
                  .IsFinite());
  EXPECT_FALSE(NormalizedQuery::From({{nan, -2.0}, -3.0,
                                      Comparison::kLessEqual})
                   .IsFinite());
}

TEST(NormalizedQueryTest, NormA) {
  const NormalizedQuery n =
      NormalizedQuery::From({{3.0, 4.0}, 0.0, Comparison::kLessEqual});
  EXPECT_DOUBLE_EQ(n.NormA(), 5.0);
}

}  // namespace
}  // namespace planar
