// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Unit tests for a single Planar index: construction validation, interval
// boundaries on hand-computed examples, query answers against the scan
// baseline, and dynamic maintenance.

#include "core/planar_index.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/scan.h"
#include "tests/test_util.h"

namespace planar {
namespace {

PlanarIndexOptions ArrayBackend() {
  PlanarIndexOptions o;
  o.backend = PlanarIndexOptions::Backend::kSortedArray;
  return o;
}

PlanarIndexOptions TreeBackend() {
  PlanarIndexOptions o;
  o.backend = PlanarIndexOptions::Backend::kBTree;
  return o;
}

TEST(PlanarIndexBuildTest, RejectsNullAndEmpty) {
  EXPECT_FALSE(PlanarIndex::BuildFirstOctant(nullptr, {1.0}).ok());
  PhiMatrix empty(1);
  EXPECT_FALSE(PlanarIndex::BuildFirstOctant(&empty, {1.0}).ok());
}

TEST(PlanarIndexBuildTest, RejectsBadNormal) {
  PhiMatrix phi = RowMatrix::FromRowMajor(2, {1.0, 2.0});
  EXPECT_FALSE(PlanarIndex::BuildFirstOctant(&phi, {1.0}).ok());       // dim
  EXPECT_FALSE(PlanarIndex::BuildFirstOctant(&phi, {1.0, 0.0}).ok());  // zero
  EXPECT_FALSE(PlanarIndex::BuildFirstOctant(&phi, {1.0, -1.0}).ok());
}

TEST(PlanarIndexBuildTest, KeysAreSortedScalarProducts) {
  PhiMatrix phi = RowMatrix::FromRowMajor(2, {3.0, 1.0,   // key 3+2 = 5
                                              1.0, 1.0,   // key 1+2 = 3
                                              2.0, 5.0});  // key 2+10 = 12
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 2.0});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->size(), 3u);
  EXPECT_DOUBLE_EQ(index->KeyOf(0), 5.0);
  EXPECT_DOUBLE_EQ(index->KeyOf(1), 3.0);
  EXPECT_DOUBLE_EQ(index->KeyOf(2), 12.0);
}

// A 2-d arrangement mirroring the paper's Figure 2: seven points, an index
// normal c = (1, 1) and a query hyperplane Y1 + Y2 = 4 (a = c so the
// intermediate interval is empty), plus a skewed query where it is not.
TEST(PlanarIndexIntervalTest, ParallelQueryHasEmptyIntermediate) {
  PhiMatrix phi = RowMatrix::FromRowMajor(
      2, {0.5, 0.5, 1.0, 1.0, 1.0, 2.0, 2.0, 1.5, 3.0, 3.0, 4.0, 3.5, 5.0,
          4.0});
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 1.0});
  ASSERT_TRUE(index.ok());
  const NormalizedQuery q =
      NormalizedQuery::From({{1.0, 1.0}, 4.0, Comparison::kLessEqual});
  auto iv = index->ComputeIntervals(q);
  ASSERT_TRUE(iv.ok());
  EXPECT_EQ(iv->smaller_end, iv->larger_begin);  // |II| = 0
  // Keys: 1, 2, 3, 3.5, 6, 7.5, 9 -> four keys <= 4.
  EXPECT_EQ(iv->smaller_end, 4u);
}

TEST(PlanarIndexIntervalTest, SkewedQueryHasIntermediate) {
  PhiMatrix phi = RowMatrix::FromRowMajor(
      2, {0.5, 0.5, 1.0, 1.0, 1.0, 2.0, 2.0, 1.5, 3.0, 3.0, 4.0, 3.5, 5.0,
          4.0});
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 1.0});
  ASSERT_TRUE(index.ok());
  // a = (1, 3): I(q,1) = 6, I(q,2) = 2. Accept keys <= min(6, 2*3*1)=...
  // low = b / max(a_i/c_i) = 6 / 3 = 2; high = b / min(a_i/c_i) = 6 / 1 = 6.
  const NormalizedQuery q =
      NormalizedQuery::From({{1.0, 3.0}, 6.0, Comparison::kLessEqual});
  auto iv = index->ComputeIntervals(q);
  ASSERT_TRUE(iv.ok());
  // Keys sorted: 1, 2, 3, 3.5, 6, 7.5, 9. The key exactly equal to the
  // low boundary (2) falls inside the floating-point guard band and is
  // pushed into the intermediate interval for exact verification.
  EXPECT_EQ(iv->smaller_end, 1u);   // key 1
  EXPECT_EQ(iv->larger_begin, 5u);  // keys 7.5, 9 rejected
}

TEST(PlanarIndexTest, InequalityMatchesScanOnExample) {
  PhiMatrix phi = RandomPhi(500, 3, 1.0, 100.0, 17);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 2.0, 3.0});
  ASSERT_TRUE(index.ok());
  const ScalarProductQuery q{{2.0, 1.0, 4.0}, 500.0, Comparison::kLessEqual};
  auto result = index->Inequality(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->ids), BruteForceMatches(phi, q));
  // Stats add up.
  const QueryStats& s = result->stats;
  EXPECT_EQ(s.num_points, 500u);
  EXPECT_EQ(s.accepted_directly + s.rejected_directly + s.verified, 500u);
  EXPECT_EQ(s.result_size, result->ids.size());
}

TEST(PlanarIndexTest, GreaterEqualMatchesScan) {
  PhiMatrix phi = RandomPhi(500, 3, 1.0, 100.0, 18);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 1.0, 1.0});
  ASSERT_TRUE(index.ok());
  const ScalarProductQuery q{{2.0, 1.0, 4.0}, 600.0,
                             Comparison::kGreaterEqual};
  auto result = index->Inequality(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->ids), BruteForceMatches(phi, q));
}

TEST(PlanarIndexTest, OctantMismatchIsRejected) {
  PhiMatrix phi = RandomPhi(50, 2, -10.0, 10.0, 19);
  auto index = PlanarIndex::Build(&phi, {1.0, 1.0},
                                  Octant::FromNormal({1.0, -1.0}));
  ASSERT_TRUE(index.ok());
  // Query with positive a_1 cannot be served by a (+,-) index.
  const NormalizedQuery q =
      NormalizedQuery::From({{1.0, 1.0}, 5.0, Comparison::kLessEqual});
  EXPECT_FALSE(index->CanServe(q));
  EXPECT_EQ(index->Inequality(q).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(index->TopK(q, 3).ok());
  // A (+,-) query is fine.
  const NormalizedQuery ok =
      NormalizedQuery::From({{1.0, -1.0}, 5.0, Comparison::kLessEqual});
  EXPECT_TRUE(index->CanServe(ok));
  EXPECT_TRUE(index->Inequality(ok).ok());
}

TEST(PlanarIndexTest, ZeroQueryAxisIsHandled) {
  PhiMatrix phi = RandomPhi(300, 3, 1.0, 50.0, 20);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 1.0, 1.0});
  ASSERT_TRUE(index.ok());
  const ScalarProductQuery q{{2.0, 0.0, 1.0}, 80.0, Comparison::kLessEqual};
  auto result = index->Inequality(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->ids), BruteForceMatches(phi, q));
}

TEST(PlanarIndexTest, DegenerateAllZeroQuery) {
  PhiMatrix phi = RandomPhi(20, 2, 1.0, 5.0, 21);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 1.0});
  ASSERT_TRUE(index.ok());
  // 0 <= 3: every point matches.
  auto all = index->Inequality(
      ScalarProductQuery{{0.0, 0.0}, 3.0, Comparison::kLessEqual});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->ids.size(), 20u);
  // 0 >= 3 is false for every point.
  auto none = index->Inequality(
      ScalarProductQuery{{0.0, 0.0}, 3.0, Comparison::kGreaterEqual});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->ids.empty());
  // Top-k distance is undefined.
  EXPECT_FALSE(
      index
          ->TopK(ScalarProductQuery{{0.0, 0.0}, 3.0, Comparison::kLessEqual},
                 2)
          .ok());
}

TEST(PlanarIndexTest, TopKMatchesScan) {
  PhiMatrix phi = RandomPhi(800, 3, 1.0, 100.0, 22);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 1.5, 0.7});
  ASSERT_TRUE(index.ok());
  const ScalarProductQuery q{{1.0, 2.0, 3.0}, 350.0, Comparison::kLessEqual};
  for (size_t k : {1u, 5u, 50u, 799u, 2000u}) {
    auto got = index->TopK(q, k);
    auto want = ScanTopK(phi, q, k);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->neighbors.size(), want->neighbors.size()) << "k=" << k;
    for (size_t i = 0; i < got->neighbors.size(); ++i) {
      EXPECT_EQ(got->neighbors[i].id, want->neighbors[i].id) << "k=" << k;
      EXPECT_NEAR(got->neighbors[i].distance, want->neighbors[i].distance,
                  1e-9);
    }
  }
}

TEST(PlanarIndexTest, TopKPruningFiresForParallelIndex) {
  PhiMatrix phi = RandomPhi(5000, 2, 1.0, 100.0, 23);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 2.0});
  ASSERT_TRUE(index.ok());
  // Query parallel to the index: |II| = 0 and the SI walk should stop after
  // roughly k points.
  const ScalarProductQuery q{{1.0, 2.0}, 150.0, Comparison::kLessEqual};
  auto result = index->TopK(q, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->neighbors.size(), 10u);
  EXPECT_TRUE(result->stats.early_terminated);
  EXPECT_LT(result->stats.checked(), 100u);
  // And it still matches the scan.
  auto want = ScanTopK(phi, q, 10);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(result->neighbors[i].id, want->neighbors[i].id);
  }
}

TEST(PlanarIndexTest, BackendsAgree) {
  PhiMatrix phi = RandomPhi(600, 4, -20.0, 20.0, 24);
  const ScalarProductQuery q{{1.0, 2.0, 0.5, 1.5}, 10.0,
                             Comparison::kLessEqual};
  auto array_index =
      PlanarIndex::BuildFirstOctant(&phi, {1.0, 1.0, 1.0, 1.0}, ArrayBackend());
  auto tree_index =
      PlanarIndex::BuildFirstOctant(&phi, {1.0, 1.0, 1.0, 1.0}, TreeBackend());
  ASSERT_TRUE(array_index.ok());
  ASSERT_TRUE(tree_index.ok());
  auto ra = array_index->Inequality(q);
  auto rt = tree_index->Inequality(q);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(Sorted(ra->ids), Sorted(rt->ids));
  EXPECT_EQ(ra->stats.verified, rt->stats.verified);

  auto ta = array_index->TopK(q, 25);
  auto tt = tree_index->TopK(q, 25);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tt.ok());
  ASSERT_EQ(ta->neighbors.size(), tt->neighbors.size());
  for (size_t i = 0; i < ta->neighbors.size(); ++i) {
    EXPECT_EQ(ta->neighbors[i].id, tt->neighbors[i].id);
  }
}

TEST(PlanarIndexUpdateTest, UpdateWithinBoundsBothBackends) {
  for (const auto& options : {ArrayBackend(), TreeBackend()}) {
    PhiMatrix phi = RandomPhi(200, 2, 1.0, 100.0, 25);
    auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 1.0}, options);
    ASSERT_TRUE(index.ok());
    const ScalarProductQuery q{{1.0, 2.0}, 120.0, Comparison::kLessEqual};

    // Move 50 rows and keep the index in sync.
    Rng rng(26);
    std::vector<double> row(2);
    for (int i = 0; i < 50; ++i) {
      const uint32_t target = static_cast<uint32_t>(rng.UniformInt(200));
      row[0] = rng.Uniform(1.0, 100.0);
      row[1] = rng.Uniform(1.0, 100.0);
      phi.SetRow(target, row.data());
      EXPECT_TRUE(index->Update(target));
      EXPECT_DOUBLE_EQ(index->KeyOf(target), row[0] + row[1]);
    }
    auto result = index->Inequality(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Sorted(result->ids), BruteForceMatches(phi, q));
  }
}

TEST(PlanarIndexUpdateTest, EscapingUpdateRequestsRebuild) {
  PhiMatrix phi = RandomPhi(50, 1, 1.0, 10.0, 27);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0});
  ASSERT_TRUE(index.ok());
  const double escaped[] = {-100.0};  // far below the delta bound
  phi.SetRow(3, escaped);
  EXPECT_FALSE(index->Update(3));
  index->Rebuild();
  const ScalarProductQuery q{{1.0}, 5.0, Comparison::kLessEqual};
  auto result = index->Inequality(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->ids), BruteForceMatches(phi, q));
}

TEST(PlanarIndexUpdateTest, UpdateBatchBothBackends) {
  for (const auto& options : {ArrayBackend(), TreeBackend()}) {
    PhiMatrix phi = RandomPhi(300, 3, 1.0, 100.0, 26);
    auto index =
        PlanarIndex::BuildFirstOctant(&phi, {1.0, 2.0, 1.0}, options);
    ASSERT_TRUE(index.ok());
    Rng rng(27);
    std::vector<uint32_t> rows;
    std::vector<double> row(3);
    for (int i = 0; i < 80; ++i) {
      const uint32_t target = static_cast<uint32_t>(rng.UniformInt(300));
      for (double& v : row) v = rng.Uniform(1.0, 100.0);
      phi.SetRow(target, row.data());
      rows.push_back(target);
    }
    ASSERT_TRUE(index->UpdateBatch(rows));
    const ScalarProductQuery q{{1.0, 2.0, 3.0}, 250.0,
                               Comparison::kLessEqual};
    auto result = index->Inequality(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Sorted(result->ids), BruteForceMatches(phi, q));
  }
}

// The sorted-array UpdateBatch merge path (compact unchanged entries,
// sort the k fresh ones, merge back) must leave keys_/ids_ exactly as a
// full Rebuild would — same ranks, same (key, id) tie order. Duplicate
// keys, repeated rows in the batch, and no-op updates are all included.
TEST(PlanarIndexUpdateTest, UpdateBatchMatchesFullRebuild) {
  // Integer-grid values make duplicate keys common, exercising the
  // (key, id) tie-break in the merge.
  PhiMatrix phi(2);
  Rng init(31);
  for (int i = 0; i < 400; ++i) {
    phi.AppendRow({static_cast<double>(init.UniformInt(8) + 1),
                   static_cast<double>(init.UniformInt(8) + 1)});
  }
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 1.0},
                                             ArrayBackend());
  ASSERT_TRUE(index.ok());
  Rng rng(32);
  std::vector<uint32_t> rows;
  for (int i = 0; i < 120; ++i) {
    const uint32_t target = static_cast<uint32_t>(rng.UniformInt(400));
    const double row[] = {static_cast<double>(rng.UniformInt(8) + 1),
                          static_cast<double>(rng.UniformInt(8) + 1)};
    phi.SetRow(target, row);
    rows.push_back(target);
    if (i % 7 == 0) rows.push_back(target);  // duplicate row in the batch
  }
  ASSERT_TRUE(index->UpdateBatch(rows));

  std::vector<uint32_t> merged_ids;
  index->CollectRange(0, index->size(), &merged_ids);
  std::vector<double> merged_keys(merged_ids.size());
  for (size_t r = 0; r < merged_ids.size(); ++r) {
    merged_keys[r] = index->KeyOf(merged_ids[r]);
  }

  index->Rebuild();
  std::vector<uint32_t> rebuilt_ids;
  index->CollectRange(0, index->size(), &rebuilt_ids);
  ASSERT_EQ(merged_ids.size(), rebuilt_ids.size());
  EXPECT_EQ(merged_ids, rebuilt_ids);
  for (size_t r = 0; r < rebuilt_ids.size(); ++r) {
    EXPECT_EQ(merged_keys[r], index->KeyOf(rebuilt_ids[r])) << "rank " << r;
  }
}

TEST(PlanarIndexUpdateTest, UpdateBatchDetectsEscape) {
  PhiMatrix phi = RandomPhi(50, 1, 1.0, 10.0, 28);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0});
  ASSERT_TRUE(index.ok());
  const double escaped[] = {-999.0};
  phi.SetRow(5, escaped);
  EXPECT_FALSE(index->UpdateBatch({5}));
  index->Rebuild();
  const ScalarProductQuery q{{1.0}, 5.0, Comparison::kLessEqual};
  EXPECT_EQ(Sorted(index->Inequality(q)->ids), BruteForceMatches(phi, q));
}

TEST(PlanarIndexUpdateTest, AppendBothBackends) {
  for (const auto& options : {ArrayBackend(), TreeBackend()}) {
    PhiMatrix phi = RandomPhi(100, 2, 1.0, 50.0, 28);
    auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 1.0}, options);
    ASSERT_TRUE(index.ok());
    for (int i = 0; i < 20; ++i) {
      phi.AppendRow({10.0 + i, 20.0});
      EXPECT_TRUE(index->NotifyAppend(static_cast<uint32_t>(phi.size() - 1)));
    }
    EXPECT_EQ(index->size(), 120u);
    const ScalarProductQuery q{{1.0, 1.0}, 60.0, Comparison::kLessEqual};
    auto result = index->Inequality(q);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Sorted(result->ids), BruteForceMatches(phi, q));
  }
}

TEST(PlanarIndexTest, StretchZeroForParallelQuery) {
  // Corollary 1: a query parallel to the index has zero stretch.
  PhiMatrix phi = RandomPhi(10, 3, 1.0, 10.0, 29);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 2.0, 5.0});
  ASSERT_TRUE(index.ok());
  const NormalizedQuery parallel =
      NormalizedQuery::From({{2.0, 4.0, 10.0}, 7.0, Comparison::kLessEqual});
  EXPECT_NEAR(index->MaxStretch(parallel), 0.0, 1e-9);
  EXPECT_NEAR(index->CosAngle(parallel), 1.0, 1e-12);
  const NormalizedQuery skewed =
      NormalizedQuery::From({{5.0, 1.0, 1.0}, 7.0, Comparison::kLessEqual});
  EXPECT_GT(index->MaxStretch(skewed), 0.0);
  EXPECT_LT(index->CosAngle(skewed), 1.0);
}

TEST(PlanarIndexTest, PaperExample4Stretch) {
  // Example 4 of the paper: query Y1 + 2 Y2 + 5 Y3 = 10, index normal
  // (1, 1, 2): maximum stretch along any axis is 6.
  PhiMatrix phi = RandomPhi(10, 3, 0.5, 1.0, 30);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 1.0, 2.0});
  ASSERT_TRUE(index.ok());
  const NormalizedQuery q =
      NormalizedQuery::From({{1.0, 2.0, 5.0}, 10.0, Comparison::kLessEqual});
  // m_k = c_k * b / a_k = 10, 5, 4 -> spread 6; min c = 1 -> stretch 6.
  EXPECT_NEAR(index->MaxStretch(q), 6.0, 1e-12);
}

// --- Non-finite and degenerate-ratio query parameters ---------------------

TEST(PlanarIndexEdgeCaseTest, NonFiniteQueryParametersAreRejected) {
  PhiMatrix phi = RandomPhi(50, 2, 0.0, 10.0, 71);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 1.0});
  ASSERT_TRUE(index.ok());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const ScalarProductQuery bad_queries[] = {
      {{nan, 1.0}, 1.0, Comparison::kLessEqual},
      {{1.0, inf}, 1.0, Comparison::kLessEqual},
      {{1.0, 1.0}, nan, Comparison::kLessEqual},
      {{1.0, 1.0}, -inf, Comparison::kGreaterEqual},
  };
  for (const ScalarProductQuery& q : bad_queries) {
    EXPECT_FALSE(index->Inequality(q).ok()) << q.ToString();
    EXPECT_FALSE(index->TopK(q, 3).ok()) << q.ToString();
    EXPECT_FALSE(index->ComputeIntervals(NormalizedQuery::From(q)).ok())
        << q.ToString();
  }
}

TEST(PlanarIndexEdgeCaseTest, UnderflowingRatioStaysExact) {
  // |a_1| / c_1 = 1e-300 / 1e300 underflows to exactly zero; without the
  // degenerate-ratio exclusion the key cuts would evaluate (b' - E) / 0.0.
  PhiMatrix phi = RandomPhi(200, 2, 0.0, 10.0, 72);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 1e300});
  ASSERT_TRUE(index.ok());
  const ScalarProductQuery q{{1.0, 1e-300}, 5.0, Comparison::kLessEqual};
  const auto result = index->Inequality(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->ids), BruteForceMatches(phi, q));
}

TEST(PlanarIndexEdgeCaseTest, DenormalQueryComponentStaysExact) {
  PhiMatrix phi = RandomPhi(200, 2, 0.0, 10.0, 73);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 1.0});
  ASSERT_TRUE(index.ok());
  // 5e-324 is the smallest denormal; its ratio against c_1 = 1 is itself
  // denormal and must not enter the rmin/rmax envelope as a divisor.
  const ScalarProductQuery q{{2.0, 5e-324}, 30.0, Comparison::kLessEqual};
  const auto result = index->Inequality(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->ids), BruteForceMatches(phi, q));
}

TEST(PlanarIndexEdgeCaseTest, OverflowingRatioStaysExact) {
  // |a_0| / c_0 = 1e300 / 1e-300 overflows to infinity, which would poison
  // the top-k lower bound; the axis is excluded instead.
  PhiMatrix phi = RandomPhi(200, 2, 0.0, 10.0, 74);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1e-300, 1.0});
  ASSERT_TRUE(index.ok());
  const ScalarProductQuery q{{1e300, 1.0}, 1e301, Comparison::kLessEqual};
  const auto result = index->Inequality(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->ids), BruteForceMatches(phi, q));
}

TEST(PlanarIndexEdgeCaseTest, AllRatiosDegenerateVerifiesEverything) {
  // Every axis excluded: the key carries no information, so the whole
  // dataset lands in the intermediate interval and is verified exactly.
  PhiMatrix phi = RandomPhi(100, 2, 0.0, 10.0, 75);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1e300, 1e300});
  ASSERT_TRUE(index.ok());
  const ScalarProductQuery q{{1e-300, 1e-300}, 1.0, Comparison::kLessEqual};
  const auto result = index->Inequality(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.verified, phi.size());
  EXPECT_EQ(Sorted(result->ids), BruteForceMatches(phi, q));
}

TEST(PlanarIndexEdgeCaseTest, ZeroAndNegativeComponentsStayExact) {
  PhiMatrix phi = RandomPhi(200, 3, 0.0, 10.0, 76);
  auto index = PlanarIndex::BuildFirstOctant(&phi, {1.0, 2.0, 1.0});
  ASSERT_TRUE(index.ok());
  // A zero component excludes the axis; a negative component makes the
  // query octant-incompatible with a first-octant index.
  const ScalarProductQuery zero_axis{{1.0, 0.0, 2.0}, 25.0,
                                     Comparison::kLessEqual};
  const auto result = index->Inequality(zero_axis);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->ids), BruteForceMatches(phi, zero_axis));

  const ScalarProductQuery negative{{1.0, -1.0, 2.0}, 25.0,
                                    Comparison::kLessEqual};
  EXPECT_FALSE(index->Inequality(negative).ok());
  // The exact answer is still available through the scan path.
  EXPECT_EQ(Sorted(ScanInequality(phi, negative).ids),
            BruteForceMatches(phi, negative));
}

TEST(PlanarIndexTest, MemoryUsageScalesWithN) {
  PhiMatrix small = RandomPhi(100, 2, 1.0, 10.0, 31);
  PhiMatrix large = RandomPhi(10000, 2, 1.0, 10.0, 31);
  auto a = PlanarIndex::BuildFirstOctant(&small, {1.0, 1.0});
  auto b = PlanarIndex::BuildFirstOctant(&large, {1.0, 1.0});
  EXPECT_GT(b->MemoryUsage(), a->MemoryUsage() * 50);
}

}  // namespace
}  // namespace planar
