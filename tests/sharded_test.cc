// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// ShardedIndexSet result contract (core/sharded.h): inequality ids are
// the monolithic match set in canonical ascending order, TopK is
// bit-identical to the monolithic set, merged stats keep the
// classification invariant, and — for a fixed shard count — results are
// bit-identical across worker counts. Every fan-out path in the tree
// ships a test like this against its serial reference (CONTRIBUTING).

#include "core/sharded.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/random.h"
#include "core/index_set.h"
#include "tests/test_util.h"

namespace planar {
namespace {

constexpr size_t kDim = 4;
constexpr size_t kRows = 3000;
constexpr uint64_t kSeed = 31;

IndexSetOptions SetOptions() {
  IndexSetOptions options;
  options.budget = 6;
  options.seed = 7;
  options.scan_fallback_fraction = 1.0;
  return options;
}

std::vector<ParameterDomain> Domains() {
  return std::vector<ParameterDomain>(kDim, ParameterDomain{1.0, 8.0});
}

ScalarProductQuery MakeQuery(Rng* rng) {
  ScalarProductQuery q;
  q.a.resize(kDim);
  for (double& v : q.a) v = rng->Uniform(1.0, 8.0);
  q.b = rng->Uniform(200.0, 1800.0);
  q.cmp = rng->NextDouble() < 0.5 ? Comparison::kLessEqual
                                  : Comparison::kGreaterEqual;
  return q;
}

ShardedIndexSet BuildSharded(const PhiMatrix& phi, size_t shards,
                             size_t query_threads = 0) {
  ShardedIndexSetOptions options;
  options.shards = shards;
  options.min_rows_per_shard = 1;
  options.query_threads = query_threads;
  options.set_options = SetOptions();
  PhiMatrix copy(phi.dim());
  copy.Reserve(phi.size());
  for (size_t i = 0; i < phi.size(); ++i) copy.AppendRow(phi.row(i));
  auto built = ShardedIndexSet::Build(std::move(copy), Domains(), options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

class ShardedIndexSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    phi_ = RandomPhi(kRows, kDim, 1.0, 100.0, kSeed);
    PhiMatrix copy(phi_.dim());
    copy.Reserve(phi_.size());
    for (size_t i = 0; i < phi_.size(); ++i) copy.AppendRow(phi_.row(i));
    auto mono = PlanarIndexSet::Build(std::move(copy), Domains(), SetOptions());
    ASSERT_TRUE(mono.ok()) << mono.status().ToString();
    mono_ = std::make_unique<PlanarIndexSet>(std::move(mono).value());
  }

  PhiMatrix phi_{kDim};
  std::unique_ptr<PlanarIndexSet> mono_;
};

void ExpectStatsInvariant(const QueryStats& stats, size_t rows) {
  EXPECT_EQ(stats.num_points, rows);
  EXPECT_EQ(stats.accepted_directly + stats.rejected_directly + stats.verified,
            stats.num_points);
}

TEST_F(ShardedIndexSetTest, InequalityMatchesMonolithicAcrossShardCounts) {
  Rng rng(99);
  std::vector<ScalarProductQuery> queries;
  for (int i = 0; i < 25; ++i) queries.push_back(MakeQuery(&rng));

  for (const size_t shards : {1u, 2u, 3u, 7u, 16u}) {
    const ShardedIndexSet sharded = BuildSharded(phi_, shards);
    ASSERT_EQ(sharded.num_shards(), shards);
    ASSERT_EQ(sharded.size(), kRows);
    uint64_t reported = 0;
    for (const ScalarProductQuery& q : queries) {
      const InequalityResult mono = mono_->Inequality(q);
      const auto result = sharded.Inequality(q);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      // Canonical ascending-id order == sorted monolithic match set ==
      // brute force.
      EXPECT_EQ(result.value().ids, Sorted(mono.ids)) << "shards=" << shards;
      EXPECT_EQ(result.value().ids, BruteForceMatches(phi_, q));
      EXPECT_EQ(result.value().stats.result_size, mono.stats.result_size);
      ExpectStatsInvariant(result.value().stats, kRows);
      reported += result.value().stats.verified;
    }
    // The per-shard rows-verified counters account exactly the verified
    // sums the merged stats reported.
    uint64_t counted = 0;
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      counted += sharded.shard_rows_verified(s);
    }
    EXPECT_EQ(counted, reported);
  }
}

TEST_F(ShardedIndexSetTest, TopKBitwiseEqualToMonolithic) {
  Rng rng(123);
  for (const size_t shards : {1u, 2u, 3u, 7u, 16u}) {
    const ShardedIndexSet sharded = BuildSharded(phi_, shards);
    for (int i = 0; i < 12; ++i) {
      const ScalarProductQuery q = MakeQuery(&rng);
      for (const size_t k : {1u, 5u, 17u}) {
        const auto mono = mono_->TopK(q, k);
        const auto result = sharded.TopK(q, k);
        ASSERT_EQ(mono.ok(), result.ok());
        if (!mono.ok()) continue;
        const std::vector<Neighbor>& want = mono.value().neighbors;
        const std::vector<Neighbor>& got = result.value().neighbors;
        ASSERT_EQ(got.size(), want.size()) << "shards=" << shards;
        for (size_t j = 0; j < want.size(); ++j) {
          EXPECT_EQ(got[j].id, want[j].id);
          // Bitwise, not approximate: distances come from the same
          // kernel over the same raw phi row in every shard layout.
          EXPECT_EQ(std::memcmp(&got[j].distance, &want[j].distance,
                                sizeof(double)),
                    0);
        }
        EXPECT_EQ(result.value().stats.num_points, kRows);
      }
    }
  }
}

TEST(ShardedIndexSetDuplicatesTest, DuplicateRowsMergeExactly) {
  // 60 distinct rows, each repeated 50 times: duplicate keys cross shard
  // boundaries and produce distance ties TopK must break by global id.
  const PhiMatrix distinct = RandomPhi(60, kDim, 1.0, 100.0, 5);
  PhiMatrix phi(kDim);
  phi.Reserve(60 * 50);
  for (size_t rep = 0; rep < 50; ++rep) {
    for (size_t i = 0; i < distinct.size(); ++i) phi.AppendRow(distinct.row(i));
  }
  PhiMatrix copy(kDim);
  copy.Reserve(phi.size());
  for (size_t i = 0; i < phi.size(); ++i) copy.AppendRow(phi.row(i));
  auto mono = PlanarIndexSet::Build(std::move(copy), Domains(), SetOptions());
  ASSERT_TRUE(mono.ok());

  Rng rng(77);
  for (const size_t shards : {2u, 7u, 16u}) {
    const ShardedIndexSet sharded = BuildSharded(phi, shards);
    for (int i = 0; i < 10; ++i) {
      const ScalarProductQuery q = MakeQuery(&rng);
      const auto ineq = sharded.Inequality(q);
      ASSERT_TRUE(ineq.ok());
      EXPECT_EQ(ineq.value().ids, Sorted(mono.value().Inequality(q).ids));
      const auto mono_topk = mono.value().TopK(q, 64);
      const auto topk = sharded.TopK(q, 64);
      ASSERT_EQ(mono_topk.ok(), topk.ok());
      if (!mono_topk.ok()) continue;
      ASSERT_EQ(topk.value().neighbors.size(),
                mono_topk.value().neighbors.size());
      for (size_t j = 0; j < topk.value().neighbors.size(); ++j) {
        EXPECT_EQ(topk.value().neighbors[j].id,
                  mono_topk.value().neighbors[j].id);
        EXPECT_EQ(topk.value().neighbors[j].distance,
                  mono_topk.value().neighbors[j].distance);
      }
    }
  }
}

TEST_F(ShardedIndexSetTest, BitIdenticalAcrossWorkerCounts) {
  Rng rng(17);
  std::vector<ScalarProductQuery> queries;
  for (int i = 0; i < 10; ++i) queries.push_back(MakeQuery(&rng));

  const ShardedIndexSet serial = BuildSharded(phi_, 7, /*query_threads=*/1);
  for (const size_t workers : {2u, 5u, 8u}) {
    const ShardedIndexSet parallel = BuildSharded(phi_, 7, workers);
    for (const ScalarProductQuery& q : queries) {
      const auto want = serial.Inequality(q);
      const auto got = parallel.Inequality(q);
      ASSERT_TRUE(want.ok() && got.ok());
      EXPECT_EQ(got.value().ids, want.value().ids);
      EXPECT_EQ(got.value().stats.verified, want.value().stats.verified);
      EXPECT_EQ(got.value().stats.accepted_directly,
                want.value().stats.accepted_directly);
      EXPECT_EQ(got.value().stats.index_used, want.value().stats.index_used);
      const auto want_topk = serial.TopK(q, 9);
      const auto got_topk = parallel.TopK(q, 9);
      ASSERT_EQ(want_topk.ok(), got_topk.ok());
      if (!want_topk.ok()) continue;
      ASSERT_EQ(got_topk.value().neighbors.size(),
                want_topk.value().neighbors.size());
      for (size_t j = 0; j < got_topk.value().neighbors.size(); ++j) {
        EXPECT_EQ(got_topk.value().neighbors[j].id,
                  want_topk.value().neighbors[j].id);
        EXPECT_EQ(got_topk.value().neighbors[j].distance,
                  want_topk.value().neighbors[j].distance);
      }
    }
  }
}

TEST_F(ShardedIndexSetTest, BatchMatchesPerQueryAndMonolithic) {
  Rng rng(55);
  std::vector<ScalarProductQuery> queries;
  for (int i = 0; i < 16; ++i) queries.push_back(MakeQuery(&rng));

  for (const size_t shards : {1u, 3u, 7u}) {
    const ShardedIndexSet sharded = BuildSharded(phi_, shards);
    BatchExecStats stats;
    const auto batched = sharded.BatchInequality(queries, {}, &stats);
    ASSERT_EQ(batched.size(), queries.size());
    EXPECT_EQ(stats.queries, queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(batched[i].ok()) << batched[i].status().ToString();
      const auto single = sharded.Inequality(queries[i]);
      ASSERT_TRUE(single.ok());
      EXPECT_EQ(batched[i].value().ids, single.value().ids);
      EXPECT_EQ(batched[i].value().stats.verified,
                single.value().stats.verified);
      EXPECT_EQ(batched[i].value().ids,
                Sorted(mono_->Inequality(queries[i]).ids));
    }
  }

  BatchExecStats empty_stats;
  EXPECT_TRUE(BuildSharded(phi_, 3)
                  .BatchInequality(std::vector<ScalarProductQuery>{}, {},
                                   &empty_stats)
                  .empty());
  EXPECT_EQ(empty_stats.queries, 0u);
}

TEST_F(ShardedIndexSetTest, DeadlineExpiryFansIn) {
  Rng rng(203);
  const ScalarProductQuery q = MakeQuery(&rng);
  for (const size_t shards : {1u, 7u}) {
    const ShardedIndexSet sharded = BuildSharded(phi_, shards);
    const auto ineq = sharded.Inequality(q, Deadline::After(0.0));
    ASSERT_FALSE(ineq.ok());
    EXPECT_EQ(ineq.status().code(), StatusCode::kDeadlineExceeded);
    const auto topk = sharded.TopK(q, 5, Deadline::After(0.0));
    ASSERT_FALSE(topk.ok());
    EXPECT_EQ(topk.status().code(), StatusCode::kDeadlineExceeded);
    // A generous deadline behaves exactly like the infinite default.
    const auto ok = sharded.Inequality(q, Deadline::After(60000.0));
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value().ids, sharded.Inequality(q).value().ids);
  }
}

TEST_F(ShardedIndexSetTest, BatchDeadlinePoisonsOnlyExpiredQueries) {
  Rng rng(402);
  std::vector<ScalarProductQuery> queries;
  for (int i = 0; i < 6; ++i) queries.push_back(MakeQuery(&rng));
  std::vector<Deadline> deadlines(queries.size(), Deadline::Infinite());
  deadlines[2] = Deadline::After(0.0);
  deadlines[4] = Deadline::After(0.0);

  const ShardedIndexSet sharded = BuildSharded(phi_, 5);
  const auto batched = sharded.BatchInequality(queries, deadlines, nullptr);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i == 2 || i == 4) {
      ASSERT_FALSE(batched[i].ok());
      EXPECT_EQ(batched[i].status().code(), StatusCode::kDeadlineExceeded);
      continue;
    }
    ASSERT_TRUE(batched[i].ok()) << batched[i].status().ToString();
    EXPECT_EQ(batched[i].value().ids, Sorted(mono_->Inequality(queries[i]).ids));
  }
}

TEST(ShardedIndexSetSizingTest, ShardCountClampsToMinRows) {
  const PhiMatrix phi = RandomPhi(500, kDim, 1.0, 100.0, 3);
  ShardedIndexSetOptions options;
  options.shards = 16;
  options.min_rows_per_shard = 250;
  options.set_options = SetOptions();
  PhiMatrix copy(kDim);
  copy.Reserve(phi.size());
  for (size_t i = 0; i < phi.size(); ++i) copy.AppendRow(phi.row(i));
  auto sharded = ShardedIndexSet::Build(std::move(copy), Domains(), options);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded.value().num_shards(), 2u);
  EXPECT_EQ(sharded.value().options().shards, 2u);
  EXPECT_EQ(sharded.value().shard_offset(0), 0u);
  EXPECT_EQ(sharded.value().shard_offset(1), 250u);
  EXPECT_EQ(sharded.value().shard_offset(2), 500u);
  EXPECT_GT(sharded.value().MemoryUsage(), 0u);
}

}  // namespace
}  // namespace planar
