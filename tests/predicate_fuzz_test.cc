// Copyright (c) 2026 The planar Authors. Licensed under the MIT license.
//
// Property fuzz for the SQL predicate compiler: random expression trees
// are rendered to text, compiled, and the factored scalar-product form
// must agree with direct tree evaluation on random tuples and parameter
// bindings — i.e. Bind(params).Matches(phi(x)) == eval(tree).

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "sql/predicate_compiler.h"

namespace planar {
namespace {

// A tiny expression AST mirroring the compiler's grammar.
struct Expr {
  enum class Kind { kNumber, kAttr, kParam, kAdd, kSub, kMul, kNeg, kDivConst };
  Kind kind;
  double number = 0.0;  // kNumber / kDivConst divisor
  int index = 0;        // attribute column or parameter index
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;
};

std::unique_ptr<Expr> RandomExpr(Rng& rng, int depth, size_t num_attrs,
                                 size_t num_params, bool* used_attr) {
  const double pick = rng.NextDouble();
  auto expr = std::make_unique<Expr>();
  if (depth <= 0 || pick < 0.35) {
    const double leaf = rng.NextDouble();
    if (leaf < 0.45) {
      expr->kind = Expr::Kind::kAttr;
      expr->index = static_cast<int>(rng.UniformInt(num_attrs));
      *used_attr = true;
    } else if (leaf < 0.75) {
      expr->kind = Expr::Kind::kParam;
      expr->index = static_cast<int>(rng.UniformInt(num_params));
    } else {
      expr->kind = Expr::Kind::kNumber;
      expr->number = std::round(rng.Uniform(-5.0, 5.0) * 4.0) / 4.0;
    }
    return expr;
  }
  if (pick < 0.55) {
    expr->kind = Expr::Kind::kAdd;
  } else if (pick < 0.7) {
    expr->kind = Expr::Kind::kSub;
  } else if (pick < 0.88) {
    expr->kind = Expr::Kind::kMul;
  } else if (pick < 0.95) {
    expr->kind = Expr::Kind::kNeg;
    expr->lhs = RandomExpr(rng, depth - 1, num_attrs, num_params, used_attr);
    return expr;
  } else {
    expr->kind = Expr::Kind::kDivConst;
    expr->number = rng.Bernoulli(0.5) ? 2.0 : -4.0;
    expr->lhs = RandomExpr(rng, depth - 1, num_attrs, num_params, used_attr);
    return expr;
  }
  expr->lhs = RandomExpr(rng, depth - 1, num_attrs, num_params, used_attr);
  expr->rhs = RandomExpr(rng, depth - 1, num_attrs, num_params, used_attr);
  return expr;
}

std::string Render(const Expr& expr, const SqlSchema& schema) {
  char buf[64];
  switch (expr.kind) {
    case Expr::Kind::kNumber:
      // Negative literals render as unary minus.
      std::snprintf(buf, sizeof(buf), "(%s%g)",
                    expr.number < 0 ? "-" : "", std::fabs(expr.number));
      return buf;
    case Expr::Kind::kAttr:
      return schema.attributes[static_cast<size_t>(expr.index)];
    case Expr::Kind::kParam:
      return "?" + std::to_string(expr.index + 1);
    case Expr::Kind::kAdd:
      return "(" + Render(*expr.lhs, schema) + " + " +
             Render(*expr.rhs, schema) + ")";
    case Expr::Kind::kSub:
      return "(" + Render(*expr.lhs, schema) + " - " +
             Render(*expr.rhs, schema) + ")";
    case Expr::Kind::kMul:
      return "(" + Render(*expr.lhs, schema) + " * " +
             Render(*expr.rhs, schema) + ")";
    case Expr::Kind::kNeg:
      return "(-" + Render(*expr.lhs, schema) + ")";
    case Expr::Kind::kDivConst:
      std::snprintf(buf, sizeof(buf), " / (%s%g))",
                    expr.number < 0 ? "-" : "", std::fabs(expr.number));
      return "(" + Render(*expr.lhs, schema) + buf;
  }
  return "";
}

double Eval(const Expr& expr, const std::vector<double>& attrs,
            const std::vector<double>& params) {
  switch (expr.kind) {
    case Expr::Kind::kNumber:
      return expr.number;
    case Expr::Kind::kAttr:
      return attrs[static_cast<size_t>(expr.index)];
    case Expr::Kind::kParam:
      return params[static_cast<size_t>(expr.index)];
    case Expr::Kind::kAdd:
      return Eval(*expr.lhs, attrs, params) + Eval(*expr.rhs, attrs, params);
    case Expr::Kind::kSub:
      return Eval(*expr.lhs, attrs, params) - Eval(*expr.rhs, attrs, params);
    case Expr::Kind::kMul:
      return Eval(*expr.lhs, attrs, params) * Eval(*expr.rhs, attrs, params);
    case Expr::Kind::kNeg:
      return -Eval(*expr.lhs, attrs, params);
    case Expr::Kind::kDivConst:
      return Eval(*expr.lhs, attrs, params) / expr.number;
  }
  return 0.0;
}

TEST(PredicateFuzzTest, CompiledFormAgreesWithTreeEvaluation) {
  const SqlSchema schema{{"x", "y", "z"}};
  Rng rng(271828);
  int compiled_count = 0;
  for (int round = 0; round < 300; ++round) {
    bool used_attr = false;
    auto lhs = RandomExpr(rng, 3, 3, 2, &used_attr);
    auto rhs = RandomExpr(rng, 2, 3, 2, &used_attr);
    if (!used_attr) continue;  // attribute-free predicates are rejected
    const bool le = rng.Bernoulli(0.5);
    const std::string text = Render(*lhs, schema) +
                             (le ? " <= " : " >= ") + Render(*rhs, schema);
    // All parameters must appear for Bind arity to be 2; reference them.
    const std::string full = text;
    auto compiled = CompilePredicate(full, schema);
    if (!compiled.ok()) {
      // The generator can produce attribute-free *differences* (terms
      // cancel); those are legitimately rejected. Anything else is a bug.
      ASSERT_NE(compiled.status().message().find("attribute"),
                std::string::npos)
          << full << " -> " << compiled.status().ToString();
      continue;
    }
    ++compiled_count;
    const size_t arity = compiled->num_parameters();
    std::vector<double> phi(compiled->output_dim());
    for (int trial = 0; trial < 10; ++trial) {
      const std::vector<double> attrs{rng.Uniform(-4, 4), rng.Uniform(-4, 4),
                                      rng.Uniform(-4, 4)};
      std::vector<double> params(2);
      for (double& p : params) p = rng.Uniform(-3, 3);
      auto q = compiled->Bind(
          std::vector<double>(params.begin(),
                              params.begin() + static_cast<long>(arity)));
      ASSERT_TRUE(q.ok()) << full;
      compiled->phi()->Apply(attrs.data(), phi.data());
      const double lhs_value = Eval(*lhs, attrs, params);
      const double rhs_value = Eval(*rhs, attrs, params);
      const double diff = lhs_value - rhs_value;
      // Skip knife-edge cases where float reassociation could flip the
      // comparison legitimately.
      if (std::fabs(diff) < 1e-6) continue;
      const bool direct = le ? diff <= 0 : diff >= 0;
      ASSERT_EQ(q->Matches(phi.data()), direct)
          << full << "  attrs=(" << attrs[0] << "," << attrs[1] << ","
          << attrs[2] << ") params=(" << params[0] << "," << params[1]
          << ")";
    }
  }
  // The fuzz actually exercised the compiler.
  EXPECT_GT(compiled_count, 100);
}

}  // namespace
}  // namespace planar
